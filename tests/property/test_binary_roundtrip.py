"""Property: amnesic binaries survive the assembler round-trip.

The rewritten binary (RCMP/REC/RTN, slice regions, scratch and Hist
operands) must serialise to text and parse back into a program that
executes identically — this is what makes the compiler's output a real
binary artifact rather than an in-memory structure.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.compiler import compile_amnesic
from repro.compiler.annotate import AmnesicBinary
from repro.core import AmnesicCPU, make_policy
from repro.energy import EPITable, EnergyModel
from repro.isa import parse, serialise

from ..conftest import build_spill_kernel, tiny_config


def make_model():
    return EnergyModel(epi=EPITable.default(), config=tiny_config())


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    iterations=st.integers(min_value=4, max_value=12),
    chain=st.integers(min_value=1, max_value=6),
    gap=st.integers(min_value=0, max_value=8),
)
def test_amnesic_binary_roundtrips_and_runs_identically(iterations, chain, gap):
    model = make_model()
    program = build_spill_kernel(iterations=iterations, chain=chain, gap=gap)
    compilation = compile_amnesic(program, model)

    reparsed = parse(serialise(compilation.binary.program))
    rebuilt = AmnesicBinary(program=reparsed, slices=compilation.binary.slices)

    original_cpu = AmnesicCPU(compilation.binary, model, make_policy("Compiler"))
    original_cpu.run()
    reparsed_cpu = AmnesicCPU(rebuilt, model, make_policy("Compiler"))
    reparsed_cpu.run()

    assert reparsed_cpu.memory.snapshot() == original_cpu.memory.snapshot()
    assert reparsed_cpu.registers == original_cpu.registers
    assert (
        reparsed_cpu.stats.recomputations_fired
        == original_cpu.stats.recomputations_fired
    )
    assert reparsed_cpu.account.total_energy_nj == original_cpu.account.total_energy_nj
