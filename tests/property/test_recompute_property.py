"""The flagship property: amnesic execution is semantically invisible.

Hypothesis generates random produce/spill/reload kernels (random chain
opcodes and lengths, random spill slots, random clobbering, random gap
traffic); for every generated program, under every policy, the amnesic
run must (a) verify every recomputed value against the eliminated load
(the CPU raises on any mismatch) and (b) leave memory and registers
bit-identical to classic execution.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.compiler import compile_amnesic
from repro.core.execution import run_amnesic, run_classic
from repro.energy import EPITable, EnergyModel
from repro.isa import Opcode, ProgramBuilder

from ..conftest import tiny_config

CHAIN_OPS = [Opcode.ADD, Opcode.MUL, Opcode.XOR, Opcode.SUB, Opcode.OR, Opcode.AND]


@st.composite
def kernel_programs(draw):
    iterations = draw(st.integers(min_value=3, max_value=10))
    chain = draw(st.lists(st.sampled_from(CHAIN_OPS), min_size=1, max_size=6))
    immediates = draw(
        st.lists(
            st.integers(min_value=1, max_value=2 ** 20),
            min_size=len(chain),
            max_size=len(chain),
        )
    )
    clobber_seed = draw(st.booleans())
    gap = draw(st.integers(min_value=0, max_value=8))
    slots = draw(st.sampled_from([1, 4, 16]))
    use_second_consumer = draw(st.booleans())

    b = ProgramBuilder("hypothesis_kernel")
    background = b.data(list(range(64)), read_only=True)
    region = b.reserve(slots * 8)
    r_bg, r_slot, seed, t, addr, v, sink = b.regs(
        "bg", "slot", "seed", "t", "addr", "v", "sink"
    )
    b.li(r_bg, background)
    b.li(r_slot, region)
    b.li(sink, 0)
    with b.loop("i", 0, iterations) as i:
        b.mul(seed, i, 2654435761)
        b.op(Opcode.MOV, t, seed)
        for opcode, imm in zip(chain, immediates):
            b.op(opcode, t, t, imm)
        b.mul(addr, i, 8)
        b.op(Opcode.AND, addr, addr, slots * 8 - 1)
        b.add(addr, addr, r_slot)
        b.st(t, addr)
        if clobber_seed:
            b.op(Opcode.XOR, seed, seed, 0x1234)
        if gap:
            with b.loop("j", 0, gap) as j:
                b.add(v, j, i)
                b.op(Opcode.AND, v, v, 63)
                b.add(v, v, r_bg)
                b.ld(v, v)
                b.add(sink, sink, v)
        b.mul(addr, i, 8)
        b.op(Opcode.AND, addr, addr, slots * 8 - 1)
        b.add(addr, addr, r_slot)
        b.ld(v, addr)
        b.add(sink, sink, v)
        if use_second_consumer:
            b.mul(addr, i, 8)
            b.op(Opcode.AND, addr, addr, slots * 8 - 1)
            b.add(addr, addr, r_slot)
            b.ld(t, addr)
            b.add(sink, sink, t)
    out = b.reserve(1)
    r_out = b.reg("out")
    b.li(r_out, out)
    b.st(sink, r_out)
    return b.build()


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(kernel_programs())
def test_amnesic_execution_is_invisible(program):
    model = EnergyModel(epi=EPITable.default(), config=tiny_config())
    compilation = compile_amnesic(program, model)
    classic = run_classic(program, model)
    for policy in ("Compiler", "FLC", "C-Oracle"):
        # verify=True raises RecomputationMismatch on any wrong value.
        amnesic = run_amnesic(compilation, policy, model, verify=True)
        assert amnesic.cpu.memory.snapshot() == classic.cpu.memory.snapshot()
        assert amnesic.cpu.registers == classic.cpu.registers


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(kernel_programs())
def test_tiny_hist_still_correct(program):
    """Pathological Hist pressure may only cause fallbacks, never wrong
    values or state divergence."""
    model = EnergyModel(epi=EPITable.default(), config=tiny_config())
    compilation = compile_amnesic(program, model)
    classic = run_classic(program, model)
    amnesic = run_amnesic(
        compilation, "Compiler", model, verify=True, hist_capacity=1
    )
    assert amnesic.cpu.memory.snapshot() == classic.cpu.memory.snapshot()
