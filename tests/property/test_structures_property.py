"""Model-based property tests for the amnesic storage structures."""

from collections import OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import HistoryTable, Renamer, SFile
from repro.isa import SReg

hist_ops = st.lists(
    st.tuples(
        st.sampled_from(["record", "read", "has"]),
        st.integers(0, 3),   # slice id
        st.integers(0, 4),   # leaf id
    ),
    max_size=120,
)


@settings(max_examples=80, deadline=None)
@given(hist_ops, st.integers(min_value=1, max_value=6))
def test_hist_matches_reference_lru_model(operations, capacity):
    hist = HistoryTable(capacity=capacity)
    reference: "OrderedDict" = OrderedDict()
    payload = 0
    for op, slice_id, leaf_id in operations:
        key = (slice_id, leaf_id)
        if op == "record":
            payload += 1
            hist.record(slice_id, leaf_id, (payload,))
            if key in reference:
                reference.move_to_end(key)
            elif len(reference) >= capacity:
                reference.popitem(last=False)
            reference[key] = (payload,)
        elif op == "has":
            assert hist.has(slice_id, leaf_id) == (key in reference)
        else:  # read
            if key in reference:
                assert hist.read(slice_id, leaf_id, 0) == reference[key][0]
                reference.move_to_end(key)
            else:
                try:
                    hist.read(slice_id, leaf_id, 0)
                except KeyError:
                    pass
                else:
                    raise AssertionError("read of absent key succeeded")
    assert hist.occupancy == len(reference)


sfile_ops = st.lists(
    st.tuples(st.sampled_from(["write", "read", "end"]), st.integers(0, 9),
              st.integers(-1000, 1000)),
    max_size=80,
)


@settings(max_examples=80, deadline=None)
@given(sfile_ops)
def test_renamer_matches_reference_dict(operations):
    sfile = SFile(capacity=16)
    renamer = Renamer(sfile)
    renamer.begin_slice()
    reference = {}
    for op, index, value in operations:
        if op == "write":
            if index not in reference and len(reference) >= 16:
                continue  # would exhaust the scratch file
            renamer.write(SReg(index), value)
            reference[index] = value
        elif op == "read":
            if index in reference:
                assert renamer.read(SReg(index)) == reference[index]
        else:
            renamer.end_slice()
            renamer.begin_slice()
            reference.clear()
    assert renamer.live_mappings == len(reference)
