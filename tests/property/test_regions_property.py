"""Property tests for the region analysis and the batched backend.

Three invariants, checked over generated fuzz programs (Hypothesis
drives the spec seed) and the committed regression corpus:

1. **Partition** — the region analysis covers every non-control,
   non-amnesic pc exactly once, and nothing else; regions never
   overlap and never leave the program.
2. **Purity** — no control transfer or amnesic opcode sits inside any
   region, and a region's kind faithfully reflects its fault surface
   (``pure`` regions contain no faultable opcode at all).
3. **Same dynamic footprint** — the batched backend visits exactly the
   per-pc dynamic instruction counts the classic interpreter does, on
   clean runs and on faulting ones (fused partial flushes and the
   guarded budget path included), with matching faults.
"""

from pathlib import Path

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.errors import ReproError
from repro.fuzz import (
    default_fuzz_model,
    load_entry,
    materialize,
    random_spec,
)
from repro.fuzz.corpus import corpus_paths
from repro.fuzz.oracle import DEFAULT_MAX_INSTRUCTIONS
from repro.machine import CPU, BatchedFastCPU
from repro.staticcheck import RegionReport, analyze_regions
from repro.staticcheck.regions import (
    AMNESIC_OPCODES,
    FAULTABLE_OPCODES,
    KIND_PURE,
)

CORPUS_DIR = Path(__file__).resolve().parent.parent / "corpus"

#: One shared model: EnergyModel is immutable run-to-run state.
MODEL = default_fuzz_model()


def generated_program(seed):
    try:
        return materialize(random_spec(seed))
    except ReproError:
        return None


def is_batchable(instruction):
    opcode = instruction.opcode
    return not opcode.category.is_control and opcode not in AMNESIC_OPCODES


def assert_regions_partition(program):
    analysis = analyze_regions(program)
    covered = {}
    for region in analysis.regions:
        assert 0 <= region.start < region.end <= len(program.instructions)
        for pc in range(region.start, region.end):
            assert pc not in covered, f"pc {pc} in two regions"
            covered[pc] = region
    for pc, instruction in enumerate(program.instructions):
        assert (pc in covered) == is_batchable(instruction), (
            f"pc {pc} ({instruction.opcode.name}) "
            f"{'covered' if pc in covered else 'missed'}"
        )
    return analysis


def assert_region_kinds_honest(program, analysis):
    for region in analysis.regions:
        for pc in range(region.start, region.end):
            opcode = program.instructions[pc].opcode
            assert not opcode.category.is_control
            assert opcode not in AMNESIC_OPCODES
            if region.kind == KIND_PURE:
                assert opcode not in FAULTABLE_OPCODES


def classic_visit_counts(program, max_instructions):
    """Per-pc dynamic visit counts under classic count semantics.

    Classic counts an instruction when it begins executing: a pending
    instruction blocked by the budget is *not* counted, a faulting one
    *is*.  Stepping one instruction at a time makes that observable
    per pc.
    """
    cpu = CPU(program, MODEL, max_instructions=max_instructions)
    counts = [0] * len(program.instructions)
    error = None
    try:
        while not cpu.halted:
            pc = cpu.pc
            if pc < len(counts) and cpu.dynamic_count < max_instructions:
                counts[pc] += 1
            cpu.step()
    except ReproError as exc:
        error = f"{type(exc).__name__}: {exc}"
    return counts, error


def batched_visit_counts(program, max_instructions):
    cpu = BatchedFastCPU(program, MODEL, max_instructions=max_instructions)
    error = None
    try:
        cpu.run()
    except ReproError as exc:
        error = f"{type(exc).__name__}: {exc}"
    return cpu._batch_visit_counts, error


def assert_same_dynamic_footprint(program, max_instructions):
    classic, classic_err = classic_visit_counts(program, max_instructions)
    batched, batched_err = batched_visit_counts(program, max_instructions)
    assert classic_err == batched_err
    assert classic == batched, (
        "per-pc visit counts diverged at pcs "
        f"{[pc for pc, (c, b) in enumerate(zip(classic, batched)) if c != b]}"
    )


# ----------------------------------------------------------------------
# Generated programs (Hypothesis drives the generator seed).
# ----------------------------------------------------------------------


@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=25)
def test_regions_partition_generated_programs(seed):
    program = generated_program(seed)
    assume(program is not None)
    analysis = assert_regions_partition(program)
    assert_region_kinds_honest(program, analysis)


@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=25)
def test_report_lookup_agrees_with_analysis(seed):
    program = generated_program(seed)
    assume(program is not None)
    report = RegionReport.from_program(program)
    starts = set()
    for region in report.batchable:
        assert region.length >= 2
        assert report.region_at(region.start) is region
        starts.add(region.start)
    for pc in range(len(program.instructions)):
        if pc not in starts:
            assert report.region_at(pc) is None
    # A fresh report of the same program never disagrees with itself.
    assert report.mismatches(RegionReport.from_program(program)) == []


@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    budget=st.one_of(st.none(), st.integers(min_value=1, max_value=200)),
)
@settings(max_examples=25)
def test_batched_visits_classic_pcs_on_generated_programs(seed, budget):
    # ``budget=None`` exercises clean completion (or the program's own
    # classic fault); small budgets land the limit at arbitrary region
    # offsets, covering the guarded element-by-element path.
    program = generated_program(seed)
    assume(program is not None)
    assert_same_dynamic_footprint(program, budget or DEFAULT_MAX_INSTRUCTIONS)


# ----------------------------------------------------------------------
# The committed corpus: every entry, both invariants.
# ----------------------------------------------------------------------


def entry_ids():
    return [path.stem for path in corpus_paths(CORPUS_DIR)]


@pytest.mark.parametrize("path", corpus_paths(CORPUS_DIR), ids=entry_ids())
def test_corpus_program_regions_partition(path):
    program = materialize(load_entry(path).spec)
    analysis = assert_regions_partition(program)
    assert_region_kinds_honest(program, analysis)


@pytest.mark.parametrize("path", corpus_paths(CORPUS_DIR), ids=entry_ids())
def test_corpus_program_batched_visits_classic_pcs(path):
    entry = load_entry(path)
    program = materialize(entry.spec)
    assert_same_dynamic_footprint(
        program, entry.max_instructions or DEFAULT_MAX_INSTRUCTIONS
    )
