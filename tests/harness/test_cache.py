"""ResultCache failure paths: corruption variants and concurrent writers.

``tests/harness/test_parallel.py`` covers the happy path (roundtrip,
digest identity, the basic corrupt-is-a-miss case); this module attacks
the edges the ISSUE names — every corruption flavour must degrade to a
miss with the ``result=corrupt`` telemetry counter, and racing writers
on the same key must never leave a torn entry or a stray temp file
behind (the atomic ``os.replace`` contract).
"""

import os
import pickle
import threading
import zlib

import pytest

from repro.harness.cache import ResultCache, ResultKey, cache_from_env
from repro.telemetry.runtime import telemetry_session


def make_key(benchmark="bfs", policies=("FLC",)):
    return ResultKey(
        benchmark=benchmark,
        scale=0.25,
        policies=tuple(policies),
        model_fingerprint="fp",
        max_instructions=1000,
    )


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


# ----------------------------------------------------------------------
# Corruption flavours: every one is a miss, never an exception.
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "corruption",
    [
        pytest.param(lambda path: path.write_bytes(b""), id="empty-file"),
        pytest.param(
            lambda path: path.write_bytes(b"garbage bytes"), id="not-zlib"
        ),
        pytest.param(
            lambda path: path.write_bytes(zlib.compress(b"not a pickle")),
            id="zlib-but-not-pickle",
        ),
        pytest.param(
            lambda path: path.write_bytes(path.read_bytes()[:-7]),
            id="truncated-blob",
        ),
        pytest.param(
            lambda path: path.write_bytes(
                zlib.compress(pickle.dumps(object)[:10])
            ),
            id="truncated-pickle",
        ),
    ],
)
def test_every_corruption_flavour_is_a_miss_and_is_dropped(cache, corruption):
    key = make_key()
    cache.put(key, {"FLC": 1})
    corruption(cache.entries()[0])
    with telemetry_session() as telemetry:
        assert cache.get(key) is None
        assert telemetry.registry.value(
            "suite.result_cache", result="corrupt"
        ) == 1
    assert len(cache) == 0  # the bad entry was unlinked
    # The slot is immediately reusable.
    cache.put(key, {"FLC": 2})
    assert cache.get(key) == {"FLC": 2}


def test_absent_entry_counts_as_plain_miss_not_corrupt(cache):
    with telemetry_session() as telemetry:
        assert cache.get(make_key()) is None
        registry = telemetry.registry
        assert registry.value("suite.result_cache", result="miss") == 1
        assert registry.value("suite.result_cache", result="corrupt") is None


def test_stale_format_unpicklable_class_is_a_miss(cache):
    # An entry pickled against a class that no longer exists (renamed
    # module, changed layout) must behave like any other corrupt entry.
    key = make_key()
    # Protocol-0 GLOBAL opcode referencing a module that does not exist:
    # a well-formed pickle that raises ImportError on load.
    blob = zlib.compress(b"cno_such_module\nNoClass\n.")
    (cache.directory / f"{key.digest()}.pkl.z").write_bytes(blob)
    assert cache.get(key) is None
    assert len(cache) == 0


# ----------------------------------------------------------------------
# Concurrent writers: atomic os.replace, no torn reads, no debris.
# ----------------------------------------------------------------------
def test_concurrent_writers_same_key_leave_one_whole_entry(cache):
    key = make_key()
    payloads = [{"FLC": writer, "blob": bytes(4096)} for writer in range(8)]
    barrier = threading.Barrier(len(payloads))
    errors = []

    def write(payload):
        try:
            barrier.wait()
            for _ in range(25):
                cache.put(key, payload)
        except Exception as error:  # pragma: no cover - failure path
            errors.append(error)

    threads = [
        threading.Thread(target=write, args=(payload,)) for payload in payloads
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    assert errors == []
    assert len(cache) == 1  # exactly one entry for the key
    final = cache.get(key)
    assert final in payloads  # some writer's value, never a hybrid
    leftovers = [
        name for name in os.listdir(cache.directory)
        if name.startswith(".tmp-")
    ]
    assert leftovers == []  # every temp file was replaced or unlinked


def test_concurrent_reader_never_sees_a_torn_entry(cache):
    key = make_key()
    cache.put(key, {"FLC": 0})
    stop = threading.Event()
    torn = []

    def reader():
        while not stop.is_set():
            value = cache.get(key)
            if value is not None and "FLC" not in value:
                torn.append(value)

    thread = threading.Thread(target=reader)
    thread.start()
    try:
        for round_number in range(1, 200):
            cache.put(key, {"FLC": round_number, "pad": bytes(2048)})
    finally:
        stop.set()
        thread.join()
    assert torn == []


def test_failed_write_cleans_up_its_temp_file(cache, monkeypatch):
    key = make_key()

    def exploding_replace(src, dst):
        raise OSError("disk on fire")

    monkeypatch.setattr(os, "replace", exploding_replace)
    with pytest.raises(OSError):
        cache.put(key, {"FLC": 1})
    monkeypatch.undo()
    assert len(cache) == 0
    leftovers = [
        name for name in os.listdir(cache.directory)
        if name.startswith(".tmp-")
    ]
    assert leftovers == []


# ----------------------------------------------------------------------
# Operational counters and the stats snapshot.
# ----------------------------------------------------------------------
def test_operational_counters_track_hits_misses_and_bytes(cache):
    key = make_key()
    with telemetry_session() as telemetry:
        registry = telemetry.registry
        assert cache.get(key) is None
        assert registry.value("cache.misses") == 1
        cache.put(key, {"FLC": 1})
        written = registry.value("cache.bytes_written")
        assert written == cache.entries()[0].stat().st_size > 0
        assert cache.get(key) == {"FLC": 1}
        assert registry.value("cache.hits") == 1
        cache.entries()[0].write_bytes(b"garbage")
        assert cache.get(key) is None
        assert registry.value("cache.corrupt_misses") == 1
        # The corrupt lookup is not double-counted as a plain miss.
        assert registry.value("cache.misses") == 1


def test_stats_snapshot_counts_entries_bytes_and_ages(cache):
    empty = cache.stats()
    assert empty["entries"] == 0
    assert empty["total_bytes"] == 0
    assert empty["oldest_age_s"] is None

    cache.put(make_key("bfs"), {"FLC": 1})
    cache.put(make_key("is"), {"FLC": 2})
    now = max(path.stat().st_mtime for path in cache.entries())
    stats = cache.stats(now=now + 30)
    assert stats["entries"] == 2
    assert stats["total_bytes"] == sum(
        path.stat().st_size for path in cache.entries()
    )
    assert 0 <= stats["newest_age_s"] <= stats["oldest_age_s"]
    assert stats["age_histogram"]["<1m"] == 2
    assert sum(stats["age_histogram"].values()) == 2
    # The same entries, observed a week later, age into the last bucket.
    later = cache.stats(now=now + 8 * 86400)
    assert later["age_histogram"]["older"] == 2


# ----------------------------------------------------------------------
# Environment plumbing.
# ----------------------------------------------------------------------
def test_cache_from_env(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    assert cache_from_env() is None
    explicit = cache_from_env(str(tmp_path / "explicit"))
    assert explicit is not None
    assert explicit.directory == tmp_path / "explicit"
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "from-env"))
    from_env = cache_from_env()
    assert from_env is not None and from_env.directory.name == "from-env"
    # Explicit argument wins over the environment.
    assert cache_from_env(str(tmp_path / "explicit")).directory.name == "explicit"
