"""Suite runner caching and experiment registry."""

import pytest

from repro.harness import EXPERIMENTS, SuiteRunner, run_experiment


@pytest.fixture(scope="module")
def runner():
    return SuiteRunner(scale=0.25)


def test_result_is_cached(runner):
    first = runner.result("bfs")
    second = runner.result("bfs")
    assert first is second
    runner.invalidate()
    assert runner.result("bfs") is not first


def test_registry_covers_every_table_and_figure():
    expected = {"table1", "fig3", "fig4", "fig5", "table4", "table5",
                "fig6", "fig7", "fig8", "table6"}
    assert expected <= set(EXPERIMENTS)


def test_unknown_experiment_raises(runner):
    with pytest.raises(KeyError):
        run_experiment("fig99", runner)


def test_table1_needs_no_simulation(runner):
    report = run_experiment("table1", runner)
    assert "40nm" in report.text
    assert "5.75" in report.text


@pytest.mark.integration
def test_fig3_report_structure(runner):
    report = run_experiment("fig3", runner)
    assert "Compiler" in report.text
    matrix = report.data
    assert set(matrix.benchmarks()) == {
        "mcf", "sx", "cg", "is", "ca", "fs", "fe", "rt", "bp", "bfs", "sr"
    }


@pytest.mark.integration
def test_fig7_report_structure(runner):
    report = run_experiment("fig7", runner)
    assert "w/ nc" in report.text
