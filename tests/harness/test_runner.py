"""Suite runner caching and experiment registry."""

import pytest

from repro.harness import EXPERIMENTS, SuiteRunner, run_experiment


@pytest.fixture(scope="module")
def runner():
    return SuiteRunner(scale=0.25)


def test_result_is_cached(runner):
    first = runner.result("bfs")
    second = runner.result("bfs")
    assert first is second
    runner.invalidate()
    assert runner.result("bfs") is not first


def test_cache_keyed_on_scale():
    """Changing scale re-evaluates instead of serving the stale run."""
    runner = SuiteRunner(scale=0.25)
    small = runner.result("bfs")
    runner.scale = 0.5
    large = runner.result("bfs")
    assert large is not small
    # The small-scale entry is still cached alongside the large one.
    runner.scale = 0.25
    assert runner.result("bfs") is small
    small_stats = small["Compiler"].classic.stats
    large_stats = large["Compiler"].classic.stats
    assert small_stats.dynamic_instructions < large_stats.dynamic_instructions


def test_cache_keyed_on_model_fingerprint():
    """The cache keys the model by value, so results can never mix models.

    A value-equal replacement keeps serving the warm cache; a genuinely
    different model re-evaluates transparently — no manual invalidate.
    """
    from repro.energy import EnergyModel
    from repro.energy.tech import paper_energy_model

    runner = SuiteRunner(scale=0.25)
    first = runner.result("bfs")
    runner.model = paper_energy_model()  # value-equal -> same fingerprint
    assert runner.result("bfs") is first
    original = runner.model
    runner.model = EnergyModel(
        epi=original.epi.scaled_nonmem(2.0), config=original.config
    )
    swapped = runner.result("bfs")
    assert swapped is not first
    assert (
        swapped["Compiler"].classic.energy_nj
        != first["Compiler"].classic.energy_nj
    )
    # Both entries stay cached under their own fingerprints.
    runner.model = original
    assert runner.result("bfs") is first


def test_registry_covers_every_table_and_figure():
    expected = {"table1", "fig3", "fig4", "fig5", "table4", "table5",
                "fig6", "fig7", "fig8", "table6"}
    assert expected <= set(EXPERIMENTS)


def test_unknown_experiment_raises(runner):
    with pytest.raises(KeyError):
        run_experiment("fig99", runner)


def test_table1_needs_no_simulation(runner):
    report = run_experiment("table1", runner)
    assert "40nm" in report.text
    assert "5.75" in report.text


@pytest.mark.integration
def test_fig3_report_structure(runner):
    report = run_experiment("fig3", runner)
    assert "Compiler" in report.text
    matrix = report.data
    assert set(matrix.benchmarks()) == {
        "mcf", "sx", "cg", "is", "ca", "fs", "fe", "rt", "bp", "bfs", "sr"
    }


@pytest.mark.integration
def test_fig7_report_structure(runner):
    report = run_experiment("fig7", runner)
    assert "w/ nc" in report.text
