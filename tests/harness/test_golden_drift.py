"""Golden-drift guard: experiments must re-render byte-for-byte.

The committed ``results/*.txt`` files are the tables and figures the
benchmark harness last regenerated; the simulator is deterministic, so
any rendering drift means behaviour changed.  Every golden here shares
one responsive-suite evaluation through the module-scoped runner, which
honours ``$REPRO_JOBS``/``$REPRO_CACHE_DIR`` (floored at two workers) so
warm-cache CI sessions replay it from disk.
"""

import pathlib

import pytest

from repro.harness.experiments import run_experiment
from repro.harness.parallel import default_jobs
from repro.harness.runner import SuiteRunner

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent.parent / "results"

#: Goldens cheap enough for the tier-1 suite: everything rendered from
#: the shared responsive-suite evaluation.  (table6 bisects per-slice
#: break-evens and the ablations re-evaluate under perturbed models —
#: those regenerate only in benchmark sessions.)
GOLDEN_EXPERIMENTS = (
    "table1", "fig3", "fig4", "fig5", "table4", "table5",
    "fig6", "fig7", "fig8",
)


@pytest.fixture(scope="module")
def runner() -> SuiteRunner:
    return SuiteRunner.from_env(jobs=max(2, default_jobs()))


@pytest.mark.parametrize("experiment_id", GOLDEN_EXPERIMENTS)
def test_experiment_matches_committed_golden(experiment_id, runner):
    golden = RESULTS_DIR / f"{experiment_id}.txt"
    assert golden.exists(), (
        f"missing golden {golden}; regenerate with "
        f"`python -m pytest benchmarks -q`"
    )
    report = run_experiment(experiment_id, runner)
    assert report.text + "\n" == golden.read_text(), (
        f"{experiment_id} drifted from {golden}; if the change is "
        f"intended, regenerate the goldens with the benchmark harness"
    )
