"""Parallel evaluation engine and persistent result cache.

The contract under test is the ISSUE's acceptance bar: a suite
evaluated with ``jobs=1`` and ``jobs=4`` must produce identical
per-policy energy/time/EDP numbers and identical merged telemetry
counter totals, and a warm on-disk cache must serve repeat runs without
a single policy evaluation.
"""

import dataclasses
import pickle

import pytest

from repro.energy import EnergyModel
from repro.energy.tech import paper_energy_model
from repro.harness import (
    ParallelEvaluationError,
    ResultCache,
    ResultKey,
    SuiteRunner,
    WorkUnit,
    evaluate_many,
    evaluate_unit,
)
from repro.telemetry.registry import format_series
from repro.telemetry.runtime import telemetry_session
from repro.telemetry.sink import reconstruct_spans

BENCHMARKS = ["bfs", "is"]
SCALE = 0.25


def counter_totals(registry):
    """Every counter series as ``{rendered-name: value}``."""
    return {
        format_series(metric.name, metric.labels): metric.value
        for metric in registry.series()
        if metric.kind == "counter"
    }


@pytest.fixture(scope="module")
def serial_run():
    with telemetry_session(collect_events=True) as telemetry:
        results = SuiteRunner(scale=SCALE, jobs=1).results(BENCHMARKS)
        counters = counter_totals(telemetry.registry)
        events = list(telemetry.sink.events)
    return results, counters, events


@pytest.fixture(scope="module")
def parallel_run():
    with telemetry_session(collect_events=True) as telemetry:
        results = SuiteRunner(scale=SCALE, jobs=4).results(BENCHMARKS)
        counters = counter_totals(telemetry.registry)
        events = list(telemetry.sink.events)
    return results, counters, events


@pytest.mark.integration
def test_parallel_results_identical_to_serial(serial_run, parallel_run):
    serial, _, _ = serial_run
    parallel, _, _ = parallel_run
    assert list(serial) == list(parallel) == BENCHMARKS  # deterministic order
    for benchmark in BENCHMARKS:
        assert list(serial[benchmark]) == list(parallel[benchmark])
        for policy, expected in serial[benchmark].items():
            got = parallel[benchmark][policy]
            assert got.amnesic.energy_nj == expected.amnesic.energy_nj
            assert got.amnesic.time_ns == expected.amnesic.time_ns
            assert got.classic.energy_nj == expected.classic.energy_nj
            assert got.edp_gain_percent == expected.edp_gain_percent
            assert got.energy_gain_percent == expected.energy_gain_percent
            assert got.time_gain_percent == expected.time_gain_percent


@pytest.mark.integration
def test_parallel_merged_counter_totals_match_serial(serial_run, parallel_run):
    _, serial_counters, _ = serial_run
    _, parallel_counters, _ = parallel_run
    assert serial_counters == parallel_counters


@pytest.mark.integration
def test_parallel_merges_worker_decision_events(serial_run, parallel_run):
    """Per-RCMP decision records survive the cross-process merge."""
    _, _, serial_events = serial_run
    _, _, parallel_events = parallel_run

    def rcmp_count(events):
        return sum(1 for event in events if event.get("type") == "rcmp")

    assert rcmp_count(parallel_events) == rcmp_count(serial_events) > 0


@pytest.mark.integration
def test_warm_disk_cache_skips_every_evaluation(tmp_path, serial_run):
    cache_dir = str(tmp_path / "results")
    warmed = SuiteRunner(scale=SCALE, jobs=2, cache_dir=cache_dir)
    first = warmed.results(BENCHMARKS)
    assert len(warmed.result_cache) == len(BENCHMARKS)

    fresh = SuiteRunner(scale=SCALE, jobs=2, cache_dir=cache_dir)
    with telemetry_session() as telemetry:
        second = fresh.results(BENCHMARKS)
        counters = counter_totals(telemetry.registry)

    # Cache-hit counters only: no run stats, no compile counters, no
    # misses.  The per-layer verdict counter and the bare operational
    # counter (`repro stats` disk-io line) tick together on every hit.
    assert counters == {
        "suite.result_cache{result=hit}": len(BENCHMARKS),
        "cache.hits": len(BENCHMARKS),
    }
    serial, _, _ = serial_run
    for benchmark in BENCHMARKS:
        for policy, expected in serial[benchmark].items():
            assert second[benchmark][policy].edp_gain_percent == (
                expected.edp_gain_percent
            )
    assert list(first) == list(second) == BENCHMARKS


@pytest.mark.integration
def test_pool_metrics_flow_into_merged_registry():
    """Batch utilisation lands in the parent registry as histograms,
    gauges, and one ``pool`` event per unit — never counters, so the
    serial-vs-parallel counter equality above stays intact."""
    from repro.telemetry.summary import pool_stats

    units = [
        WorkUnit(benchmark=name, scale=SCALE, policies=("FLC",))
        for name in BENCHMARKS
    ]
    with telemetry_session(collect_events=True) as telemetry:
        evaluate_many(units, jobs=2)
        stats = pool_stats(telemetry.registry)
        events = list(telemetry.sink.events)
        counters = counter_totals(telemetry.registry)

    assert stats["workers"] == 2
    assert stats["unit_s"]["count"] == len(BENCHMARKS)
    assert stats["queue_wait_s"]["count"] == len(BENCHMARKS)
    assert stats["unit_s"]["max"] > 0
    assert stats["straggler_max_s"] >= stats["straggler_median_s"] > 0
    assert stats["straggler_ratio"] >= 1.0
    assert stats["busy_s"] and all(
        busy > 0 for busy in stats["busy_s"].values()
    )
    pool_events = [event for event in events if event.get("type") == "pool"]
    assert len(pool_events) == len(BENCHMARKS)
    assert {event["benchmark"] for event in pool_events} == set(BENCHMARKS)
    assert all(not name.startswith("pool.") for name in counters)


def test_work_unit_and_envelope_are_picklable():
    unit = WorkUnit(benchmark="bfs", scale=SCALE, model=paper_energy_model())
    clone = pickle.loads(pickle.dumps(unit))
    assert clone.benchmark == "bfs"
    assert clone.model.fingerprint() == unit.model.fingerprint()


@pytest.mark.integration
def test_evaluate_unit_without_capture_returns_bare_envelope():
    unit = WorkUnit(
        benchmark="bfs", scale=SCALE, policies=("FLC",),
        capture_metrics=False, capture_events=False,
    )
    envelope = evaluate_unit(unit)
    assert set(envelope.comparisons) == {"FLC"}
    assert envelope.metrics == []
    assert envelope.events == []


@pytest.mark.integration
def test_evaluate_many_preserves_unit_order():
    units = [
        WorkUnit(benchmark=name, scale=SCALE, policies=("FLC",))
        for name in ("is", "bfs")
    ]
    envelopes = evaluate_many(units, jobs=2)
    assert [envelope.benchmark for envelope in envelopes] == ["is", "bfs"]


# ----------------------------------------------------------------------
# Merge-back edge cases: worker failure and cross-process span nesting.
# ----------------------------------------------------------------------
DOOMED = "__doomed__"


def _exit_on_doomed(unit):
    """evaluate_unit wrapper simulating a hard worker death (OOM kill)."""
    if unit.benchmark == DOOMED:
        import os

        os._exit(1)
    return evaluate_unit(unit)


def merged_counter_totals(envelopes):
    """Expected parent counter totals from a set of envelope dumps."""
    totals = {}
    for envelope in envelopes:
        for entry in envelope.metrics:
            if entry["kind"] != "counter":
                continue
            name = format_series(
                entry["name"], tuple(tuple(kv) for kv in entry["labels"])
            )
            totals[name] = totals.get(name, 0) + entry["value"]
    return totals


@pytest.mark.integration
def test_unknown_benchmark_fails_batch_but_merges_survivors():
    units = [
        WorkUnit(benchmark="bfs", scale=SCALE, policies=("FLC",)),
        WorkUnit(benchmark="no-such-benchmark", scale=SCALE),
        WorkUnit(benchmark="is", scale=SCALE, policies=("FLC",)),
    ]
    with telemetry_session() as telemetry:
        with pytest.raises(ParallelEvaluationError) as excinfo:
            evaluate_many(units, jobs=2)
        counters = counter_totals(telemetry.registry)
    error = excinfo.value
    assert [name for name, _ in error.failures] == ["no-such-benchmark"]
    assert "no-such-benchmark" in str(error)
    survivors = error.envelopes
    assert [envelope.benchmark for envelope in survivors] == ["bfs", "is"]
    # Survivors' telemetry merged exactly once: the parent counters are
    # precisely the sum of the surviving dumps — nothing lost, nothing
    # double-counted.
    expected = merged_counter_totals(survivors)
    for name, value in expected.items():
        assert counters[name] == value, name


@pytest.mark.integration
def test_worker_death_mid_batch_keeps_completed_results(monkeypatch):
    """A worker hard-killed mid-batch costs its units, not the batch.

    Relies on the fork start method: the monkeypatched module function
    is inherited by pool workers.  Which units complete before the pool
    breaks is timing-dependent, so the assertions are written against
    whatever survived rather than a fixed completion set.
    """
    import repro.harness.parallel as parallel_module

    monkeypatch.setattr(parallel_module, "evaluate_unit", _exit_on_doomed)
    units = [
        WorkUnit(benchmark="bfs", scale=SCALE, policies=("FLC",)),
        WorkUnit(benchmark=DOOMED, scale=SCALE),
        WorkUnit(benchmark="is", scale=SCALE, policies=("FLC",)),
    ]
    with telemetry_session() as telemetry:
        with pytest.raises(ParallelEvaluationError) as excinfo:
            evaluate_many(units, jobs=2)
        counters = counter_totals(telemetry.registry)
    error = excinfo.value
    failed = {name for name, _ in error.failures}
    assert DOOMED in failed
    survivors = error.envelopes
    assert {envelope.benchmark for envelope in survivors} | failed == {
        "bfs", DOOMED, "is"
    }
    assert all(e.benchmark != DOOMED for e in survivors)
    expected = merged_counter_totals(survivors)
    for name, value in expected.items():
        assert counters[name] == value, name


@pytest.mark.integration
def test_merged_spans_nest_workers_under_parallel_span():
    units = [
        WorkUnit(benchmark=name, scale=SCALE, policies=("FLC",))
        for name in ("bfs", "is")
    ]
    with telemetry_session(collect_events=True) as telemetry:
        evaluate_many(units, jobs=2)
        events = list(telemetry.sink.events)

    span_ids = [e["span"] for e in events if e.get("type") == "span_open"]
    assert len(span_ids) == len(set(span_ids)), "span ids must be unique"

    (root,) = reconstruct_spans(events)
    assert root.name == "suite.parallel"
    children = [child.name for child in root.children]
    assert children == ["suite.benchmark"] * len(units)
    benchmarks = [child.span.attrs["benchmark"] for child in root.children]
    assert sorted(benchmarks) == ["bfs", "is"]
    # Worker-side nesting survives too: each benchmark span keeps its
    # in-worker children (per-policy evaluation spans).
    assert all(child.children for child in root.children)
    workers = {
        e.get("worker")
        for e in events
        if e.get("type") == "span_open" and e.get("worker") is not None
    }
    assert len(workers) >= 1  # merged events carry worker pids


# ----------------------------------------------------------------------
# ResultCache / ResultKey unit behaviour (no simulation needed).
# ----------------------------------------------------------------------
def make_key(fingerprint="abc123", benchmark="bfs"):
    return ResultKey(
        benchmark=benchmark,
        scale=0.25,
        policies=("Compiler", "FLC"),
        model_fingerprint=fingerprint,
        max_instructions=5_000_000,
    )


def test_result_cache_roundtrip(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    key = make_key()
    assert cache.get(key) is None
    cache.put(key, {"FLC": 42})
    assert cache.get(key) == {"FLC": 42}
    assert len(cache) == 1
    assert cache.clear() == 1
    assert cache.get(key) is None


def test_result_cache_corrupt_entry_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    key = make_key()
    cache.put(key, {"FLC": 42})
    cache.entries()[0].write_bytes(b"not a pickle")
    assert cache.get(key) is None  # corrupt -> miss, and the entry is gone
    assert len(cache) == 0


def test_result_key_digest_tracks_model_fingerprint():
    base = make_key(fingerprint="aaaa")
    assert base.digest() == make_key(fingerprint="aaaa").digest()
    assert base.digest() != make_key(fingerprint="bbbb").digest()
    assert base.digest() != make_key(benchmark="is").digest()


def test_result_key_digest_is_backend_namespaced():
    # "classic" must hash identically to a pre-backend key (same JSON
    # payload), so warm caches from before the backend field existed
    # keep serving classic results; any other backend gets its own
    # namespace and therefore always runs cold the first time.
    base = make_key()
    assert base.backend == "classic"
    assert base.digest() == dataclasses.replace(base, backend="classic").digest()
    fast = dataclasses.replace(base, backend="fast")
    assert fast.digest() != base.digest()
    assert fast.digest() == dataclasses.replace(base, backend="fast").digest()


def test_model_fingerprint_is_stable_by_value():
    first = paper_energy_model()
    second = paper_energy_model()
    assert first is not second
    assert first.fingerprint() == second.fingerprint()
    scaled = EnergyModel(epi=first.epi.scaled_nonmem(2.0), config=first.config)
    assert scaled.fingerprint() != first.fingerprint()
    unscaled = paper_energy_model(scaled=False)
    assert unscaled.fingerprint() != first.fingerprint()
