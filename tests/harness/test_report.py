"""Markdown report generation."""

import pytest

from repro.harness import SuiteRunner, build_report, write_report


@pytest.fixture(scope="module")
def runner():
    return SuiteRunner(scale=0.25)


def test_build_report_contains_sections(runner):
    text = build_report(runner, experiments=("table1",))
    assert text.startswith("# AMNESIAC reproduction")
    assert "## table1" in text
    assert "40nm" in text


def test_write_report_creates_file(tmp_path, runner):
    target = write_report(runner, str(tmp_path / "sub" / "report.md"),
                          experiments=("table1",))
    assert target.exists()
    assert "40nm" in target.read_text()


def test_unknown_experiment_rejected(tmp_path, runner):
    with pytest.raises(KeyError):
        write_report(runner, str(tmp_path / "r.md"), experiments=("nope",))
