"""Energy model pricing of classic and amnesic events."""

from repro.energy import EPITable, EnergyModel
from repro.isa import Category
from repro.machine import Level
from repro.machine.hierarchy import Access

from ..conftest import tiny_config


def make_model():
    return EnergyModel(epi=EPITable.default(), config=tiny_config())


def test_compute_cost_is_epi_plus_cycle():
    model = make_model()
    cost = model.compute_cost(Category.INT_ALU)
    assert cost.energy_nj == model.epi.epi(Category.INT_ALU)
    assert cost.time_ns == model.config.cycle_ns


def test_rcmp_modeled_after_branch():
    """Paper section 4: RCMP ~ conditional branch."""
    model = make_model()
    assert model.rcmp_cost().energy_nj == model.epi.epi(Category.BRANCH)


def test_rec_modeled_after_l1d_store():
    model = make_model()
    assert model.rec_cost().energy_nj == model.config.l1_params.write_energy_nj
    assert model.rec_cost().time_ns == model.config.l1_params.latency_ns


def test_rtn_modeled_after_jump():
    model = make_model()
    assert model.rtn_cost().energy_nj == model.epi.epi(Category.JUMP)


def test_hist_modeled_after_l1d():
    model = make_model()
    assert model.hist_read_cost().energy_nj == model.config.l1_params.read_energy_nj


def test_slice_instruction_includes_sfile_traffic():
    model = make_model()
    base = model.compute_cost(Category.INT_ALU)
    slice_cost = model.slice_instruction_cost(Category.INT_ALU)
    assert slice_cost.energy_nj > base.energy_nj
    assert slice_cost.time_ns == base.time_ns


def test_probabilistic_load_cost_interpolates():
    model = make_model()
    pure_l1 = model.probabilistic_load_cost({Level.L1: 1.0})
    pure_mem = model.probabilistic_load_cost({Level.MEM: 1.0})
    mixed = model.probabilistic_load_cost({Level.L1: 0.5, Level.MEM: 0.5})
    assert pure_l1.energy_nj < mixed.energy_nj < pure_mem.energy_nj
    assert abs(mixed.energy_nj - (pure_l1.energy_nj + pure_mem.energy_nj) / 2) < 1e-9


def test_estimated_slice_cost_sums_mix():
    model = make_model()
    mix = {Category.INT_ALU: 3, Category.INT_MUL: 1}
    cost = model.estimated_slice_cost(mix)
    expected = (
        model.slice_instruction_cost(Category.INT_ALU).energy_nj * 3
        + model.slice_instruction_cost(Category.INT_MUL).energy_nj
    )
    assert abs(cost.energy_nj - expected) < 1e-9


def test_access_cost_passthrough():
    model = make_model()
    access = Access(level=Level.L2, energy_nj=8.6, latency_ns=24.77)
    cost = model.access_cost(access)
    assert cost.energy_nj == 8.6 and cost.time_ns == 24.77


def test_divide_latency_is_multicycle():
    """DIV/FDIV take their classic long latencies; ALU stays 1 cycle."""
    model = make_model()
    alu = model.compute_cost(Category.INT_ALU)
    div = model.compute_cost(Category.INT_DIV)
    fdiv = model.compute_cost(Category.FP_DIV)
    assert alu.time_ns == model.config.cycle_ns
    assert div.time_ns == 8 * model.config.cycle_ns
    assert fdiv.time_ns == 12 * model.config.cycle_ns


# ----------------------------------------------------------------------
# Content fingerprint (result-cache identity).
# ----------------------------------------------------------------------
def test_fingerprint_stable_across_equal_models():
    """Two independently built but value-equal models share an identity."""
    assert make_model().fingerprint() == make_model().fingerprint()


def test_fingerprint_tracks_epi_values():
    base = make_model()
    scaled = EnergyModel(epi=base.epi.scaled_nonmem(2.0), config=base.config)
    assert scaled.fingerprint() != base.fingerprint()


def test_fingerprint_tracks_machine_config():
    from repro.energy.tech import paper_energy_model

    base = make_model()
    paper = EnergyModel(epi=base.epi, config=paper_energy_model().config)
    assert paper.fingerprint() != base.fingerprint()
