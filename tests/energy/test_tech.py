"""Technology data (paper Table 1) and the default R ratio."""

from repro.energy import (
    TABLE1_NODES,
    communication_to_computation_trend,
    paper_energy_model,
    r_default,
)


def test_table1_values_match_paper():
    by_label = {node.label: node for node in TABLE1_NODES}
    assert by_label["40nm HP"].sram_load_over_fma == 1.55
    assert by_label["10nm HP"].sram_load_over_fma == 5.75
    assert by_label["10nm LP"].sram_load_over_fma == 5.77
    assert by_label["40nm HP"].operating_voltage_v == 0.90
    assert by_label["10nm HP"].operating_voltage_v == 0.75
    assert by_label["10nm LP"].operating_voltage_v == 0.65


def test_trend_is_monotonic():
    """Communication gets relatively dearer with scaling (section 1)."""
    trend = communication_to_computation_trend()
    assert trend[0] < trend[1] <= trend[2] + 0.05


def test_offchip_ratio_exceeds_50x():
    assert all(node.offchip_load_over_fma >= 50 for node in TABLE1_NODES)


def test_r_default_close_to_paper():
    """R_default = 0.45 / 52.14 ~ 0.0086 (section 5.5)."""
    model = paper_energy_model()
    assert abs(r_default(model) - 0.45 / 52.14) < 0.0015


def test_paper_model_scaled_and_unscaled():
    scaled = paper_energy_model(scaled=True)
    unscaled = paper_energy_model(scaled=False)
    assert scaled.config.l1_geometry.total_lines < unscaled.config.l1_geometry.total_lines
    assert scaled.config.mem_params == unscaled.config.mem_params
