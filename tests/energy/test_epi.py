"""EPI table calibration and scaling."""

import pytest

from repro.energy import MEAN_NONMEM_EPI_NJ, EPITable
from repro.isa import Category


def test_default_table_covers_all_nonmemory_categories():
    table = EPITable.default()
    for category in Category:
        if category.is_compute or category in (
            Category.BRANCH, Category.JUMP, Category.NOP, Category.HALT,
        ):
            assert table.epi(category) >= 0


def test_mean_nonmem_matches_paper_value():
    """The calibration anchor: mean non-mem EPI = 0.45 nJ (section 5.5)."""
    table = EPITable.default()
    assert abs(table.mean_nonmem() - MEAN_NONMEM_EPI_NJ) < 0.07


def test_weighted_mean():
    table = EPITable.default()
    weights = {Category.INT_ALU: 1.0}
    assert table.mean_nonmem(weights) == table.epi(Category.INT_ALU)


def test_scaled_nonmem_scales_compute_only():
    table = EPITable.default()
    scaled = table.scaled_nonmem(2.0)
    assert scaled.epi(Category.INT_ALU) == 2 * table.epi(Category.INT_ALU)
    assert scaled.epi(Category.FP_FMA) == 2 * table.epi(Category.FP_FMA)
    assert scaled.epi(Category.BRANCH) == table.epi(Category.BRANCH)


def test_scaled_rejects_negative():
    with pytest.raises(ValueError):
        EPITable.default().scaled_nonmem(-1)


def test_with_override():
    table = EPITable.default().with_override(Category.INT_ALU, 9.9)
    assert table.epi(Category.INT_ALU) == 9.9


def test_memory_categories_have_no_epi():
    with pytest.raises(KeyError):
        EPITable.default().epi(Category.LOAD)


def test_ordering_div_dearer_than_add():
    table = EPITable.default()
    assert table.epi(Category.INT_DIV) > table.epi(Category.INT_MUL)
    assert table.epi(Category.INT_MUL) > table.epi(Category.INT_ALU)
    assert table.epi(Category.FP_DIV) > table.epi(Category.FP_MUL)
