"""Energy accounting invariants."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.energy import Cost, EnergyAccount, GROUP_LOAD, GROUP_NONMEM


def test_charge_accumulates_energy_and_time():
    account = EnergyAccount()
    account.charge(GROUP_LOAD, Cost(10.0, 5.0))
    account.charge(GROUP_NONMEM, Cost(2.0, 1.0))
    assert account.total_energy_nj == 12.0
    assert account.total_time_ns == 6.0
    assert account.edp == 72.0


def test_unknown_group_rejected():
    account = EnergyAccount()
    with pytest.raises(KeyError):
        account.charge("bogus", Cost(1, 1))


def test_energy_only_charge_leaves_time():
    account = EnergyAccount()
    account.charge_energy_only(GROUP_LOAD, 5.0)
    assert account.total_energy_nj == 5.0
    assert account.total_time_ns == 0.0


def test_breakdown_fractions_sum_to_one():
    account = EnergyAccount()
    account.charge(GROUP_LOAD, Cost(3.0, 1.0))
    account.charge(GROUP_NONMEM, Cost(1.0, 1.0))
    fractions = account.breakdown_fractions()
    assert abs(sum(fractions.values()) - 1.0) < 1e-12
    assert fractions[GROUP_LOAD] == 0.75


def test_empty_account_fractions_are_zero():
    fractions = EnergyAccount().breakdown_fractions()
    assert all(value == 0.0 for value in fractions.values())


def test_cost_addition_and_scaling():
    cost = Cost(2.0, 3.0) + Cost(1.0, 1.0)
    assert cost == Cost(3.0, 4.0)
    assert cost.scaled(2.0) == Cost(6.0, 8.0)


costs = st.builds(
    Cost,
    st.floats(min_value=0, max_value=1e6, allow_nan=False),
    st.floats(min_value=0, max_value=1e6, allow_nan=False),
)


@given(st.lists(costs, max_size=30))
def test_total_is_sum_of_charges(charges):
    account = EnergyAccount()
    for cost in charges:
        account.charge(GROUP_LOAD, cost)
    assert abs(account.total_energy_nj - sum(c.energy_nj for c in charges)) < 1e-6
    assert abs(account.total_time_ns - sum(c.time_ns for c in charges)) < 1e-6
