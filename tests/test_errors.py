"""Exception hierarchy contracts."""

import pytest

from repro.errors import (
    ArithmeticFault,
    AssemblyError,
    CompilationError,
    ExecutionLimitExceeded,
    HistOverflow,
    MachineFault,
    MemoryFault,
    RecomputationMismatch,
    ReproError,
    SchedulerError,
    SliceFormationError,
    ValidationError,
    WorkloadError,
)


@pytest.mark.parametrize(
    "error_type",
    [
        AssemblyError, ValidationError, MachineFault, MemoryFault,
        ArithmeticFault, ExecutionLimitExceeded, CompilationError,
        SliceFormationError, SchedulerError, HistOverflow, WorkloadError,
    ],
)
def test_all_derive_from_repro_error(error_type):
    assert issubclass(error_type, ReproError)


def test_machine_fault_carries_pc():
    fault = MachineFault("boom", pc=42)
    assert fault.pc == 42
    assert "pc=42" in str(fault)


def test_machine_fault_without_pc():
    fault = MachineFault("boom")
    assert fault.pc is None
    assert str(fault) == "boom"


def test_memory_fault_is_machine_fault():
    assert issubclass(MemoryFault, MachineFault)
    assert issubclass(ArithmeticFault, MachineFault)
    assert issubclass(ExecutionLimitExceeded, MachineFault)


def test_recomputation_mismatch_payload():
    mismatch = RecomputationMismatch(3, expected=10, actual=11, pc=99)
    assert mismatch.slice_id == 3
    assert mismatch.expected == 10
    assert mismatch.actual == 11
    assert "RSlice 3" in str(mismatch)
    assert "pc=99" in str(mismatch)


def test_one_except_clause_catches_everything():
    for error in (AssemblyError("x"), RecomputationMismatch(0, 1, 2, 3)):
        try:
            raise error
        except ReproError:
            pass
