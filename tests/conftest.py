"""Shared fixtures, Hypothesis profiles, and kernel helpers."""

import os

import pytest
from hypothesis import HealthCheck, settings

from repro.energy import EPITable, EnergyModel
from repro.isa import Opcode, ProgramBuilder
from repro.machine import CacheGeometry, MachineConfig
from repro.machine.config import (
    PAPER_L1_PARAMS,
    PAPER_L2_PARAMS,
    PAPER_MEM_PARAMS,
)

# ----------------------------------------------------------------------
# Hypothesis profiles, selected via HYPOTHESIS_PROFILE.
#
# ``ci`` (the default) removes the per-example deadline — shared CI
# runners stall unpredictably and a deadline flake tells us nothing —
# and derandomizes so a red CI run reproduces locally from the same
# examples.  ``nightly`` spends real time searching: many examples,
# fresh entropy each run.  ``dev`` keeps Hypothesis's exploratory
# defaults minus the deadline for interactive work.
# ----------------------------------------------------------------------
settings.register_profile("ci", deadline=None, derandomize=True)
settings.register_profile(
    "nightly",
    deadline=None,
    max_examples=500,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile("dev", deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "ci"))


def tiny_config() -> MachineConfig:
    """A very small hierarchy so tests exercise misses cheaply."""
    return MachineConfig(
        l1_geometry=CacheGeometry(total_lines=4, associativity=2, line_words=4),
        l2_geometry=CacheGeometry(total_lines=16, associativity=4, line_words=4),
        l1_params=PAPER_L1_PARAMS,
        l2_params=PAPER_L2_PARAMS,
        mem_params=PAPER_MEM_PARAMS,
    )


@pytest.fixture
def model() -> EnergyModel:
    """Energy model over the tiny test hierarchy."""
    return EnergyModel(epi=EPITable.default(), config=tiny_config())


@pytest.fixture
def harness_model() -> EnergyModel:
    """The harness-scale model (used by calibration-sensitive tests)."""
    from repro.energy import paper_energy_model

    return paper_energy_model()


def build_spill_kernel(iterations: int = 24, chain: int = 3, gap: int = 12,
                       name: str = "spill_kernel"):
    """A canonical spill/reload kernel most compiler tests share.

    Per iteration: derive a value through a *chain*, spill it to a
    line-aligned slot, stream a *gap* of read-only background words, and
    reload the slot.  The reload is swappable; its slice is the chain.
    """
    b = ProgramBuilder(name)
    background = b.data(list(range(256)), read_only=True)
    slots = b.reserve(64)
    r_bg, r_slot, seed, t, addr, gap_v, sink = b.regs(
        "bg", "slot", "seed", "t", "addr", "gapv", "sink"
    )
    b.li(r_bg, background)
    b.li(r_slot, slots)
    b.li(sink, 0)
    with b.loop("i", 0, iterations) as i:
        b.mul(seed, i, 2654435761)
        b.op(Opcode.MOV, t, seed)
        for step in range(chain - 1):
            b.op(Opcode.XOR if step % 2 else Opcode.MUL, t, t, 37 + step)
        b.mul(addr, i, 8)
        b.op(Opcode.AND, addr, addr, 63)
        b.add(addr, addr, r_slot)
        b.st(t, addr)
        with b.loop("j", 0, gap) as j:
            b.mul(gap_v, i, gap)
            b.add(gap_v, gap_v, j)
            b.op(Opcode.AND, gap_v, gap_v, 255)
            b.add(gap_v, gap_v, r_bg)
            b.ld(gap_v, gap_v)
            b.add(sink, sink, gap_v)
        b.mul(addr, i, 8)
        b.op(Opcode.AND, addr, addr, 63)
        b.add(addr, addr, r_slot)
        b.ld(t, addr)
        b.add(sink, sink, t)
    out = b.reserve(1)
    r_out = b.reg("out")
    b.li(r_out, out)
    b.st(sink, r_out)
    return b.build()


def build_accumulator_kernel(iterations: int = 16, name: str = "acc_kernel"):
    """Accumulator spilled to one fixed slot and reloaded each iteration."""
    b = ProgramBuilder(name)
    slot = b.reserve(1)
    r_slot, acc, tmp = b.regs("slot", "acc", "tmp")
    b.li(r_slot, slot)
    b.li(acc, 7)
    with b.loop("i", 0, iterations) as i:
        b.add(acc, acc, i)
        b.mul(acc, acc, 3)
        b.st(acc, r_slot)
        b.mul(tmp, i, 5)
        b.add(tmp, tmp, 1)
        b.ld(acc, r_slot)
        b.add(acc, acc, tmp)
    out = b.reserve(1)
    r_out = b.reg("out")
    b.li(r_out, out)
    b.st(acc, r_out)
    return b.build()
