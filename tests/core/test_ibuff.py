"""Instruction buffer LRU behaviour."""

import pytest

from repro.core import InstructionBuffer


def test_fetch_miss_then_hit():
    ibuff = InstructionBuffer(capacity=4)
    assert not ibuff.fetch(100)
    assert ibuff.fetch(100)
    assert ibuff.stats.hits == 1
    assert ibuff.stats.misses == 1


def test_lru_eviction():
    ibuff = InstructionBuffer(capacity=2)
    ibuff.fetch(1)
    ibuff.fetch(2)
    ibuff.fetch(1)  # promote 1
    ibuff.fetch(3)  # evicts 2
    assert ibuff.fetch(1)
    assert not ibuff.fetch(2)
    assert ibuff.stats.evictions >= 1


def test_hit_rate():
    ibuff = InstructionBuffer(capacity=8)
    for _ in range(3):
        ibuff.fetch(5)
    assert ibuff.stats.hit_rate == pytest.approx(2 / 3)


def test_capacity_validation():
    with pytest.raises(ValueError):
        InstructionBuffer(capacity=0)


def test_high_water():
    ibuff = InstructionBuffer(capacity=4)
    for pc in range(3):
        ibuff.fetch(pc)
    assert ibuff.stats.high_water == 3
