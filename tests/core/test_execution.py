"""Top-level execution API."""

from repro.core import POLICY_NAMES, compare, evaluate_policies, run_classic
from repro.energy import EPITable, EnergyModel

from ..conftest import build_spill_kernel, tiny_config


def make_model():
    return EnergyModel(epi=EPITable.default(), config=tiny_config())


def test_compare_returns_gains():
    program = build_spill_kernel(iterations=10, chain=3, gap=6)
    result = compare(program, policy="Compiler", model=make_model())
    assert result.policy == "Compiler"
    assert result.classic.energy_nj > 0
    assert result.amnesic.energy_nj > 0
    # Gains are internally consistent with the raw outcomes.
    expected = 100 * (result.classic.edp - result.amnesic.edp) / result.classic.edp
    assert abs(result.edp_gain_percent - expected) < 1e-9


def test_evaluate_policies_covers_all(spill=None):
    program = build_spill_kernel(iterations=10, chain=3, gap=6)
    results = evaluate_policies(program, model=make_model())
    assert set(results) == set(POLICY_NAMES)
    classics = {id(r.classic) for r in results.values()}
    assert len(classics) == 1  # one shared classic baseline


def test_oracle_uses_different_binary():
    program = build_spill_kernel(iterations=10, chain=3, gap=6)
    results = evaluate_policies(program, model=make_model())
    oracle_binary = results["Oracle"].compilation
    flc_binary = results["FLC"].compilation
    assert oracle_binary is not flc_binary
    assert results["FLC"].compilation is results["Compiler"].compilation


def test_run_classic_label():
    program = build_spill_kernel(iterations=4, chain=3, gap=2)
    outcome = run_classic(program, make_model())
    assert outcome.label == "classic"
    assert outcome.edp == outcome.energy_nj * outcome.time_ns


def test_policy_subset():
    program = build_spill_kernel(iterations=6, chain=3, gap=2)
    results = evaluate_policies(program, policies=("FLC",), model=make_model())
    assert set(results) == {"FLC"}


def test_gain_with_zero_baseline_is_zero():
    from repro.core.execution import PolicyComparison

    assert PolicyComparison._gain(0.0, 5.0) == 0.0
    assert PolicyComparison._gain(10.0, 5.0) == 50.0
