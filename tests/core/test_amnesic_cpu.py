"""Amnesic CPU: firing, fallbacks, verification, state isolation."""

import pytest

from repro.compiler import compile_amnesic
from repro.core import AmnesicCPU, make_policy
from repro.core.execution import run_amnesic, run_classic
from repro.energy import EPITable, EnergyModel
from repro.errors import RecomputationMismatch
from repro.isa import Opcode

from ..conftest import build_accumulator_kernel, build_spill_kernel, tiny_config


def make_model():
    return EnergyModel(epi=EPITable.default(), config=tiny_config())


@pytest.fixture(scope="module")
def spill_compiled():
    model = make_model()
    program = build_spill_kernel(iterations=12, chain=4, gap=6)
    return model, program, compile_amnesic(program, model)


def test_compiler_policy_recomputes_and_verifies(spill_compiled):
    model, program, compilation = spill_compiled
    outcome = run_amnesic(compilation, "Compiler", model, verify=True)
    assert outcome.stats.recomputations_fired > 0
    assert outcome.stats.rcmp_encountered >= outcome.stats.recomputations_fired


def test_final_memory_identical_to_classic(spill_compiled):
    """Amnesic execution must be architecturally invisible."""
    model, program, compilation = spill_compiled
    classic = run_classic(program, model)
    for policy in ("Compiler", "FLC", "LLC", "C-Oracle"):
        amnesic = run_amnesic(compilation, policy, model)
        assert amnesic.cpu.memory.snapshot() == classic.cpu.memory.snapshot(), policy


def test_registers_match_classic(spill_compiled):
    model, program, compilation = spill_compiled
    classic = run_classic(program, model)
    amnesic = run_amnesic(compilation, "Compiler", model)
    assert amnesic.cpu.registers == classic.cpu.registers


def test_recompute_flag_cleared_after_run(spill_compiled):
    model, _, compilation = spill_compiled
    cpu = AmnesicCPU(compilation.binary, model, make_policy("Compiler"))
    cpu.run()
    assert not cpu.recompute
    assert cpu.renamer.live_mappings == 0


def test_verification_catches_corruption(spill_compiled):
    """Corrupting an embedded slice must raise RecomputationMismatch."""
    import copy

    model, program, compilation = spill_compiled
    binary = compilation.binary
    region = binary.program.slices[0]
    # Corrupt the first slice instruction's immediate, if it has one.
    from repro.isa import Imm, Instruction

    corrupted = copy.deepcopy(binary)
    for pc in range(region.start, region.end - 1):
        instruction = corrupted.program.instructions[pc]
        new_srcs = tuple(
            Imm(src.value + 1) if isinstance(src, Imm) else src
            for src in instruction.srcs
        )
        if new_srcs != instruction.srcs:
            corrupted.program.instructions[pc] = Instruction(
                instruction.opcode, dest=instruction.dest, srcs=new_srcs,
                leaf_id=instruction.leaf_id,
            )
            break
    else:
        pytest.skip("no immediate to corrupt in the first slice")
    cpu = AmnesicCPU(corrupted, model, make_policy("Compiler"), verify=True)
    with pytest.raises(RecomputationMismatch):
        cpu.run()


def test_hist_pressure_forces_fallback(spill_compiled):
    """With a 1-entry Hist, checkpoints evict each other -> fallbacks."""
    model, program, compilation = spill_compiled
    needs_hist = any(info.hist_leaf_ids for info in compilation.binary.slices.values())
    cpu = AmnesicCPU(
        compilation.binary, model, make_policy("Compiler"), hist_capacity=1
    )
    cpu.run()
    if needs_hist and len(compilation.binary.slices) > 1:
        assert cpu.stats.recomputation_fallbacks > 0
    # Fallbacks must still produce correct results (verify was on).


def test_sfile_too_small_forces_fallback(spill_compiled):
    model, program, compilation = spill_compiled
    demand = max(info.sreg_demand for info in compilation.binary.slices.values())
    if demand <= 1:
        pytest.skip("slices too small to exceed a 1-entry SFile")
    cpu = AmnesicCPU(
        compilation.binary, model, make_policy("Compiler"), sfile_capacity=1
    )
    cpu.run()
    assert cpu.stats.recomputations_fired == 0 or cpu.stats.recomputation_fallbacks > 0


def test_fired_loads_reduce_performed_loads(spill_compiled):
    model, program, compilation = spill_compiled
    classic = run_classic(program, model)
    amnesic = run_amnesic(compilation, "Compiler", model)
    fired = amnesic.stats.recomputations_fired
    assert amnesic.stats.loads_performed == classic.stats.loads_performed - fired


def test_dynamic_instructions_increase(spill_compiled):
    """Table 4's '% increase in dynamic instruction count'."""
    model, program, compilation = spill_compiled
    classic = run_classic(program, model)
    amnesic = run_amnesic(compilation, "Compiler", model)
    assert amnesic.stats.dynamic_instructions > classic.stats.dynamic_instructions


def test_hist_reads_charged_to_hist_group(spill_compiled):
    model, program, compilation = spill_compiled
    amnesic = run_amnesic(compilation, "Compiler", model)
    if amnesic.stats.hist_reads:
        assert amnesic.account.energy_of("hist") > 0


def test_accumulator_kernel_end_to_end():
    model = make_model()
    program = build_accumulator_kernel(iterations=12)
    compilation = compile_amnesic(program, model)
    classic = run_classic(program, model)
    amnesic = run_amnesic(compilation, "Compiler", model, verify=True)
    assert amnesic.cpu.memory.snapshot() == classic.cpu.memory.snapshot()


def test_rtn_outside_slice_faults(spill_compiled):
    model, _, compilation = spill_compiled
    from repro.errors import MachineFault

    cpu = AmnesicCPU(compilation.binary, model, make_policy("Compiler"))
    region = compilation.binary.program.slices[0]
    cpu.pc = region.end - 1  # jump straight at the RTN
    with pytest.raises(MachineFault, match="RTN"):
        cpu.step()


def test_concurrent_offload_hides_latency_only(spill_compiled):
    """Offload mode (paper footnote 4): same energy, less time."""
    model, program, compilation = spill_compiled
    sequential = run_amnesic(compilation, "Compiler", model)
    offloaded = run_amnesic(
        compilation, "Compiler", model, concurrent_offload=True
    )
    assert offloaded.stats.recomputations_fired == sequential.stats.recomputations_fired
    assert abs(offloaded.energy_nj - sequential.energy_nj) < 1e-6
    assert offloaded.time_ns < sequential.time_ns
    # Correctness is unaffected (verification stayed on).
    assert offloaded.cpu.memory.snapshot() == sequential.cpu.memory.snapshot()


def test_slice_fault_aborts_to_fallback(spill_compiled):
    """Paper section 2.3: a fault during recomputation must not corrupt
    state - the traversal is discarded and the load performed."""
    import copy

    from repro.isa import HistRef, Imm, Instruction, Opcode, SReg

    model, program, compilation = spill_compiled
    corrupted = copy.deepcopy(compilation.binary)
    # Rewrite the first slice's body into a division by a zero immediate:
    # guaranteed ArithmeticFault on every traversal.
    region = corrupted.program.slices[0]
    first = corrupted.program.instructions[region.start]
    corrupted.program.instructions[region.start] = Instruction(
        Opcode.DIV,
        dest=first.dest,
        srcs=(Imm(1), Imm(0)),
        leaf_id=first.leaf_id,
    )
    cpu = AmnesicCPU(corrupted, model, make_policy("Compiler"), verify=True)
    cpu.run()  # must complete despite the poisoned slice
    assert cpu.stats.recomputation_aborts > 0
    # Architectural results still match classic execution.
    classic = run_classic(program, model)
    assert cpu.memory.snapshot() == classic.cpu.memory.snapshot()
