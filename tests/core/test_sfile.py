"""Scratch file and renamer."""

import pytest

from repro.core import Renamer, SFile
from repro.errors import SchedulerError
from repro.isa import SReg


def test_allocate_write_read():
    sfile = SFile(capacity=4)
    entry = sfile.allocate()
    sfile.write(entry, 42)
    assert sfile.read(entry) == 42
    assert sfile.stats.writes == 1
    assert sfile.stats.reads == 1


def test_exhaustion_raises():
    sfile = SFile(capacity=2)
    sfile.allocate()
    sfile.allocate()
    with pytest.raises(SchedulerError):
        sfile.allocate()


def test_release_all_frees_everything():
    sfile = SFile(capacity=2)
    entry = sfile.allocate()
    sfile.write(entry, 1)
    sfile.release_all()
    assert sfile.occupancy == 0
    sfile.allocate()
    sfile.allocate()


def test_read_of_invalid_entry_raises():
    sfile = SFile(capacity=2)
    entry = sfile.allocate()
    with pytest.raises(SchedulerError):
        sfile.read(entry)


def test_high_water_tracks_peak():
    sfile = SFile(capacity=4)
    sfile.allocate()
    sfile.allocate()
    sfile.release_all()
    sfile.allocate()
    assert sfile.stats.high_water == 2


def test_renamer_maps_virtual_to_physical():
    sfile = SFile(capacity=4)
    renamer = Renamer(sfile)
    renamer.begin_slice()
    renamer.write(SReg(7), 10)
    renamer.write(SReg(3), 20)
    assert renamer.read(SReg(7)) == 10
    assert renamer.read(SReg(3)) == 20
    assert renamer.live_mappings == 2


def test_renamer_read_of_unwritten_sreg_raises():
    renamer = Renamer(SFile(capacity=2))
    renamer.begin_slice()
    with pytest.raises(SchedulerError):
        renamer.read(SReg(0))


def test_renamer_rewrite_reuses_entry():
    sfile = SFile(capacity=1)
    renamer = Renamer(sfile)
    renamer.begin_slice()
    renamer.write(SReg(0), 1)
    renamer.write(SReg(0), 2)  # same virtual register: no new allocation
    assert renamer.read(SReg(0)) == 2


def test_end_slice_clears_mappings():
    sfile = SFile(capacity=2)
    renamer = Renamer(sfile)
    renamer.begin_slice()
    renamer.write(SReg(0), 1)
    renamer.end_slice()
    assert renamer.live_mappings == 0
    with pytest.raises(SchedulerError):
        renamer.read(SReg(0))


def test_rename_requests_counted():
    sfile = SFile(capacity=4)
    renamer = Renamer(sfile)
    renamer.begin_slice()
    renamer.write(SReg(0), 1)
    renamer.read(SReg(0))
    assert sfile.stats.rename_requests == 2


def test_capacity_validation():
    with pytest.raises(ValueError):
        SFile(capacity=0)


def test_fma_rename_requests_fit_the_paper_bound():
    """Paper section 3.4: max#rename = max#src + max#dest; our FMA has
    three sources, so one recomputing FMA raises four rename requests."""
    from repro.isa import MAX_RENAME_REQUESTS

    sfile = SFile(capacity=8)
    renamer = Renamer(sfile)
    renamer.begin_slice()
    for index in range(3):  # three source operands already in SFile
        renamer.write(SReg(index), index)
    before = sfile.stats.rename_requests
    # The FMA reads s0..s2 and writes s3: four requests.
    renamer.read(SReg(0))
    renamer.read(SReg(1))
    renamer.read(SReg(2))
    renamer.write(SReg(3), 99)
    assert sfile.stats.rename_requests - before == MAX_RENAME_REQUESTS
