"""Backend registry and selection order (arg > env > default)."""

import pytest

from repro.core.backend import (
    BACKEND_NAMES,
    BACKENDS,
    DEFAULT_BACKEND,
    ENV_BACKEND,
    BatchedFastAmnesicCPU,
    FastAmnesicCPU,
    resolve_backend,
)
from repro.core.amnesic_cpu import AmnesicCPU
from repro.machine import CPU, FastCPU
from repro.machine.fastpath import BatchedFastCPU


def test_registry_names_every_backend():
    assert BACKEND_NAMES == ("classic", "fast", "fast-batched")
    assert BACKENDS["classic"].cpu_cls is CPU
    assert BACKENDS["classic"].amnesic_cls is AmnesicCPU
    assert BACKENDS["fast"].cpu_cls is FastCPU
    assert BACKENDS["fast"].amnesic_cls is FastAmnesicCPU
    assert BACKENDS["fast-batched"].cpu_cls is BatchedFastCPU
    assert BACKENDS["fast-batched"].amnesic_cls is BatchedFastAmnesicCPU


def test_fast_classes_are_subclasses_of_the_reference_ones():
    # The fast backends layer loops over classic handlers; they must
    # stay substitutable wherever the reference classes are expected.
    assert issubclass(FastCPU, CPU)
    assert issubclass(FastAmnesicCPU, AmnesicCPU)
    assert issubclass(BatchedFastCPU, CPU)
    assert issubclass(BatchedFastAmnesicCPU, AmnesicCPU)


def test_explicit_name_wins(monkeypatch):
    monkeypatch.setenv(ENV_BACKEND, "fast")
    assert resolve_backend("classic").name == "classic"


def test_env_fallback(monkeypatch):
    monkeypatch.setenv(ENV_BACKEND, "fast")
    assert resolve_backend().name == "fast"
    monkeypatch.setenv(ENV_BACKEND, "")
    assert resolve_backend().name == DEFAULT_BACKEND
    monkeypatch.delenv(ENV_BACKEND)
    assert resolve_backend().name == DEFAULT_BACKEND


def test_unknown_backend_is_a_value_error(monkeypatch):
    with pytest.raises(ValueError, match="unknown execution backend"):
        resolve_backend("turbo")
    monkeypatch.setenv(ENV_BACKEND, "turbo")
    with pytest.raises(ValueError, match="turbo"):
        resolve_backend()


def test_runner_resolves_backend_eagerly(monkeypatch):
    from repro.harness.runner import SuiteRunner

    monkeypatch.setenv(ENV_BACKEND, "fast")
    runner = SuiteRunner(jobs=1)
    assert runner.backend == "fast"
    assert runner.describe()["backend"] == "fast"
    # Explicit argument still beats the environment.
    assert SuiteRunner(jobs=1, backend="classic").backend == "classic"


def test_backends_agree_on_a_suite_benchmark():
    # End-to-end through the public evaluation API: same program, both
    # backends, identical comparison numbers.
    from repro.core.execution import run_classic
    from repro.energy import paper_energy_model
    from repro.workloads.suite import get

    program = get("bfs").instantiate(0.25)
    model = paper_energy_model()
    classic = run_classic(program, model, backend="classic").cpu
    fast = run_classic(program, model, backend="fast").cpu
    assert classic.registers == fast.registers
    assert classic.memory.snapshot() == fast.memory.snapshot()
    assert classic.account.breakdown() == fast.account.breakdown()
    assert classic.account.total_time_ns == fast.account.total_time_ns
    assert (
        classic.stats.dynamic_instructions == fast.stats.dynamic_instructions
    )
