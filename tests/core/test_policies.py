"""Runtime policy decision logic against a real hierarchy."""

import pytest

from repro.compiler.annotate import SliceInfo
from repro.compiler.rslice import RSlice, TemplateNode
from repro.core import (
    CompilerPolicy,
    FLCPolicy,
    LLCPolicy,
    OracleDecisionPolicy,
    make_policy,
)
from repro.core.policies import RcmpContext
from repro.energy import Cost, EPITable, EnergyModel
from repro.isa import Opcode
from repro.machine import Level, MemoryHierarchy

from ..conftest import tiny_config


def make_context(address=0x100, traversal_energy=2.0, warm=False):
    model = EnergyModel(epi=EPITable.default(), config=tiny_config())
    hierarchy = MemoryHierarchy(model.config)
    if warm:
        hierarchy.load(address)
    rslice = RSlice(
        slice_id=0,
        load_pc=0,
        root=TemplateNode(pc=0, opcode=Opcode.LI),
        traversal_cost=Cost(traversal_energy, 2.0),
        selection_cost=Cost(traversal_energy, 2.0),
        estimated_load_cost=Cost(10.0, 10.0),
    )
    info = SliceInfo(rslice=rslice, entry_label="rslice_0",
                     hist_leaf_ids=(), sreg_demand=1)
    return RcmpContext(address=address, slice_info=info,
                       hierarchy=hierarchy, model=model)


def test_compiler_always_fires():
    decision = CompilerPolicy().decide(make_context(warm=True))
    assert decision.fire
    assert decision.probe_cost is None


def test_flc_fires_on_l1_miss_only():
    cold = FLCPolicy().decide(make_context(warm=False))
    assert cold.fire
    assert cold.probe_cost.energy_nj == 0.88
    warm = FLCPolicy().decide(make_context(warm=True))
    assert not warm.fire
    assert warm.probe_hit_level is Level.L1


def test_llc_probe_cost_is_much_larger():
    """The paper's 'main delimiter for LLC' (section 5.1)."""
    flc = FLCPolicy().decide(make_context(warm=False))
    llc = LLCPolicy().decide(make_context(warm=False))
    assert llc.fire
    assert llc.probe_cost.energy_nj > 5 * flc.probe_cost.energy_nj


def test_llc_skips_on_l2_hit():
    context = make_context(warm=True)
    # Evict from L1 but leave in L2.
    for index in range(1, 5):
        context.hierarchy.load(context.address + index * 8)
    assert context.hierarchy.residence(context.address) is Level.L2
    decision = LLCPolicy().decide(context)
    assert not decision.fire
    assert decision.probe_hit_level is Level.L2


def test_oracle_fires_iff_load_dearer():
    cheap_slice = make_context(traversal_energy=2.0, warm=False)
    assert OracleDecisionPolicy().decide(cheap_slice).fire  # MEM load >> 2nJ
    warm = make_context(traversal_energy=2.0, warm=True)
    assert not OracleDecisionPolicy().decide(warm).fire  # L1 load < 2nJ
    expensive_slice = make_context(traversal_energy=100.0, warm=False)
    assert not OracleDecisionPolicy().decide(expensive_slice).fire


def test_probe_does_not_disturb_cache_state():
    context = make_context(warm=False)
    FLCPolicy().decide(context)
    LLCPolicy().decide(context)
    assert context.hierarchy.residence(context.address) is Level.MEM


def test_make_policy_by_name():
    assert make_policy("Compiler").name == "Compiler"
    assert make_policy("FLC").name == "FLC"
    assert make_policy("LLC").name == "LLC"
    assert make_policy("C-Oracle").name == "C-Oracle"
    assert make_policy("Oracle").name == "Oracle"
    with pytest.raises(ValueError):
        make_policy("bogus")
