"""History table semantics, including LRU eviction under pressure."""

import pytest

from repro.core import HistoryTable


def test_record_and_read():
    hist = HistoryTable(capacity=4)
    hist.record(0, 1, (10, 20))
    assert hist.has(0, 1)
    assert hist.read(0, 1, 0) == 10
    assert hist.read(0, 1, 1) == 20


def test_rerecord_updates_in_place():
    hist = HistoryTable(capacity=1)
    hist.record(0, 1, (10,))
    evicted = hist.record(0, 1, (11,))
    assert evicted is None
    assert hist.read(0, 1, 0) == 11
    assert hist.occupancy == 1


def test_lru_eviction_on_overflow():
    hist = HistoryTable(capacity=2)
    hist.record(0, 0, (1,))
    hist.record(0, 1, (2,))
    evicted = hist.record(0, 2, (3,))
    assert evicted == (0, 0)
    assert not hist.has(0, 0)
    assert hist.has(0, 1) and hist.has(0, 2)
    assert hist.stats.evictions == 1


def test_read_promotes_lru_order():
    hist = HistoryTable(capacity=2)
    hist.record(0, 0, (1,))
    hist.record(0, 1, (2,))
    hist.read(0, 0, 0)  # promote (0,0)
    evicted = hist.record(0, 2, (3,))
    assert evicted == (0, 1)


def test_missing_read_raises_and_counts():
    hist = HistoryTable(capacity=2)
    with pytest.raises(KeyError):
        hist.read(5, 5, 0)
    assert hist.stats.missing_reads == 1


def test_invalidate_slice():
    hist = HistoryTable(capacity=8)
    hist.record(0, 0, (1,))
    hist.record(0, 1, (2,))
    hist.record(1, 0, (3,))
    assert hist.invalidate_slice(0) == 2
    assert not hist.has(0, 0)
    assert hist.has(1, 0)


def test_high_water():
    hist = HistoryTable(capacity=8)
    for leaf in range(5):
        hist.record(0, leaf, (leaf,))
    assert hist.stats.high_water == 5


def test_capacity_validation():
    with pytest.raises(ValueError):
        HistoryTable(capacity=0)


def test_strict_mode_raises_on_overflow():
    import pytest as _pytest

    from repro.errors import HistOverflow

    hist = HistoryTable(capacity=2, strict=True)
    hist.record(0, 0, (1,))
    hist.record(0, 1, (2,))
    with _pytest.raises(HistOverflow):
        hist.record(0, 2, (3,))
    # Updating an existing key never overflows.
    hist.record(0, 1, (9,))
    assert hist.read(0, 1, 0) == 9
