"""Dynamic dependence tracking on known dataflow."""

from repro.energy import EPITable, EnergyModel
from repro.isa import Opcode, ProgramBuilder
from repro.machine import CPU
from repro.trace import SRC_IMM, SRC_REG, DependenceTracker

from ..conftest import tiny_config


def trace_program(program):
    tracker = DependenceTracker()
    cpu = CPU(program, EnergyModel(epi=EPITable.default(), config=tiny_config()),
              tracer=tracker)
    cpu.run()
    return tracker


def test_register_producer_chain():
    b = ProgramBuilder()
    x, y = b.regs("x", "y")
    b.li(x, 5)            # dyn 0
    b.add(y, x, 2)        # dyn 1: y <- x(prod 0)
    b.mul(y, y, x)        # dyn 2: y <- y(prod 1), x(prod 0)
    tracker = trace_program(b.build())
    record = tracker.record(2)
    assert record.srcs[0][0] == SRC_REG and record.srcs[0][1] == 1
    assert record.srcs[1][0] == SRC_REG and record.srcs[1][1] == 0
    assert record.srcs[0][3] == 7  # the consumed value travels with the edge


def test_memory_producer_found():
    b = ProgramBuilder()
    cell = b.reserve(1)
    base, v = b.regs("base", "v")
    b.li(base, cell)      # dyn 0
    b.st(7, base)         # dyn 1
    b.ld(v, base)         # dyn 2
    tracker = trace_program(b.build())
    load = tracker.dynamic_loads()[0]
    assert load.mem_producer == 1
    assert load.result == 7


def test_load_of_initial_memory_has_no_producer():
    b = ProgramBuilder()
    arr = b.data([9], read_only=True)
    base, v = b.regs("base", "v")
    b.li(base, arr)
    b.ld(v, base)
    tracker = trace_program(b.build())
    assert tracker.dynamic_loads()[0].mem_producer is None


def test_store_overwrites_previous_producer():
    b = ProgramBuilder()
    cell = b.reserve(1)
    base, v = b.regs("base", "v")
    b.li(base, cell)
    b.st(1, base)         # dyn 1
    b.st(2, base)         # dyn 2
    b.ld(v, base)         # dyn 3
    tracker = trace_program(b.build())
    assert tracker.dynamic_loads()[0].mem_producer == 2


def test_immediates_recorded_as_constants():
    b = ProgramBuilder()
    x = b.reg("x")
    b.add(x, 1, 2)
    tracker = trace_program(b.build())
    record = tracker.record(0)
    assert record.srcs == ((SRC_IMM, 1), (SRC_IMM, 2))


def test_loads_at_groups_by_static_pc():
    b = ProgramBuilder()
    cell = b.reserve(1)
    base, v = b.regs("base", "v")
    b.li(base, cell)
    with b.loop("i", 0, 3) as i:
        b.st(i, base)
        b.ld(v, base)
    tracker = trace_program(b.build())
    load_pcs = {r.pc for r in tracker.dynamic_loads()}
    assert len(load_pcs) == 1
    (pc,) = load_pcs
    assert len(tracker.loads_at(pc)) == 3


def test_r0_writes_produce_nothing():
    from repro.isa import alu, Reg, Imm
    b = ProgramBuilder()
    x = b.reg("x")
    b.program.append(alu(Opcode.LI, Reg(0), Imm(5)))
    b.mov(x, Reg(0))
    tracker = trace_program(b.build())
    record = tracker.record(1)
    assert record.srcs[0][1] is None  # r0 has no producer
