"""Value locality measurement."""

import pytest

from repro.energy import EPITable, EnergyModel
from repro.isa import ProgramBuilder
from repro.machine import CPU
from repro.trace import ValueLocalityTracker

from ..conftest import tiny_config


def run_with_tracker(program, depth=4):
    tracker = ValueLocalityTracker(history_depth=depth)
    cpu = CPU(program, EnergyModel(epi=EPITable.default(), config=tiny_config()),
              tracer=tracker)
    cpu.run()
    return tracker


def constant_load_program(repeats):
    b = ProgramBuilder()
    arr = b.data([42], read_only=True)
    base, v = b.regs("base", "v")
    b.li(base, arr)
    with b.loop("i", 0, repeats):
        b.ld(v, base)
    return b.build()


def varying_load_program(repeats):
    b = ProgramBuilder()
    cell = b.reserve(1)
    base, v = b.regs("base", "v")
    b.li(base, cell)
    with b.loop("i", 0, repeats) as i:
        b.st(i, base)
        b.ld(v, base)
    return b.build()


def test_constant_loads_have_high_locality():
    tracker = run_with_tracker(constant_load_program(10))
    (pc,) = tracker.observed_loads()
    assert tracker.locality(pc) == pytest.approx(9 / 10)


def test_varying_loads_have_zero_locality():
    tracker = run_with_tracker(varying_load_program(10), depth=1)
    (pc,) = tracker.observed_loads()
    assert tracker.locality(pc) == 0.0


def test_history_depth_widens_matches():
    b = ProgramBuilder()
    arr = b.data([1, 2], read_only=True)
    base, v, addr = b.regs("base", "v", "addr")
    b.li(base, arr)
    with b.loop("i", 0, 8) as i:
        from repro.isa import Opcode
        b.op(Opcode.AND, addr, i, 1)
        b.add(addr, addr, base)
        b.ld(v, addr)  # alternating 1,2,1,2...
    depth1 = run_with_tracker(b.build(), depth=1)
    (pc,) = depth1.observed_loads()
    assert depth1.locality(pc) == 0.0


def test_weighted_histogram_bins():
    tracker = run_with_tracker(constant_load_program(10))
    (pc,) = tracker.observed_loads()
    histogram = tracker.weighted_histogram([pc], bins=10)
    assert abs(sum(histogram) - 1.0) < 1e-12
    assert histogram[9] == 1.0  # 90% locality lands in the top bin


def test_invalid_depth_rejected():
    with pytest.raises(ValueError):
        ValueLocalityTracker(history_depth=0)


def test_empty_histogram():
    tracker = ValueLocalityTracker()
    assert tracker.weighted_histogram([], bins=5) == [0.0] * 5
