"""Per-load service-level profiling (PrLi)."""

from repro.energy import EPITable, EnergyModel
from repro.isa import ProgramBuilder
from repro.machine import CPU, Level
from repro.trace import LoadProfiler

from ..conftest import tiny_config


def profile(program):
    profiler = LoadProfiler()
    cpu = CPU(program, EnergyModel(epi=EPITable.default(), config=tiny_config()),
              tracer=profiler)
    cpu.run()
    return profiler


def test_repeated_load_profile():
    b = ProgramBuilder()
    arr = b.data([1], read_only=True)
    base, v = b.regs("base", "v")
    b.li(base, arr)
    with b.loop("i", 0, 4):
        b.ld(v, base)
    profiler = profile(b.build())
    (pc,) = profiler.observed_loads()
    probabilities = profiler.service_probabilities(pc)
    # First access misses to memory, the remaining three hit L1.
    assert probabilities[Level.MEM] == 0.25
    assert probabilities[Level.L1] == 0.75
    assert profiler.load_count(pc) == 4


def test_unknown_load_falls_back_to_global():
    b = ProgramBuilder()
    arr = b.data([1], read_only=True)
    base, v = b.regs("base", "v")
    b.li(base, arr)
    b.ld(v, base)
    profiler = profile(b.build())
    assert profiler.service_probabilities(12345) == profiler.global_probabilities()


def test_global_probabilities_without_loads():
    b = ProgramBuilder()
    b.li(b.reg("x"), 1)
    profiler = profile(b.build())
    assert profiler.global_probabilities()[Level.L1] == 1.0


def test_probabilities_sum_to_one():
    b = ProgramBuilder()
    arr = b.data(list(range(64)), read_only=True)
    base, v, addr = b.regs("base", "v", "addr")
    b.li(base, arr)
    with b.loop("i", 0, 64) as i:
        b.add(addr, base, i)
        b.ld(v, addr)
    profiler = profile(b.build())
    for pc in profiler.observed_loads():
        assert abs(sum(profiler.service_probabilities(pc).values()) - 1.0) < 1e-12
