"""The combined profiling runner."""

from repro.trace import profile_program

from ..conftest import build_spill_kernel, tiny_config
from repro.energy import EPITable, EnergyModel


def test_profile_program_combines_all_tracers():
    program = build_spill_kernel(iterations=6, gap=4)
    model = EnergyModel(epi=EPITable.default(), config=tiny_config())
    result = profile_program(program, model)
    assert result.dynamic_instructions > 0
    assert len(result.dependence) == result.dynamic_instructions
    assert result.loads.observed_loads()
    assert result.locality.observed_loads()
    assert result.stats.loads_performed > 0
