"""Trace summaries and stack-distance reuse profiles."""

import pytest

from repro.energy import EPITable, EnergyModel
from repro.isa import ProgramBuilder
from repro.machine import CPU
from repro.trace import DependenceTracker
from repro.trace.summary import (
    COLD_BUCKET,
    ReuseProfile,
    reuse_profile,
    summarise_trace,
)

from ..conftest import build_spill_kernel, tiny_config


def test_repeated_access_has_zero_distance():
    profile = reuse_profile([0, 0, 0, 0], line_words=4)
    assert profile.histogram[COLD_BUCKET] == 1
    assert profile.histogram[4] == 3  # distance 0 -> first bucket
    assert profile.unique_lines == 1


def test_same_line_counts_as_reuse():
    # Words 0..3 share a 4-word line.
    profile = reuse_profile([0, 1, 2, 3], line_words=4)
    assert profile.histogram[COLD_BUCKET] == 1
    assert profile.histogram[4] == 3


def test_streaming_is_all_cold():
    profile = reuse_profile(list(range(0, 400, 4)), line_words=4)
    assert profile.histogram[COLD_BUCKET] == profile.accesses
    assert profile.unique_lines == profile.accesses


def test_cyclic_pattern_distance_equals_footprint():
    """Cycling through N lines gives stack distance N-1 on every reuse."""
    lines = 10
    stream = [line * 4 for line in range(lines)] * 3
    profile = reuse_profile(stream, line_words=4)
    # Reuses (two extra passes) all land in the bucket covering 9.
    assert profile.histogram[16] == 2 * lines
    assert profile.histogram[COLD_BUCKET] == lines


def test_fraction_within_is_lru_hit_rate():
    """fraction_within(N) == hit rate of an N-line LRU cache."""
    lines = 10
    stream = [line * 4 for line in range(lines)] * 3
    profile = reuse_profile(stream, line_words=4)
    assert profile.fraction_within(16) == pytest.approx(20 / 30)
    assert profile.fraction_within(8) == 0.0


def test_matches_reference_stack_distance():
    """Fenwick-tree distances agree with a naive reference computation."""
    import random

    rng = random.Random(7)
    stream = [rng.randrange(0, 32) * 4 for _ in range(300)]
    profile = reuse_profile(stream, line_words=4)

    # Naive reference: LRU stack positions.
    stack = []
    reference = {"cold": 0}
    from repro.trace.summary import _bucket

    for address in stream:
        line = address // 4
        if line in stack:
            distance = stack.index(line)
            reference[_bucket(distance)] = reference.get(_bucket(distance), 0) + 1
            stack.remove(line)
        else:
            reference["cold"] += 1
        stack.insert(0, line)
    assert profile.histogram[COLD_BUCKET] == reference["cold"]
    for bucket, count in reference.items():
        if bucket != "cold":
            assert profile.histogram[bucket] == count


def test_summarise_trace_on_spill_kernel():
    program = build_spill_kernel(iterations=8, chain=3, gap=6)
    tracker = DependenceTracker()
    CPU(program, EnergyModel(epi=EPITable.default(), config=tiny_config()),
        tracer=tracker).run()
    summary = summarise_trace(tracker)
    assert summary.dynamic_instructions == len(tracker.records)
    assert summary.load_count > 0
    assert summary.store_count > 0
    assert summary.working_set_words > 0
    assert summary.working_set_lines <= summary.working_set_words
    assert abs(sum(summary.mix.values()) - 1.0) < 1e-9
    assert 0 < summary.compute_fraction() < 1
    assert summary.load_reuse.accesses == summary.load_count


def test_summary_without_reuse():
    tracker = DependenceTracker()
    summary = summarise_trace(tracker, with_reuse=False)
    assert summary.load_reuse is None
    assert summary.dynamic_instructions == 0
