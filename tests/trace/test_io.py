"""Trace persistence round-trips."""

from repro.compiler import TemplateExtractor
from repro.energy import EPITable, EnergyModel
from repro.machine import CPU
from repro.trace import DependenceTracker
from repro.trace.io import dump_trace, load_trace

from ..conftest import build_spill_kernel, tiny_config


def traced_kernel():
    program = build_spill_kernel(iterations=8, chain=3, gap=4)
    tracker = DependenceTracker()
    CPU(program, EnergyModel(epi=EPITable.default(), config=tiny_config()),
        tracer=tracker).run()
    return program, tracker


def test_roundtrip_preserves_records(tmp_path):
    _, tracker = traced_kernel()
    path = dump_trace(tracker, tmp_path / "trace.jsonl")
    loaded = load_trace(path)
    assert len(loaded) == len(tracker)
    for original, reloaded in zip(tracker.records, loaded.records):
        assert original == reloaded


def test_compiler_runs_on_reloaded_trace(tmp_path):
    """Template extraction over a reloaded trace equals the live one."""
    program, tracker = traced_kernel()
    path = dump_trace(tracker, tmp_path / "trace.jsonl")
    loaded = load_trace(path)
    for load_pc in program.static_loads():
        live = TemplateExtractor(tracker).extract(load_pc)
        replayed = TemplateExtractor(loaded).extract(load_pc)
        if live is None:
            assert replayed is None
        else:
            assert replayed is not None
            assert (
                replayed.tree.structural_signature()
                == live.tree.structural_signature()
            )


def test_dump_creates_parent_dirs(tmp_path):
    _, tracker = traced_kernel()
    target = dump_trace(tracker, tmp_path / "deep" / "dir" / "t.jsonl")
    assert target.exists()
