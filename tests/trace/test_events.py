"""Trace event plumbing."""

from repro.isa import Imm, Opcode, Reg, alu
from repro.machine import Level
from repro.trace import InstructionEvent, MultiTracer, NullTracer


def make_event(**overrides):
    base = dict(
        index=3,
        pc=7,
        instruction=alu(Opcode.ADD, Reg(1), Reg(2), Imm(5)),
        operand_values=(2, 5),
        result=7,
    )
    base.update(overrides)
    return InstructionEvent(**base)


def test_event_str_includes_context():
    text = str(make_event(address=0x40, level=Level.L2))
    assert "pc=7" in text
    assert "0x40" in text
    assert "L2" in text


def test_opcode_shortcut():
    assert make_event().opcode is Opcode.ADD


def test_null_tracer_swallows():
    NullTracer().on_instruction(make_event())  # must not raise


def test_multi_tracer_fans_out():
    class Collector:
        def __init__(self):
            self.events = []

        def on_instruction(self, event):
            self.events.append(event)

    a, b = Collector(), Collector()
    tracer = MultiTracer(a, b)
    event = make_event()
    tracer.on_instruction(event)
    assert a.events == [event]
    assert b.events == [event]
