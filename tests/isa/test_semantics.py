"""Value semantics: checked against Python arithmetic, incl. 64-bit wrap."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ArithmeticFault
from repro.isa import Opcode, branch_taken, evaluate, wrap_int64

int64s = st.integers(min_value=-(2 ** 63), max_value=2 ** 63 - 1)


@given(int64s, int64s)
def test_add_wraps_like_two_complement(a, b):
    assert evaluate(Opcode.ADD, (a, b)) == wrap_int64(a + b)


@given(int64s, int64s)
def test_mul_wraps(a, b):
    assert evaluate(Opcode.MUL, (a, b)) == wrap_int64(a * b)


@given(int64s)
def test_wrap_is_idempotent(a):
    assert wrap_int64(wrap_int64(a)) == wrap_int64(a)


@given(int64s)
def test_wrap_range(a):
    wrapped = wrap_int64(a)
    assert -(2 ** 63) <= wrapped <= 2 ** 63 - 1


@given(int64s, int64s.filter(lambda v: v != 0))
def test_div_truncates_toward_zero(a, b):
    expected = abs(a) // abs(b)
    if (a < 0) != (b < 0):
        expected = -expected
    assert evaluate(Opcode.DIV, (a, b)) == wrap_int64(expected)


@given(int64s, int64s.filter(lambda v: v != 0))
def test_div_rem_identity(a, b):
    quotient = evaluate(Opcode.DIV, (a, b))
    remainder = evaluate(Opcode.REM, (a, b))
    assert wrap_int64(quotient * b + remainder) == wrap_int64(a)


def test_division_by_zero_faults():
    with pytest.raises(ArithmeticFault):
        evaluate(Opcode.DIV, (1, 0))
    with pytest.raises(ArithmeticFault):
        evaluate(Opcode.REM, (1, 0))
    with pytest.raises(ArithmeticFault):
        evaluate(Opcode.FDIV, (1.0, 0.0))


def test_fsqrt_negative_faults():
    with pytest.raises(ArithmeticFault):
        evaluate(Opcode.FSQRT, (-1.0,))


@given(st.integers(min_value=0, max_value=127))
def test_shift_amount_masked_to_63(shift):
    result = evaluate(Opcode.SHL, (1, shift))
    assert result == wrap_int64(1 << (shift & 63))


def test_comparisons():
    assert evaluate(Opcode.SLT, (1, 2)) == 1
    assert evaluate(Opcode.SLT, (2, 1)) == 0
    assert evaluate(Opcode.SLE, (2, 2)) == 1
    assert evaluate(Opcode.SEQ, (3, 3)) == 1
    assert evaluate(Opcode.SNE, (3, 3)) == 0


def test_fma():
    assert evaluate(Opcode.FMA, (2.0, 3.0, 1.0)) == 7.0


def test_mov_and_li_are_identity():
    assert evaluate(Opcode.MOV, (42,)) == 42
    assert evaluate(Opcode.LI, (4.5,)) == 4.5


def test_cvt_roundtrip():
    assert evaluate(Opcode.CVTIF, (7,)) == 7.0
    assert evaluate(Opcode.CVTFI, (7.9,)) == 7


@given(int64s, int64s)
def test_branch_conditions(a, b):
    assert branch_taken(Opcode.BEQ, a, b) == (a == b)
    assert branch_taken(Opcode.BNE, a, b) == (a != b)
    assert branch_taken(Opcode.BLT, a, b) == (a < b)
    assert branch_taken(Opcode.BGE, a, b) == (a >= b)


def test_branch_on_non_branch_faults():
    with pytest.raises(ArithmeticFault):
        branch_taken(Opcode.ADD, 1, 2)


def test_evaluate_non_compute_faults():
    with pytest.raises(ArithmeticFault):
        evaluate(Opcode.LD, (1, 2))


@given(st.floats(allow_nan=False, allow_infinity=False, width=32),
       st.floats(allow_nan=False, allow_infinity=False, width=32))
def test_fp_ops_match_python(a, b):
    assert evaluate(Opcode.FADD, (a, b)) == a + b
    assert evaluate(Opcode.FSUB, (a, b)) == a - b
    assert evaluate(Opcode.FMUL, (a, b)) == a * b
