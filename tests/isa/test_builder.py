"""ProgramBuilder DSL behaviour (verified by executing built programs)."""

import pytest

from repro.energy import EPITable, EnergyModel
from repro.errors import ValidationError
from repro.isa import DATA_BASE, Opcode, ProgramBuilder
from repro.machine import CPU

from ..conftest import tiny_config


def run(program):
    cpu = CPU(program, EnergyModel(epi=EPITable.default(), config=tiny_config()))
    cpu.run()
    return cpu


def test_named_registers_are_stable():
    b = ProgramBuilder()
    first = b.reg("x")
    second = b.reg("x")
    assert first == second
    assert b.reg("y") != first


def test_register_exhaustion():
    b = ProgramBuilder()
    for index in range(31):
        b.reg(f"r{index}")
    with pytest.raises(ValidationError):
        b.reg("one_too_many")


def test_data_placement_is_sequential():
    b = ProgramBuilder()
    first = b.data([1, 2, 3])
    second = b.data([4])
    assert first == DATA_BASE
    assert second == DATA_BASE + 3
    assert b.program.data.cells[second] == 4


def test_loop_executes_correct_iteration_count():
    b = ProgramBuilder()
    cell = b.reserve(1)
    counter, base = b.regs("count", "base")
    b.li(base, cell)
    b.li(counter, 0)
    with b.loop("i", 0, 7):
        b.add(counter, counter, 1)
    b.st(counter, base)
    cpu = run(b.build())
    assert cpu.memory.read(cell) == 7


def test_loop_with_zero_iterations_skips_body():
    b = ProgramBuilder()
    cell = b.reserve(1, fill=99)
    base = b.reg("base")
    b.li(base, cell)
    with b.loop("i", 5, 5):
        b.st(0, base)
    cpu = run(b.build())
    assert cpu.memory.read(cell) == 99


def test_loop_with_register_bound():
    b = ProgramBuilder()
    cell = b.reserve(1)
    bound, counter, base = b.regs("bound", "count", "base")
    b.li(bound, 4)
    b.li(counter, 0)
    b.li(base, cell)
    with b.loop("i", 0, bound):
        b.add(counter, counter, 1)
    b.st(counter, base)
    cpu = run(b.build())
    assert cpu.memory.read(cell) == 4


def test_when_block_taken_and_skipped():
    b = ProgramBuilder()
    cell = b.reserve(2)
    base, value = b.regs("base", "value")
    b.li(base, cell)
    b.li(value, 3)
    with b.when(Opcode.BEQ, value, 3):
        b.st(1, base)
    with b.when(Opcode.BEQ, value, 4):
        b.st(1, base, offset=1)
    cpu = run(b.build())
    assert cpu.memory.read(cell) == 1
    assert cpu.memory.read(cell + 1) == 0


def test_when_rejects_non_branch():
    b = ProgramBuilder()
    with pytest.raises(ValidationError):
        with b.when(Opcode.ADD, 1, 2):
            pass


def test_build_appends_halt_once():
    b = ProgramBuilder()
    b.li(b.reg("x"), 1)
    program = b.build()
    assert program.instructions[-1].opcode is Opcode.HALT
    assert sum(1 for i in program if i.opcode is Opcode.HALT) == 1


def test_nested_loops():
    b = ProgramBuilder()
    cell = b.reserve(1)
    counter, base = b.regs("count", "base")
    b.li(base, cell)
    b.li(counter, 0)
    with b.loop("i", 0, 3):
        with b.loop("j", 0, 4):
            b.add(counter, counter, 1)
    b.st(counter, base)
    cpu = run(b.build())
    assert cpu.memory.read(cell) == 12


def test_op_coerces_bare_numbers():
    b = ProgramBuilder()
    cell = b.reserve(1)
    x, base = b.regs("x", "base")
    b.li(base, cell)
    b.op(Opcode.ADD, x, 2, 3)
    b.st(x, base)
    cpu = run(b.build())
    assert cpu.memory.read(cell) == 5
