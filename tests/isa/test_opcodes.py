"""Opcode table invariants."""

from repro.isa import ARITY, MAX_RENAME_REQUESTS, SLICEABLE_OPCODES, Category, Opcode


def test_every_opcode_has_a_category():
    for opcode in Opcode:
        assert isinstance(opcode.category, Category)


def test_every_opcode_has_an_arity():
    for opcode in Opcode:
        assert opcode in ARITY


def test_memory_categories():
    assert Opcode.LD.is_memory
    assert Opcode.ST.is_memory
    assert not Opcode.ADD.is_memory


def test_compute_categories_cover_alu_and_fpu():
    assert Opcode.ADD.is_compute
    assert Opcode.FMA.is_compute
    assert Opcode.MOV.is_compute
    assert not Opcode.BEQ.is_compute
    assert not Opcode.LD.is_compute


def test_amnesic_opcodes():
    for opcode in (Opcode.RCMP, Opcode.RTN, Opcode.REC):
        assert opcode.is_amnesic
        assert opcode.category is Category.AMNESIC


def test_sliceable_excludes_memory_and_control():
    """Paper section 3.4: the amnesic microarchitecture processes only
    register-to-register instructions."""
    for opcode in SLICEABLE_OPCODES:
        assert opcode.is_compute
    assert Opcode.LD not in SLICEABLE_OPCODES
    assert Opcode.BEQ not in SLICEABLE_OPCODES
    assert Opcode.RCMP not in SLICEABLE_OPCODES


def test_max_rename_requests_matches_widest_sliceable_instruction():
    """FMA has three sources plus one destination."""
    assert MAX_RENAME_REQUESTS == 4


def test_control_category_flags():
    assert Category.BRANCH.is_control
    assert Category.JUMP.is_control
    assert Category.HALT.is_control
    assert not Category.INT_ALU.is_control
