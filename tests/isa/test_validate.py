"""Static program validation: every violation class is caught."""

import pytest

from repro.errors import ValidationError
from repro.isa import (
    HistRef,
    Imm,
    Opcode,
    Program,
    Reg,
    SReg,
    SliceRegion,
    alu,
    branch,
    halt,
    li,
    load,
    rcmp,
    rtn,
    validate_program,
)


def minimal_valid_amnesic_program() -> Program:
    program = Program("valid")
    program.append(li(Reg(1), 5))
    program.append(rcmp(Reg(2), Reg(1), 0, slice_id=0, target="rslice_0"))
    program.append(halt())
    program.add_label("rslice_0", 3)
    program.append(alu(Opcode.LI, SReg(0), Imm(7)))
    program.append(rtn(0, SReg(0)))
    program.register_slice(
        SliceRegion(slice_id=0, entry_label="rslice_0", start=3, end=5, load_pc=1)
    )
    return program


def test_valid_program_passes():
    validate_program(minimal_valid_amnesic_program())


def test_dangling_branch_target():
    program = Program()
    program.append(branch(Opcode.BEQ, Reg(1), Imm(0), "nowhere"))
    program.append(halt())
    with pytest.raises(ValidationError, match="undefined target"):
        validate_program(program)


def test_label_out_of_range():
    program = Program()
    program.append(halt())
    program.add_label("far", 99)
    with pytest.raises(ValidationError, match="outside program"):
        validate_program(program)


def test_slice_must_end_with_rtn():
    program = minimal_valid_amnesic_program()
    program.slices[0].end = 4  # now "ends" on the LI
    with pytest.raises(ValidationError, match="does not end with RTN"):
        validate_program(program)


def test_slice_rejects_memory_instructions():
    program = Program()
    program.append(rcmp(Reg(2), Reg(1), 0, slice_id=0, target="rslice_0"))
    program.append(halt())
    program.add_label("rslice_0", 2)
    program.append(load(Reg(3), Reg(1), 0))
    program.append(rtn(0, SReg(0)))
    program.register_slice(
        SliceRegion(slice_id=0, entry_label="rslice_0", start=2, end=4, load_pc=0)
    )
    with pytest.raises(ValidationError, match="non-compute"):
        validate_program(program)


def test_slice_instructions_must_write_scratch():
    program = Program()
    program.append(rcmp(Reg(2), Reg(1), 0, slice_id=0, target="rslice_0"))
    program.append(halt())
    program.add_label("rslice_0", 2)
    program.append(alu(Opcode.LI, Reg(3), Imm(1)))
    program.append(rtn(0, SReg(0)))
    program.register_slice(
        SliceRegion(slice_id=0, entry_label="rslice_0", start=2, end=4, load_pc=0)
    )
    with pytest.raises(ValidationError, match="scratch register"):
        validate_program(program)


def test_scratch_operands_forbidden_outside_slices():
    program = Program()
    program.append(alu(Opcode.ADD, SReg(0), Imm(1), Imm(2)))
    program.append(halt())
    with pytest.raises(ValidationError, match="outside a slice"):
        validate_program(program)


def test_hist_operands_forbidden_outside_slices():
    program = Program()
    program.append(alu(Opcode.ADD, Reg(1), HistRef(0, 0), Imm(2)))
    program.append(halt())
    with pytest.raises(ValidationError, match="outside a slice"):
        validate_program(program)


def test_rcmp_must_reference_registered_slice():
    program = Program()
    program.append(rcmp(Reg(2), Reg(1), 0, slice_id=9, target="x"))
    program.add_label("x", 0)
    program.append(halt())
    with pytest.raises(ValidationError, match="unknown"):
        validate_program(program)


def test_rcmp_target_must_match_slice_entry():
    program = minimal_valid_amnesic_program()
    program.add_label("elsewhere", 2)
    bad = rcmp(Reg(2), Reg(1), 0, slice_id=0, target="elsewhere")
    program.instructions[1] = bad
    with pytest.raises(ValidationError, match="does not match slice"):
        validate_program(program)


def test_overlapping_slices_rejected():
    program = minimal_valid_amnesic_program()
    program.append(alu(Opcode.LI, SReg(0), Imm(1)))
    program.append(rtn(1, SReg(0)))
    program.add_label("rslice_1", 4)
    program.slices[1] = SliceRegion(
        slice_id=1, entry_label="rslice_1", start=4, end=7, load_pc=1
    )
    with pytest.raises(ValidationError):
        validate_program(program)


# ----------------------------------------------------------------------
# Edge cases: off-end targets, duplicate labels, operand arity.
# ----------------------------------------------------------------------
def test_branch_target_at_program_end_is_legal():
    """A label bound to pc == len(program) validates; taking the branch

    is a runtime concern (the static analyzer's CFG003 warns about it).
    """
    program = Program()
    program.append(branch(Opcode.BEQ, Reg(1), Imm(0), "end"))
    program.append(halt())
    program.add_label("end", 2)  # one past the last instruction
    validate_program(program)


def test_label_one_past_end_plus_one_is_rejected():
    program = Program()
    program.append(halt())
    program.add_label("beyond", 2)
    with pytest.raises(ValidationError, match="outside program"):
        validate_program(program)


def test_duplicate_label_rejected():
    program = Program()
    program.add_label("loop", 0)
    with pytest.raises(ValidationError, match="duplicate label"):
        program.add_label("loop", 0)


def test_duplicate_slice_id_rejected():
    program = minimal_valid_amnesic_program()
    with pytest.raises(ValidationError, match="duplicate slice id"):
        program.register_slice(
            SliceRegion(
                slice_id=0, entry_label="rslice_0", start=3, end=5, load_pc=1
            )
        )


def test_alu_operand_arity_mismatch_rejected():
    with pytest.raises(ValueError, match="expects 2 sources"):
        alu(Opcode.ADD, Reg(1), Imm(1))  # ADD is binary
    with pytest.raises(ValueError, match="expects 1 sources"):
        alu(Opcode.FNEG, Reg(1), Imm(1), Imm(2))  # FNEG is unary


def test_memory_operand_arity_mismatch_rejected():
    from repro.isa import Instruction

    with pytest.raises(ValueError, match="expects 2 sources"):
        Instruction(Opcode.LD, dest=Reg(1), srcs=(Reg(2),))
    with pytest.raises(ValueError, match="expects 3 sources"):
        Instruction(Opcode.ST, srcs=(Reg(1), Reg(2)))


def test_branch_operand_arity_mismatch_rejected():
    from repro.isa import Instruction

    with pytest.raises(ValueError, match="expects 2 sources"):
        Instruction(Opcode.BEQ, srcs=(Reg(1),), target="somewhere")


def test_amnesic_opcodes_require_a_slice_id():
    from repro.isa import Instruction

    with pytest.raises(ValueError, match="requires a slice_id"):
        Instruction(Opcode.RTN, dest=SReg(0))
