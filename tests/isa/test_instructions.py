"""Instruction constructors and structural checks."""

import pytest

from repro.isa import (
    Imm,
    Instruction,
    Opcode,
    Reg,
    SReg,
    alu,
    branch,
    halt,
    jump,
    li,
    load,
    rcmp,
    rec,
    rtn,
    store,
)


def test_alu_constructor():
    instruction = alu(Opcode.ADD, Reg(1), Reg(2), Imm(3))
    assert instruction.dest == Reg(1)
    assert instruction.srcs == (Reg(2), Imm(3))


def test_alu_rejects_non_compute():
    with pytest.raises(ValueError):
        alu(Opcode.LD, Reg(1), Reg(2), Imm(0))


def test_arity_enforced():
    with pytest.raises(ValueError):
        Instruction(Opcode.ADD, dest=Reg(1), srcs=(Reg(2),))


def test_load_store_constructors():
    ld = load(Reg(1), Reg(2), 4)
    assert ld.opcode is Opcode.LD
    assert ld.srcs == (Reg(2), Imm(4))
    st_ = store(Reg(1), Reg(2), 4)
    assert st_.opcode is Opcode.ST
    assert st_.dest is None


def test_branch_constructor():
    br = branch(Opcode.BEQ, Reg(1), Imm(0), "target")
    assert br.target == "target"
    with pytest.raises(ValueError):
        branch(Opcode.ADD, Reg(1), Reg(2), "x")


def test_amnesic_requires_slice_id():
    with pytest.raises(ValueError):
        Instruction(Opcode.RTN, dest=SReg(0))


def test_rcmp_inherits_load_operands():
    """Paper 3.1.2: RCMP inherits all the load's operands."""
    instruction = rcmp(Reg(3), Reg(4), 8, slice_id=2, target="rslice_2")
    assert instruction.dest == Reg(3)
    assert instruction.srcs == (Reg(4), Imm(8))
    assert instruction.slice_id == 2
    assert instruction.target == "rslice_2"


def test_rec_carries_checkpoint_operands():
    instruction = rec(1, 0, (Reg(5), Reg(6)))
    assert instruction.leaf_id == 0
    assert instruction.srcs == (Reg(5), Reg(6))


def test_rtn_names_result_sreg():
    instruction = rtn(1, SReg(7))
    assert instruction.dest == SReg(7)
    assert instruction.is_slice_instruction


def test_leaf_flag():
    leaf = alu(Opcode.ADD, SReg(1), Imm(1), Imm(2), leaf_id=0)
    assert leaf.is_leaf
    non_leaf = alu(Opcode.ADD, SReg(1), SReg(0), Imm(2))
    assert not non_leaf.is_leaf


def test_register_queries():
    instruction = alu(Opcode.ADD, Reg(1), Reg(2), Imm(5))
    assert list(instruction.register_uses()) == [Reg(2)]
    assert instruction.register_def() == Reg(1)
    assert store(Reg(1), Reg(2), 0).register_def() is None


def test_str_renders_everything():
    text = str(rcmp(Reg(3), Reg(4), 8, slice_id=2, target="rslice_2"))
    assert "rcmp" in text and "r3" in text and "slice=2" in text


def test_simple_constructors():
    assert halt().opcode is Opcode.HALT
    assert jump("x").target == "x"
    assert li(Reg(1), 5).srcs == (Imm(5),)
