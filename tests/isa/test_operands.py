"""Operand model and assembler-spelling parser."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.isa import NUM_REGISTERS, HistRef, Imm, Reg, SReg, is_constant, parse_operand


def test_register_bounds():
    Reg(0)
    Reg(NUM_REGISTERS - 1)
    with pytest.raises(ValueError):
        Reg(NUM_REGISTERS)
    with pytest.raises(ValueError):
        Reg(-1)


def test_sreg_bounds():
    SReg(0)
    with pytest.raises(ValueError):
        SReg(-1)


def test_histref_bounds():
    HistRef(0, 0)
    with pytest.raises(ValueError):
        HistRef(-1, 0)
    with pytest.raises(ValueError):
        HistRef(0, -1)


def test_is_constant():
    assert is_constant(Imm(3))
    assert not is_constant(Reg(1))
    assert not is_constant(SReg(1))


@given(st.integers(min_value=0, max_value=NUM_REGISTERS - 1))
def test_reg_spelling_roundtrip(index):
    assert parse_operand(str(Reg(index))) == Reg(index)


@given(st.integers(min_value=0, max_value=1000))
def test_sreg_spelling_roundtrip(index):
    assert parse_operand(str(SReg(index))) == SReg(index)


@given(st.integers(min_value=-(2 ** 40), max_value=2 ** 40))
def test_int_immediate_roundtrip(value):
    assert parse_operand(str(Imm(value))) == Imm(value)


@given(
    st.integers(min_value=0, max_value=99),
    st.integers(min_value=0, max_value=9),
)
def test_histref_spelling_roundtrip(leaf, slot):
    assert parse_operand(str(HistRef(leaf, slot))) == HistRef(leaf, slot)


def test_float_immediate_parse():
    parsed = parse_operand("#2.5")
    assert parsed == Imm(2.5)


@pytest.mark.parametrize("text", ["", "x5", "r", "rX", "#", "h1", "h.0"])
def test_unparseable_operands(text):
    with pytest.raises(ValueError):
        parse_operand(text)
