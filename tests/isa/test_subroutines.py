"""JAL/JR subroutine support and cross-function recomputation slices."""

import pytest

from repro.compiler import compile_amnesic
from repro.core.execution import run_amnesic, run_classic
from repro.energy import EPITable, EnergyModel
from repro.errors import MachineFault
from repro.isa import Opcode, ProgramBuilder
from repro.machine import CPU

from ..conftest import tiny_config


def make_model():
    return EnergyModel(epi=EPITable.default(), config=tiny_config())


def test_call_and_return():
    b = ProgramBuilder()
    cell = b.reserve(1)
    base, link, x = b.regs("base", "link", "x")
    b.li(base, cell)
    with b.subroutine("double_it", link):
        b.mul(x, x, 2)
    b.li(x, 21)
    b.call("double_it", link)
    b.st(x, base)
    cpu = CPU(b.build(), make_model())
    cpu.run()
    assert cpu.memory.read(cell) == 42


def test_nested_calls_with_distinct_links():
    b = ProgramBuilder()
    cell = b.reserve(1)
    base, link1, link2, x = b.regs("base", "l1", "l2", "x")
    b.li(base, cell)
    with b.subroutine("inner", link2):
        b.add(x, x, 1)
    with b.subroutine("outer", link1):
        b.mul(x, x, 10)
        b.call("inner", link2)
    b.li(x, 4)
    b.call("outer", link1)
    b.st(x, base)
    cpu = CPU(b.build(), make_model())
    cpu.run()
    assert cpu.memory.read(cell) == 41


def test_repeated_calls():
    b = ProgramBuilder()
    cell = b.reserve(1)
    base, link, acc = b.regs("base", "link", "acc")
    b.li(base, cell)
    with b.subroutine("bump", link):
        b.add(acc, acc, 5)
    b.li(acc, 0)
    with b.loop("i", 0, 6):
        b.call("bump", link)
    b.st(acc, base)
    cpu = CPU(b.build(), make_model())
    cpu.run()
    assert cpu.memory.read(cell) == 30


def test_jr_to_garbage_faults():
    from repro.isa import Instruction, Reg

    b = ProgramBuilder()
    x = b.reg("x")
    b.li(x, 10**9)
    b.emit(Instruction(Opcode.JR, srcs=(x,)))
    program = b.build(validate=False)
    with pytest.raises(MachineFault, match="jump-register"):
        CPU(program, make_model()).run()


def test_slice_spans_function_boundary():
    """Paper section 2.1: 'Producer instructions may come from different
    basic blocks or functions.'  A value produced inside a subroutine,
    spilled by the caller and reloaded, must yield a valid slice whose
    nodes include the subroutine's instructions."""
    b = ProgramBuilder()
    slots = b.reserve(8)
    bg = b.data(list(range(64)), read_only=True)
    r_slots, r_bg, link, seed, value, addr, sink = b.regs(
        "slots", "bg", "link", "seed", "value", "addr", "sink"
    )
    with b.subroutine("produce", link):
        # The producer chain lives in this function.
        b.op(Opcode.MOV, value, seed)
        b.op(Opcode.MUL, value, value, 37)
        b.op(Opcode.XOR, value, value, 0x5DEECE66D)
    b.li(r_slots, slots)
    b.li(r_bg, bg)
    b.li(sink, 0)
    with b.loop("i", 0, 10) as i:
        b.mul(seed, i, 2654435761)
        b.call("produce", link)
        b.st(value, r_slots)
        with b.loop("j", 0, 6) as j:
            b.add(addr, j, i)
            b.op(Opcode.AND, addr, addr, 63)
            b.add(addr, addr, r_bg)
            b.ld(addr, addr)
            b.add(sink, sink, addr)
        b.ld(value, r_slots)
        b.add(sink, sink, value)
    program = b.build()
    model = make_model()
    compilation = compile_amnesic(program, model)
    assert compilation.rslices, "the cross-function slice was not found"
    (rslice,) = compilation.rslices
    # The slice's producer pcs lie inside the subroutine body (the
    # three compute instructions right after the entry label).
    subroutine_entry = program.pc_of("produce")
    body = range(subroutine_entry, subroutine_entry + 3)
    assert any(node.pc in body for node in rslice.root.walk())
    # And it runs correctly end to end.
    amnesic = run_amnesic(compilation, "Compiler", model, verify=True)
    classic = run_classic(program, model)
    assert amnesic.cpu.memory.snapshot() == classic.cpu.memory.snapshot()
    assert amnesic.stats.recomputations_fired > 0
