"""Program container behaviour."""

import pytest

from repro.errors import ValidationError
from repro.isa import (
    Imm,
    Opcode,
    Program,
    Reg,
    SliceRegion,
    alu,
    halt,
    li,
    load,
)


def make_program():
    program = Program("test")
    program.append(li(Reg(1), 5))
    program.add_label("loop")
    program.append(load(Reg(2), Reg(1), 0))
    program.append(alu(Opcode.ADD, Reg(3), Reg(2), Imm(1)))
    program.append(halt())
    return program


def test_labels_resolve():
    program = make_program()
    assert program.pc_of("loop") == 1
    assert program.label_at(1) == "loop"
    assert program.label_at(0) is None


def test_duplicate_label_rejected():
    program = make_program()
    with pytest.raises(ValidationError):
        program.add_label("loop")


def test_undefined_label_faults():
    program = make_program()
    with pytest.raises(ValidationError):
        program.pc_of("missing")


def test_static_loads_excludes_slices():
    program = make_program()
    assert program.static_loads() == [1]
    program.register_slice(
        SliceRegion(slice_id=0, entry_label="loop", start=1, end=3, load_pc=0)
    )
    assert program.static_loads() == []


def test_duplicate_slice_rejected():
    program = make_program()
    region = SliceRegion(slice_id=0, entry_label="loop", start=1, end=3, load_pc=0)
    program.register_slice(region)
    with pytest.raises(ValidationError):
        program.register_slice(region)


def test_slice_containing():
    program = make_program()
    region = SliceRegion(slice_id=0, entry_label="loop", start=1, end=3, load_pc=0)
    program.register_slice(region)
    assert program.slice_containing(1) is region
    assert program.slice_containing(2) is region
    assert program.slice_containing(0) is None
    assert program.slice_containing(3) is None


def test_data_segment_read_only_ranges():
    program = make_program()
    program.data.place(100, [1, 2, 3], read_only=True)
    program.data.place(200, [4, 5], read_only=False)
    assert program.data.is_read_only(101)
    assert not program.data.is_read_only(200)
    copied = program.data.copy()
    assert copied.cells == program.data.cells
    assert copied.read_only == program.data.read_only


def test_render_includes_labels_and_pcs():
    text = make_program().render()
    assert "loop:" in text
    assert "ld r2" in text


def test_len_and_iter():
    program = make_program()
    assert len(program) == 4
    assert len(list(program)) == 4
