"""Assembler round-trip, including property-based random programs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AssemblyError
from repro.isa import (
    ARITY,
    Imm,
    Instruction,
    Opcode,
    Program,
    Reg,
    SReg,
    HistRef,
    SliceRegion,
    parse,
    serialise,
)
from ..conftest import build_spill_kernel


def roundtrip(program: Program) -> Program:
    return parse(serialise(program))


def assert_programs_equal(a: Program, b: Program) -> None:
    assert a.name == b.name
    assert len(a) == len(b)
    for left, right in zip(a.instructions, b.instructions):
        assert left.opcode == right.opcode
        assert left.dest == right.dest
        assert left.srcs == right.srcs
        assert left.target == right.target
        assert left.slice_id == right.slice_id
        assert left.leaf_id == right.leaf_id
    assert a.labels == b.labels
    assert a.data.cells == b.data.cells
    assert sorted(a.data.read_only) == sorted(b.data.read_only)
    assert {k: vars(v) for k, v in a.slices.items()} == {
        k: vars(v) for k, v in b.slices.items()
    }


def test_roundtrip_spill_kernel():
    program = build_spill_kernel(iterations=4, gap=2)
    assert_programs_equal(program, roundtrip(program))


def test_roundtrip_with_slices_and_amnesic_ops():
    from repro.isa import rcmp, rec, rtn, alu, halt, li

    program = Program("amn")
    program.append(li(Reg(1), 5))
    program.append(rec(0, 1, (Reg(1),)))
    program.append(rcmp(Reg(2), Reg(1), 0, slice_id=0, target="rslice_0"))
    program.append(halt())
    program.add_label("rslice_0", 4)
    program.append(alu(Opcode.ADD, SReg(0), HistRef(1, 0), Imm(3), leaf_id=1))
    program.append(rtn(0, SReg(0)))
    program.register_slice(
        SliceRegion(slice_id=0, entry_label="rslice_0", start=4, end=6, load_pc=2)
    )
    program.data.place(64, [1.5, 2], read_only=True)
    assert_programs_equal(program, roundtrip(program))


def test_parse_rejects_unknown_opcode():
    with pytest.raises(AssemblyError):
        parse("frobnicate r1, r2")


def test_parse_rejects_bad_arity():
    with pytest.raises(AssemblyError):
        parse("add r1, r2")


def test_parse_rejects_unknown_directive():
    with pytest.raises(AssemblyError):
        parse(".bogus 1 2 3")


def test_parse_reports_line_numbers():
    with pytest.raises(AssemblyError) as excinfo:
        parse("add r1, r2, r3\nbogus r1")
    assert "line 2" in str(excinfo.value)


_compute_ops = [op for op in Opcode if op.is_compute]


@st.composite
def random_instruction(draw):
    opcode = draw(st.sampled_from(_compute_ops))
    arity = ARITY[opcode]
    srcs = tuple(
        draw(
            st.one_of(
                st.builds(Reg, st.integers(0, 31)),
                st.builds(Imm, st.integers(-1000, 1000)),
            )
        )
        for _ in range(arity)
    )
    return Instruction(opcode, dest=Reg(draw(st.integers(1, 31))), srcs=srcs)


@settings(max_examples=50, deadline=None)
@given(st.lists(random_instruction(), min_size=1, max_size=20))
def test_random_program_roundtrip(instructions):
    program = Program("random")
    for instruction in instructions:
        program.append(instruction)
    assert_programs_equal(program, roundtrip(program))


def test_jal_jr_roundtrip():
    from repro.isa import Instruction, Reg

    program = Program("calls")
    program.append(Instruction(Opcode.JAL, dest=Reg(5), srcs=(), target="sub"))
    program.append(Instruction(Opcode.JR, srcs=(Reg(5),)))
    program.add_label("sub", 1)
    assert_programs_equal(program, roundtrip(program))
