"""Gain matrix aggregation."""

import pytest

from repro.analysis import GainMatrix, METRIC_EDP, METRIC_ENERGY, METRIC_TIME
from repro.core import evaluate_policies
from repro.energy import EPITable, EnergyModel

from ..conftest import build_spill_kernel, tiny_config


@pytest.fixture(scope="module")
def matrix():
    model = EnergyModel(epi=EPITable.default(), config=tiny_config())
    results = {
        "k1": evaluate_policies(
            build_spill_kernel(iterations=10, chain=3, gap=6, name="k1"),
            model=model,
        ),
        "k2": evaluate_policies(
            build_spill_kernel(iterations=8, chain=5, gap=4, name="k2"),
            model=model,
        ),
    }
    return GainMatrix(results)


def test_gain_accessors_consistent(matrix):
    for metric in (METRIC_EDP, METRIC_ENERGY, METRIC_TIME):
        row = matrix.row("k1", metric)
        assert len(row) == len(matrix.policies)
        assert row[matrix.policies.index("FLC")] == matrix.gain("k1", "FLC", metric)


def test_mean_and_max(matrix):
    gains = [matrix.gain(b, "Compiler") for b in matrix.benchmarks()]
    assert matrix.mean_gain("Compiler") == pytest.approx(sum(gains) / len(gains))
    assert matrix.max_gain("Compiler") == max(gains)


def test_degradations_lists_negative_gains(matrix):
    for benchmark in matrix.degradations("Compiler"):
        assert matrix.gain(benchmark, "Compiler") < 0


def test_render_contains_benchmarks(matrix):
    text = matrix.render()
    assert "k1" in text and "k2" in text and "Oracle" in text
