"""Break-even bisection (Table 6)."""

import pytest

from repro.analysis import default_r, edp_gain_at_factor, find_breakeven
from repro.energy import EPITable, EnergyModel, paper_energy_model

from ..conftest import build_spill_kernel, tiny_config


def test_bisection_with_injected_gain():
    """Synthetic gain curve: positive below 10, negative above."""
    calls = []

    def gain(factor):
        calls.append(factor)
        return 10.0 - factor

    result = find_breakeven("synthetic", None, None, gain_fn=gain)
    assert result.converged
    assert result.breakeven_factor == pytest.approx(10.0, abs=0.5)


def test_unprofitable_at_default():
    result = find_breakeven("dead", None, None, gain_fn=lambda f: -1.0)
    assert result.breakeven_factor == 1.0
    assert result.gain_at_default_percent == -1.0


def test_cap_reported_as_lower_bound():
    result = find_breakeven("cap", None, None, max_factor=8.0,
                            gain_fn=lambda f: 5.0)
    assert not result.converged
    assert result.breakeven_factor == 8.0


def test_default_r_matches_paper():
    assert default_r(paper_energy_model()) == pytest.approx(0.0086, abs=0.001)


@pytest.mark.integration
def test_real_gain_erodes_as_compute_gets_dearer():
    """On a profitable benchmark the gain must erode when compute EPI
    grows by a large factor (the Table 6 mechanism)."""
    from repro.workloads import get

    model = paper_energy_model()
    program = get("is").instantiate(0.25)
    gain_default = edp_gain_at_factor(program, model, 1.0)
    gain_scaled = edp_gain_at_factor(program, model, 64.0)
    assert gain_default > 5.0
    assert gain_scaled < gain_default
