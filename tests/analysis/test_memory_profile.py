"""Table 5 swapped-load profiles."""

import pytest

from repro.analysis import memory_profile_table, render_memory_profile
from repro.core import evaluate_policies
from repro.energy import EPITable, EnergyModel

from ..conftest import build_spill_kernel, tiny_config


@pytest.fixture(scope="module")
def results():
    model = EnergyModel(epi=EPITable.default(), config=tiny_config())
    return {
        "k": evaluate_policies(
            build_spill_kernel(iterations=12, chain=3, gap=8, name="k"),
            model=model,
        )
    }


def test_rows_sum_to_100(results):
    rows = memory_profile_table(results)
    for row in rows:
        if row.swapped_slice_count:
            total = row.l1_percent + row.l2_percent + row.mem_percent
            assert total == pytest.approx(100.0, abs=0.01)


def test_policies_covered(results):
    rows = memory_profile_table(results)
    assert {row.policy for row in rows} == {"Compiler", "FLC", "LLC"}


def test_render(results):
    rows = memory_profile_table(results)
    text = render_memory_profile(rows, title="T5")
    assert "Compiler" in text and "L1-hit%" in text
