"""Design-space sweeps."""

import dataclasses

import pytest

from repro.analysis.sweeps import (
    SweepPoint,
    cache_capacity_sweep,
    memory_energy_sweep,
    scaled_cache_config,
    scaled_memory_config,
    sweep_table,
)
from repro.energy import EPITable, EnergyModel

from ..conftest import build_spill_kernel, tiny_config


def make_model():
    return EnergyModel(epi=EPITable.default(), config=tiny_config())


def test_scaled_memory_config():
    config = scaled_memory_config(tiny_config(), 2.0)
    assert config.mem_params.read_energy_nj == 2 * 52.14
    assert config.l1_params.latency_ns == 3.66  # latency untouched
    assert config.l1_geometry == tiny_config().l1_geometry


def test_scaled_cache_config_respects_associativity():
    config = scaled_cache_config(tiny_config(), 0.1)
    assert config.l1_geometry.total_lines >= config.l1_geometry.associativity
    assert config.l1_geometry.total_lines % config.l1_geometry.associativity == 0
    doubled = scaled_cache_config(tiny_config(), 2.0)
    assert doubled.l1_geometry.total_lines == 2 * tiny_config().l1_geometry.total_lines


def test_sweep_point_is_immutable():
    point = SweepPoint(parameter=1.0, edp_gain_percent=2.0,
                       energy_gain_percent=3.0, time_gain_percent=4.0)
    with pytest.raises(dataclasses.FrozenInstanceError):
        point.parameter = 9.0


@pytest.mark.integration
def test_sweep_honours_max_instructions():
    """The instruction budget reaches the underlying runs."""
    program = build_spill_kernel(iterations=12, chain=2, gap=8)
    with pytest.raises(Exception, match="[Ii]nstruction"):
        memory_energy_sweep(
            program, make_model(), factors=(1.0,), max_instructions=10
        )


@pytest.mark.integration
def test_memory_energy_sweep_trend():
    """Dearer communication -> bigger recomputation margin."""
    program = build_spill_kernel(iterations=12, chain=2, gap=8)
    points = memory_energy_sweep(
        program, make_model(), factors=(0.5, 1.0, 4.0)
    )
    assert [p.parameter for p in points] == [0.5, 1.0, 4.0]
    assert points[-1].edp_gain_percent >= points[0].edp_gain_percent


@pytest.mark.integration
def test_cache_capacity_sweep_runs():
    program = build_spill_kernel(iterations=10, chain=2, gap=8)
    points = cache_capacity_sweep(program, make_model(), factors=(1.0, 4.0))
    assert len(points) == 2
    table = sweep_table(points, "capacity")
    assert table["capacity"] == [1.0, 4.0]
    assert len(table["edp_gain_percent"]) == 2
