"""Text table rendering."""

from repro.analysis import render_histogram, render_table


def test_table_alignment_and_precision():
    text = render_table(["a", "bb"], [[1.23456, "x"], [10, "yy"]], precision=2)
    lines = text.splitlines()
    assert lines[0].endswith("bb")
    assert "1.23" in text
    assert "10" in text


def test_table_with_title():
    text = render_table(["h"], [[1]], title="My Table")
    assert text.startswith("My Table")


def test_histogram_bars_scale():
    text = render_histogram(["low", "high"], [0.25, 0.75], width=4)
    low_line, high_line = text.splitlines()
    assert low_line.count("#") == 1
    assert high_line.count("#") == 3
    assert "75.0%" in high_line


def test_empty_rows():
    text = render_table(["only"], [])
    assert "only" in text
