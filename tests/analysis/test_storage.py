"""Paper section 3.4 storage bounds."""

import pytest

from repro.analysis.storage import (
    observed_utilisation,
    storage_bounds,
)
from repro.compiler import compile_amnesic
from repro.core import AmnesicCPU, make_policy
from repro.energy import EPITable, EnergyModel
from repro.isa import MAX_RENAME_REQUESTS

from ..conftest import build_spill_kernel, tiny_config


def make_model():
    return EnergyModel(epi=EPITable.default(), config=tiny_config())


@pytest.fixture(scope="module")
def compiled():
    model = make_model()
    program = build_spill_kernel(iterations=12, chain=5, gap=6)
    compilation = compile_amnesic(program, model)
    cpu = AmnesicCPU(compilation.binary, model, make_policy("Compiler"))
    cpu.run()
    return compilation, cpu


def test_bounds_follow_the_paper_formulas(compiled):
    compilation, _ = compiled
    bounds = storage_bounds(compilation.binary)
    assert bounds.slice_count == len(compilation.binary.slices)
    longest = max(info.length for info in compilation.binary.slices.values())
    assert bounds.max_instructions_per_slice == longest
    assert bounds.sfile_entries == longest * MAX_RENAME_REQUESTS
    assert bounds.ibuff_entries == longest
    max_leaves = max(
        len(info.hist_leaf_ids) for info in compilation.binary.slices.values()
    )
    assert bounds.hist_entries == bounds.slice_count * max_leaves


def test_observed_demand_within_bounds(compiled):
    """Section 5.4: practical demand sits far under the loose bounds."""
    compilation, cpu = compiled
    utilisation = observed_utilisation(compilation.binary, cpu)
    assert utilisation.within_bounds
    assert utilisation.sfile_high_water <= utilisation.bounds.sfile_entries
    assert utilisation.hist_high_water <= max(utilisation.bounds.hist_entries, 1)


def test_empty_binary_bounds():
    from repro.compiler.annotate import AmnesicBinary
    from repro.isa import Program

    bounds = storage_bounds(AmnesicBinary(program=Program(), slices={}))
    assert bounds.slice_count == 0
    assert bounds.sfile_entries == 0
    assert bounds.summarise().startswith("0 slices")
