"""Table 4 breakdown computation."""

import pytest

from repro.analysis import breakdown_row, breakdown_table, render_breakdown
from repro.core import evaluate_policies
from repro.energy import EPITable, EnergyModel

from ..conftest import build_spill_kernel, tiny_config


@pytest.fixture(scope="module")
def results():
    model = EnergyModel(epi=EPITable.default(), config=tiny_config())
    return {
        "k": evaluate_policies(
            build_spill_kernel(iterations=10, chain=4, gap=6, name="k"),
            policies=("Compiler",),
            model=model,
        )
    }


def test_row_shape(results):
    row = breakdown_row("k", results["k"]["Compiler"])
    assert row.benchmark == "k"
    # Recomputation adds instructions and removes loads.
    assert row.instruction_increase_percent > 0
    assert row.load_decrease_percent > 0
    # Shares are percentages.
    classic_total = row.classic_load + row.classic_store + row.classic_nonmem
    assert classic_total == pytest.approx(100.0, abs=0.01)
    amnesic_total = (
        row.amnesic_load + row.amnesic_store + row.amnesic_nonmem + row.amnesic_hist
    )
    assert amnesic_total == pytest.approx(100.0, abs=0.01)


def test_amnesic_load_share_drops(results):
    row = breakdown_row("k", results["k"]["Compiler"])
    assert row.amnesic_load < row.classic_load


def test_table_and_render(results):
    rows = breakdown_table(results)
    text = render_breakdown(rows, title="T4")
    assert text.startswith("T4")
    assert "k" in text
