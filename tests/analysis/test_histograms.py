"""Figures 6-8 analyses."""

import pytest

from repro.analysis import (
    locality_histogram,
    nonrecomputable_share,
    render_length_histogram,
    render_locality_histogram,
    render_nc_table,
    slice_length_histogram,
)
from repro.core import evaluate_policies
from repro.energy import EPITable, EnergyModel

from ..conftest import build_spill_kernel, tiny_config


@pytest.fixture(scope="module")
def comparison():
    model = EnergyModel(epi=EPITable.default(), config=tiny_config())
    results = evaluate_policies(
        build_spill_kernel(iterations=12, chain=4, gap=6),
        policies=("Compiler",),
        model=model,
    )
    return results["Compiler"]


def test_slice_length_histogram(comparison):
    histogram = slice_length_histogram("k", comparison.compilation)
    assert histogram.lengths
    fractions = histogram.fractions([0, 5, 10, 100])
    assert sum(fractions) == pytest.approx(1.0)
    assert histogram.share_below(10) >= histogram.share_below(5)
    assert histogram.max_length == max(histogram.lengths)


def test_nonrecomputable_share(comparison):
    share = nonrecomputable_share("k", comparison.compilation)
    assert share.total == len(comparison.compilation.rslices)
    assert 0 <= share.with_nc_percent <= 100


def test_locality_histogram(comparison):
    histogram = locality_histogram("k", comparison)
    assert len(histogram.fractions) == 10
    assert sum(histogram.fractions) == pytest.approx(1.0, abs=1e-9)
    assert 0 <= histogram.weighted_mean_percent() <= 100


def test_renderers(comparison):
    assert "#" in render_length_histogram(
        slice_length_histogram("k", comparison.compilation)
    ) or "%" in render_length_histogram(
        slice_length_histogram("k", comparison.compilation)
    )
    assert "w/ nc" in render_nc_table([nonrecomputable_share("k", comparison.compilation)])
    assert "%" in render_locality_histogram(locality_histogram("k", comparison))
