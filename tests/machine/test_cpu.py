"""Classic CPU interpreter semantics and accounting."""

import pytest

from repro.energy import EPITable, EnergyModel
from repro.errors import ExecutionLimitExceeded, MachineFault
from repro.isa import Imm, Opcode, ProgramBuilder, Reg, rec
from repro.machine import CPU
from repro.trace import DependenceTracker, InstructionEvent

from ..conftest import tiny_config


def make_model():
    return EnergyModel(epi=EPITable.default(), config=tiny_config())


def run_program(program, tracer=None, max_instructions=100_000):
    cpu = CPU(program, make_model(), tracer=tracer, max_instructions=max_instructions)
    cpu.run()
    return cpu


def test_arithmetic_program_computes_expected_result():
    b = ProgramBuilder()
    cell = b.reserve(1)
    x, y, base = b.regs("x", "y", "base")
    b.li(base, cell)
    b.li(x, 6)
    b.li(y, 7)
    b.mul(x, x, y)
    b.add(x, x, 8)
    b.st(x, base)
    cpu = run_program(b.build())
    assert cpu.memory.read(cell) == 50


def test_r0_is_hardwired_zero():
    b = ProgramBuilder()
    cell = b.reserve(1, fill=5)
    base = b.reg("base")
    b.li(base, cell)
    b.emit_r0 = b.program.append  # direct append to write r0
    from repro.isa import alu
    b.program.append(alu(Opcode.LI, Reg(0), Imm(99)))
    b.st(Reg(0), base)
    cpu = run_program(b.build())
    assert cpu.memory.read(cell) == 0


def test_loads_and_stores_account_to_their_groups():
    b = ProgramBuilder()
    arr = b.data([1, 2, 3])
    base, v = b.regs("base", "v")
    b.li(base, arr)
    b.ld(v, base)
    b.st(v, base, offset=1)
    cpu = run_program(b.build())
    assert cpu.account.energy_of("load") > 0
    assert cpu.account.energy_of("store") > 0
    assert cpu.stats.loads_performed == 1
    assert cpu.stats.stores_performed == 1


def test_branch_taken_statistics():
    b = ProgramBuilder()
    x = b.reg("x")
    b.li(x, 0)
    with b.loop("i", 0, 3):
        b.add(x, x, 1)
    cpu = run_program(b.build())
    # Loop exit branch is taken once; back-jumps are JMPs.
    assert cpu.stats.branches_taken == 1


def test_execution_limit():
    b = ProgramBuilder()
    b.label("spin")
    b.jmp("spin")
    program = b.build()
    with pytest.raises(ExecutionLimitExceeded):
        run_program(program, max_instructions=100)


def test_non_integer_address_faults():
    b = ProgramBuilder()
    f, v = b.regs("f", "v")
    b.li(f, 1.5)
    b.ld(v, f)
    with pytest.raises(MachineFault):
        run_program(b.build())


def test_amnesic_opcode_faults_on_classic_cpu():
    b = ProgramBuilder()
    b.emit(rec(0, 0, (Reg(1),)))
    program = b.build(validate=False)
    with pytest.raises(MachineFault, match="classic"):
        run_program(program)


def test_jr_one_past_the_end_faults_at_the_jump():
    # Regression: the bounds check used to accept target == len(program),
    # deferring the failure to the next fetch as a misleading "ran off
    # the end" fault.  The jump itself must be rejected, naming the JR.
    b = ProgramBuilder()
    t = b.reg("t")
    b.li(t, 3)  # == len(instructions): one past the final HALT
    b.ret(t)
    b.halt()
    program = b.build()
    assert len(program.instructions) == 3
    with pytest.raises(MachineFault, match="jump-register") as excinfo:
        run_program(program)
    assert excinfo.value.pc == 1  # the JR, not the fetch after it
    assert "valid pcs are 0..2" in str(excinfo.value)


def test_jr_to_the_last_valid_pc_still_works():
    # The boundary fix must not over-reject: len - 1 stays legal.
    b = ProgramBuilder()
    t, x = b.regs("t", "x")
    b.li(t, 3)  # pc of the final HALT
    b.ret(t)
    b.li(x, 99)  # skipped by the jump
    b.halt()
    program = b.build()
    assert len(program.instructions) == 4
    cpu = run_program(program)
    assert cpu.halted
    assert cpu.registers[x.index] == 0


def test_step_enforces_the_instruction_budget():
    # Regression: step() used to skip the dynamic-instruction budget, so
    # direct single-stepping callers could livelock past max_instructions.
    b = ProgramBuilder()
    b.label("spin")
    b.jmp("spin")
    cpu = CPU(b.build(), make_model(), max_instructions=10)
    with pytest.raises(ExecutionLimitExceeded):
        for _ in range(1000):
            cpu.step()
    assert cpu.dynamic_count == 10


def test_pc_off_the_end_faults():
    from repro.isa import Program, li as make_li
    program = Program()
    program.append(make_li(Reg(1), 1))  # no HALT
    with pytest.raises(MachineFault, match="ran off"):
        run_program(program)


class CountingTracer:
    def __init__(self):
        self.events = []

    def on_instruction(self, event: InstructionEvent):
        self.events.append(event)


def test_event_indices_are_dense():
    b = ProgramBuilder()
    arr = b.data([1, 2, 3, 4])
    base, v, acc = b.regs("base", "v", "acc")
    b.li(base, arr)
    with b.loop("i", 0, 4) as i:
        b.add(v, base, i)
        b.ld(v, v)
        b.add(acc, acc, v)
    tracer = CountingTracer()
    cpu = run_program(b.build(), tracer=tracer)
    assert len(tracer.events) == cpu.dynamic_count
    assert [event.index for event in tracer.events] == list(range(len(tracer.events)))


def test_dependence_tracker_attaches_cleanly():
    b = ProgramBuilder()
    arr = b.data([5])
    base, v = b.regs("base", "v")
    b.li(base, arr)
    b.ld(v, base)
    tracker = DependenceTracker()
    run_program(b.build(), tracer=tracker)
    loads = tracker.dynamic_loads()
    assert len(loads) == 1
    assert loads[0].result == 5


def test_writeback_energy_charged_on_finalize():
    b = ProgramBuilder()
    arr = b.reserve(64)
    base, v = b.regs("base", "v")
    b.li(base, arr)
    with b.loop("i", 0, 64) as i:
        b.add(v, base, i)
        b.st(i, v)
    # Re-walk to force dirty evictions all the way out.
    with b.loop("j", 0, 64) as j:
        b.add(v, base, j)
        b.ld(v, v)
    cpu = run_program(b.build())
    assert cpu.account.energy_of("writeback") > 0


def test_total_time_accumulates():
    b = ProgramBuilder()
    x = b.reg("x")
    b.li(x, 1)
    cpu = run_program(b.build())
    assert cpu.account.total_time_ns > 0
