"""Functional memory semantics."""

import pytest

from repro.errors import MemoryFault
from repro.isa import DataSegment
from repro.machine import Memory


def make_memory():
    data = DataSegment()
    data.place(100, [1, 2.5, 3], read_only=False)
    data.place(200, [7, 8], read_only=True)
    return Memory(data)


def test_read_initial_values():
    memory = make_memory()
    assert memory.read(100) == 1
    assert memory.read(101) == 2.5
    assert memory.read(201) == 8


def test_unmapped_read_faults():
    with pytest.raises(MemoryFault):
        make_memory().read(999)


def test_write_and_read_back():
    memory = make_memory()
    memory.write(100, 42)
    assert memory.read(100) == 42


def test_write_to_read_only_faults():
    memory = make_memory()
    with pytest.raises(MemoryFault):
        memory.write(200, 0)


def test_write_can_extend_mapping():
    memory = make_memory()
    memory.write(500, 9)
    assert memory.read(500) == 9
    assert memory.is_mapped(500)


def test_snapshot_is_a_copy():
    memory = make_memory()
    snapshot = memory.snapshot()
    memory.write(100, 0)
    assert snapshot[100] == 1


def test_read_block():
    assert make_memory().read_block(200, 2) == [7, 8]


def test_len_counts_cells():
    assert len(make_memory()) == 5
