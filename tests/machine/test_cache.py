"""Set-associative LRU cache model, including a reference-model property."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine import Cache, CacheGeometry


def small_cache(lines=4, ways=2, line_words=4):
    return Cache(CacheGeometry(total_lines=lines, associativity=ways,
                               line_words=line_words))


def test_geometry_validation():
    with pytest.raises(ValueError):
        CacheGeometry(total_lines=3, associativity=2)
    with pytest.raises(ValueError):
        CacheGeometry(total_lines=4, associativity=2, line_words=3)
    with pytest.raises(ValueError):
        CacheGeometry(total_lines=0, associativity=1)


def test_cache_guards_against_unvalidated_geometry():
    """Even a geometry smuggled past __post_init__ cannot corrupt mapping."""
    geometry = CacheGeometry(total_lines=4, associativity=2, line_words=4)
    object.__setattr__(geometry, "line_words", 3)  # bypass validation
    with pytest.raises(ValueError, match="power of two.*got 3"):
        Cache(geometry)


@pytest.mark.parametrize("line_words", [3, 5, 6, 7, 12, 100])
def test_non_power_of_two_line_words_rejected(line_words):
    with pytest.raises(ValueError, match="power of two"):
        CacheGeometry(total_lines=4, associativity=2, line_words=line_words)


@pytest.mark.parametrize("line_words", [0, -1, -8])
def test_non_positive_line_words_rejected(line_words):
    with pytest.raises(ValueError, match="positive"):
        CacheGeometry(total_lines=4, associativity=2, line_words=line_words)


@pytest.mark.parametrize("smuggled", [0, 6])
def test_cache_guard_rejects_smuggled_degenerate_line_words(smuggled):
    """Size 0 and non-power sizes fail the shift guard, not map wrongly.

    ``line_words=0`` computes a negative shift, which must surface as a
    loud ValueError rather than silently mis-mapping every address.
    """
    geometry = CacheGeometry(total_lines=4, associativity=2, line_words=4)
    object.__setattr__(geometry, "line_words", smuggled)
    with pytest.raises(ValueError):
        Cache(geometry)


def test_single_word_lines_are_valid_and_map_identity():
    """line_words=1 is the power-of-two floor: every word is its own line."""
    cache = small_cache(lines=4, ways=2, line_words=1)
    for address in range(8):
        assert cache.line_address(address) == address
    cache.fill(0)
    assert cache.lookup(0)
    assert not cache.lookup(1)  # the neighbouring word is a separate line


def test_single_line_cache_degenerates_to_one_slot():
    geometry = CacheGeometry(total_lines=1, associativity=1, line_words=4)
    assert geometry.sets == 1
    cache = Cache(geometry)
    cache.fill(0)
    assert cache.contains(0)
    evicted = cache.fill(4)  # next line displaces the only slot
    assert evicted is not None and evicted.line_address == 0
    assert not cache.contains(0)


def test_fully_associative_geometry_has_one_set():
    geometry = CacheGeometry(total_lines=4, associativity=4, line_words=2)
    assert geometry.sets == 1
    cache = Cache(geometry)
    for line in range(4):
        cache.fill(line * 2)
    assert all(cache.contains(line * 2) for line in range(4))
    evicted = cache.fill(4 * 2)
    assert evicted.line_address == 0  # true LRU across the single set


def test_line_mapping():
    cache = small_cache(line_words=4)
    assert cache.line_address(0) == cache.line_address(3)
    assert cache.line_address(3) != cache.line_address(4)


def test_miss_then_hit_after_fill():
    cache = small_cache()
    assert not cache.lookup(0)
    cache.fill(0)
    assert cache.lookup(0)
    assert cache.stats.hits == 1
    assert cache.stats.misses == 1


def test_lru_eviction_order():
    cache = small_cache(lines=4, ways=2)  # 2 sets
    # Addresses mapping to set 0: line addresses 0, 2, 4 (even).
    cache.fill(0 * 4)
    cache.fill(2 * 4)
    cache.lookup(0 * 4)  # promote line 0 to MRU
    evicted = cache.fill(4 * 4)
    assert evicted is not None
    assert evicted.line_address == 2  # line 2 was LRU


def test_dirty_writeback_counted():
    cache = small_cache(lines=4, ways=2)
    cache.fill(0, dirty=True)
    cache.fill(2 * 4)
    evicted = cache.fill(4 * 4)
    assert evicted.dirty
    assert cache.stats.writebacks == 1


def test_probe_has_no_lru_side_effect():
    cache = small_cache(lines=4, ways=2)
    cache.fill(0 * 4)
    cache.fill(2 * 4)
    cache.probe(0 * 4)  # would promote under lookup(); must not here
    evicted = cache.fill(4 * 4)
    assert evicted.line_address == 0  # still LRU despite the probe
    assert cache.stats.probes == 1
    assert cache.stats.hits == 0


def test_contains_is_pure():
    cache = small_cache()
    cache.fill(0)
    before = cache.stats.probes
    assert cache.contains(0)
    assert cache.stats.probes == before


def test_mark_dirty_and_invalidate():
    cache = small_cache()
    cache.fill(0)
    cache.mark_dirty(0)
    assert cache.resident_lines()[cache.line_address(0)] is True
    assert cache.invalidate(0)
    assert not cache.contains(0)
    assert not cache.invalidate(0)


def test_fill_existing_line_keeps_dirty_bit():
    cache = small_cache()
    cache.fill(0, dirty=True)
    cache.fill(0, dirty=False)
    assert cache.resident_lines()[cache.line_address(0)] is True


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 63), st.booleans()), max_size=200))
def test_matches_reference_lru_model(accesses):
    """The cache must agree with a straightforward reference LRU model."""
    geometry = CacheGeometry(total_lines=8, associativity=2, line_words=4)
    cache = Cache(geometry)
    reference = {s: [] for s in range(geometry.sets)}  # set -> [line,...] LRU order

    for address, dirty in accesses:
        line = address >> 2
        set_index = line % geometry.sets
        expected_hit = line in reference[set_index]
        assert cache.lookup(address) == expected_hit
        cache.fill(address, dirty=dirty)
        if expected_hit:
            reference[set_index].remove(line)
        elif len(reference[set_index]) >= geometry.associativity:
            reference[set_index].pop(0)
        reference[set_index].append(line)

    resident = set(cache.resident_lines())
    assert resident == {line for lines in reference.values() for line in lines}
