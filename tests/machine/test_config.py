"""Machine configuration invariants."""

import pytest

from repro.machine import CacheGeometry, Level, default_config, paper_geometry


def test_paper_geometry_matches_table3():
    config = paper_geometry()
    assert config.l1_geometry.capacity_words * 8 == 32 * 1024  # 32KB
    assert config.l2_geometry.capacity_words * 8 == 512 * 1024  # 512KB
    assert config.l1_params.read_energy_nj == 0.88
    assert config.l2_params.read_energy_nj == 7.72
    assert config.mem_params.read_energy_nj == 52.14
    assert config.mem_params.write_energy_nj == 62.14
    assert config.frequency_ghz == 1.09


def test_default_config_preserves_energies():
    config = default_config()
    paper = paper_geometry()
    assert config.l1_params == paper.l1_params
    assert config.l2_params == paper.l2_params
    assert config.mem_params == paper.mem_params
    # Scaled geometry keeps the ratio-of-16 between L2 and L1 overall size.
    assert config.l2_geometry.total_lines // config.l1_geometry.total_lines == 8


def test_cumulative_load_energy():
    config = paper_geometry()
    assert config.load_energy_nj(Level.L1) == 0.88
    assert config.load_energy_nj(Level.L2) == 0.88 + 7.72
    assert config.load_energy_nj(Level.MEM) == 0.88 + 7.72 + 52.14


def test_load_latency_per_level():
    config = paper_geometry()
    assert config.load_latency_ns(Level.L1) == 3.66
    assert config.load_latency_ns(Level.L2) == 24.77
    assert config.load_latency_ns(Level.MEM) == 100.0


def test_cycle_time():
    assert abs(paper_geometry().cycle_ns - 1 / 1.09) < 1e-12


def test_level_depth_ordering():
    assert Level.L1.depth < Level.L2.depth < Level.MEM.depth


def test_geometry_sets():
    geometry = CacheGeometry(total_lines=16, associativity=4)
    assert geometry.sets == 4
    assert geometry.capacity_words == 128


def test_geometry_rejects_nonpositive_fields_with_values():
    with pytest.raises(ValueError, match="total_lines=0"):
        CacheGeometry(total_lines=0, associativity=1)
    with pytest.raises(ValueError, match="associativity=-2"):
        CacheGeometry(total_lines=16, associativity=-2)
    with pytest.raises(ValueError, match="line_words=0"):
        CacheGeometry(total_lines=16, associativity=4, line_words=0)


def test_geometry_rejects_indivisible_associativity_with_values():
    with pytest.raises(ValueError, match=r"total_lines \(10\).*associativity \(4\)"):
        CacheGeometry(total_lines=10, associativity=4)


def test_geometry_rejects_non_power_of_two_line_words():
    """line_words feeds a shift-based line mapping: power of two or bust."""
    with pytest.raises(ValueError, match="power of two.*got 6"):
        CacheGeometry(total_lines=16, associativity=4, line_words=6)
    # Powers of two other than the default 8 are fine.
    assert CacheGeometry(total_lines=16, associativity=4, line_words=16)
