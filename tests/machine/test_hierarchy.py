"""Memory hierarchy walk/fill/probe/residence semantics."""

from repro.machine import Level, MemoryHierarchy

from ..conftest import tiny_config


def make_hierarchy():
    return MemoryHierarchy(tiny_config())


def test_first_access_serviced_by_memory():
    hierarchy = make_hierarchy()
    access = hierarchy.load(0x100)
    assert access.level is Level.MEM
    # Cumulative energy: L1 lookup + L2 access + DRAM read.
    assert access.energy_nj == 0.88 + 7.72 + 52.14
    assert access.latency_ns == 100.0


def test_second_access_hits_l1():
    hierarchy = make_hierarchy()
    hierarchy.load(0x100)
    access = hierarchy.load(0x100)
    assert access.level is Level.L1
    assert access.energy_nj == 0.88
    assert access.latency_ns == 3.66


def test_l2_hit_after_l1_eviction():
    hierarchy = make_hierarchy()
    hierarchy.load(0x100)
    # Evict from L1 (4 lines, 2-way, line_words=4) with conflicting lines.
    for index in range(1, 5):
        hierarchy.load(0x100 + index * 8)  # same set, different lines
    access = hierarchy.load(0x100)
    assert access.level is Level.L2
    assert access.energy_nj == 0.88 + 7.72


def test_store_write_allocates_and_dirties():
    hierarchy = make_hierarchy()
    access = hierarchy.store(0x100)
    assert access.is_store
    assert access.level is Level.MEM
    # Later eviction of the dirty line must add write-back energy.
    for index in range(1, 6):
        hierarchy.load(0x100 + index * 8)
    assert hierarchy.stats.writeback_energy_nj > 0


def test_load_fractions():
    hierarchy = make_hierarchy()
    hierarchy.load(0x100)
    hierarchy.load(0x100)
    fractions = hierarchy.stats.load_fractions()
    assert fractions[Level.MEM] == 0.5
    assert fractions[Level.L1] == 0.5


def test_probe_levels_and_costs():
    hierarchy = make_hierarchy()
    hierarchy.load(0x100)
    assert hierarchy.probe(0x100, through=Level.L1) is Level.L1
    assert hierarchy.probe(0x999000, through=Level.L1) is None
    assert hierarchy.probe(0x999000, through=Level.L2) is None
    flc_cost = hierarchy.probe_cost(None, through=Level.L1)
    llc_cost = hierarchy.probe_cost(None, through=Level.L2)
    assert flc_cost.energy_nj == 0.88
    assert llc_cost.energy_nj == 0.88 + 7.72
    assert llc_cost.latency_ns > flc_cost.latency_ns


def test_probe_does_not_fill():
    hierarchy = make_hierarchy()
    assert hierarchy.probe(0x200, through=Level.L2) is None
    assert hierarchy.residence(0x200) is Level.MEM


def test_residence_is_side_effect_free():
    hierarchy = make_hierarchy()
    hierarchy.load(0x100)
    before_hits = hierarchy.l1.stats.hits
    assert hierarchy.residence(0x100) is Level.L1
    assert hierarchy.l1.stats.hits == before_hits


def test_l1_eviction_writes_back_into_l2():
    hierarchy = make_hierarchy()
    hierarchy.store(0x100)
    for index in range(1, 5):
        hierarchy.load(0x100 + index * 8)
    # The dirty line must now live in L2.
    assert hierarchy.residence(0x100) is Level.L2


def test_llc_probe_that_stops_at_l1_costs_one_lookup():
    """Probing through L2 but hitting L1 pays only the L1 lookup."""
    hierarchy = make_hierarchy()
    hierarchy.load(0x100)
    found = hierarchy.probe(0x100, through=Level.L2)
    assert found is Level.L1
    cost = hierarchy.probe_cost(found, through=Level.L2)
    assert cost.energy_nj == 0.88
