"""Fast backend: exact equivalence with the classic interpreter.

The fast backend predecodes the program into per-pc closures and runs a
locals-hoisted dispatch loop, but its contract is that nothing
observable changes: architectural state, RunStats, cache state, the
per-group energy breakdown, modeled time, traced event streams, and
fault type/message/pc must all be byte-for-byte the classic ones.
These tests pin that contract on hand-written programs; the fuzz
oracle's :func:`repro.fuzz.check_backend_equivalence` pins it on
generated ones.
"""

import dataclasses

import pytest

from repro.energy import EPITable, EnergyModel
from repro.errors import (
    ArithmeticFault,
    ExecutionLimitExceeded,
    MachineFault,
    ReproError,
)
from repro.isa import Opcode, ProgramBuilder
from repro.machine import CPU, FastCPU
from repro.trace import InstructionEvent

from ..conftest import build_spill_kernel, tiny_config


def make_model():
    return EnergyModel(epi=EPITable.default(), config=tiny_config())


class RecordingTracer:
    def __init__(self):
        self.events = []

    def on_instruction(self, event: InstructionEvent):
        self.events.append(event)


def run_pair(program, max_instructions=100_000, tracer_factory=None):
    """Run *program* under both backends; return (classic, fast) CPUs.

    Faults must agree exactly (type, message, pc) or the pair is the
    failure; a matching fault is re-raised by the caller's pytest.raises.
    """
    outcomes = []
    for cls in (CPU, FastCPU):
        tracer = tracer_factory() if tracer_factory else None
        cpu = cls(
            program, make_model(), tracer=tracer,
            max_instructions=max_instructions,
        )
        error = None
        try:
            cpu.run()
        except ReproError as caught:
            error = caught
        outcomes.append((cpu, tracer, error))
    (classic, _, classic_err), (fast, _, fast_err) = outcomes
    if (classic_err is None) != (fast_err is None):
        raise AssertionError(
            f"fault divergence: classic {classic_err!r}, fast {fast_err!r}"
        )
    if classic_err is not None:
        assert type(classic_err) is type(fast_err)
        assert str(classic_err) == str(fast_err)
        assert getattr(classic_err, "pc", None) == getattr(fast_err, "pc", None)
        raise classic_err
    return outcomes[0], outcomes[1]


def assert_state_equal(classic, fast):
    assert classic.registers == fast.registers
    assert classic.memory.snapshot() == fast.memory.snapshot()
    assert classic.pc == fast.pc
    assert classic.dynamic_count == fast.dynamic_count
    assert dataclasses.asdict(classic.stats) == dataclasses.asdict(fast.stats)
    assert dataclasses.asdict(classic.hierarchy.stats) == dataclasses.asdict(
        fast.hierarchy.stats
    )
    assert classic.hierarchy.l1.observe() == fast.hierarchy.l1.observe()
    assert classic.hierarchy.l2.observe() == fast.hierarchy.l2.observe()
    # Exact floats: the fast backend must charge in classic order.
    assert classic.account.breakdown() == fast.account.breakdown()
    assert classic.account.total_time_ns == fast.account.total_time_ns


def test_spill_kernel_is_bit_identical():
    program = build_spill_kernel(iterations=12, chain=3, gap=7)
    (classic, _, _), (fast, _, _) = run_pair(program)
    assert_state_equal(classic, fast)
    assert fast.halted


def test_branchy_arithmetic_is_bit_identical():
    b = ProgramBuilder()
    arr = b.data(list(range(32)))
    base, v, acc = b.regs("base", "v", "acc")
    b.li(base, arr)
    b.li(acc, 0)
    with b.loop("i", 0, 32) as i:
        b.add(v, base, i)
        b.ld(v, v)
        b.op(Opcode.AND, v, v, 7)
        with b.when(Opcode.BNE, v, 0):
            b.add(acc, acc, v)
    out = b.reserve(1)
    r_out = b.reg("out")
    b.li(r_out, out)
    b.st(acc, r_out)
    (classic, _, _), (fast, _, _) = run_pair(b.build())
    assert_state_equal(classic, fast)


def test_traced_runs_emit_identical_event_streams():
    program = build_spill_kernel(iterations=6, chain=2, gap=4)
    (classic, ct, _), (fast, ft, _) = run_pair(
        program, tracer_factory=RecordingTracer
    )
    assert_state_equal(classic, fast)
    assert len(ct.events) == len(ft.events)
    for left, right in zip(ct.events, ft.events):
        assert left == right


def test_jr_one_past_the_end_fault_parity():
    b = ProgramBuilder()
    t = b.reg("t")
    b.li(t, 3)
    b.ret(t)
    b.halt()
    with pytest.raises(MachineFault, match="jump-register"):
        run_pair(b.build())


def test_off_the_end_fault_parity():
    from repro.isa import Program, Reg, li as make_li

    program = Program()
    program.append(make_li(Reg(1), 1))  # no HALT
    with pytest.raises(MachineFault, match="ran off"):
        run_pair(program)


def test_budget_fault_parity():
    b = ProgramBuilder()
    b.label("spin")
    b.jmp("spin")
    with pytest.raises(ExecutionLimitExceeded):
        run_pair(b.build(), max_instructions=100)


def test_division_by_zero_fault_parity():
    b = ProgramBuilder()
    x, y = b.regs("x", "y")
    b.li(x, 5)
    b.li(y, 0)
    b.op(Opcode.DIV, x, x, y)
    b.halt()
    with pytest.raises(ArithmeticFault):
        run_pair(b.build())


def test_budget_fault_counts_match():
    b = ProgramBuilder()
    b.label("spin")
    b.jmp("spin")
    program = b.build()
    cpus = []
    for cls in (CPU, FastCPU):
        cpu = cls(program, make_model(), max_instructions=64)
        with pytest.raises(ExecutionLimitExceeded):
            cpu.run()
        cpus.append(cpu)
    classic, fast = cpus
    # Even on the fault path the deferred counters must have flushed.
    assert classic.dynamic_count == fast.dynamic_count == 64
    assert dataclasses.asdict(classic.stats) == dataclasses.asdict(fast.stats)
    assert classic.pc == fast.pc


def test_decode_is_cached_across_runs():
    program = build_spill_kernel(iterations=2, chain=2, gap=2)
    cpu = FastCPU(program, make_model())
    first = cpu._decoded()
    assert cpu._decoded() is first


def test_profiled_fast_run_reconciles():
    # With a profiler attached the fast backend hands the run to the
    # classic instrumented loop; totals must still reconcile.
    from repro.telemetry.profiler import HotLoopProfiler, reconcile
    from repro.telemetry.runtime import telemetry_session

    program = build_spill_kernel(iterations=8, chain=3, gap=5)
    profiler = HotLoopProfiler(sample_every=7)
    with telemetry_session(profiler=profiler):
        fast = FastCPU(program, make_model())
        fast.run()
    classic = CPU(program, make_model())
    classic.run()
    assert_state_equal(classic, fast)
    result = reconcile(
        profiler, fast.stats.dynamic_instructions,
        fast.account.total_energy_nj,
    )
    assert result["reconciled"], result


def test_timeline_fast_run_matches_classic():
    # A timeline request also falls back to the classic loop (per
    # instruction capture checks); state must be unchanged.
    from repro.telemetry.runtime import telemetry_session

    program = build_spill_kernel(iterations=6, chain=2, gap=3)
    with telemetry_session(timeline_window=50) as telemetry:
        with telemetry.span("test"):
            fast = FastCPU(program, make_model())
            fast.run()
    classic = CPU(program, make_model())
    classic.run()
    assert_state_equal(classic, fast)


def test_fast_backend_is_actually_faster():
    # Not a benchmark — a smoke guard that the predecoded loop beats the
    # classic interpreter on a hot loop by a sane margin.  The real >=5x
    # acceptance number comes from ``repro bench`` (see docs/BENCH).
    import time

    b = ProgramBuilder()
    arr = b.data(list(range(64)))
    base, v, acc = b.regs("base", "v", "acc")
    b.li(base, arr)
    with b.loop("i", 0, 20_000) as i:
        b.op(Opcode.AND, v, i, 63)
        b.add(v, v, base)
        b.ld(v, v)
        b.add(acc, acc, v)
    program = b.build()

    def timed(cls):
        cpu = cls(program, make_model(), max_instructions=10_000_000)
        start = time.perf_counter()
        cpu.run()
        return time.perf_counter() - start, cpu

    classic_s, classic = timed(CPU)
    fast_s, fast = timed(FastCPU)
    assert_state_equal(classic, fast)
    # Conservative floor: locally the ratio is ~5x; keep CI noise-proof.
    assert fast_s < classic_s, (
        f"fast backend slower than classic: {fast_s:.3f}s vs {classic_s:.3f}s"
    )
