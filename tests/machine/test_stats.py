"""Run-statistics bookkeeping."""

from repro.isa import Category
from repro.machine import Level, RunStats


def test_count_instruction():
    stats = RunStats()
    stats.count_instruction(Category.INT_ALU)
    stats.count_instruction(Category.INT_ALU)
    stats.count_instruction(Category.LOAD)
    assert stats.dynamic_instructions == 3
    assert stats.by_category[Category.INT_ALU] == 2
    assert stats.compute_count == 2


def test_swapped_load_profile():
    stats = RunStats()
    stats.count_swapped_load(Level.L1)
    stats.count_swapped_load(Level.MEM)
    stats.count_swapped_load(Level.MEM)
    profile = stats.swapped_load_profile()
    assert profile[Level.L1] == 1 / 3
    assert profile[Level.MEM] == 2 / 3
    assert stats.recomputations_fired == 3


def test_empty_profile_is_zero():
    profile = RunStats().swapped_load_profile()
    assert all(value == 0.0 for value in profile.values())


def test_merge_accumulates_everything():
    a = RunStats()
    a.count_instruction(Category.INT_ALU)
    a.loads_performed = 3
    a.recomputation_aborts = 1
    a.count_swapped_load(Level.L2)
    b = RunStats()
    b.count_instruction(Category.FP_MUL)
    b.loads_performed = 2
    b.hist_reads = 7
    a.merge(b)
    assert a.dynamic_instructions == 2
    assert a.loads_performed == 5
    assert a.hist_reads == 7
    assert a.recomputation_aborts == 1
    assert a.swapped_load_levels[Level.L2] == 1
