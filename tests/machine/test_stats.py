"""Run-statistics bookkeeping."""

import dataclasses
from collections import Counter

import pytest

from repro.isa import Category
from repro.machine import Level, RunStats


def test_count_instruction():
    stats = RunStats()
    stats.count_instruction(Category.INT_ALU)
    stats.count_instruction(Category.INT_ALU)
    stats.count_instruction(Category.LOAD)
    assert stats.dynamic_instructions == 3
    assert stats.by_category[Category.INT_ALU] == 2
    assert stats.compute_count == 2


def test_swapped_load_profile():
    stats = RunStats()
    stats.count_swapped_load(Level.L1)
    stats.count_swapped_load(Level.MEM)
    stats.count_swapped_load(Level.MEM)
    profile = stats.swapped_load_profile()
    assert profile[Level.L1] == 1 / 3
    assert profile[Level.MEM] == 2 / 3
    assert stats.recomputations_fired == 3


def test_empty_profile_is_zero():
    profile = RunStats().swapped_load_profile()
    assert all(value == 0.0 for value in profile.values())


def test_merge_accumulates_everything():
    a = RunStats()
    a.count_instruction(Category.INT_ALU)
    a.loads_performed = 3
    a.recomputation_aborts = 1
    a.count_swapped_load(Level.L2)
    b = RunStats()
    b.count_instruction(Category.FP_MUL)
    b.loads_performed = 2
    b.hist_reads = 7
    a.merge(b)
    assert a.dynamic_instructions == 2
    assert a.loads_performed == 5
    assert a.hist_reads == 7
    assert a.recomputation_aborts == 1
    assert a.swapped_load_levels[Level.L2] == 1


def _fully_populated_stats() -> RunStats:
    """A RunStats with every field (discovered via dataclasses.fields)
    holding a non-default value, so a field silently dropped by merge
    is guaranteed to show up as an unchanged counter."""
    stats = RunStats()
    for field in dataclasses.fields(RunStats):
        value = getattr(stats, field.name)
        if isinstance(value, Counter):
            value[Category.INT_ALU if field.name == "by_category" else Level.L2] = 3
        elif isinstance(value, int):
            setattr(stats, field.name, 3)
        else:  # a new field type must be taught to this test AND to merge
            pytest.fail(
                f"RunStats gained field {field.name!r} of unmergeable type "
                f"{type(value).__name__}; update merge() and this test"
            )
    return stats


def test_merge_cannot_silently_drop_a_field():
    """Every field doubles after self-merge; a missed one stays at 3.

    This is the regression guard for the old hand-maintained merge list:
    it enumerates fields via dataclasses.fields, so a counter added to
    RunStats later is checked automatically with no edit here.
    """
    stats = _fully_populated_stats()
    stats.merge(_fully_populated_stats())
    for field in dataclasses.fields(RunStats):
        value = getattr(stats, field.name)
        if isinstance(value, Counter):
            assert sum(value.values()) == 6, f"field {field.name} not merged"
        else:
            assert value == 6, f"field {field.name} not merged"


def test_merge_rejects_unmergeable_field_types():
    stats = RunStats()
    stats.loads_performed = "not a number"  # simulate a bad future field
    with pytest.raises(TypeError):
        stats.merge(RunStats())
