"""Batched fast backend: fused regions, proven byte-identical.

The batched backend consumes the static region analysis
(``repro.staticcheck.regions``) at predecode time and fuses each
batchable straight-line run into a single dispatch.  Its contract is
the fast backend's contract, unchanged: architectural state, RunStats,
cache state, energy/time accounts, and fault type/message/pc must all
be byte-for-byte the classic interpreter's — including when a fault or
the instruction budget lands *inside* a fused region, when a JR enters
a region mid-run, and when a region runs to the very end of the
program.  These tests pin that contract on hand-built adversarial
programs and on every suite kernel; they also prove the test layer has
teeth by running the deliberately broken late-flush batcher
(``repro.fuzz.faults``) and asserting both this suite and the
differential oracle catch it.
"""

import dataclasses
import json
import pickle
from pathlib import Path

import pytest

from repro.energy import EPITable, EnergyModel
from repro.errors import (
    ArithmeticFault,
    ExecutionLimitExceeded,
    MachineFault,
    MemoryFault,
    ReproError,
)
from repro.fuzz import (
    LateFlushBatchedAmnesicCPU,
    LateFlushBatchedCPU,
    check_backend_equivalence,
    default_fuzz_model,
    load_entry,
    materialize,
)
from repro.fuzz.corpus import corpus_paths
from repro.isa import Opcode, ProgramBuilder
from repro.machine import CPU, BatchedFastCPU
from repro.machine.fastpath import ENV_REGION_ARTIFACTS
from repro.staticcheck import RegionArtifactMismatch, analyze_regions
from repro.staticcheck.regions import write_region_artifact
from repro.workloads import all_specs

from ..conftest import tiny_config

CORPUS_DIR = Path(__file__).resolve().parent.parent / "corpus"


def make_model():
    return EnergyModel(epi=EPITable.default(), config=tiny_config())


def run_both(program, max_instructions=100_000, batched_cls=BatchedFastCPU):
    """Run *program* classic and batched; assert fault parity.

    Unlike ``test_fastpath.run_pair`` this returns both outcomes even on
    the fault path (budget sweeps assert state after matching faults).
    """
    outcomes = []
    for cls in (CPU, batched_cls):
        cpu = cls(program, make_model(), max_instructions=max_instructions)
        error = None
        try:
            cpu.run()
        except ReproError as caught:
            error = caught
        outcomes.append((cpu, error))
    (classic, classic_err), (batched, batched_err) = outcomes
    assert (classic_err is None) == (batched_err is None), (
        f"fault divergence: classic {classic_err!r}, batched {batched_err!r}"
    )
    if classic_err is not None:
        assert type(classic_err) is type(batched_err)
        assert str(classic_err) == str(batched_err)
        assert getattr(classic_err, "pc", None) == getattr(
            batched_err, "pc", None
        )
    return outcomes


def assert_state_equal(classic, batched):
    assert classic.registers == batched.registers
    assert classic.memory.snapshot() == batched.memory.snapshot()
    assert classic.pc == batched.pc
    assert classic.dynamic_count == batched.dynamic_count
    assert dataclasses.asdict(classic.stats) == dataclasses.asdict(
        batched.stats
    )
    assert dataclasses.asdict(classic.hierarchy.stats) == dataclasses.asdict(
        batched.hierarchy.stats
    )
    assert classic.hierarchy.l1.observe() == batched.hierarchy.l1.observe()
    assert classic.hierarchy.l2.observe() == batched.hierarchy.l2.observe()
    # Exact floats: fused elements must charge in classic order.
    assert classic.account.breakdown() == batched.account.breakdown()
    assert classic.account.total_time_ns == batched.account.total_time_ns


def fused_spans(cpu):
    return list(cpu._decoded_batched().region_spans)


# ----------------------------------------------------------------------
# Adversarial programs.
# ----------------------------------------------------------------------


def hot_region_kernel(iterations=40, name="hot-region"):
    """A loop whose body is one long fusable memory region."""
    b = ProgramBuilder(name)
    arr = b.data(list(range(64)))
    slots = b.reserve(8)
    base, slot, v, w, acc = b.regs("base", "slot", "v", "w", "acc")
    b.li(base, arr)
    b.li(slot, slots)
    b.li(acc, 0)
    with b.loop("i", 0, iterations) as i:
        b.op(Opcode.AND, v, i, 63)
        b.add(v, v, base)
        b.ld(v, v)
        b.op(Opcode.XOR, w, v, i)
        b.add(acc, acc, w)
        b.st(acc, slot)
    b.halt()
    return b.build()


def unmapped_load_program():
    """A fused memory region whose third element reads unmapped memory."""
    b = ProgramBuilder("unmapped-load")
    a, x, y = b.regs("a", "x", "y")
    b.li(a, 0x90000)
    b.li(x, 7)
    b.add(y, x, x)
    b.ld(y, a)  # MemoryFault at fused offset 3
    b.halt()
    return b.build()


# ----------------------------------------------------------------------
# Fused-path semantics.
# ----------------------------------------------------------------------


def test_hot_region_kernel_is_bit_identical():
    (classic, _), (batched, _) = run_both(hot_region_kernel())
    assert_state_equal(classic, batched)
    assert batched.halted
    # The loop body actually fused (this test would otherwise only be
    # re-testing the plain fast backend).
    assert any(end - start >= 2 for start, end in fused_spans(batched))


def test_mid_region_memory_fault_parity():
    program = unmapped_load_program()
    (classic, err), (batched, _) = run_both(program)
    assert isinstance(err, MemoryFault)
    assert "unmapped" in str(err)
    assert_state_equal(classic, batched)
    # The faulting load sat inside a fused region, so the parity above
    # exercised the partial count flush, not the per-pc fallback.
    assert any(start <= 3 < end for start, end in fused_spans(batched))
    # Classic counts before executing: the faulting load is in stats.
    assert classic.stats.dynamic_instructions == 4


def test_budget_sweep_across_region_boundaries():
    """Every budget from 1 to past-clean-completion matches classic.

    The sweep necessarily lands budgets on region starts, region
    interiors (the guarded element-by-element path), and non-region
    pcs; each one must reproduce the classic fault pc, message, counts,
    and accounts exactly.
    """
    program = hot_region_kernel(iterations=4)
    clean = CPU(program, make_model())
    clean.run()
    total = clean.dynamic_count
    interior_trips = 0
    for budget in range(1, total + 2):
        (classic, err), (batched, _) = run_both(
            program, max_instructions=budget
        )
        assert_state_equal(classic, batched)
        if budget < total:
            assert isinstance(err, ExecutionLimitExceeded)
            if any(
                start < classic.pc < end
                for start, end in fused_spans(batched)
            ):
                interior_trips += 1
        else:
            assert err is None
    assert interior_trips > 0, "sweep never tripped inside a fused region"


def test_jr_into_region_interior():
    b = ProgramBuilder("jr-interior")
    t, x = b.regs("t", "x")
    b.li(t, 5)
    b.ret(t)  # jump-register into the middle of the region below
    b.li(x, 1)  # pc 2: region start (never executed)
    b.add(x, x, x)
    b.add(x, x, x)
    b.add(x, x, x)  # pc 5: the JR target
    b.add(x, x, x)
    b.halt()
    program = b.build()
    (classic, _), (batched, _) = run_both(program)
    assert_state_equal(classic, batched)
    spans = fused_spans(batched)
    assert any(start < 5 < end for start, end in spans), (
        f"expected a fused region spanning pc 5, got {spans}"
    )


def test_region_running_to_program_end_faults_off_the_end():
    from repro.isa import Program, Reg, li as make_li

    program = Program()
    program.append(make_li(Reg(1), 1))
    program.append(make_li(Reg(2), 2))  # region [0, 2), no HALT
    (classic, err), (batched, _) = run_both(program)
    assert isinstance(err, MachineFault)
    assert "ran off" in str(err)
    assert_state_equal(classic, batched)
    assert (0, 2) in fused_spans(batched)


def test_aliasing_stores_within_one_region():
    b = ProgramBuilder("alias-stores")
    slots = b.reserve(4)
    s, x, y = b.regs("s", "x", "y")
    b.li(s, slots)
    b.li(x, 11)
    b.st(x, s)
    b.li(y, 22)
    b.st(y, s)  # same line, same word: last write must win
    b.ld(x, s)
    b.halt()
    (classic, _), (batched, _) = run_both(b.build())
    assert_state_equal(classic, batched)
    assert any(end - start >= 6 for start, end in fused_spans(batched))


def test_faulting_region_stays_per_pc():
    b = ProgramBuilder("div-region")
    x, y = b.regs("x", "y")
    b.li(x, 5)
    b.li(y, 0)
    b.op(Opcode.DIV, x, x, y)
    b.halt()
    (classic, err), (batched, _) = run_both(b.build())
    assert isinstance(err, ArithmeticFault)
    assert_state_equal(classic, batched)
    # DIV makes the run a faulting region: never fused, dispatched
    # through the original per-pc closures.
    assert fused_spans(batched) == []


def test_repeated_runs_flush_clean():
    # The deferred counters are zeroed at flush; a second run must not
    # double-count the first run's region passes.
    program = hot_region_kernel(iterations=3)
    batched = BatchedFastCPU(program, make_model())
    batched.run()
    first = batched.stats.dynamic_instructions
    classic = CPU(program, make_model())
    classic.run()
    assert first == classic.stats.dynamic_instructions


def test_pickle_drops_the_batched_decode_cache():
    program = hot_region_kernel(iterations=2)
    cpu = BatchedFastCPU(program, make_model())
    cpu.run()
    assert "_batch_decode" in cpu.__dict__
    state = cpu.__getstate__()
    assert "_batch_decode" not in state
    clone = pickle.loads(pickle.dumps(cpu))
    assert "_batch_decode" not in clone.__dict__


# ----------------------------------------------------------------------
# Region artifact cross-check.
# ----------------------------------------------------------------------


def test_matching_region_artifact_is_accepted(tmp_path, monkeypatch):
    program = hot_region_kernel(iterations=2)
    write_region_artifact(str(tmp_path), analyze_regions(program))
    monkeypatch.setenv(ENV_REGION_ARTIFACTS, str(tmp_path))
    (classic, _), (batched, _) = run_both(program)
    assert_state_equal(classic, batched)


def test_stale_region_artifact_aborts_the_decode(tmp_path, monkeypatch):
    program = hot_region_kernel(iterations=2)
    path = Path(write_region_artifact(str(tmp_path), analyze_regions(program)))
    payload = json.loads(path.read_text())
    payload["regions"][0]["end"] -= 1  # stale span
    path.write_text(json.dumps(payload))
    monkeypatch.setenv(ENV_REGION_ARTIFACTS, str(tmp_path))
    cpu = BatchedFastCPU(program, make_model())
    with pytest.raises(RegionArtifactMismatch, match="disagrees"):
        cpu.run()


def test_absent_artifact_is_not_required(tmp_path, monkeypatch):
    monkeypatch.setenv(ENV_REGION_ARTIFACTS, str(tmp_path))
    (classic, _), (batched, _) = run_both(hot_region_kernel(iterations=2))
    assert_state_equal(classic, batched)


# ----------------------------------------------------------------------
# The whole suite, classic vs batched.
# ----------------------------------------------------------------------


@pytest.mark.parametrize("spec", all_specs(), ids=lambda spec: spec.name)
def test_every_kernel_matches_classic(spec):
    program = spec.instantiate(0.25)
    (classic, err), (batched, _) = run_both(
        program, max_instructions=5_000_000
    )
    assert err is None
    assert_state_equal(classic, batched)


def test_kernels_actually_fuse_regions():
    # Coverage smoke: the parity sweep above is vacuous for the batched
    # paths unless the kernels' hot loops actually fuse.
    fused = sum(
        1
        for spec in all_specs()
        if fused_spans(BatchedFastCPU(spec.instantiate(0.25), make_model()))
    )
    assert fused == len(all_specs()), (
        f"only {fused}/{len(all_specs())} kernels produced fused regions"
    )


# ----------------------------------------------------------------------
# Slice abort path: a fault mid-traversal must produce the same partial
# accounting on every backend.  No suite kernel faults inside a slice,
# so the fused slice function's except path is only exercised here.
# ----------------------------------------------------------------------


def poisoned_binary(compilation, position):
    """Rewrite slice 0 so one element is a guaranteed DIV-by-zero.

    ``position`` picks the faulting element: ``"first"`` faults before
    anything is written back, ``"last"`` faults after every earlier
    element already charged energy and counted instructions — the case
    that checks the batched backend's partial-prefix writeback.
    """
    import copy

    from repro.isa import Imm, Instruction

    corrupted = copy.deepcopy(compilation.binary)
    region = corrupted.program.slices[0]
    pc = region.start if position == "first" else region.end - 2
    victim = corrupted.program.instructions[pc]
    corrupted.program.instructions[pc] = Instruction(
        Opcode.DIV,
        dest=victim.dest,
        srcs=(Imm(1), Imm(0)),
        leaf_id=victim.leaf_id,
    )
    return corrupted


@pytest.mark.parametrize("kernel", ["bfs", "cg", "sx"])
@pytest.mark.parametrize("position", ["first", "last"])
def test_slice_abort_parity_across_backends(kernel, position):
    from repro.compiler.amnesic_pass import compile_amnesic
    from repro.core.backend import BACKENDS
    from repro.core.policies import make_policy
    from repro.energy import paper_energy_model
    from repro.workloads import SCALE_SMALL, get

    model = paper_energy_model()
    program = get(kernel).instantiate(SCALE_SMALL)
    corrupted = poisoned_binary(compile_amnesic(program, model), position)
    results = {}
    for name, backend in BACKENDS.items():
        cpu = backend.amnesic_cls(
            corrupted, model, make_policy("Compiler"), verify=True
        )
        cpu.run()  # completes: every abort falls back to the real load
        results[name] = cpu
    reference = results["classic"]
    assert reference.stats.recomputation_aborts > 0
    for name, cpu in results.items():
        assert dataclasses.asdict(cpu.stats) == dataclasses.asdict(
            reference.stats
        ), name
        assert cpu.account.snapshot() == reference.account.snapshot(), name
        assert cpu.registers == reference.registers, name
        assert cpu.memory.snapshot() == reference.memory.snapshot(), name


# ----------------------------------------------------------------------
# The broken batcher: this suite and the oracle must both catch it.
# ----------------------------------------------------------------------


def budget_edge_entry():
    paths = [
        path
        for path in corpus_paths(CORPUS_DIR)
        if path.name.startswith("batch-budget-edge")
    ]
    assert paths, "corpus lost the batch-budget-edge shape"
    return load_entry(paths[0])


def test_late_flush_batcher_caught_on_fused_memory_fault():
    program = unmapped_load_program()
    runs = {}
    for key, cls in (
        ("classic", CPU),
        ("good", BatchedFastCPU),
        ("bad", LateFlushBatchedCPU),
    ):
        cpu = cls(program, make_model())
        with pytest.raises(MemoryFault):
            cpu.run()
        runs[key] = cpu
    good, bad, classic = runs["good"], runs["bad"], runs["classic"]
    assert (
        good.stats.dynamic_instructions == classic.stats.dynamic_instructions
    )
    # The broken flush drops exactly the faulting element's count:
    # classic counts before executing, so this is an off-by-one a naive
    # batcher plausibly ships — and registers/memory/fault stay
    # identical, so only the stats channel can catch it.
    assert (
        bad.stats.dynamic_instructions
        == classic.stats.dynamic_instructions - 1
    )
    assert bad.registers == classic.registers
    assert bad.memory.snapshot() == classic.memory.snapshot()


def test_late_flush_batcher_caught_on_budget_fault():
    program = hot_region_kernel(iterations=4)
    spans = fused_spans(BatchedFastCPU(program, make_model()))
    caught = 0
    for budget in range(1, 40):
        classic = CPU(program, make_model(), max_instructions=budget)
        try:
            classic.run()
        except ExecutionLimitExceeded:
            pass
        else:
            break
        # Divergence needs the budget to trip at fused offset >= 2 (at
        # offsets 0/1 both flush variants count nothing).
        if not any(
            classic.pc - start >= 2 and classic.pc < end
            for start, end in spans
        ):
            continue
        bad = LateFlushBatchedCPU(
            program, make_model(), max_instructions=budget
        )
        with pytest.raises(ExecutionLimitExceeded):
            bad.run()
        assert (
            bad.stats.dynamic_instructions
            < classic.stats.dynamic_instructions
        )
        caught += 1
    assert caught > 0, "no budget landed deep enough inside a fused region"


def test_oracle_passes_the_good_batcher_on_the_budget_edge():
    entry = budget_edge_entry()
    verdict = check_backend_equivalence(
        materialize(entry.spec),
        spec=entry.spec,
        model=default_fuzz_model(),
        max_instructions=entry.max_instructions,
        backend="fast-batched",
    )
    # The classic run exhausts the budget mid-region by design; parity
    # holds, so the verdict is invalid (fault reproduced) — not failing.
    assert verdict.invalid and not verdict.failures, verdict.summary()


def test_oracle_catches_the_late_flush_batcher():
    from repro.core.backend import Backend

    entry = budget_edge_entry()
    broken = Backend(
        "late-flush", LateFlushBatchedCPU, LateFlushBatchedAmnesicCPU
    )
    verdict = check_backend_equivalence(
        materialize(entry.spec),
        spec=entry.spec,
        model=default_fuzz_model(),
        max_instructions=entry.max_instructions,
        backend=broken,
    )
    assert verdict.failures, (
        "the oracle let the broken batcher through: "
        + verdict.summary()
    )
    assert any(failure.kind == "backend" for failure in verdict.failures)
    assert any("stats" in failure.message for failure in verdict.failures)
