"""Hot-loop profiler: per-opcode attribution and exact reconciliation.

The load-bearing property is that attribution deltas *telescope*: no
matter the sampling stride, summed instructions equal the runs'
``RunStats.dynamic_instructions`` and summed energy equals the energy
accounts.  ``repro profile`` prints that reconciliation, and the CLI
exits non-zero if it ever breaks.
"""

import pytest

from repro.compiler import compile_amnesic
from repro.core import AmnesicCPU, make_policy
from repro.machine import CPU
from repro.telemetry.profiler import (
    FINALIZE_KEY,
    TAIL_KEY,
    HotLoopProfiler,
    reconcile,
    render_profile,
)
from repro.telemetry.runtime import telemetry_session
from tests.conftest import build_spill_kernel


@pytest.fixture
def program():
    return build_spill_kernel(iterations=10, chain=3, gap=5)


def profiled_run(program, model, sample_every, compiled=None):
    profiler = HotLoopProfiler(sample_every=sample_every)
    with telemetry_session(profiler=profiler):
        classic = CPU(program, model)
        classic.run()
        cpus = [classic]
        if compiled is not None:
            amnesic = AmnesicCPU(
                compiled.binary, model, make_policy("Compiler")
            )
            amnesic.run()
            cpus.append(amnesic)
    return profiler, cpus


@pytest.mark.parametrize("stride", [1, 7, 64])
def test_totals_reconcile_at_any_stride(program, model, stride):
    compiled = compile_amnesic(program, model)
    profiler, cpus = profiled_run(program, model, stride, compiled)
    instructions = sum(cpu.stats.dynamic_instructions for cpu in cpus)
    energy = sum(cpu.account.total_energy_nj for cpu in cpus)
    result = reconcile(profiler, instructions, energy)
    assert result["reconciled"], result
    assert result["instructions_delta"] == 0
    assert profiler.runs == len(cpus)


def test_exact_mode_attributes_every_dispatch(program, model):
    profiler, [classic] = profiled_run(program, model, sample_every=1)
    totals = profiler.totals()
    # In exact mode every retired instruction is its own sample (the
    # finalize row adds samples but no instructions).
    dispatch_samples = sum(
        row.samples for row in profiler.rows() if row.opcode != FINALIZE_KEY
    )
    assert dispatch_samples == classic.stats.dynamic_instructions
    assert totals.instructions == classic.stats.dynamic_instructions
    assert profiler.exact


def test_finalize_energy_is_attributed_explicitly(program, model):
    profiler, [classic] = profiled_run(program, model, sample_every=1)
    rows = {row.opcode: row for row in profiler.rows()}
    # The spill kernel leaves dirty lines; write-back energy lands in
    # the synthetic finalize row, not smeared over the last opcode.
    if classic.account.total_energy_nj > sum(
        row.energy_nj for name, row in rows.items() if name != FINALIZE_KEY
    ):
        assert FINALIZE_KEY in rows
        assert rows[FINALIZE_KEY].instructions == 0


def test_partial_tail_gets_its_own_row(program, model):
    # Regression: the partial window left when the run ends between
    # samples used to be attributed to whatever opcode happened to
    # dispatch last, skewing per-opcode shares at large strides.  It now
    # lands in a dedicated synthetic row.
    stride = 7
    profiler, [classic] = profiled_run(program, model, sample_every=stride)
    remainder = classic.stats.dynamic_instructions % stride
    assert remainder != 0, "pick a stride that leaves a partial tail"
    rows = {row.opcode: row for row in profiler.rows()}
    assert TAIL_KEY in rows
    assert rows[TAIL_KEY].instructions == remainder
    # The tail row is exactly what keeps totals reconciling.
    result = reconcile(
        profiler,
        classic.stats.dynamic_instructions,
        classic.account.total_energy_nj,
    )
    assert result["reconciled"], result
    assert result["instructions_delta"] == 0


def test_whole_run_shorter_than_stride_is_all_tail(program, model):
    profiler, [classic] = profiled_run(program, model, sample_every=10**9)
    rows = {row.opcode: row for row in profiler.rows()}
    assert set(rows) <= {TAIL_KEY, FINALIZE_KEY}
    assert rows[TAIL_KEY].instructions == classic.stats.dynamic_instructions
    assert reconcile(
        profiler,
        classic.stats.dynamic_instructions,
        classic.account.total_energy_nj,
    )["reconciled"]


def test_profile_cli_reconciliation_exits_zero_with_partial_tail(capsys):
    # End-to-end: ``repro profile`` exits non-zero if reconciliation ever
    # breaks, so a clean exit here proves the tail row keeps the books.
    from repro.cli import main

    assert main(["profile", "bfs", "--scale", "0.25",
                 "--sample-every", "7"]) == 0
    out = capsys.readouterr().out
    assert "reconciliation vs RunStats: ok" in out


def test_rows_are_ranked_by_wall_clock(program, model):
    profiler, _ = profiled_run(program, model, sample_every=4)
    walls = [row.wall_s for row in profiler.rows()]
    assert walls == sorted(walls, reverse=True)


def test_by_opcode_folds_run_labels(program, model):
    compiled = compile_amnesic(program, model)
    profiler, _ = profiled_run(program, model, 4, compiled)
    folded = {row.opcode: row for row in profiler.by_opcode()}
    split = profiler.rows()
    for opcode, row in folded.items():
        assert row.run == "*"
        assert row.instructions == sum(
            r.instructions for r in split if r.opcode == opcode
        )
    assert profiler.totals().instructions == sum(
        row.instructions for row in folded.values()
    )


def test_reconcile_flags_mismatch(program, model):
    profiler, [classic] = profiled_run(program, model, sample_every=1)
    result = reconcile(
        profiler, classic.stats.dynamic_instructions + 5
    )
    assert not result["reconciled"]
    assert result["instructions_delta"] == -5


def test_reconcile_energy_tolerance_absorbs_float_noise(program, model):
    profiler, [classic] = profiled_run(program, model, sample_every=1)
    energy = classic.account.total_energy_nj
    result = reconcile(
        profiler,
        classic.stats.dynamic_instructions,
        energy * (1 + 1e-9),  # beneath the relative tolerance
    )
    assert result["reconciled"]


def test_render_profile_includes_reconciliation(program, model):
    profiler, [classic] = profiled_run(program, model, sample_every=8)
    reconciliation = reconcile(
        profiler,
        classic.stats.dynamic_instructions,
        classic.account.total_energy_nj,
    )
    text = render_profile(profiler, top=5, reconciliation=reconciliation)
    assert "hot-loop profile" in text
    assert "reconciliation vs RunStats: ok" in text
    assert "energy vs accounts" in text


def test_to_json_round_trips_rows(program, model):
    profiler, _ = profiled_run(program, model, sample_every=2)
    payload = profiler.to_json()
    assert payload["mode"] == "sampling"
    assert payload["sample_every"] == 2
    assert payload["runs"] == profiler.runs
    assert len(payload["rows"]) == len(profiler.rows())
    totals = payload["totals"]
    assert totals["instructions"] == profiler.totals().instructions


def test_profiler_rejects_bad_stride():
    with pytest.raises(ValueError):
        HotLoopProfiler(sample_every=0)


def test_no_profiler_when_telemetry_disabled(program, model):
    from repro.telemetry.runtime import get_telemetry

    assert get_telemetry().active_profiler() is None
    cpu = CPU(program, model)
    cpu.run()  # plain loop, nothing to assert beyond not crashing
    assert cpu.stats.dynamic_instructions > 0
