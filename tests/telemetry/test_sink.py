"""JSONL sink round trip: emit -> parse -> reconstruct the span tree."""

import itertools
import json

from repro.telemetry import (
    JsonlSink,
    ListSink,
    decision_records,
    read_events,
    reconstruct_spans,
)
from repro.telemetry.spans import SpanTracer


def counting_clock():
    counter = itertools.count()
    return lambda: float(next(counter))


def _trace_into(sink):
    tracer = SpanTracer(sink=sink, clock=counting_clock())
    with tracer.span("evaluate", program="demo"):
        with tracer.span("compile") as compile_span:
            compile_span.set(slices=2)
        with tracer.span("execute.amnesic"):
            sink.emit(
                {
                    "type": "rcmp",
                    "pc": 7,
                    "slice": 0,
                    "outcome": "fired",
                    "residence": "MEM",
                }
            )
    return tracer


def test_jsonl_round_trip_rebuilds_identical_tree(tmp_path):
    path = tmp_path / "trace.jsonl"
    with JsonlSink(str(path)) as sink:
        tracer = _trace_into(sink)

    events = read_events(str(path))
    # Every line parsed as one JSON object; open/close pairs + 1 rcmp.
    assert len(events) == 7
    assert sink.events_written == 7

    rebuilt = reconstruct_spans(events)
    original = tracer.tree()
    assert len(rebuilt) == len(original) == 1

    def shape(node):
        return (
            node.name,
            node.span.start_s,
            node.span.end_s,
            node.span.status,
            dict(node.span.attrs),
            [shape(child) for child in node.children],
        )

    assert shape(rebuilt[0]) == shape(original[0])


def test_decision_records_filter(tmp_path):
    path = tmp_path / "trace.jsonl"
    with JsonlSink(str(path)) as sink:
        _trace_into(sink)
    records = decision_records(read_events(str(path)))
    assert len(records) == 1
    assert records[0]["outcome"] == "fired"
    assert records[0]["residence"] == "MEM"


def test_truncated_trace_keeps_open_span(tmp_path):
    path = tmp_path / "trace.jsonl"
    with JsonlSink(str(path)) as sink:
        sink.emit({"type": "span_open", "span": 0, "parent": None,
                   "name": "interrupted", "t": 1.0, "attrs": {}})
    (root,) = reconstruct_spans(read_events(str(path)))
    assert root.name == "interrupted"
    assert not root.span.closed


def test_sink_coerces_non_json_values(tmp_path):
    from repro.machine import Level

    path = tmp_path / "trace.jsonl"
    with JsonlSink(str(path)) as sink:
        sink.emit({"type": "x", "level": Level.MEM, "pair": (1, 2)})
    (event,) = read_events(str(path))
    assert event["level"] == "MEM"
    assert event["pair"] == [1, 2]


def test_jsonl_lines_are_compact_single_objects(tmp_path):
    path = tmp_path / "trace.jsonl"
    with JsonlSink(str(path)) as sink:
        _trace_into(sink)
    for line in path.read_text().splitlines():
        assert isinstance(json.loads(line), dict)


def test_list_sink_buffers_in_memory():
    sink = ListSink()
    _trace_into(sink)
    assert len(sink.events) == 7
    assert sink.events[0]["type"] == "span_open"


def test_close_flushes_and_fsyncs(tmp_path, monkeypatch):
    import os

    synced = []
    real_fsync = os.fsync
    monkeypatch.setattr(
        "repro.telemetry.sink.os.fsync",
        lambda fd: (synced.append(fd), real_fsync(fd)),
    )
    path = tmp_path / "trace.jsonl"
    with JsonlSink(str(path)) as sink:
        sink.emit({"type": "x"})
    assert synced, "close() must fsync before closing the stream"
    assert len(read_events(str(path))) == 1


def test_close_survives_unsyncable_stream():
    import io

    stream = io.StringIO()  # no fileno(); fsync must be skipped, not raised
    sink = JsonlSink(stream)
    sink.emit({"type": "x"})
    sink.close()
    assert stream.getvalue().count("\n") == 1


def test_read_events_skips_torn_final_line(tmp_path):
    import warnings

    path = tmp_path / "trace.jsonl"
    with JsonlSink(str(path)) as sink:
        _trace_into(sink)
    # Simulate a crash mid-write: chop the last line in half.
    torn = path.read_text()[:-20]
    path.write_text(torn)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        events = read_events(str(path))
    assert len(events) == 6
    assert events.skipped_lines == 1
    assert any(
        "skipping undecodable trace line" in str(w.message) for w in caught
    )
    # The surviving prefix still reconstructs (with the tail span open).
    assert reconstruct_spans(events)


def test_read_events_counts_non_object_lines(tmp_path):
    import warnings

    path = tmp_path / "trace.jsonl"
    path.write_text('{"type": "x"}\n[1, 2]\nnot json at all\n')
    with warnings.catch_warnings(record=True):
        warnings.simplefilter("always")
        events = read_events(str(path))
    assert [event["type"] for event in events] == ["x"]
    assert events.skipped_lines == 2


def test_read_events_clean_trace_reports_zero_skips(tmp_path):
    path = tmp_path / "trace.jsonl"
    with JsonlSink(str(path)) as sink:
        _trace_into(sink)
    events = read_events(str(path))
    assert events.skipped_lines == 0
