"""Summary renderers: span tree, phase totals, RCMP and cache reports."""

import itertools

import pytest

from repro.telemetry import (
    MetricsRegistry,
    PhaseTotal,
    SpanTracer,
    cache_hit_rate,
    cache_stats,
    hottest_spans,
    phase_totals,
    render_cache_stats,
    render_rcmp_breakdown,
    render_span_tree,
)


def counting_clock(step: float = 1.0):
    counter = itertools.count()
    return lambda: next(counter) * step


def traced_session() -> SpanTracer:
    """root(0..5) { compile(1..2), execute(3..4) } then compile(6..7)."""
    tracer = SpanTracer(clock=counting_clock())
    with tracer.span("root"):
        with tracer.span("compile"):
            pass
        with tracer.span("execute", benchmark="mcf"):
            pass
    with tracer.span("compile"):
        pass
    return tracer


# ----------------------------------------------------------------------
# Span tree rendering.
# ----------------------------------------------------------------------
def test_render_span_tree_shows_nesting_durations_and_attrs():
    text = render_span_tree(traced_session().tree())
    lines = text.splitlines()
    assert lines[0].startswith("root")
    assert lines[1].startswith("  compile")
    assert "benchmark=mcf" in lines[2]
    assert "5.00s" in lines[0]  # root spans t=0..5
    assert len(lines) == 4


def test_render_span_tree_empty_forest():
    assert render_span_tree([]) == "(no spans recorded)"


def test_render_span_tree_marks_errors():
    tracer = SpanTracer(clock=counting_clock())
    with pytest.raises(ValueError):
        with tracer.span("doomed"):
            raise ValueError("boom")
    assert "!error" in render_span_tree(tracer.tree())


# ----------------------------------------------------------------------
# Phase totals and hottest spans.
# ----------------------------------------------------------------------
def test_phase_totals_aggregate_self_time_by_name():
    totals = {t.name: t for t in phase_totals(traced_session().tree())}
    # root: 5s total minus 1s+1s children = 3s self.
    assert totals["root"].self_time_s == pytest.approx(3.0)
    # compile appears twice (1s nested + 1s top-level).
    assert totals["compile"] == PhaseTotal("compile", pytest.approx(2.0), 2)
    assert totals["execute"].count == 1


def test_phase_totals_partition_the_traced_wall_clock():
    roots = traced_session().tree()
    traced = sum(root.duration_s for root in roots)
    assert sum(t.self_time_s for t in phase_totals(roots)) == pytest.approx(traced)


def test_phase_totals_ranked_hottest_first():
    names = [t.name for t in phase_totals(traced_session().tree())]
    assert names == ["root", "compile", "execute"]


def test_hottest_spans_is_a_truncated_view_of_phase_totals():
    roots = traced_session().tree()
    assert hottest_spans(roots, top=2) == [
        (t.name, t.self_time_s, t.count) for t in phase_totals(roots)[:2]
    ]


# ----------------------------------------------------------------------
# RCMP breakdown.
# ----------------------------------------------------------------------
def test_render_rcmp_breakdown_totals_per_policy():
    registry = MetricsRegistry()
    registry.counter("rcmp.outcomes", policy="FLC", outcome="fired").inc(7)
    registry.counter("rcmp.outcomes", policy="FLC", outcome="skipped").inc(2)
    registry.counter("rcmp.outcomes", policy="LLC", outcome="fallback").inc()
    text = render_rcmp_breakdown(registry)
    flc_row = next(line for line in text.splitlines() if "FLC" in line)
    assert flc_row.split() == ["FLC", "7", "2", "0", "9"]
    assert "LLC" in text


def test_render_rcmp_breakdown_empty():
    assert render_rcmp_breakdown(MetricsRegistry()) == "(no RCMP decisions recorded)"


# ----------------------------------------------------------------------
# Result-cache stats.
# ----------------------------------------------------------------------
def _cache_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("suite.cache", result="hit").inc(3)
    registry.counter("suite.cache", result="miss").inc(1)
    registry.counter("suite.result_cache", result="hit").inc(2)
    registry.counter("suite.result_cache", result="miss").inc(1)
    registry.counter("suite.result_cache", result="corrupt").inc(1)
    registry.counter("suite.result_cache", result="store").inc(2)
    return registry


def test_cache_stats_groups_by_layer():
    assert cache_stats(_cache_registry()) == {
        "memory": {"hit": 3, "miss": 1},
        "disk": {"hit": 2, "miss": 1, "corrupt": 1, "store": 2},
    }


def test_cache_stats_omits_idle_layers():
    registry = MetricsRegistry()
    registry.counter("suite.cache", result="hit").inc()
    assert list(cache_stats(registry)) == ["memory"]
    assert cache_stats(MetricsRegistry()) == {}


def test_cache_hit_rate_counts_corrupt_entries_as_misses():
    assert cache_hit_rate({"hit": 2, "miss": 1, "corrupt": 1}) == pytest.approx(0.5)
    assert cache_hit_rate({"hit": 4}) == pytest.approx(1.0)
    # Stores are not lookups; with none at all the rate is undefined.
    assert cache_hit_rate({"store": 5}) is None
    assert cache_hit_rate({}) is None


def test_render_cache_stats_reports_both_layers():
    text = render_cache_stats(_cache_registry())
    lines = text.splitlines()
    assert lines[0] == "result caches:"
    assert "memory" in lines[1] and "75.0%" in lines[1]
    assert "disk" in lines[2] and "50.0%" in lines[2]
    assert "corrupt=1" in lines[2]


def test_render_cache_stats_empty():
    assert render_cache_stats(MetricsRegistry()) == "(no result-cache traffic recorded)"
