"""Telemetry across the real pipeline + disabled-mode regression."""

import dataclasses

import pytest

from repro.core.execution import evaluate_policies
from repro.machine.stats import RunStats
from repro.telemetry import (
    MetricsRegistry,
    decision_records,
    read_events,
    reconstruct_spans,
    telemetry_session,
)
from repro.telemetry.runtime import get_telemetry
from repro.telemetry.summary import (
    hottest_spans,
    rcmp_breakdown,
    render_metrics,
    render_rcmp_breakdown,
    render_span_tree,
    render_summary,
)

from ..conftest import build_spill_kernel


def run_pipeline(model, policies=("FLC",)):
    return evaluate_policies(
        build_spill_kernel(), policies=policies, model=model
    )


def test_trace_covers_profile_compile_execute(tmp_path, model):
    path = tmp_path / "trace.jsonl"
    with telemetry_session(trace_path=str(path)):
        run_pipeline(model)
    events = read_events(str(path))
    opened = {event["name"] for event in events if event["type"] == "span_open"}
    assert {
        "evaluate", "profile", "compile", "compile.candidates",
        "compile.formation", "compile.classify", "compile.select",
        "compile.rewrite", "evaluate.policy", "execute.classic",
        "execute.amnesic",
    } <= opened
    # Per-RCMP decision records exist and carry the scheduler's context.
    records = decision_records(events)
    assert records
    record = records[0]
    assert record["outcome"] in {"fired", "skipped", "fallback"}
    assert record["residence"] in {"L1", "L2", "MEM"}
    assert record["slice_len"] >= 1
    assert isinstance(record["hist_ready"], bool)
    # The span forest reconstructs with evaluate as the root.
    roots = reconstruct_spans(events)
    assert [root.name for root in roots] == ["evaluate"]


def test_session_metrics_and_summary(model):
    with telemetry_session() as telemetry:
        results = run_pipeline(model)
        summary = render_summary(telemetry)
    stats = results["FLC"].amnesic.stats
    registry = telemetry.registry
    fired = registry.value("rcmp.outcomes", policy="FLC", outcome="fired") or 0
    skipped = registry.value("rcmp.outcomes", policy="FLC", outcome="skipped") or 0
    fallback = registry.value("rcmp.outcomes", policy="FLC", outcome="fallback") or 0
    assert fired == stats.recomputations_fired
    assert skipped == stats.recomputations_skipped
    assert fallback == stats.recomputation_fallbacks
    assert fired + skipped + fallback == stats.rcmp_encountered
    # RunStats published through the registry under run labels.
    assert (
        registry.value("runstats.rcmp_encountered", run="amnesic")
        == stats.rcmp_encountered
    )
    assert registry.value("runstats.rcmp_encountered", run="classic") == 0
    # The human summary mentions each section.
    for needle in ("span tree", "hottest spans", "FLC", "metrics"):
        assert needle in summary


def test_session_restores_previous_state(model):
    before = get_telemetry()
    assert not before.enabled
    with telemetry_session() as telemetry:
        assert get_telemetry() is telemetry
        assert telemetry.enabled
    assert get_telemetry() is before


def test_disabled_runs_match_enabled_runs_bit_for_bit(model):
    """Telemetry must be observationally invisible to the simulation."""
    baseline = run_pipeline(model, policies=("FLC", "Compiler"))
    repeat = run_pipeline(model, policies=("FLC", "Compiler"))
    with telemetry_session():
        observed = run_pipeline(model, policies=("FLC", "Compiler"))
    for name in ("FLC", "Compiler"):
        # Deterministic across repeats (the seed guarantee)...
        assert repeat[name].amnesic.stats == baseline[name].amnesic.stats
        assert repeat[name].classic.stats == baseline[name].classic.stats
        # ...and unchanged when telemetry observes the run.
        assert observed[name].amnesic.stats == baseline[name].amnesic.stats
        assert observed[name].classic.stats == baseline[name].classic.stats
        assert observed[name].amnesic.energy_nj == baseline[name].amnesic.energy_nj
        assert observed[name].amnesic.time_ns == baseline[name].amnesic.time_ns
        assert observed[name].edp_gain_percent == baseline[name].edp_gain_percent


def test_summary_renderers_tolerate_empty_session():
    with telemetry_session() as telemetry:
        pass
    assert "(no spans recorded)" in render_span_tree(telemetry.tracer.tree())
    assert "(no RCMP decisions recorded)" in render_rcmp_breakdown(
        telemetry.registry
    )
    assert "(no metrics recorded)" in render_metrics(telemetry.registry)
    assert hottest_spans(telemetry.tracer.tree()) == []


def test_rcmp_breakdown_pivots_by_policy():
    registry = MetricsRegistry()
    registry.counter("rcmp.outcomes", policy="FLC", outcome="fired").inc(10)
    registry.counter("rcmp.outcomes", policy="FLC", outcome="skipped").inc(2)
    registry.counter("rcmp.outcomes", policy="LLC", outcome="fired").inc(1)
    assert rcmp_breakdown(registry) == {
        "FLC": {"fired": 10, "skipped": 2},
        "LLC": {"fired": 1},
    }


def test_run_stats_publish_covers_every_field():
    """publish() must register a series for each RunStats field."""
    registry = MetricsRegistry()
    stats = RunStats()
    stats.publish(registry, run="x")
    published = {series.name for series in registry.series()}
    from collections import Counter

    for field in dataclasses.fields(RunStats):
        value = getattr(stats, field.name)
        if isinstance(value, Counter):
            continue  # empty Counter fields publish no buckets
        assert f"runstats.{field.name}" in published


def test_publish_expands_counter_fields_into_buckets(model):
    from repro.isa import Category
    from repro.machine import Level

    registry = MetricsRegistry()
    stats = RunStats()
    stats.count_instruction(Category.INT_ALU)
    stats.count_swapped_load(Level.MEM)
    stats.publish(registry, run="amnesic")
    assert registry.value(
        "runstats.by_category", bucket=Category.INT_ALU.value, run="amnesic"
    ) == 1
    assert registry.value(
        "runstats.swapped_load_levels", bucket="MEM", run="amnesic"
    ) == 1


@pytest.mark.integration
def test_policy_decision_counters_cover_probing_policies(model):
    with telemetry_session() as telemetry:
        run_pipeline(model, policies=("FLC", "LLC", "C-Oracle"))
    registry = telemetry.registry
    for policy in ("FLC", "LLC", "C-Oracle"):
        decided = sum(
            series.value
            for series in registry.series("policy.decisions")
            if dict(series.labels)["policy"] == policy
        )
        assert decided > 0
