"""Metrics registry: counters, gauges, histograms, timers, labels."""

import pytest

from repro.telemetry import MetricsRegistry
from repro.telemetry.registry import (
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    format_series,
)


def test_counter_series_are_independent_per_labelset():
    registry = MetricsRegistry()
    registry.counter("rcmp.outcomes", policy="FLC", outcome="fired").inc()
    registry.counter("rcmp.outcomes", policy="FLC", outcome="fired").inc(2)
    registry.counter("rcmp.outcomes", policy="FLC", outcome="skipped").inc()
    assert registry.value("rcmp.outcomes", policy="FLC", outcome="fired") == 3
    assert registry.value("rcmp.outcomes", policy="FLC", outcome="skipped") == 1
    assert registry.value("rcmp.outcomes", policy="LLC", outcome="fired") is None


def test_label_order_does_not_matter():
    registry = MetricsRegistry()
    registry.counter("m", a="1", b="2").inc()
    assert registry.counter("m", b="2", a="1").value == 1


def test_gauge_moves_both_ways():
    registry = MetricsRegistry()
    gauge = registry.gauge("hist.occupancy")
    gauge.set(17)
    gauge.set(4)
    assert registry.value("hist.occupancy") == 4


def test_histogram_percentiles_exact():
    registry = MetricsRegistry()
    histogram = registry.histogram("lat")
    for value in (1, 2, 3, 4, 5, 6, 7, 8, 9, 10):
        histogram.observe(value)
    assert histogram.count == 10
    assert histogram.min == 1
    assert histogram.max == 10
    assert histogram.mean == pytest.approx(5.5)
    assert histogram.percentile(0) == 1
    assert histogram.percentile(100) == 10
    assert histogram.percentile(50) == pytest.approx(5.5)
    assert histogram.percentile(25) == pytest.approx(3.25)


def test_histogram_percentile_edge_cases():
    registry = MetricsRegistry()
    histogram = registry.histogram("lat")
    assert histogram.percentile(50) == 0.0  # empty
    histogram.observe(42)
    assert histogram.percentile(99) == 42.0  # single observation
    with pytest.raises(ValueError):
        histogram.percentile(101)


def test_timer_feeds_histogram():
    registry = MetricsRegistry()
    ticks = iter([10.0, 10.5])
    with registry.timer("phase"):  # wall-clock fallback also works...
        pass
    # ...and an injected clock gives exact durations.
    from repro.telemetry.registry import Timer

    histogram = registry.histogram("phase2")
    with Timer(histogram, clock=lambda: next(ticks)):
        pass
    assert histogram.count == 1
    assert histogram.max == pytest.approx(0.5)
    assert registry.histogram("phase").count == 1


def test_kind_conflict_raises():
    registry = MetricsRegistry()
    registry.counter("m")
    with pytest.raises(TypeError):
        registry.gauge("m")


def test_snapshot_and_render_shapes():
    registry = MetricsRegistry()
    registry.counter("c", k="v").inc(5)
    registry.histogram("h").observe(2.0)
    snapshot = registry.snapshot()
    assert snapshot["c{k=v}"] == 5
    assert snapshot["h"]["count"] == 1
    assert format_series("c", (("k", "v"),)) == "c{k=v}"


def test_null_instruments_absorb_updates():
    NULL_COUNTER.inc(100)
    NULL_GAUGE.set(3)
    NULL_HISTOGRAM.observe(1.0)
    assert NULL_COUNTER.value == 0
    assert NULL_GAUGE.value == 0
    assert NULL_HISTOGRAM.count == 0
