"""Chrome trace_event export: clock alignment, emission, validation.

Built around a synthetic two-worker trace whose processes have
deliberately different ``perf_counter`` epochs — the exporter must use
the ``clock_sync`` events to rebase worker timestamps onto the parent's
timeline so worker spans land *inside* the parent span.
"""

import pytest

from repro.telemetry.export import (
    MAIN_TID,
    export_chrome_trace,
    trace_summary,
    validate_chrome_trace,
)

PARENT_PID = 4000
WORKER_A = 4001
WORKER_B = 4002

# The parent's perf epoch starts at 100 s, the workers' at ~5 s; wall
# clocks agree (same machine).  offset_a = (1000.5-5.0)-(1000.0-100.0)
# = 95.5, so a worker stamp t maps to t+95.5 on the parent timeline.
SYNCS = [
    {"type": "clock_sync", "perf": 100.0, "wall": 1000.0, "pid": PARENT_PID},
    {"type": "clock_sync", "perf": 5.0, "wall": 1000.5, "pid": WORKER_A,
     "worker": WORKER_A},
    {"type": "clock_sync", "perf": 7.0, "wall": 1002.6, "pid": WORKER_B,
     "worker": WORKER_B},
]


def span_pair(span, name, t_open, t_close, worker=None, parent=None):
    base = {} if worker is None else {"worker": worker}
    return [
        {**base, "type": "span_open", "span": span, "parent": parent,
         "name": name, "t": t_open, "attrs": {}},
        {**base, "type": "span_close", "span": span, "t": t_close,
         "status": "ok"},
    ]


@pytest.fixture
def events():
    items = list(SYNCS)
    items += span_pair(1, "suite.parallel", 100.0, 101.0)
    # Worker A: local 4.6..5.4 -> parent 100.1..100.9 (inside the span).
    items += span_pair(2, "suite.benchmark", 4.6, 5.4, worker=WORKER_A,
                       parent=1)
    # Worker B: local 4.7..5.2, offset (1002.6-7.0)-900 = 95.6
    # -> parent 100.3..100.8.
    items += span_pair(3, "suite.benchmark", 4.7, 5.2, worker=WORKER_B,
                       parent=1)
    items.append({
        "type": "timeline", "worker": WORKER_A, "track": "amnesic#0",
        "t": 5.0, "start_instr": 0, "end_instr": 256,
        "levels": {"sfile.occupancy": 3},
        "deltas": {"instructions": 256},
        "attrs": {"policy": "FLC"},
    })
    return items


def x_events(trace):
    return [e for e in trace["traceEvents"] if e["ph"] == "X"]


def test_worker_spans_rebase_inside_parent_span(events):
    trace = export_chrome_trace(events)
    spans = {(e["tid"], e["name"]): e for e in x_events(trace)}
    parent = spans[(MAIN_TID, "suite.parallel")]
    a = spans[(WORKER_A, "suite.benchmark")]
    b = spans[(WORKER_B, "suite.benchmark")]
    for worker_span in (a, b):
        assert worker_span["ts"] >= parent["ts"]
        assert (worker_span["ts"] + worker_span["dur"]
                <= parent["ts"] + parent["dur"])
    # Alignment is exact, not merely contained: worker A opened 0.1 s
    # after the parent (in wall time), i.e. 100 000 us into the trace.
    assert a["ts"] == pytest.approx(100_000.0)
    assert a["dur"] == pytest.approx(800_000.0)
    assert b["ts"] == pytest.approx(300_000.0)


def test_trace_starts_near_zero_and_uses_parent_pid(events):
    trace = export_chrome_trace(events)
    drawn = [e for e in trace["traceEvents"] if e["ph"] != "M"]
    assert min(e["ts"] for e in drawn) == pytest.approx(0.0)
    assert all(e["pid"] == PARENT_PID for e in trace["traceEvents"])


def test_timeline_windows_become_counter_tracks(events):
    trace = export_chrome_trace(events)
    counters = [e for e in trace["traceEvents"] if e["ph"] == "C"]
    by_name = {e["name"]: e for e in counters}
    occ = by_name["amnesic#0 sfile.occupancy"]
    assert occ["args"] == {"value": 3.0}
    assert occ["tid"] == WORKER_A
    assert "amnesic#0 instructions" in by_name


def test_pool_events_become_counter_tracks(events):
    events.append({
        "type": "pool", "worker": WORKER_A, "t": 5.1,
        "benchmark": "bfs", "unit_s": 0.8, "queue_wait_s": 0.05,
    })
    trace = export_chrome_trace(events)
    counters = {
        e["name"]: e for e in trace["traceEvents"]
        if e["ph"] == "C" and e["cat"] == "pool"
    }
    assert set(counters) == {"pool unit_s", "pool queue_wait_s"}
    assert counters["pool unit_s"]["args"] == {"value": 0.8}
    assert counters["pool unit_s"]["tid"] == WORKER_A
    # Rebased onto the parent timeline like every other worker stamp.
    assert counters["pool unit_s"]["ts"] == pytest.approx(600_000.0)
    assert validate_chrome_trace(trace) == []


def test_thread_metadata_names_main_and_workers(events):
    trace = export_chrome_trace(events)
    names = {
        e["tid"]: e["args"]["name"]
        for e in trace["traceEvents"]
        if e["ph"] == "M" and e["name"] == "thread_name"
    }
    assert names[MAIN_TID] == "main"
    assert names[WORKER_A] == f"worker {WORKER_A}"
    assert names[WORKER_B] == f"worker {WORKER_B}"


def test_unclosed_span_survives_as_begin_event(events):
    truncated = [e for e in events if not (
        e.get("type") == "span_close" and e.get("span") == 2
    )]
    trace = export_chrome_trace(truncated)
    begins = [e for e in trace["traceEvents"] if e["ph"] == "B"]
    assert [e["name"] for e in begins] == ["suite.benchmark"]
    assert begins[0]["tid"] == WORKER_A


def test_no_sync_events_exports_raw_timestamps():
    trace = export_chrome_trace(span_pair(1, "run", 2.0, 3.0))
    [span] = x_events(trace)
    assert span["ts"] == pytest.approx(0.0)
    assert span["dur"] == pytest.approx(1e6)


def test_exported_trace_validates_clean(events):
    trace = export_chrome_trace(events)
    assert validate_chrome_trace(trace) == []


def test_summary_counts_phases_and_threads(events):
    trace = export_chrome_trace(events)
    summary = trace_summary(trace)
    assert summary["by_phase"]["X"] == 3
    assert summary["by_phase"]["C"] == 2
    assert summary["threads"] == 3
    assert summary["counter_tracks"] == 2


@pytest.mark.parametrize(
    "tamper, fragment",
    [
        (lambda t: t.__setitem__("traceEvents", None),
         "must be an array"),
        (lambda t: t["traceEvents"].append({"ph": "Z", "name": "x",
                                            "pid": 1, "tid": 1, "ts": 0}),
         "unknown phase"),
        (lambda t: t["traceEvents"].append({"ph": "X", "name": "x",
                                            "pid": 1, "tid": 1, "ts": 0,
                                            "dur": -5}),
         "negative duration"),
        (lambda t: t["traceEvents"].append({"ph": "C", "name": "x",
                                            "pid": 1, "tid": 1, "ts": 0,
                                            "args": {"value": "NaNish"}}),
         "non-numeric counter"),
        (lambda t: t["traceEvents"].append({"ph": "X", "name": "x",
                                            "pid": "one", "tid": 1,
                                            "ts": 0, "dur": 1}),
         "pid must be an integer"),
    ],
)
def test_tampered_trace_fails_validation(events, tamper, fragment):
    trace = export_chrome_trace(events)
    tamper(trace)
    problems = validate_chrome_trace(trace)
    assert problems
    assert any(fragment in problem for problem in problems)


def test_validator_rejects_non_object_inputs():
    assert validate_chrome_trace([]) == [
        "trace must be a JSON object, got list"
    ]
    assert validate_chrome_trace({"traceEvents": []}) == [
        "trace.traceEvents is empty"
    ]
