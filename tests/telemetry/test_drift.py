"""Drift watchdog: regression flagging against synthetic ledger history.

Builds synthetic manifest histories (no real runs — drift logic is pure)
and checks the gate's contract: a seeded >=10% ips or fidelity
regression is flagged with a failing verdict, flat history passes,
young/empty ledgers pass, improvements are not failures, and only
comparable runs (same kind/target/scale/backend/policies) gate each
other.
"""

import pytest

from repro.telemetry.drift import (
    DEFAULT_MIN_HISTORY,
    IMPROVED,
    OK,
    REGRESSED,
    SKIPPED,
    check_drift,
    comparable,
    render_drift_report,
)
from repro.telemetry.ledger import RunManifest


def make_run(ips=1000.0, wall_s=2.0, fidelity_score=0.8, **overrides):
    fields = dict(
        kind="bench", command="repro bench", target="fig3,fig4",
        scale=1.0, backend="classic", policies=["FLC", "LRR"],
        wall_s=wall_s, ips=ips, instructions=int(ips * wall_s),
        fidelity=(
            None if fidelity_score is None
            else {"score": fidelity_score, "metrics": 10}
        ),
    )
    fields.update(overrides)
    return RunManifest.new(**fields)


def history(n=6, **kwargs):
    return [make_run(**kwargs) for _ in range(n)]


def finding(report, metric):
    return next(f for f in report.findings if f.metric == metric)


# ----------------------------------------------------------------------
# Verdicts.
# ----------------------------------------------------------------------
def test_flat_history_passes():
    report = check_drift(history(8))
    assert report.ok
    assert {f.verdict for f in report.findings} == {OK}
    assert report.comparable_runs == 7
    assert "PASS" in render_drift_report(report)


def test_seeded_ips_regression_is_flagged():
    runs = history(6) + [make_run(ips=850.0)]  # 15% below the median
    report = check_drift(runs)
    assert not report.ok
    ips = finding(report, "ips")
    assert ips.verdict == REGRESSED
    assert ips.delta_fraction == pytest.approx(-0.15)
    assert "FAIL" in render_drift_report(report)


def test_seeded_fidelity_regression_is_flagged():
    runs = history(6) + [make_run(fidelity_score=0.68)]  # 15% drop
    report = check_drift(runs)
    fidelity = finding(report, "fidelity")
    assert fidelity.verdict == REGRESSED
    assert not report.ok


def test_wall_time_regression_is_higher_not_lower():
    runs = history(6) + [make_run(wall_s=2.5)]  # 25% slower
    report = check_drift(runs)
    assert finding(report, "wall_s").verdict == REGRESSED
    # ips was held constant, so it does not co-trip.
    assert finding(report, "ips").verdict == OK


def test_improvement_is_reported_but_never_fails():
    runs = history(6) + [make_run(ips=1500.0, wall_s=1.0)]
    report = check_drift(runs)
    assert report.ok
    assert finding(report, "ips").verdict == IMPROVED
    assert finding(report, "wall_s").verdict == IMPROVED


def test_move_inside_tolerance_is_ok():
    runs = history(6) + [make_run(ips=950.0)]  # -5% < 10% tolerance
    assert check_drift(runs).ok
    # ...and a tighter tolerance turns the same move into a regression.
    assert not check_drift(runs, tolerance=0.02).ok


# ----------------------------------------------------------------------
# History requirements and windowing.
# ----------------------------------------------------------------------
def test_empty_ledger_passes_with_skipped_findings():
    report = check_drift([])
    assert report.ok
    assert report.latest is None
    assert {f.verdict for f in report.findings} == {SKIPPED}
    assert "pass" in render_drift_report(report).lower()


def test_insufficient_history_skips_instead_of_gating():
    runs = history(DEFAULT_MIN_HISTORY - 1) + [make_run(ips=100.0)]
    report = check_drift(runs)
    assert report.ok
    assert finding(report, "ips").verdict == SKIPPED


def test_window_bounds_the_baseline():
    # Old slow era, then a fast era; a window covering only the fast era
    # must flag a return to the old slow throughput.
    runs = history(10, ips=500.0) + history(6, ips=1000.0) + [make_run(ips=500.0)]
    windowed = check_drift(runs, window=6)
    assert finding(windowed, "ips").verdict == REGRESSED
    # A huge window dilutes the median back toward the slow era.
    diluted = check_drift(runs, window=100)
    assert finding(diluted, "ips").median == pytest.approx(500.0)
    assert finding(diluted, "ips").verdict == OK


def test_unscored_latest_skips_fidelity():
    runs = history(6) + [make_run(fidelity_score=None)]
    report = check_drift(runs)
    assert finding(report, "fidelity").verdict == SKIPPED
    assert report.ok


# ----------------------------------------------------------------------
# Comparability.
# ----------------------------------------------------------------------
def test_incomparable_runs_never_gate_each_other():
    latest = make_run()
    assert comparable(latest, make_run())
    assert not comparable(latest, make_run(backend="fast"))
    assert not comparable(latest, make_run(scale=0.5))
    assert not comparable(latest, make_run(target="fig5"))
    assert not comparable(latest, make_run(kind="run"))
    assert not comparable(latest, make_run(policies=["FLC"]))
    # A fast-backend slowdown cannot be masked by classic history, and
    # classic history cannot gate a fast run: the fast run has no
    # comparable history at all, so everything is skipped.
    runs = history(8) + [make_run(backend="fast", ips=100.0)]
    report = check_drift(runs)
    assert report.comparable_runs == 0
    assert report.ok
    assert {f.verdict for f in report.findings} == {SKIPPED}


def test_model_fingerprint_change_still_gates():
    # The energy model is deliberately outside the comparability key: a
    # model swap that moves fidelity is drift the watchdog must flag.
    runs = history(6, model_fingerprint="old") + [
        make_run(model_fingerprint="new", fidelity_score=0.4)
    ]
    report = check_drift(runs)
    assert finding(report, "fidelity").verdict == REGRESSED


def test_explicit_latest_and_metric_subset():
    runs = history(6) + [make_run(ips=100.0)]
    # Gating an older run ignores everything after it.
    report = check_drift(runs, latest=runs[4], metrics=["ips"])
    assert [f.metric for f in report.findings] == ["ips"]
    assert report.ok
    with pytest.raises(KeyError):
        check_drift(runs, metrics=["no-such-metric"])


def test_report_json_is_stable():
    runs = history(6) + [make_run(ips=850.0)]
    payload = check_drift(runs).to_json()
    assert payload["ok"] is False
    assert payload["latest"] == runs[-1].run_id
    assert payload["tolerance"] == 0.10
    metrics = {f["metric"]: f["verdict"] for f in payload["findings"]}
    assert metrics["ips"] == "regressed"
