"""Microarchitectural timeline sampling.

Covers the TimelineTrack unit contract (window boundaries, level vs
delta series, partial final window, sink emission) and the CPU
integration: a run under ``telemetry_session(timeline_window=N)``
attaches one track per run, samples the amnesic structures, and leaves
no track attached when telemetry is off.
"""

import pytest

from repro.compiler import compile_amnesic
from repro.core import AmnesicCPU, make_policy
from repro.machine import CPU
from repro.telemetry.runtime import get_telemetry, telemetry_session
from repro.telemetry.sink import ListSink
from repro.telemetry.timeline import (
    TimelineTrack,
    is_level_series,
    render_track,
)
from tests.conftest import build_spill_kernel


# ----------------------------------------------------------------------
# Unit behaviour against a synthetic observe() hook.
# ----------------------------------------------------------------------
class FakeStructure:
    def __init__(self):
        self.occupancy = 0
        self.hits = 0

    def observe(self):
        return {"occupancy": self.occupancy, "hits": self.hits}


def test_is_level_series_classifies_by_last_segment():
    assert is_level_series("sfile.occupancy")
    assert is_level_series("hist.high_water")
    assert is_level_series("renamer.live_mappings")
    assert not is_level_series("sfile.reads")
    assert not is_level_series("l1.misses")
    assert not is_level_series("occupancy.total")  # suffix, not prefix


def test_track_captures_at_window_boundaries_only():
    structure = FakeStructure()
    track = TimelineTrack("t", structure.observe, window=10)
    for retired in range(1, 10):
        structure.hits += 1
        track.tick(retired)
    assert track.samples == []
    structure.occupancy = 7
    structure.hits += 1
    track.tick(10)
    assert len(track.samples) == 1
    sample = track.samples[0]
    assert (sample.start_instr, sample.end_instr) == (0, 10)
    assert sample.levels == {"occupancy": 7}
    assert sample.deltas == {"hits": 10}
    assert sample.instructions == 10


def test_track_deltas_are_per_window_not_cumulative():
    structure = FakeStructure()
    track = TimelineTrack("t", structure.observe, window=5)
    structure.hits = 3
    track.tick(5)
    structure.hits = 10
    track.tick(10)
    assert track.delta_series("hits") == [3, 7]
    assert sum(track.delta_series("hits")) == structure.hits


def test_close_records_partial_final_window_once():
    structure = FakeStructure()
    track = TimelineTrack("t", structure.observe, window=100)
    structure.hits = 4
    track.close(42)
    track.close(42)  # idempotent
    assert len(track.samples) == 1
    assert track.samples[0].end_instr == 42
    assert track.samples[0].deltas["hits"] == 4


def test_close_with_no_new_instructions_records_nothing():
    structure = FakeStructure()
    track = TimelineTrack("t", structure.observe, window=10)
    track.tick(10)
    track.close(10)
    assert len(track.samples) == 1


def test_track_emits_timeline_events_to_sink():
    structure = FakeStructure()
    sink = ListSink()
    track = TimelineTrack(
        "amnesic#0", structure.observe, window=5, sink=sink,
        attrs={"policy": "FLC"},
    )
    structure.occupancy = 2
    track.tick(5)
    [event] = sink.events
    assert event["type"] == "timeline"
    assert event["track"] == "amnesic#0"
    assert event["levels"] == {"occupancy": 2}
    assert event["attrs"] == {"policy": "FLC"}
    assert (event["start_instr"], event["end_instr"]) == (0, 5)


def test_track_rejects_nonpositive_window():
    with pytest.raises(ValueError):
        TimelineTrack("t", FakeStructure().observe, window=0)


def test_render_track_lists_level_series():
    structure = FakeStructure()
    track = TimelineTrack("t", structure.observe, window=5)
    structure.occupancy = 3
    track.tick(5)
    text = render_track(track)
    assert "occupancy" in text
    assert "peak 3" in text


# ----------------------------------------------------------------------
# CPU integration.
# ----------------------------------------------------------------------
@pytest.fixture
def program():
    return build_spill_kernel(iterations=12, chain=3, gap=6)


@pytest.fixture
def compiled(program, model):
    return compile_amnesic(program, model)


def test_cpu_run_attaches_timeline_per_run(program, compiled, model):
    with telemetry_session(timeline_window=25) as session:
        classic = CPU(program, model)
        classic.run()
        amnesic = AmnesicCPU(compiled.binary, model, make_policy("Compiler"))
        amnesic.run()
    labels = [track.label for track in session.timelines]
    assert labels == ["classic#0", "amnesic#1"]
    for cpu, track in zip((classic, amnesic), session.timelines):
        assert track.samples, "run recorded no windows"
        assert track.samples[-1].end_instr == cpu.stats.dynamic_instructions


def test_amnesic_timeline_samples_structures(compiled, model):
    with telemetry_session(timeline_window=20) as session:
        AmnesicCPU(compiled.binary, model, make_policy("Compiler")).run()
    [track] = session.timelines
    names = track.series_names()
    for expected in (
        "sfile.occupancy", "hist.occupancy", "ibuff.occupancy",
        "l1.occupancy", "l2.occupancy", "instructions", "energy_nj",
    ):
        assert expected in names, f"missing series {expected}"
    assert track.attrs["policy"] == "Compiler"
    # The delta series telescope back to the run totals.
    assert sum(track.delta_series("instructions")) == (
        track.samples[-1].end_instr
    )


def test_timeline_instruction_deltas_partition_the_run(program, model):
    with telemetry_session(timeline_window=16) as session:
        cpu = CPU(program, model)
        cpu.run()
    [track] = session.timelines
    boundaries = [sample.end_instr for sample in track.samples]
    assert boundaries == sorted(boundaries)
    assert boundaries[-1] == cpu.stats.dynamic_instructions
    assert all(sample.instructions > 0 for sample in track.samples)


def test_no_timeline_attached_when_telemetry_off(program, model):
    cpu = CPU(program, model)
    cpu.run()
    assert cpu._timeline is None
    assert get_telemetry().timelines == []


def test_no_timeline_without_window_configured(program, model):
    with telemetry_session() as session:
        CPU(program, model).run()
    assert session.timelines == []


def test_observe_hooks_are_flat_numeric_snapshots(compiled, model):
    amnesic = AmnesicCPU(compiled.binary, model, make_policy("Compiler"))
    amnesic.run()
    snapshot = amnesic.observe()
    assert snapshot["instructions"] == amnesic.stats.dynamic_instructions
    for name, value in snapshot.items():
        assert isinstance(name, str)
        assert isinstance(value, (int, float)), f"{name} not numeric"
    for prefix in ("sfile.", "hist.", "ibuff.", "l1.", "l2.", "rcmp."):
        assert any(name.startswith(prefix) for name in snapshot), prefix
