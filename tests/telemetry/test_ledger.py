"""Run ledger: durability, concurrency, lookup, and manifest hygiene.

The load-bearing property is the append contract: concurrent writers
(threads here, *forked processes* in the stress test) interleave whole
JSONL lines, never fragments, with no locking and no temp files — and a
reader sees every appended manifest exactly once, tolerating a torn
trailing line from a writer killed mid-append.
"""

import dataclasses
import json
import multiprocessing
import os

import pytest

from repro.telemetry.ledger import (
    LEDGER_FILENAME,
    LEDGER_SCHEMA_VERSION,
    AmbiguousRunId,
    LedgerReadResult,
    RunLedger,
    RunManifest,
    UnknownRunId,
    diff_manifests,
    fidelity_summary,
    ledger_from_env,
    new_run_id,
    provenance,
    render_manifest,
    render_manifest_diff,
)


def make_manifest(**overrides) -> RunManifest:
    fields = dict(
        kind="run", command="repro run mcf", target="mcf",
        scale=0.5, backend="classic", policies=["FLC"],
        wall_s=1.5, instructions=1500, ips=1000.0,
    )
    fields.update(overrides)
    return RunManifest.new(**fields)


@pytest.fixture
def ledger(tmp_path):
    return RunLedger(tmp_path / "ledger")


# ----------------------------------------------------------------------
# Roundtrip and schema hygiene.
# ----------------------------------------------------------------------
def test_append_read_roundtrip(ledger):
    manifest = make_manifest(
        phases={"execute.classic": 0.9},
        cache={"disk": {"hit": 3}},
        cache_io={"hits": 3.0, "bytes_written": 1024.0},
        pool={"workers": 2},
        fidelity={"score": 0.8, "metrics": 5, "mean_abs_error_pp": 1.2},
        seed=7,
    )
    ledger.append(manifest)
    result = ledger.read()
    assert result.skipped_lines == 0
    assert len(result) == 1
    back = result[0]
    assert back == manifest
    assert back.schema_version == LEDGER_SCHEMA_VERSION


def test_manifest_new_stamps_identity_and_provenance():
    manifest = make_manifest()
    assert manifest.run_id
    assert manifest.created.endswith("Z")
    assert manifest.created_unix > 0
    source = provenance()
    assert manifest.python == source["python"]
    assert manifest.platform == source["platform"]
    assert manifest.git_sha == source["git_sha"]
    # Two manifests minted back to back never collide.
    assert make_manifest().run_id != make_manifest().run_id
    assert new_run_id() != new_run_id()


def test_unknown_fields_park_in_extra_and_survive_roundtrip(ledger):
    payload = make_manifest().to_json()
    payload["future_metric"] = 42
    payload["future_block"] = {"nested": True}
    manifest = RunManifest.from_json(payload)
    assert manifest.extra == {"future_metric": 42, "future_block": {"nested": True}}
    # Re-serialising flattens extra back out, so an old reader passing a
    # newer build's manifest through does not strip the new fields.
    ledger.append(manifest)
    raw = json.loads(ledger.path.read_text().splitlines()[0])
    assert raw["future_metric"] == 42
    assert raw["future_block"] == {"nested": True}


def test_torn_trailing_line_is_skipped_not_raised(ledger):
    ledger.append(make_manifest())
    ledger.append(make_manifest())
    whole = ledger.path.read_text()
    ledger.path.write_text(whole + whole.splitlines()[0][: len(whole) // 3])
    result = ledger.read()
    assert len(result) == 2
    assert result.skipped_lines == 1


def test_non_manifest_lines_are_counted_as_skipped(ledger):
    ledger.append(make_manifest())
    with open(ledger.path, "a", encoding="utf-8") as stream:
        stream.write("[1, 2, 3]\n")        # JSON, but not an object
        stream.write('{"no": "run_id"}\n')  # object, but not a manifest
        stream.write("\n")                  # blank lines are free
    result = ledger.read()
    assert len(result) == 1
    assert result.skipped_lines == 2


def test_empty_or_missing_ledger_reads_empty(ledger):
    result = ledger.read()
    assert list(result) == []
    assert result.skipped_lines == 0
    assert len(ledger) == 0


# ----------------------------------------------------------------------
# Selection and lookup.
# ----------------------------------------------------------------------
def test_select_filters_by_kind_target_backend(ledger):
    ledger.append(make_manifest(kind="run", target="mcf"))
    ledger.append(make_manifest(kind="bench", target="fig4"))
    ledger.append(make_manifest(kind="run", target="mcf", backend="fast"))
    assert len(ledger.select(kind="run")) == 2
    assert len(ledger.select(target="fig4")) == 1
    assert len(ledger.select(kind="run", backend="fast")) == 1
    assert len(ledger.select(kind="stats")) == 0
    latest = ledger.latest(kind="run", target="mcf")
    assert latest is not None and latest.backend == "fast"
    assert ledger.latest(kind="stats") is None


def test_get_accepts_unique_prefixes_and_rejects_ambiguity(ledger):
    first = ledger.append(make_manifest())
    second = ledger.append(make_manifest())
    assert ledger.get(first.run_id) == first
    # The random suffix makes the full id (and its tail) unique.
    assert ledger.get(first.run_id[:-2]).run_id == first.run_id
    with pytest.raises(UnknownRunId):
        ledger.get("no-such-run")
    shared = os.path.commonprefix([first.run_id, second.run_id])
    if shared:
        with pytest.raises(AmbiguousRunId):
            ledger.get(shared[:1])


def test_ledger_from_env(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_LEDGER_DIR", raising=False)
    assert ledger_from_env() is None
    explicit = ledger_from_env(str(tmp_path / "explicit"))
    assert explicit is not None
    assert explicit.path.name == LEDGER_FILENAME
    monkeypatch.setenv("REPRO_LEDGER_DIR", str(tmp_path / "from-env"))
    from_env = ledger_from_env()
    assert from_env is not None and from_env.directory.name == "from-env"
    # Explicit argument wins over the environment.
    assert ledger_from_env(str(tmp_path / "explicit")).directory.name == "explicit"


# ----------------------------------------------------------------------
# Concurrent forked writers: every manifest exactly once, no torn lines.
# ----------------------------------------------------------------------
def _fork_writer(directory, writer_id, appends):
    ledger = RunLedger(directory)
    for sequence in range(appends):
        ledger.append(make_manifest(
            target=f"writer-{writer_id}",
            seed=sequence,
            # Padding widens the write so an unserialised implementation
            # would actually tear under contention.
            phases={f"phase-{index}": float(index) for index in range(40)},
        ))


def test_concurrent_forked_writers_interleave_whole_lines(ledger):
    writers, appends = 8, 25
    context = multiprocessing.get_context("fork")
    processes = [
        context.Process(
            target=_fork_writer, args=(str(ledger.directory), writer, appends)
        )
        for writer in range(writers)
    ]
    for process in processes:
        process.start()
    for process in processes:
        process.join()
        assert process.exitcode == 0

    result = ledger.read()
    assert result.skipped_lines == 0
    assert len(result) == writers * appends
    # Every (writer, sequence) pair appears exactly once.
    seen = {(manifest.target, manifest.seed) for manifest in result}
    assert seen == {
        (f"writer-{writer}", sequence)
        for writer in range(writers)
        for sequence in range(appends)
    }
    assert len({manifest.run_id for manifest in result}) == len(result)
    # No temp files, locks, or shards — just the one JSONL file.
    assert os.listdir(ledger.directory) == [LEDGER_FILENAME]


# ----------------------------------------------------------------------
# Diffing, rendering, summaries.
# ----------------------------------------------------------------------
def test_diff_manifests_reports_config_and_metric_deltas():
    a = make_manifest(wall_s=2.0, ips=1000.0, instructions=2000,
                      phases={"execute.classic": 1.0, "only-a": 0.1})
    b = dataclasses.replace(
        a, run_id=new_run_id(), backend="fast", wall_s=1.0, ips=2000.0,
        phases={"execute.classic": 0.4, "only-b": 0.2},
        fidelity={"score": 0.9},
    )
    diff = diff_manifests(a, b)
    assert diff["a"] == a.run_id and diff["b"] == b.run_id
    assert set(diff["config"]) == {"backend"}
    assert diff["metrics"]["wall_s"]["delta"] == -1.0
    assert diff["metrics"]["wall_s"]["delta_fraction"] == -0.5
    assert diff["metrics"]["ips"]["delta_fraction"] == 1.0
    assert diff["metrics"]["fidelity"] == {"a": None, "b": 0.9}
    assert diff["phases"]["execute.classic"]["delta"] == pytest.approx(-0.6)
    assert diff["phases"]["only-a"]["b"] is None
    assert diff["phases"]["only-b"]["a"] is None
    # Identical configs diff to an empty config block.
    assert diff_manifests(a, a)["config"] == {}


def test_render_manifest_and_diff_are_printable():
    manifest = make_manifest(
        fidelity={"score": 0.8, "metrics": 5},
        cache_io={"hits": 3.0},
        extra={"future": 1},
    )
    text = render_manifest(manifest)
    assert manifest.run_id in text
    assert "fidelity" in text and "future" in text
    other = dataclasses.replace(manifest, run_id=new_run_id(), wall_s=9.0)
    diff_text = render_manifest_diff(diff_manifests(manifest, other))
    assert manifest.run_id in diff_text and other.run_id in diff_text
    assert "configuration: identical" in diff_text


def test_fidelity_summary_collapses_metrics():
    @dataclasses.dataclass
    class Metric:
        within: bool
        abs_error: float

    assert fidelity_summary([]) is None
    summary = fidelity_summary(
        [Metric(True, 1.0), Metric(True, 2.0), Metric(False, 6.0)]
    )
    assert summary["score"] == pytest.approx(2 / 3)
    assert summary["metrics"] == 3
    assert summary["mean_abs_error_pp"] == pytest.approx(3.0)


def test_read_result_container_defaults():
    empty = LedgerReadResult()
    assert list(empty) == [] and empty.skipped_lines == 0
