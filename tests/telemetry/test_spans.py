"""Span tracing: nesting, timing, trees, self time, error status."""

import itertools

import pytest

from repro.telemetry import SpanTracer, build_tree
from repro.telemetry.runtime import Telemetry
from repro.telemetry.spans import NULL_SPAN_CONTEXT


def counting_clock(step: float = 1.0):
    counter = itertools.count()
    return lambda: next(counter) * step


def test_nesting_assigns_parents():
    tracer = SpanTracer(clock=counting_clock())
    with tracer.span("outer") as outer:
        with tracer.span("inner") as inner:
            assert tracer.current() is inner
            assert inner.parent_id == outer.span_id
        assert tracer.current() is outer
    assert tracer.current() is None
    assert tracer.depth == 0


def test_timing_with_injected_clock():
    tracer = SpanTracer(clock=counting_clock(step=0.5))
    with tracer.span("a"):
        pass
    (span,) = tracer.completed
    assert span.start_s == 0.0
    assert span.end_s == 0.5
    assert span.duration_s == pytest.approx(0.5)


def test_tree_reassembles_nesting_and_order():
    tracer = SpanTracer(clock=counting_clock())
    with tracer.span("root"):
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            with tracer.span("grandchild"):
                pass
    roots = tracer.tree()
    assert [node.name for node in roots] == ["root"]
    root = roots[0]
    assert [child.name for child in root.children] == ["first", "second"]
    assert [c.name for c in root.children[1].children] == ["grandchild"]
    assert [node.name for node in root.walk()] == [
        "root", "first", "second", "grandchild",
    ]


def test_self_time_excludes_children():
    tracer = SpanTracer(clock=counting_clock())  # every event 1s apart
    with tracer.span("root"):       # opens t=0
        with tracer.span("child"):  # opens t=1, closes t=2
            pass
    # root: 0 -> 3 (3s total), child 1s => self time 2s.
    (root,) = tracer.tree()
    assert root.duration_s == pytest.approx(3.0)
    assert root.self_time_s == pytest.approx(2.0)


def test_exception_marks_error_status_and_closes():
    tracer = SpanTracer(clock=counting_clock())
    with pytest.raises(RuntimeError):
        with tracer.span("doomed"):
            raise RuntimeError("boom")
    (span,) = tracer.completed
    assert span.status == "error"
    assert span.closed
    assert tracer.depth == 0


def test_attrs_set_after_open_are_kept():
    tracer = SpanTracer(clock=counting_clock())
    with tracer.span("phase", mode="greedy") as span:
        span.set(slices=13)
    (span,) = tracer.completed
    assert span.attrs == {"mode": "greedy", "slices": 13}


def test_orphan_spans_promoted_to_roots():
    tracer = SpanTracer(clock=counting_clock())
    with tracer.span("root"):
        with tracer.span("child"):
            pass
    # Drop the root span before rebuilding: the child must survive.
    child_only = [span for span in tracer.completed if span.name == "child"]
    roots = build_tree(child_only)
    assert [node.name for node in roots] == ["child"]


def test_disabled_telemetry_spans_are_shared_noops():
    telemetry = Telemetry(enabled=False)
    assert telemetry.span("anything", x=1) is NULL_SPAN_CONTEXT
    with telemetry.span("anything") as span:
        span.set(attr="ignored")  # absorbed, not recorded
    assert telemetry.tracer.completed == []
    assert len(telemetry.registry) == 0
