"""End-to-end amnesic compiler pass behaviour."""

import pytest

from repro.compiler import (
    SELECTION_ALL_VALID,
    PassOptions,
    compile_amnesic,
)
from repro.energy import EPITable, EnergyModel
from repro.trace import profile_program

from ..conftest import build_spill_kernel, tiny_config


def make_model():
    return EnergyModel(epi=EPITable.default(), config=tiny_config())


def test_pass_produces_slices_and_diagnostics():
    program = build_spill_kernel(iterations=10, chain=4, gap=4)
    result = compile_amnesic(program, make_model())
    assert result.rslices
    assert all(rs.slice_id == i for i, rs in enumerate(result.rslices))
    # The gap loads (read-only input) must be diagnosed, not silently lost.
    assert any("stable" in reason for reason in result.rejected.values())


def test_slice_lookup_by_load_pc():
    program = build_spill_kernel(iterations=10, chain=4, gap=4)
    result = compile_amnesic(program, make_model())
    rslice = result.rslices[0]
    assert result.slice_for_load(rslice.load_pc) is rslice
    assert result.slice_for_load(999999) is None


def test_min_instances_threshold():
    program = build_spill_kernel(iterations=3, chain=3, gap=2)
    result = compile_amnesic(
        program, make_model(), options=PassOptions(min_instances=10)
    )
    assert not result.rslices
    assert any("minimum 10" in reason for reason in result.rejected.values())


def test_all_valid_supersets_probabilistic():
    program = build_spill_kernel(iterations=10, chain=4, gap=4)
    model = make_model()
    profile = profile_program(program, model)
    probabilistic = compile_amnesic(program, model, profile=profile)
    all_valid = compile_amnesic(
        program, model, profile=profile,
        options=PassOptions(selection=SELECTION_ALL_VALID),
    )
    prob_pcs = set(probabilistic.swapped_load_pcs)
    valid_pcs = set(all_valid.swapped_load_pcs)
    assert prob_pcs <= valid_pcs


def test_options_validation():
    with pytest.raises(ValueError):
        PassOptions(selection="bogus")
    with pytest.raises(ValueError):
        PassOptions(formation="bogus")
    with pytest.raises(ValueError):
        PassOptions(estimation="bogus")


def test_profile_reuse_is_equivalent():
    program = build_spill_kernel(iterations=10, chain=4, gap=4)
    model = make_model()
    profile = profile_program(program, model)
    first = compile_amnesic(program, model, profile=profile)
    second = compile_amnesic(program, model, profile=profile)
    assert first.swapped_load_pcs == second.swapped_load_pcs


def test_checkpoint_source_conflict_resolution():
    """A load serving as another slice's checkpoint keeps executing."""
    from repro.isa import ProgramBuilder

    b = ProgramBuilder()
    cell_a = b.reserve(1)
    cell_b = b.reserve(1)
    ra, rb, v, t = b.regs("ra", "rb", "v", "t")
    b.li(ra, cell_a)
    b.li(rb, cell_b)
    with b.loop("i", 0, 8) as i:
        b.mul(t, i, 7)
        b.st(t, ra)
        b.ld(t, ra)          # candidate A; also a checkpoint source for B
        b.add(t, t, 1)
        b.st(t, rb)
        b.ld(v, rb)          # candidate B
    result = compile_amnesic(b.build(), make_model())
    swapped = set(result.swapped_load_pcs)
    for rslice in result.rslices:
        for node in rslice.root.walk():
            if node.is_checkpoint_load:
                assert node.pc not in swapped
