"""RSlice tree IR: traversal, shape metrics, signatures."""

from repro.compiler.rslice import (
    LeafInput,
    LeafInputKind,
    RSlice,
    TemplateNode,
)
from repro.energy import Cost
from repro.isa import Category, Opcode


def leaf(pc, reg=None, const=None):
    inputs = []
    if reg is not None:
        inputs.append(LeafInput.register(0, reg))
    if const is not None:
        inputs.append(LeafInput.immediate(len(inputs), const))
    return TemplateNode(pc=pc, opcode=Opcode.ADD, leaf_inputs=inputs)


def tree():
    """root(add) <- [a(mul leaf), b(xor) <- [c(li leaf)]]"""
    c = TemplateNode(pc=4, opcode=Opcode.LI,
                     leaf_inputs=[LeafInput.immediate(0, 7)])
    b = TemplateNode(pc=3, opcode=Opcode.XOR,
                     children=[c], child_positions=[0], child_regs=[5],
                     leaf_inputs=[LeafInput.immediate(1, 9)])
    a = leaf(2, reg=6, const=3)
    root = TemplateNode(pc=1, opcode=Opcode.ADD,
                        children=[a, b], child_positions=[0, 1],
                        child_regs=[6, 7])
    return root, a, b, c


def test_walk_is_preorder():
    root, a, b, c = tree()
    assert [n.pc for n in root.walk()] == [1, 2, 3, 4]


def test_post_order_children_first():
    root, a, b, c = tree()
    order = [n.pc for n in root.post_order()]
    assert order == [2, 4, 3, 1]
    assert order[-1] == root.pc


def test_size_and_height():
    root, a, b, c = tree()
    assert root.size == 4
    assert root.height == 2
    assert a.height == 0


def test_leaves():
    root, a, b, c = tree()
    assert {n.pc for n in root.leaves()} == {2, 4}


def test_signature_distinguishes_structure():
    first, *_ = tree()
    second, *_ = tree()
    assert first.structural_signature() == second.structural_signature()
    third, a, b, c = tree()
    c.leaf_inputs[0] = LeafInput.immediate(0, 8)  # different constant
    assert third.structural_signature() != first.structural_signature()


def test_signature_ignores_register_values_but_not_positions():
    x = leaf(1, reg=4)
    y = leaf(1, reg=4)
    assert x.structural_signature() == y.structural_signature()
    z = TemplateNode(pc=1, opcode=Opcode.ADD,
                     leaf_inputs=[LeafInput.register(1, 4)])
    assert z.structural_signature() != x.structural_signature()


def make_rslice(root):
    return RSlice(
        slice_id=0, load_pc=9, root=root,
        traversal_cost=Cost(1.0, 1.0),
        selection_cost=Cost(1.5, 1.5),
        estimated_load_cost=Cost(9.0, 9.0),
    )


def test_rslice_metrics():
    root, *_ = tree()
    rslice = make_rslice(root)
    assert rslice.length == 4
    assert rslice.height == 2
    assert rslice.leaf_count == 2


def test_nonrecomputable_detection():
    root, a, b, c = tree()
    rslice = make_rslice(root)
    assert rslice.has_nonrecomputable_inputs  # a's register input is HIST
    assert [n.pc for n in rslice.hist_leaves()] == [2]
    a.leaf_inputs[0].kind = LeafInputKind.LIVE_REG
    assert not rslice.has_nonrecomputable_inputs
    assert rslice.hist_leaves() == []


def test_category_counts_uses_mov_for_checkpoint_loads():
    node = TemplateNode(pc=1, opcode=Opcode.MUL, is_checkpoint_load=True,
                        leaf_inputs=[LeafInput.register(0, 3)])
    rslice = make_rslice(node)
    counts = rslice.category_counts()
    assert counts[Category.MOVE] == 1
    assert Category.INT_MUL not in counts


def test_leaf_input_kinds():
    immediate = LeafInput.immediate(0, 5)
    register = LeafInput.register(1, 7)
    assert immediate.kind is LeafInputKind.CONST
    assert not immediate.kind.needs_checkpoint
    assert register.kind is LeafInputKind.HIST
    assert register.kind.needs_checkpoint
