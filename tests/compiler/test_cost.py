"""Compiler cost model: E_ld, E_rc, REC amortisation."""

from repro.compiler import TemplateExtractor
from repro.compiler.cost import (
    ESTIMATION_GLOBAL,
    ESTIMATION_PER_LOAD,
    CostContext,
)
from repro.energy import EPITable, EnergyModel
from repro.machine import Level
from repro.trace import profile_program

from ..conftest import build_spill_kernel, tiny_config


def make_context(estimation=ESTIMATION_GLOBAL, chain=4):
    program = build_spill_kernel(iterations=10, chain=chain, gap=4)
    model = EnergyModel(epi=EPITable.default(), config=tiny_config())
    profile = profile_program(program, model)
    context = CostContext.from_trace(
        model, profile.loads, profile.dependence, estimation=estimation
    )
    extractor = TemplateExtractor(profile.dependence)
    (load_pc,) = [
        pc for pc in program.static_loads() if extractor.extract(pc) is not None
    ]
    return context, extractor.extract(load_pc).tree, load_pc


def test_global_estimation_is_uniform():
    context, _, load_pc = make_context(ESTIMATION_GLOBAL)
    assert (
        context.estimated_load_cost(load_pc).energy_nj
        == context.estimated_load_cost(99999).energy_nj
    )


def test_per_load_estimation_differs_from_global():
    context, _, load_pc = make_context(ESTIMATION_PER_LOAD)
    per_load = context.estimated_load_cost(load_pc)
    context.estimation = ESTIMATION_GLOBAL
    global_cost = context.estimated_load_cost(load_pc)
    assert per_load.energy_nj != global_cost.energy_nj


def test_load_cost_at_levels_ordered():
    context, _, _ = make_context()
    assert (
        context.load_cost_at(Level.L1).energy_nj
        < context.load_cost_at(Level.L2).energy_nj
        < context.load_cost_at(Level.MEM).energy_nj
    )


def test_traversal_cost_includes_control_overhead():
    context, tree, _ = make_context()
    traversal = context.traversal_cost(tree)
    overhead = context.control_overhead()
    assert traversal.energy_nj > overhead.energy_nj


def test_traversal_grows_with_tree_size():
    context_small, small_tree, pc_small = make_context(chain=2)
    context_large, large_tree, pc_large = make_context(chain=7)
    small = context_small.traversal_cost(small_tree)
    large = context_large.traversal_cost(large_tree)
    assert large.energy_nj > small.energy_nj


def test_selection_cost_adds_rec_amortisation():
    context, tree, load_pc = make_context()
    traversal = context.traversal_cost(tree)
    selection = context.selection_cost(tree, load_pc)
    assert selection.energy_nj >= traversal.energy_nj
