"""Slice formation: greedy growth vs optimal cut."""

from repro.compiler import TemplateExtractor
from repro.compiler.cost import CostContext
from repro.compiler.formation import (
    FORMATION_GREEDY,
    FORMATION_OPTIMAL,
    form_slice_tree,
)
from repro.compiler.leaves import collect_liveness
from repro.energy import EPITable, EnergyModel
from repro.trace import profile_program

from ..conftest import build_spill_kernel, tiny_config


def setup_candidate(chain=6, iterations=12):
    program = build_spill_kernel(iterations=iterations, chain=chain, gap=4)
    model = EnergyModel(epi=EPITable.default(), config=tiny_config())
    profile = profile_program(program, model)
    tracker = profile.dependence
    context = CostContext.from_trace(model, profile.loads, tracker)
    extractor = TemplateExtractor(tracker)
    (load_pc,) = [
        pc for pc in program.static_loads() if extractor.extract(pc) is not None
    ]
    template = extractor.extract(load_pc).tree
    facts = collect_liveness({load_pc: template}, tracker)
    return template, context, load_pc, facts


def test_greedy_grows_within_budget():
    template, context, load_pc, facts = setup_candidate()
    generous = form_slice_tree(
        template, context, load_pc, liveness=facts,
        mode=FORMATION_GREEDY, budget_nj=1000.0,
    )
    tight = form_slice_tree(
        template, context, load_pc, liveness=facts,
        mode=FORMATION_GREEDY, budget_nj=2.0,
    )
    assert generous.tree.size >= tight.tree.size
    assert tight.tree.size >= 1


def test_greedy_stops_at_first_unaffordable_level():
    template, context, load_pc, facts = setup_candidate()
    result = form_slice_tree(
        template, context, load_pc, liveness=facts,
        mode=FORMATION_GREEDY, budget_nj=3.5,
    )
    assert result.estimated_energy_nj <= 3.5 or result.tree.size == 1


def test_optimal_never_costlier_than_greedy():
    template, context, load_pc, facts = setup_candidate()
    greedy = form_slice_tree(
        template, context, load_pc, liveness=facts, mode=FORMATION_GREEDY,
        budget_nj=1000.0,
    )
    optimal = form_slice_tree(
        template, context, load_pc, liveness=facts, mode=FORMATION_OPTIMAL,
    )
    assert optimal.estimated_energy_nj <= greedy.estimated_energy_nj + 1e-9


def test_optimal_prefers_short_slices():
    """A history read is cheaper than re-executing a long chain, so the
    minimum-E_rc cut stays very short (the formation-mode ablation)."""
    template, context, load_pc, facts = setup_candidate(chain=8)
    optimal = form_slice_tree(
        template, context, load_pc, liveness=facts, mode=FORMATION_OPTIMAL,
    )
    assert optimal.tree.size <= 4


def test_unknown_mode_rejected():
    template, context, load_pc, facts = setup_candidate()
    try:
        form_slice_tree(template, context, load_pc, mode="bogus")
    except ValueError as error:
        assert "bogus" in str(error)
    else:
        raise AssertionError("expected ValueError")


def test_cut_positions_become_leaf_inputs():
    template, context, load_pc, facts = setup_candidate()
    result = form_slice_tree(
        template, context, load_pc, liveness=facts,
        mode=FORMATION_GREEDY, budget_nj=2.0,
    )
    # Per node: every source position is either a child or a leaf input.
    for node in result.tree.walk():
        positions = sorted(
            [li.position for li in node.leaf_inputs] + list(node.child_positions)
        )
        assert positions == list(range(len(positions)))
