"""Binary rewriting: RCMP swap, REC planting, slice embedding."""

import pytest

from repro.compiler import PassOptions, compile_amnesic, rewrite_binary
from repro.energy import EPITable, EnergyModel
from repro.errors import CompilationError
from repro.isa import Opcode, validate_program

from ..conftest import build_spill_kernel, tiny_config


def make_model():
    return EnergyModel(epi=EPITable.default(), config=tiny_config())


@pytest.fixture(scope="module")
def compiled():
    program = build_spill_kernel(iterations=10, chain=4, gap=4)
    return program, compile_amnesic(program, make_model())


def test_rewritten_binary_validates(compiled):
    _, result = compiled
    validate_program(result.binary.program)  # must not raise


def test_swapped_loads_become_rcmp(compiled):
    original, result = compiled
    rewritten = result.binary.program
    original_loads = len(original.static_loads())
    rcmps = rewritten.static_rcmp()
    assert len(rcmps) == len(result.rslices)
    remaining_loads = len(rewritten.static_loads())
    assert remaining_loads == original_loads - len(result.rslices)


def test_rec_planted_for_hist_slices(compiled):
    _, result = compiled
    rewritten = result.binary.program
    rec_count = sum(1 for i in rewritten if i.opcode is Opcode.REC)
    hist_slices = [rs for rs in result.rslices if rs.has_nonrecomputable_inputs]
    if hist_slices:
        assert rec_count >= len(hist_slices)
    # REC instructions only reference registered slices (validated), and
    # every hist leaf of every slice has a REC.
    planted = {(i.slice_id, i.leaf_id) for i in rewritten if i.opcode is Opcode.REC}
    for slice_id, info in result.binary.slices.items():
        for leaf_id in info.hist_leaf_ids:
            assert (slice_id, leaf_id) in planted


def test_slices_embedded_after_halt(compiled):
    _, result = compiled
    rewritten = result.binary.program
    halt_pcs = [
        pc for pc, instr in enumerate(rewritten.instructions)
        if instr.opcode is Opcode.HALT
    ]
    first_halt = halt_pcs[0]
    for region in rewritten.slices.values():
        assert region.start > first_halt


def test_slice_info_consistency(compiled):
    _, result = compiled
    for slice_id, info in result.binary.slices.items():
        assert info.slice_id == slice_id
        assert info.sreg_demand >= 1
        assert info.length == info.rslice.length


def test_labels_still_resolve_after_insertion(compiled):
    original, result = compiled
    rewritten = result.binary.program
    # Every original label survives and points at an instruction.
    for label in original.labels:
        assert label in rewritten.labels


def test_cannot_reannotate(compiled):
    _, result = compiled
    with pytest.raises(CompilationError):
        rewrite_binary(result.binary.program, result.rslices)


def test_duplicate_slice_targets_rejected():
    program = build_spill_kernel(iterations=6, chain=3, gap=2)
    result = compile_amnesic(program, make_model())
    if result.rslices:
        import dataclasses
        duplicated = [
            result.rslices[0],
            dataclasses.replace(result.rslices[0], slice_id=1),
        ]
        with pytest.raises(CompilationError):
            rewrite_binary(program, duplicated)
