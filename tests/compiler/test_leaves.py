"""Replay validation and liveness classification."""

from repro.compiler import (
    LeafInputKind,
    TemplateExtractor,
    classify_and_validate,
)
from repro.compiler.leaves import collect_liveness
from repro.compiler.cost import CostContext
from repro.compiler.formation import form_slice_tree
from repro.energy import EPITable, EnergyModel
from repro.isa import Opcode, ProgramBuilder
from repro.trace import profile_program

from ..conftest import build_accumulator_kernel, build_spill_kernel, tiny_config


def make_model():
    return EnergyModel(epi=EPITable.default(), config=tiny_config())


def formed_candidates(program):
    model = make_model()
    profile = profile_program(program, model)
    tracker = profile.dependence
    context = CostContext.from_trace(model, profile.loads, tracker)
    extractor = TemplateExtractor(tracker)
    full = {}
    for pc in program.static_loads():
        candidate = extractor.extract(pc)
        if candidate is not None:
            full[pc] = candidate.tree
    facts = collect_liveness(full, tracker)
    candidates = {
        pc: form_slice_tree(tree, context, pc, liveness=facts).tree
        for pc, tree in full.items()
    }
    return candidates, tracker, facts


def test_spill_kernel_validates():
    program = build_spill_kernel(iterations=10, chain=3, gap=4)
    candidates, tracker, _ = formed_candidates(program)
    reports = classify_and_validate(candidates, tracker)
    assert reports
    assert all(report.valid for report in reports.values())
    assert all(report.mismatches == 0 for report in reports.values())


def test_accumulator_kernel_validates():
    program = build_accumulator_kernel(iterations=10)
    candidates, tracker, _ = formed_candidates(program)
    reports = classify_and_validate(candidates, tracker)
    assert any(report.valid for report in reports.values())


def test_stale_region_read_rejected():
    """A load whose producer ran for a *different* element must fail.

    Iteration i stores f(i) to slot (i % 2) but reads slot ((i+1) % 2) —
    the value of the *previous* iteration; the latest checkpoint belongs
    to this iteration, so replay must mismatch and reject.
    """
    b = ProgramBuilder()
    slots = b.reserve(2)
    base, t, addr, v = b.regs("base", "t", "addr", "v")
    b.li(base, slots)
    b.st(0, base)
    b.st(0, base, offset=1)
    with b.loop("i", 0, 8) as i:
        b.mul(t, i, 13)
        b.op(Opcode.AND, addr, i, 1)
        b.add(addr, addr, base)
        b.st(t, addr)
        # read the OTHER slot (stale value)
        b.op(Opcode.AND, addr, i, 1)
        b.op(Opcode.XOR, addr, addr, 1)
        b.add(addr, addr, base)
        b.ld(v, addr)
    candidates, tracker, _ = formed_candidates(b.build())
    reports = classify_and_validate(candidates, tracker)
    # The stale read must be rejected; no surviving report may be a lie.
    stale_reports = [r for r in reports.values() if not r.valid]
    assert stale_reports, "the stale read was not rejected"


def test_live_seed_classified_live():
    """A chain seeded by a still-live register needs no checkpoint."""
    b = ProgramBuilder()
    cell = b.reserve(1)
    base, seed, t, v = b.regs("base", "seed", "t", "v")
    b.li(base, cell)
    with b.loop("i", 0, 6) as i:
        b.mul(seed, i, 3)
        b.op(Opcode.MOV, t, seed)
        b.add(t, t, 5)
        b.st(t, base)
        b.ld(v, base)  # seed register untouched since the chain ran
    candidates, tracker, _ = formed_candidates(b.build())
    reports = classify_and_validate(candidates, tracker)
    (report,) = [r for r in reports.values() if r.valid]
    kinds = [
        leaf_input.kind
        for node in report.tree.walk()
        for leaf_input in node.leaf_inputs
        if leaf_input.reg_index is not None
    ]
    assert kinds and all(kind is LeafInputKind.LIVE_REG for kind in kinds)


def test_clobbered_seed_classified_hist():
    b = ProgramBuilder()
    cell = b.reserve(1)
    base, seed, t, v = b.regs("base", "seed", "t", "v")
    b.li(base, cell)
    with b.loop("i", 0, 6) as i:
        b.mul(seed, i, 3)
        b.op(Opcode.MOV, t, seed)
        b.add(t, t, 5)
        b.st(t, base)
        b.op(Opcode.XOR, seed, seed, 12345)  # clobber before the read
        b.ld(v, base)
    candidates, tracker, facts = formed_candidates(b.build())
    reports = classify_and_validate(candidates, tracker)
    valid = [r for r in reports.values() if r.valid]
    assert valid
    hist_kinds = [
        leaf_input.kind
        for report in valid
        for node in report.tree.walk()
        for leaf_input in node.leaf_inputs
        if leaf_input.reg_index is not None
    ]
    assert LeafInputKind.HIST in hist_kinds


def test_missing_checkpoints_allowed():
    """Warm-up instances with no checkpoint yet are runtime fallbacks,
    not rejections."""
    program = build_spill_kernel(iterations=10, chain=3, gap=4)
    candidates, tracker, _ = formed_candidates(program)
    reports = classify_and_validate(candidates, tracker)
    for report in reports.values():
        assert report.valid
        # mismatches are fatal; missing checkpoints are not
        assert report.mismatches == 0


def test_operand_facts_edges_present():
    program = build_spill_kernel(iterations=10, chain=4, gap=4)
    model = make_model()
    profile = profile_program(program, model)
    extractor = TemplateExtractor(profile.dependence)
    full = {
        pc: extractor.extract(pc).tree
        for pc in program.static_loads()
        if extractor.extract(pc) is not None
    }
    facts = collect_liveness(full, profile.dependence)
    assert facts.edge_consistent  # chain edges observed
    # Every consistent edge key refers to a load we asked about.
    load_pcs = set(full)
    assert all(key[0] in load_pcs for key in facts.edge_consistent)
