"""Template extraction from dependence traces."""

from repro.energy import EPITable, EnergyModel
from repro.compiler import TemplateExtractor
from repro.isa import Opcode, ProgramBuilder
from repro.trace import profile_program

from ..conftest import build_accumulator_kernel, build_spill_kernel, tiny_config


def make_model():
    return EnergyModel(epi=EPITable.default(), config=tiny_config())


def extract_all(program, **kwargs):
    profile = profile_program(program, make_model())
    extractor = TemplateExtractor(profile.dependence, **kwargs)
    templates = {}
    for pc in program.static_loads():
        candidate = extractor.extract(pc)
        if candidate is not None:
            templates[pc] = candidate
    return templates, profile


def test_spill_reload_template_found():
    program = build_spill_kernel(iterations=8, chain=3, gap=4)
    templates, _ = extract_all(program)
    # Exactly one load (the reload) has a produced value; gap loads are
    # read-only input reads.
    assert len(templates) == 1
    (candidate,) = templates.values()
    assert candidate.instance_count == 8
    opcodes = [node.opcode for node in candidate.tree.walk()]
    assert Opcode.MUL in opcodes or Opcode.XOR in opcodes


def test_read_only_loads_are_rejected():
    b = ProgramBuilder()
    arr = b.data([1, 2, 3, 4], read_only=True)
    base, v, addr = b.regs("base", "v", "addr")
    b.li(base, arr)
    with b.loop("i", 0, 4) as i:
        b.add(addr, base, i)
        b.ld(v, addr)
    templates, _ = extract_all(b.build())
    assert templates == {}


def test_constant_store_gives_li_template():
    b = ProgramBuilder()
    cell = b.reserve(1)
    base, v = b.regs("base", "v")
    b.li(base, cell)
    with b.loop("i", 0, 4):
        b.st(99, base)
        b.ld(v, base)
    templates, _ = extract_all(b.build())
    (candidate,) = templates.values()
    assert candidate.tree.opcode is Opcode.LI
    assert candidate.tree.leaf_inputs[0].const_value == 99


def _assert_no_pc_repeats_on_any_path(node, path=()):
    assert node.pc not in path, f"pc {node.pc} repeats along a path"
    for child in node.children:
        _assert_no_pc_repeats_on_any_path(child, path + (node.pc,))


def test_loop_carried_chain_is_not_unrolled():
    """Accumulators must become leaves, not unbounded self-expansions.

    Diamonds (the same static pc on *different* paths) are legal; a pc
    repeating along one root-to-leaf path would unroll a loop-carried
    dependence, which Hist's latest-value semantics cannot replay.
    """
    program = build_accumulator_kernel(iterations=8)
    templates, _ = extract_all(program)
    (candidate,) = templates.values()
    _assert_no_pc_repeats_on_any_path(candidate.tree)


def test_node_budget_caps_extraction():
    program = build_spill_kernel(iterations=8, chain=6, gap=4)
    templates, _ = extract_all(program, max_nodes=2)
    # Template may be rejected or tiny, never above the cap.
    for candidate in templates.values():
        assert candidate.tree.size <= 2


def test_height_cap_limits_depth():
    program = build_spill_kernel(iterations=8, chain=6, gap=4)
    templates, _ = extract_all(program, max_height=1)
    for candidate in templates.values():
        assert candidate.tree.height <= 1


def test_unstable_producer_rejected():
    """A load fed alternately by two different static stores is rejected."""
    b = ProgramBuilder()
    cell = b.reserve(1)
    base, v, t = b.regs("base", "v", "t")
    b.li(base, cell)
    with b.loop("i", 0, 8) as i:
        from repro.isa import Opcode as Op
        b.op(Op.AND, t, i, 1)
        with b.when(Op.BEQ, t, 0):
            b.mul(t, i, 3)
            b.st(t, base)
        with b.when(Op.BEQ, t, 1):
            b.add(t, i, 100)
            b.st(t, base)
        b.ld(v, base)
    templates, _ = extract_all(b.build())
    assert templates == {}


def test_checkpoint_load_node_for_produced_chain_load():
    """A load in the chain becomes an expandable checkpoint-load node."""
    b = ProgramBuilder()
    cell_a = b.reserve(1)
    cell_b = b.reserve(1)
    ra, rb, v, t = b.regs("ra", "rb", "v", "t")
    b.li(ra, cell_a)
    b.li(rb, cell_b)
    with b.loop("i", 0, 6) as i:
        b.mul(t, i, 7)
        b.st(t, ra)          # produce a
        b.ld(t, ra)          # reload a (chain load)
        b.add(t, t, 1)
        b.st(t, rb)          # produce b = a + 1
        b.ld(v, rb)          # the candidate reload
    templates, _ = extract_all(b.build())
    assert templates
    found_checkpoint = any(
        node.is_checkpoint_load
        for candidate in templates.values()
        for node in candidate.tree.walk()
    )
    assert found_checkpoint


def test_no_instances_returns_none():
    program = build_spill_kernel(iterations=4, gap=2)
    profile = profile_program(program, make_model())
    extractor = TemplateExtractor(profile.dependence)
    assert extractor.extract(999) is None
