"""Dead-store elision analysis."""

from repro.compiler import compile_amnesic
from repro.compiler.deadstore import (
    analyse_dead_stores,
    analysis_for_compilation,
)
from repro.energy import EPITable, EnergyModel
from repro.isa import ProgramBuilder
from repro.trace import DependenceTracker, profile_program
from repro.machine import CPU

from ..conftest import build_spill_kernel, tiny_config


def make_model():
    return EnergyModel(epi=EPITable.default(), config=tiny_config())


def trace(program):
    tracker = DependenceTracker()
    CPU(program, make_model(), tracer=tracker).run()
    return tracker


def test_store_with_swapped_only_consumer_is_elidable():
    b = ProgramBuilder()
    cell = b.reserve(1)
    base, v = b.regs("base", "v")
    b.li(base, cell)
    with b.loop("i", 0, 4) as i:
        b.st(i, base)   # only consumer is the load below
        b.ld(v, base)
    tracker = trace(b.build())
    store_pc = next(r.pc for r in tracker.records if r.is_store)
    load_pc = next(r.pc for r in tracker.records if r.is_load)

    not_swapped = analyse_dead_stores(tracker, swapped_load_pcs=[])
    assert not not_swapped.elidable_sites

    swapped = analyse_dead_stores(tracker, swapped_load_pcs=[load_pc])
    (site,) = swapped.elidable_sites
    assert site.store_pc == store_pc
    assert swapped.elidable_fraction == 1.0


def test_store_with_unswapped_consumer_is_not_elidable():
    b = ProgramBuilder()
    cell = b.reserve(1)
    base, v, w = b.regs("base", "v", "w")
    b.li(base, cell)
    with b.loop("i", 0, 4) as i:
        b.st(i, base)
        b.ld(v, base)   # swapped
        b.ld(w, base)   # NOT swapped: still needs the stored value
    tracker = trace(b.build())
    load_pcs = sorted({r.pc for r in tracker.records if r.is_load})
    analysis = analyse_dead_stores(tracker, swapped_load_pcs=[load_pcs[0]])
    assert not analysis.elidable_sites


def test_never_read_stores_counted():
    b = ProgramBuilder()
    cell = b.reserve(4)
    base = b.reg("base")
    b.li(base, cell)
    with b.loop("i", 0, 4) as i:
        b.add(base, base, 0)  # keep the loop body non-trivial
        b.st(i, base, offset=0)
    tracker = trace(b.build())
    analysis = analyse_dead_stores(tracker, swapped_load_pcs=[])
    (site,) = analysis.sites
    # Three instances overwritten unread + the final one retired at end.
    assert site.never_read_instances == 4
    # A store nobody reads is trivially elidable.
    assert analysis.elidable_fraction == 1.0


def test_compilation_wrapper_on_spill_kernel():
    program = build_spill_kernel(iterations=10, chain=3, gap=4)
    compilation = compile_amnesic(program, make_model())
    analysis = analysis_for_compilation(compilation)
    assert analysis.total_dynamic_stores > 0
    # The spill store's only consumer is the swapped reload.
    assert analysis.elidable_dynamic_stores > 0
    assert analysis.potential_store_energy_nj(make_model()) > 0


def test_fraction_of_empty_trace_is_zero():
    analysis = analyse_dead_stores(DependenceTracker(), swapped_load_pcs=[])
    assert analysis.elidable_fraction == 0.0
