"""Composite kernel construction and execution."""

import pytest

from repro.energy import paper_energy_model
from repro.isa import validate_program
from repro.machine import CPU
from repro.workloads import KernelParams, RegionSpec, build_composite


def small_params(**overrides):
    base = dict(
        phases=3,
        region_specs=(
            RegionSpec(words=64, sites=2, repeats=2, chain_length=2,
                       nc_leaves=True, refill_every=1),
        ),
        input_words=64,
        stream_reads=4,
    )
    base.update(overrides)
    return KernelParams(**base)


def test_composite_builds_and_validates():
    program = build_composite("t", small_params())
    validate_program(program)


def test_composite_runs():
    program = build_composite("t", small_params())
    cpu = CPU(program, paper_energy_model())
    cpu.run()
    assert cpu.stats.loads_performed > 0
    assert cpu.stats.stores_performed > 0


def test_scale_changes_phase_count_only():
    small = build_composite("t", small_params(), scale=1.0)
    large = build_composite("t", small_params(), scale=2.0)
    assert len(small.instructions) == len(large.instructions)
    # More phases -> more dynamic work.
    cpu_small = CPU(small, paper_energy_model())
    cpu_small.run()
    cpu_large = CPU(large, paper_energy_model())
    cpu_large.run()
    assert cpu_large.stats.dynamic_instructions > cpu_small.stats.dynamic_instructions


def test_nc_leaves_requires_input():
    params = small_params(input_words=0, stream_reads=0)
    with pytest.raises(ValueError):
        build_composite("t", params)


def test_constant_fill_regions_need_no_input():
    params = KernelParams(
        phases=2,
        region_specs=(
            RegionSpec(words=64, sites=2, repeats=2, chain_length=1,
                       nc_leaves=False, refill_every=1, fill_constant=5),
        ),
    )
    program = build_composite("t", params)
    cpu = CPU(program, paper_energy_model())
    cpu.run()


def test_spill_component():
    params = KernelParams(
        phases=2,
        spill_iterations=4,
        spill_chain_length=3,
        spill_gap_reads=4,
        input_words=64,
    )
    program = build_composite("t", params)
    cpu = CPU(program, paper_energy_model())
    cpu.run()
    assert cpu.stats.stores_performed >= 8  # one spill per iteration


def test_chase_and_compute_components():
    params = KernelParams(
        phases=2,
        chase_nodes=64,
        chase_steps=8,
        compute_iterations=4,
        compute_ops=3,
    )
    program = build_composite("t", params)
    cpu = CPU(program, paper_energy_model())
    cpu.run()
    assert cpu.stats.loads_performed >= 16
