"""Pattern emitters produce valid, runnable code."""

import pytest

from repro.energy import EPITable, EnergyModel
from repro.isa import ProgramBuilder
from repro.machine import CPU
from repro.workloads.kernels.patterns import (
    PatternRegs,
    allocate_chase_input,
    allocate_input,
    allocate_region,
    emit_compute_block,
    emit_constant_fill,
    emit_pointer_chase,
    emit_region_fill,
    emit_scatter_reads,
    emit_seed_from_memory,
    emit_stream_reads,
    emit_value_chain,
)

from ..conftest import tiny_config


def run(builder):
    program = builder.build()
    cpu = CPU(program, EnergyModel(epi=EPITable.default(), config=tiny_config()))
    cpu.run()
    return cpu, program


def test_value_chain_varies_with_seed():
    b = ProgramBuilder()
    regs = PatternRegs.allocate(b)
    out = b.reserve(2)
    r_out = b.reg("out")
    b.li(r_out, out)
    b.li(regs.seed, 1)
    emit_value_chain(b, regs, length=4)
    b.st(regs.chain, r_out)
    b.li(regs.seed, 2)
    emit_value_chain(b, regs, length=4)
    b.st(regs.chain, r_out, offset=1)
    cpu, _ = run(b)
    assert cpu.memory.read(out) != cpu.memory.read(out + 1)


def test_value_chain_rejects_zero_length():
    b = ProgramBuilder()
    regs = PatternRegs.allocate(b)
    with pytest.raises(ValueError):
        emit_value_chain(b, regs, length=0)


def test_region_fill_writes_every_word():
    b = ProgramBuilder()
    regs = PatternRegs.allocate(b)
    region = allocate_region(b, "r", 16)
    b.li(regs.seed, 3)
    emit_value_chain(b, regs, length=2)
    emit_region_fill(b, regs, region, counter="f")
    cpu, _ = run(b)
    values = {cpu.memory.read(region.base + i) for i in range(16)}
    assert len(values) == 1  # phase-constant


def test_constant_fill():
    b = ProgramBuilder()
    regs = PatternRegs.allocate(b)
    region = allocate_region(b, "r", 8)
    emit_constant_fill(b, regs, region, 42, counter="f")
    cpu, _ = run(b)
    assert all(cpu.memory.read(region.base + i) == 42 for i in range(8))


def test_region_size_must_be_power_of_two():
    b = ProgramBuilder()
    with pytest.raises(ValueError):
        allocate_region(b, "bad", 24)
    with pytest.raises(ValueError):
        allocate_input(b, "bad", 24)
    with pytest.raises(ValueError):
        allocate_chase_input(b, "bad", 24)


def test_scatter_reads_emit_requested_sites():
    from repro.isa import Opcode

    b = ProgramBuilder()
    regs = PatternRegs.allocate(b)
    region = allocate_region(b, "r", 16)
    emit_constant_fill(b, regs, region, 1, counter="f")
    b.li(regs.lcg, 7)
    b.li(regs.sink, 0)
    emit_scatter_reads(b, regs, region, sites=3, repeats=2, counter="s")
    cpu, program = run(b)
    loads = [i for i in program if i.opcode is Opcode.LD]
    assert len(loads) == 3
    assert cpu.stats.loads_performed == 6


def test_scatter_hot_cold_requires_cold_every():
    b = ProgramBuilder()
    regs = PatternRegs.allocate(b)
    region = allocate_region(b, "r", 16)
    with pytest.raises(ValueError):
        emit_scatter_reads(b, regs, region, sites=1, repeats=1, counter="s",
                           hot_mask=3, cold_every=0)


def test_pointer_chase_visits_nodes():
    b = ProgramBuilder()
    regs = PatternRegs.allocate(b)
    chase = allocate_chase_input(b, "c", 16)
    cursor = b.reg("cursor")
    b.li(cursor, 1)
    b.li(regs.sink, 0)
    emit_pointer_chase(b, regs, chase, steps=8, counter="p", cursor=cursor)
    cpu, _ = run(b)
    assert cpu.stats.loads_performed == 8


def test_stream_reads_with_offset():
    b = ProgramBuilder()
    regs = PatternRegs.allocate(b)
    source = allocate_input(b, "s", 64)
    offset = b.reg("off")
    b.li(offset, 32)
    b.li(regs.sink, 0)
    emit_stream_reads(b, regs, source, count=4, counter="s", stride=2,
                      offset_reg=offset)
    cpu, _ = run(b)
    assert cpu.stats.loads_performed == 4


def test_seed_from_memory_loads_input():
    b = ProgramBuilder()
    regs = PatternRegs.allocate(b)
    source = allocate_input(b, "s", 8)
    index = b.reg("idx")
    b.li(index, 3)
    emit_seed_from_memory(b, regs, source, index)
    out = b.reserve(1)
    r_out = b.reg("out")
    b.li(r_out, out)
    b.st(regs.seed, r_out)
    cpu, _ = run(b)
    assert cpu.memory.read(out) == cpu.memory.read(source.base + 3)


def test_compute_block_is_memory_free():
    b = ProgramBuilder()
    regs = PatternRegs.allocate(b)
    b.li(regs.sink, 5)
    emit_compute_block(b, regs, iterations=4, ops_per_iteration=3, counter="c")
    cpu, _ = run(b)
    assert cpu.stats.loads_performed == 0
    assert cpu.stats.stores_performed == 0
