"""The 33-benchmark suite: structure and calibration flags."""

import pytest

from repro import compile_amnesic, paper_energy_model
from repro.isa import validate_program
from repro.machine import CPU
from repro.workloads import RESPONSIVE, all_specs, get, responsive_specs


def test_suite_has_33_benchmarks():
    """Paper Table 2 lists 33 benchmarks across four suites."""
    specs = all_specs()
    assert len(specs) == 33
    by_suite = {}
    for spec in specs:
        by_suite.setdefault(spec.suite, []).append(spec.name)
    assert len(by_suite["SPEC"]) == 10
    assert len(by_suite["NAS"]) == 4
    assert len(by_suite["PARSEC"]) == 12
    assert len(by_suite["Rodinia"]) == 7


def test_responsive_set_matches_paper():
    assert len(RESPONSIVE) == 11
    assert set(RESPONSIVE) == {spec.name for spec in responsive_specs()}
    for spec in responsive_specs():
        assert spec.responsive
        assert spec.calibration is not None


@pytest.mark.parametrize("name", [spec.name for spec in all_specs()])
def test_every_benchmark_builds_and_validates(name):
    program = get(name).instantiate(0.25)
    validate_program(program)


@pytest.mark.parametrize("name", RESPONSIVE)
def test_responsive_benchmarks_run_at_tiny_scale(name):
    program = get(name).instantiate(0.25)
    cpu = CPU(program, paper_energy_model())
    cpu.run()
    assert cpu.stats.loads_performed > 0


def test_unknown_benchmark_raises():
    with pytest.raises(KeyError):
        get("not_a_benchmark")


@pytest.mark.integration
@pytest.mark.parametrize("name", ["is", "bfs", "sr"])
def test_calibration_nc_flags(name):
    """Figure 7 majority flags hold for the flagship benchmarks."""
    spec = get(name)
    program = spec.instantiate(1.0)
    result = compile_amnesic(program, paper_energy_model())
    assert result.rslices
    with_nc = sum(1 for rs in result.rslices if rs.has_nonrecomputable_inputs)
    majority = with_nc > len(result.rslices) / 2
    assert majority == spec.calibration.nonrecomputable_majority


@pytest.mark.integration
@pytest.mark.parametrize("name", ["is", "bfs", "sr", "mcf"])
def test_calibration_slice_lengths(name):
    spec = get(name)
    program = spec.instantiate(1.0)
    result = compile_amnesic(program, paper_energy_model())
    for rslice in result.rslices:
        assert rslice.length <= spec.calibration.max_slice_length
