"""Workload registry and spec behaviour."""

import pytest

from repro.workloads import (
    CalibrationTargets,
    WorkloadRegistry,
    WorkloadSpec,
)
from repro.isa import Program


def make_spec(name="k"):
    return WorkloadSpec(
        name=name, suite="TEST", description="test kernel",
        build=lambda scale: Program(name),
    )


def test_register_and_get():
    registry = WorkloadRegistry()
    spec = registry.register(make_spec())
    assert registry.get("k") is spec
    assert len(registry) == 1


def test_duplicate_rejected():
    registry = WorkloadRegistry()
    registry.register(make_spec())
    with pytest.raises(ValueError):
        registry.register(make_spec())


def test_unknown_name_lists_known():
    registry = WorkloadRegistry()
    registry.register(make_spec())
    with pytest.raises(KeyError, match="known"):
        registry.get("missing")


def test_names_filtering():
    registry = WorkloadRegistry()
    registry.register(make_spec("a"))
    responsive = WorkloadSpec(
        name="b", suite="OTHER", description="d",
        build=lambda scale: Program("b"), responsive=True,
    )
    registry.register(responsive)
    assert registry.names() == ["a", "b"]
    assert registry.names(suite="OTHER") == ["b"]
    assert registry.names(responsive_only=True) == ["b"]


def test_instantiate_rejects_bad_scale():
    spec = make_spec()
    with pytest.raises(ValueError):
        spec.instantiate(0)
    with pytest.raises(ValueError):
        spec.instantiate(-1)


def test_calibration_targets_fields():
    targets = CalibrationTargets(
        swapped_levels=(50.0, 20.0, 30.0), max_slice_length=10,
        nonrecomputable_majority=True, high_value_locality=False,
    )
    assert targets.swapped_levels[2] == 30.0
    assert targets.edp_gain_compiler_percent is None
