"""Organic algorithm kernels: functional correctness + amnesic invariance."""

import pytest

from repro.compiler import compile_amnesic
from repro.core.execution import run_amnesic, run_classic
from repro.energy import EPITable, EnergyModel
from repro.machine import CPU
from repro.workloads.kernels.algorithms import ALGORITHMS

from ..conftest import tiny_config


def make_model():
    return EnergyModel(epi=EPITable.default(), config=tiny_config())


@pytest.mark.parametrize("name", sorted(ALGORITHMS))
def test_functional_output_matches_reference(name):
    """The interpreter computes what the Python reference computes."""
    program, result_base, expected = ALGORITHMS[name]()
    cpu = CPU(program, make_model())
    cpu.run()
    measured = cpu.memory.read_block(result_base, len(expected))
    assert [float(v) for v in measured] == pytest.approx(expected)


@pytest.mark.parametrize("name", sorted(ALGORITHMS))
def test_amnesic_execution_preserves_output(name):
    """Whatever the compiler swapped, the outputs must not change."""
    program, result_base, expected = ALGORITHMS[name]()
    model = make_model()
    compilation = compile_amnesic(program, model)
    amnesic = run_amnesic(compilation, "Compiler", model, verify=True)
    measured = amnesic.cpu.memory.read_block(result_base, len(expected))
    assert [float(v) for v in measured] == pytest.approx(expected)
    classic = run_classic(program, model)
    assert amnesic.cpu.memory.snapshot() == classic.cpu.memory.snapshot()


def test_loop_carried_algorithms_are_refused():
    """Fibonacci/histogram chains are loop-carried: the compiler must
    reject them rather than produce wrong recomputation."""
    model = make_model()
    for name in ("fibonacci", "histogram"):
        program, _, _ = ALGORITHMS[name]()
        compilation = compile_amnesic(program, model)
        for rslice in compilation.rslices:
            # No slice may checkpoint a swapped load (self-reference).
            assert rslice.load_pc not in {
                node.pc for node in rslice.root.walk() if node.is_checkpoint_load
            }


def test_fibonacci_values_are_exact():
    program, base, expected = ALGORITHMS["fibonacci"]()
    cpu = CPU(program, make_model())
    cpu.run()
    assert cpu.memory.read(base + 31) == 1346269  # fib(31)


def test_normalize_finds_the_loop_invariant_swap():
    """The spilled scale factor is organically swappable."""
    program, _, _ = ALGORITHMS["normalize"]()
    compilation = compile_amnesic(program, make_model())
    assert len(compilation.rslices) >= 1
    amnesic = run_amnesic(compilation, "Compiler", make_model(), verify=True)
    assert amnesic.stats.recomputations_fired > 0
