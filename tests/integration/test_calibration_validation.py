"""Cross-validation: stack distances predict the Table 5 residence split.

The workload calibration claims that region size against cache capacity
pins where swapped loads are serviced.  This test closes the loop from
first principles: the stack-distance profile of a benchmark's load
stream (a pure trace property, independent of the cache simulator) must
be consistent with the service levels the hierarchy actually reported.
"""

import pytest

from repro import paper_energy_model
from repro.machine import Level
from repro.trace import profile_program, summarise_trace
from repro.workloads import get

pytestmark = pytest.mark.integration

#: Harness geometry in lines (default_config: 16 L1 lines, 128 L2 lines).
L1_LINES = 16
L2_LINES = 128


@pytest.mark.parametrize("bench", ["is", "bfs", "mcf"])
def test_stack_distance_consistent_with_service_levels(bench):
    program = get(bench).instantiate(0.5)
    profile = profile_program(program, paper_energy_model())
    summary = summarise_trace(profile.dependence)
    fractions = profile.cpu.hierarchy.stats.load_fractions()

    # A fully-associative LRU bound: the measured L1 hit rate cannot
    # exceed the fraction of loads with stack distance < L1 lines by
    # much (set conflicts only push hits *down*).
    predicted_l1 = summary.load_reuse.fraction_within(L1_LINES)
    assert fractions[Level.L1] <= predicted_l1 + 0.12, (
        bench, fractions[Level.L1], predicted_l1)

    # And the L1+L2 coverage bounds the non-memory fraction likewise.
    predicted_l2 = summary.load_reuse.fraction_within(L2_LINES)
    measured_cached = fractions[Level.L1] + fractions[Level.L2]
    assert measured_cached <= predicted_l2 + 0.12, (
        bench, measured_cached, predicted_l2)


def test_working_sets_straddle_the_hierarchy():
    """mcf's footprint dwarfs L2; bfs's flag region nestles inside L1."""
    model = paper_energy_model()
    mcf = summarise_trace(
        profile_program(get("mcf").instantiate(0.5), model).dependence
    )
    assert mcf.working_set_lines > 4 * L2_LINES

    bfs = summarise_trace(
        profile_program(get("bfs").instantiate(0.5), model).dependence
    )
    # Most of bfs's *load traffic* is L1-coverable even though its total
    # footprint is larger.
    assert bfs.load_reuse.fraction_within(L1_LINES) > 0.75
