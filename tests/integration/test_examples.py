"""The fast examples must run end to end (smoke)."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"

pytestmark = pytest.mark.integration


def run_example(script, argv=()):
    path = EXAMPLES / script
    assert path.exists()
    saved_argv = sys.argv
    sys.argv = [str(path), *argv]
    try:
        runpy.run_path(str(path), run_name="__main__")
    finally:
        sys.argv = saved_argv


@pytest.mark.parametrize("script", ["quickstart.py", "organic_algorithms.py"])
def test_example_runs(script, capsys):
    run_example(script)
    out = capsys.readouterr().out
    assert out.strip()


def test_trace_inspection_example(tmp_path, capsys):
    trace = tmp_path / "trace.jsonl"
    run_example("trace_inspection.py", [str(trace)])
    out = capsys.readouterr().out
    assert "spans by self time" in out
    assert "RCMP decisions" in out
    assert "fired recomputations by residence level" in out
    assert trace.exists()
