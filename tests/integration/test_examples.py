"""The fast examples must run end to end (smoke)."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"

pytestmark = pytest.mark.integration


@pytest.mark.parametrize("script", ["quickstart.py", "organic_algorithms.py"])
def test_example_runs(script, capsys):
    path = EXAMPLES / script
    assert path.exists()
    saved_argv = sys.argv
    sys.argv = [str(path)]
    try:
        runpy.run_path(str(path), run_name="__main__")
    finally:
        sys.argv = saved_argv
    out = capsys.readouterr().out
    assert out.strip()
