"""Whole-pipeline integration invariants on harness-scale machinery."""

import pytest

from repro import evaluate_policies, paper_energy_model
from repro.workloads import get

pytestmark = pytest.mark.integration


@pytest.fixture(scope="module")
def is_results():
    """One shared evaluation of the 'is' benchmark at test scale."""
    program = get("is").instantiate(0.3)
    return evaluate_policies(program, model=paper_energy_model())


def test_all_policies_verify(is_results):
    for name, result in is_results.items():
        assert result.amnesic.stats.rcmp_encountered > 0, name


def test_memory_state_identical_across_policies(is_results):
    snapshots = {
        name: result.amnesic.cpu.memory.snapshot()
        for name, result in is_results.items()
    }
    classic = next(iter(is_results.values())).classic.cpu.memory.snapshot()
    for name, snapshot in snapshots.items():
        assert snapshot == classic, name


def test_oracle_at_least_matches_c_oracle(is_results):
    assert (
        is_results["Oracle"].edp_gain_percent
        >= is_results["C-Oracle"].edp_gain_percent - 1.0
    )


def test_flc_beats_llc(is_results):
    """FLC > LLC, the paper's consistent section 5.1 finding."""
    assert is_results["FLC"].edp_gain_percent > is_results["LLC"].edp_gain_percent


def test_memory_bound_benchmark_gains(is_results):
    assert is_results["Compiler"].edp_gain_percent > 10.0


def test_energy_and_time_both_improve(is_results):
    result = is_results["Compiler"]
    assert result.energy_gain_percent > 0
    assert result.time_gain_percent > 0


def test_sr_inversion():
    """The paper's signature sr result: Compiler degrades EDP while the
    miss-driven policies still gain."""
    program = get("sr").instantiate(1.0)
    results = evaluate_policies(
        program, policies=("Compiler", "FLC"), model=paper_energy_model()
    )
    assert results["Compiler"].edp_gain_percent < results["FLC"].edp_gain_percent
    assert results["FLC"].edp_gain_percent > 0


def test_compute_bound_benchmark_is_unresponsive():
    program = get("blackscholes").instantiate(0.5)
    results = evaluate_policies(
        program, policies=("Compiler",), model=paper_energy_model()
    )
    assert abs(results["Compiler"].edp_gain_percent) < 5.0
