"""Layering lint: the repo's own split holds, and violations are caught."""

import textwrap

from repro.staticcheck.layering import (
    LAYERING_RULES,
    LayerRule,
    build_import_graph,
    check_layering,
    default_package_root,
)


def test_the_repo_itself_is_clean():
    """The gate behind `repro lint --self`: every rule holds today."""
    report = check_layering(default_package_root())
    assert report.ok, "\n".join(str(f) for f in report.findings)
    assert report.findings == []


def test_rules_describe_real_packages():
    modules = set(build_import_graph(default_package_root()).modules)
    for rule in LAYERING_RULES:
        assert any(
            module == rule.scope or module.startswith(rule.scope + ".")
            for module in modules
        ), f"rule {rule.name} scopes nothing"


def _write_package(tmp_path, files):
    root = tmp_path / "pkg"
    root.mkdir()
    (root / "__init__.py").write_text("")
    for name, body in files.items():
        path = root / name
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(body))
    return str(root)


def test_forbidden_import_is_reported(tmp_path):
    root = _write_package(
        tmp_path,
        {"a.py": "import pkg.b\n", "b.py": "x = 1\n"},
    )
    rule = LayerRule(
        name="a-keeps-out-of-b", scope="pkg.a", forbidden=("pkg.b",),
        reason="test",
    )
    report = check_layering(root, rules=(rule,))
    assert [f.rule_id for f in report.findings] == ["LAY500"]
    assert "pkg.a:1 imports pkg.b" in report.findings[0].message


def test_relative_imports_resolve_against_the_package(tmp_path):
    root = _write_package(
        tmp_path,
        {
            "a.py": "x = 1\n",
            "sub/__init__.py": "",
            "sub/mod.py": "from ..a import x\n",
        },
    )
    rule = LayerRule(
        name="sub-keeps-out-of-a", scope="pkg.sub", forbidden=("pkg.a",),
        reason="test",
    )
    report = check_layering(root, rules=(rule,))
    assert [f.rule_id for f in report.findings] == ["LAY500"]


def test_type_checking_imports_do_not_count(tmp_path):
    root = _write_package(
        tmp_path,
        {
            "a.py": """\
                from typing import TYPE_CHECKING

                if TYPE_CHECKING:
                    import pkg.b
            """,
            "b.py": "x = 1\n",
        },
    )
    rule = LayerRule(
        name="a-keeps-out-of-b", scope="pkg.a", forbidden=("pkg.b",),
        reason="test",
    )
    assert check_layering(root, rules=(rule,)).findings == []


def test_function_local_imports_do_not_count(tmp_path):
    root = _write_package(
        tmp_path,
        {
            "a.py": """\
                def lazy():
                    import pkg.b
                    return pkg.b
            """,
            "b.py": "x = 1\n",
        },
    )
    rule = LayerRule(
        name="a-keeps-out-of-b", scope="pkg.a", forbidden=("pkg.b",),
        reason="test",
    )
    assert check_layering(root, rules=(rule,)).findings == []


def test_import_cycle_is_reported(tmp_path):
    root = _write_package(
        tmp_path,
        {
            "a.py": "import pkg.b\n",
            "b.py": "import pkg.c\n",
            "c.py": "import pkg.a\n",
        },
    )
    report = check_layering(root, rules=())
    assert [f.rule_id for f in report.findings] == ["LAY501"]
    assert "pkg.a -> pkg.b -> pkg.c" in report.findings[0].message


def test_module_importing_itself_is_not_a_cycle(tmp_path):
    """Self-imports resolve back to the importer and are ignored."""
    root = _write_package(tmp_path, {"a.py": "from pkg import a\n"})
    assert check_layering(root, rules=()).findings == []
