"""The `repro lint` command: sweeps, cross-check, exit codes, artifacts."""

import json
import os
import shutil

import pytest

from repro.cli import main
from repro.staticcheck.lint import AGREE, LintSettings, run_lint

CORPUS_DIR = "tests/corpus"


def test_self_lint_is_clean(capsys):
    assert main(["lint", "--self"]) == 0
    out = capsys.readouterr().out
    assert "layering: ok" in out
    assert "0 error(s)" in out


def test_kernel_subset_lints_clean(capsys):
    assert main(["lint", "--benchmarks", "is", "--no-corpus"]) == 0
    out = capsys.readouterr().out
    assert "kernel is: ok" in out


def test_unknown_benchmark_is_a_usage_error(capsys):
    assert main(["lint", "--benchmarks", "nope", "--no-corpus"]) == 2
    assert "unknown benchmark" in capsys.readouterr().err


def test_missing_corpus_dir_is_a_usage_error(capsys):
    assert main(["lint", "--no-kernels", "--corpus-dir", "/no/such/dir"]) == 2
    assert "not found" in capsys.readouterr().err


def test_json_output_parses(capsys):
    assert main(
        ["lint", "--benchmarks", "is", "--no-corpus", "--format", "json"]
    ) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is True
    assert payload["errors"] == 0
    names = [p["program"] for p in payload["programs"]]
    assert names == ["is"]
    assert payload["programs"][0]["kind"] == "kernel"
    assert "layering" in payload


def test_region_artifacts_are_written(tmp_path, capsys):
    out_dir = tmp_path / "regions"
    assert main(
        [
            "lint", "--benchmarks", "is", "--no-corpus",
            "--regions-out", str(out_dir),
        ]
    ) == 0
    capsys.readouterr()
    # The analyzed artifact is the compiled binary, hence the suffix.
    names = sorted(os.listdir(out_dir))
    assert names == ["is_amnesic.regions.json"]
    with open(out_dir / names[0]) as handle:
        payload = json.load(handle)
    assert payload["summary"]["batchable_regions"] > 0


@pytest.fixture()
def small_corpus(tmp_path):
    """A one-entry corpus so corpus-facing paths stay fast."""
    source = next(
        name
        for name in sorted(os.listdir(CORPUS_DIR))
        if name.startswith("clobbered-leaf")
    )
    shutil.copy(os.path.join(CORPUS_DIR, source), tmp_path / source)
    return str(tmp_path)


def test_corpus_cross_check_agrees(small_corpus):
    settings = LintSettings(
        include_kernels=False, corpus_dir=small_corpus, cross_check=True
    )
    run = run_lint(settings)
    assert run.ok
    (result,) = run.results
    assert result.kind == "corpus"
    assert result.cross_check == AGREE
    assert result.slice_count > 0
    assert result.to_json()["cross_check"] == AGREE


def test_corpus_cli_sweep(small_corpus, capsys):
    assert main(
        ["lint", "--no-kernels", "--corpus-dir", small_corpus, "--cross-check"]
    ) == 0
    out = capsys.readouterr().out
    assert "corpus clobbered-leaf: ok" in out
