"""Region analysis: run splitting, fault kinds, and the JSON artifact."""

import json
import os

from repro.isa import (
    Imm,
    Opcode,
    Program,
    Reg,
    SReg,
    SliceRegion,
    alu,
    branch,
    halt,
    li,
    load,
    rcmp,
    rtn,
    store,
)
from repro.staticcheck.regions import (
    KIND_FAULTING,
    KIND_MEMORY,
    KIND_PURE,
    REGION_SCHEMA,
    REGION_SCHEMA_VERSION,
    analyze_regions,
    describe,
    write_region_artifact,
)


def mixed_program() -> Program:
    program = Program("mixed")
    program.append(li(Reg(1), 4))                                # 0 ┐ pure run
    program.append(alu(Opcode.ADD, Reg(2), Reg(1), Imm(1)))      # 1 ┘
    program.append(branch(Opcode.BEQ, Reg(2), Imm(0), "end"))    # 2 control
    program.append(store(Reg(2), Reg(1), 0))                     # 3 ┐ faulting
    program.append(alu(Opcode.DIV, Reg(3), Reg(2), Imm(2)))      # 4 ┘ run
    program.add_label("end", 5)
    program.append(halt())                                       # 5 control
    return program


def test_runs_split_at_control_and_classify_by_fault_surface():
    analysis = analyze_regions(mixed_program())
    spans = {(r.start, r.end): r for r in analysis.regions}
    assert set(spans) == {(0, 2), (3, 5)}
    assert spans[(0, 2)].kind == KIND_PURE
    # One memory op plus a trapping DIV: faulting, not just memory.
    assert spans[(3, 5)].kind == KIND_FAULTING
    assert spans[(3, 5)].memory_ops == 1
    assert spans[(3, 5)].faultable_ops == 2


def test_memory_only_run_is_kind_memory():
    program = Program("mem")
    program.append(load(Reg(1), Reg(2), 0))
    program.append(store(Reg(1), Reg(2), 8))
    program.append(halt())
    analysis = analyze_regions(program)
    (region,) = analysis.batchable_regions
    assert region.kind == KIND_MEMORY
    assert (region.start, region.end) == (0, 2)


def test_amnesic_opcodes_break_runs_and_slices_are_tagged():
    program = Program("amnesic")
    program.append(li(Reg(1), 5))                                        # 0
    program.append(rcmp(Reg(2), Reg(1), 0, slice_id=0, target="rs"))     # 1
    program.append(alu(Opcode.ADD, Reg(3), Reg(2), Imm(1)))              # 2
    program.append(halt())                                               # 3
    program.add_label("rs", 4)
    program.append(alu(Opcode.LI, SReg(0), Imm(7)))                      # 4
    program.append(alu(Opcode.ADD, SReg(1), SReg(0), Imm(1)))            # 5
    program.append(rtn(0, SReg(1)))                                      # 6
    program.register_slice(
        SliceRegion(slice_id=0, entry_label="rs", start=4, end=7, load_pc=1)
    )
    analysis = analyze_regions(program)
    spans = {(r.start, r.end): r for r in analysis.regions}
    # RCMP at 1 splits the main region; RTN terminates the slice run.
    assert set(spans) == {(0, 1), (2, 3), (4, 6)}
    assert not spans[(0, 1)].in_slice
    assert spans[(4, 6)].in_slice
    assert spans[(4, 6)].slice_id == 0
    # Coverage counts only runs of length >= 2.
    assert analysis.batchable_instructions == 2
    assert analysis.coverage == 2 / 7
    assert "batchable region" in describe(analysis)


def test_region_artifact_round_trips_with_schema(tmp_path):
    analysis = analyze_regions(mixed_program())
    path = write_region_artifact(str(tmp_path), analysis)
    assert os.path.basename(path) == "mixed.regions.json"
    with open(path) as handle:
        payload = json.load(handle)
    assert payload["schema"] == REGION_SCHEMA
    assert payload["schema_version"] == REGION_SCHEMA_VERSION
    assert payload["program"] == "mixed"
    assert payload["summary"] == analysis.summary()
    assert [r["start"] for r in payload["regions"]] == [0, 3]
    # No stray temp files from the atomic write.
    assert sorted(os.listdir(tmp_path)) == ["mixed.regions.json"]


def test_artifact_name_is_sanitized(tmp_path):
    program = mixed_program()
    program.name = "suite/kernel+variant"
    path = write_region_artifact(str(tmp_path), analyze_regions(program))
    assert os.path.basename(path) == "suite_kernel_variant.regions.json"


def test_empty_program_has_zero_coverage():
    analysis = analyze_regions(Program("empty"))
    assert analysis.regions == []
    assert analysis.coverage == 0.0
    assert analysis.max_region_length == 0
