"""Dataflow framework: reaching defs, liveness, constants, memory chains."""

from repro.isa import (
    Imm,
    Opcode,
    Program,
    Reg,
    alu,
    branch,
    halt,
    li,
    load,
    store,
)
from repro.staticcheck.cfg import build_cfg
from repro.staticcheck.dataflow import (
    ConstantFacts,
    Liveness,
    ReachingDefinitions,
    def_use_chains,
    memory_def_use,
)


def diamond() -> Program:
    """r1 defined at entry, maybe redefined on one arm."""
    program = Program("diamond")
    program.append(li(Reg(1), 1))                              # 0
    program.append(branch(Opcode.BEQ, Reg(2), Imm(0), "merge"))  # 1
    program.append(li(Reg(1), 2))                              # 2
    program.add_label("merge", 3)
    program.append(alu(Opcode.ADD, Reg(3), Reg(1), Imm(0)))    # 3
    program.append(halt())                                     # 4
    return program


def test_reaching_definitions_merge_at_join():
    reaching = ReachingDefinitions(build_cfg(diamond()))
    assert reaching.defs_reaching(3, 1) == frozenset({0, 2})
    # Inside the taken arm only the entry def of r1 is visible.
    assert reaching.defs_reaching(2, 1) == frozenset({0})
    # r2 is never written: only the synthetic entry value reaches.
    assert reaching.defs_reaching(1, 2) == frozenset()


def test_def_use_chains_cover_every_register_read():
    chains = def_use_chains(build_cfg(diamond()))
    by_use = {(chain.pc, chain.reg): chain.defs for chain in chains}
    assert by_use[(3, 1)] == frozenset({0, 2})
    assert by_use[(1, 2)] == frozenset()


def test_liveness_kills_at_redefinition():
    liveness = Liveness(build_cfg(diamond()))
    # r2 feeds the branch; it must be live on entry.
    assert 2 in liveness.live_in[0]
    # r1 is read at the join, so live across the branch...
    assert 1 in liveness.live_in[1]
    # ...but pc 2 redefines it, so the inbound value is dead there.
    assert 1 not in liveness.live_in[2]
    # Nothing is live out of the final use.
    assert liveness.live_out[3] == frozenset()


def test_constant_folding_through_isa_semantics():
    program = Program("consts")
    program.append(li(Reg(1), 5))                               # 0
    program.append(alu(Opcode.ADD, Reg(2), Reg(1), Imm(3)))     # 1
    program.append(alu(Opcode.MUL, Reg(3), Reg(2), Reg(0)))     # 2 (r0 == 0)
    program.append(halt())                                      # 3
    consts = ConstantFacts(build_cfg(program))
    assert consts.value_at(1, 1) == 5
    assert consts.value_at(2, 2) == 8
    assert consts.value_at(3, 3) == 0
    assert consts.value_at(0, 0) == 0  # r0 hardwired


def test_constant_merge_of_disagreeing_values_is_unknown():
    program = diamond()
    consts = ConstantFacts(build_cfg(program))
    # r1 is 1 on one path and 2 on the other: unknown at the join.
    assert consts.value_at(3, 1) is None
    # The untaken-arm value is still known inside the arm.
    assert consts.value_at(2, 1) == 1


def test_resolve_address_for_loads_and_stores():
    program = Program("addresses")
    program.append(li(Reg(1), 16))                 # 0
    program.append(load(Reg(2), Reg(1), 4))        # 1  -> address 20
    program.append(store(Reg(2), Reg(1), 8))       # 2  -> address 24
    program.append(load(Reg(3), Reg(2), 0))        # 3  -> loaded base: unknown
    program.append(halt())
    consts = ConstantFacts(build_cfg(program))
    assert consts.resolve_address(1) == 20
    assert consts.resolve_address(2) == 24
    assert consts.resolve_address(3) is None
    assert consts.resolve_address(0) is None  # not a memory instruction


def test_memory_def_use_pairs_loads_with_feeding_stores():
    program = Program("memdu")
    program.append(li(Reg(1), 16))                 # 0
    program.append(store(Reg(1), Reg(1), 0))       # 1  ST @16
    program.append(store(Reg(1), Reg(1), 8))       # 2  ST @24
    program.append(load(Reg(2), Reg(1), 0))        # 3  LD @16
    program.append(store(Reg(1), Reg(2), 0))       # 4  ST @unresolvable
    program.append(load(Reg(3), Reg(1), 8))        # 5  LD @24
    program.append(halt())
    chains = {c.load_pc: c for c in memory_def_use(build_cfg(program))}
    assert chains[3].address == 16
    # The same-address store feeds; the unresolvable store may alias.
    assert chains[3].store_pcs == frozenset({1, 4})
    assert chains[5].store_pcs == frozenset({2, 4})
