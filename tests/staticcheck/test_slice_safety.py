"""Slice-safety rules: clean artifacts verify, tampered ones are flagged."""

import copy
import dataclasses

import pytest

from repro.compiler.amnesic_pass import compile_amnesic
from repro.compiler.cost import Cost
from repro.compiler.deadstore import analysis_for_compilation
from repro.fuzz.corpus import load_corpus
from repro.fuzz.oracle import default_fuzz_model
from repro.fuzz.spec import materialize
from repro.isa import (
    Imm,
    Opcode,
    Program,
    Reg,
    SReg,
    SliceRegion,
    alu,
    branch,
    halt,
    li,
    rcmp,
    rtn,
)
from repro.staticcheck.rules import check_program, verify_compilation

CORPUS_DIR = "tests/corpus"


@pytest.fixture(scope="module")
def model():
    return default_fuzz_model()


@pytest.fixture(scope="module")
def compiled(model):
    """One real artifact with Hist leaves (the clobbered-leaf corpus entry)."""
    entry = next(
        e for e in load_corpus(CORPUS_DIR) if e.name == "clobbered-leaf"
    )
    program = materialize(entry.spec)
    compilation = compile_amnesic(program, model)
    assert compilation.rslices, "fixture entry must select at least one slice"
    return program, compilation


def _tampered(compiled):
    program, compilation = compiled
    return program, copy.deepcopy(compilation)


# ----------------------------------------------------------------------
# Clean artifacts.
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "entry", load_corpus(CORPUS_DIR), ids=lambda entry: entry.name
)
def test_every_corpus_artifact_verifies_clean(entry, model):
    if entry.expect == "classic-fault":
        pytest.skip("classic run faults by design; no artifact to verify")
    program = materialize(entry.spec)
    compilation = compile_amnesic(program, model)
    report = verify_compilation(entry.name, program, compilation, model)
    assert report.ok, "\n".join(str(f) for f in report.errors)


# ----------------------------------------------------------------------
# Program-level rules.
# ----------------------------------------------------------------------
def test_unreachable_code_is_an_info_finding():
    program = Program("dead")
    program.append(halt())
    program.append(li(Reg(1), 1))  # unreachable
    program.append(halt())
    report = check_program("dead", program)
    assert report.ok  # CFG001 is informational
    assert "CFG001" in report.rule_ids()


def test_fallthrough_into_slice_is_an_error():
    program = Program("leaky")
    program.append(li(Reg(1), 5))
    program.append(rcmp(Reg(2), Reg(1), 0, slice_id=0, target="rslice_0"))
    program.append(li(Reg(3), 1))  # falls through into the slice body
    program.add_label("rslice_0", 3)
    program.append(alu(Opcode.LI, SReg(0), Imm(7)))
    program.append(rtn(0, SReg(0)))
    program.register_slice(
        SliceRegion(slice_id=0, entry_label="rslice_0", start=3, end=5, load_pc=1)
    )
    report = check_program("leaky", program)
    assert not report.ok
    assert "CFG002" in report.rule_ids()


def test_off_end_branch_is_a_warning():
    program = Program("off")
    program.add_label("end", 2)
    program.append(branch(Opcode.BEQ, Reg(1), Imm(0), "end"))
    program.append(halt())
    report = check_program("off", program)
    assert report.ok  # warnings do not gate
    assert "CFG003" in report.rule_ids()


# ----------------------------------------------------------------------
# Tampered artifacts: each mutation trips its rule.
# ----------------------------------------------------------------------
def _rules_after(program, compilation, model, deadstores=None):
    report = verify_compilation(
        "tampered", program, compilation, model, deadstores=deadstores
    )
    assert not report.ok
    return report.rule_ids()


def test_mutated_main_instruction_trips_rewrite_shape(compiled, model):
    program, compilation = _tampered(compiled)
    binary = compilation.binary.program
    swapped = set(compilation.swapped_load_pcs)
    pc = next(
        pc
        for pc, ins in enumerate(binary.instructions)
        if binary.slice_containing(pc) is None
        and ins.opcode is Opcode.ADD
        and pc not in swapped
    )
    original = binary.instructions[pc]
    binary.instructions[pc] = dataclasses.replace(original, opcode=Opcode.SUB)
    assert "SLC105" in _rules_after(program, compilation, model)


def test_dropped_rec_trips_slice_closure(compiled, model):
    program, compilation = _tampered(compiled)
    binary = compilation.binary.program
    rec_pc = next(
        pc
        for pc, ins in enumerate(binary.instructions)
        if ins.opcode is Opcode.REC
    )
    del binary.instructions[rec_pc]
    # Dropping an instruction shifts every later pc; labels and regions
    # now lie, so expect the shape/closure family to object loudly.
    rules = _rules_after(program, compilation, model)
    assert "SLC103" in rules or "SLC105" in rules


def test_corrupted_slice_body_trips_region_rules(compiled, model):
    program, compilation = _tampered(compiled)
    binary = compilation.binary.program
    region = next(iter(binary.slices.values()))
    # Return a scratch register the slice never defined.
    binary.instructions[region.end - 1] = rtn(region.slice_id, SReg(97))
    rules = _rules_after(program, compilation, model)
    assert "SLC101" in rules


def test_rewired_region_owner_trips_rcmp_wiring(compiled, model):
    program, compilation = _tampered(compiled)
    binary = compilation.binary.program
    region = next(iter(binary.slices.values()))
    region.load_pc = region.load_pc + 1
    rules = _rules_after(program, compilation, model)
    assert "SLC102" in rules


def test_lowering_divergence_trips_slc106(compiled, model):
    program, compilation = _tampered(compiled)
    binary = compilation.binary.program
    region = next(iter(binary.slices.values()))
    body_pc = region.start
    instruction = binary.instructions[body_pc]
    binary.instructions[body_pc] = dataclasses.replace(
        instruction, dest=SReg(83)
    )
    rules = _rules_after(program, compilation, model)
    assert "SLC106" in rules


def test_forged_cost_trips_cst200(compiled, model):
    program, compilation = _tampered(compiled)
    rslice = compilation.rslices[0]
    forged = Cost(
        energy_nj=rslice.selection_cost.energy_nj * 2,
        time_ns=rslice.selection_cost.time_ns,
    )
    compilation.rslices[0] = dataclasses.replace(rslice, selection_cost=forged)
    assert "CST200" in _rules_after(program, compilation, model)


def test_tightened_bounds_trip_cst201(compiled, model):
    program, compilation = _tampered(compiled)
    compilation.options = dataclasses.replace(compilation.options, max_nodes=0)
    assert "CST201" in _rules_after(program, compilation, model)


def test_stale_deadstore_swap_set_trips_dst300(compiled, model):
    program, compilation = _tampered(compiled)
    analysis = analysis_for_compilation(compilation)
    stale = dataclasses.replace(analysis, swapped_load_pcs=frozenset())
    assert "DST300" in _rules_after(
        program, compilation, model, deadstores=stale
    )


def test_budget_violation_trips_cst200(compiled, model):
    program, compilation = _tampered(compiled)
    rslice = compilation.rslices[0]
    # Claim the load was nearly free: selection can no longer beat it.
    cheap = Cost(energy_nj=0.0, time_ns=0.0)
    compilation.rslices[0] = dataclasses.replace(
        rslice, estimated_load_cost=cheap
    )
    assert compilation.options.selection == "probabilistic"
    assert "CST200" in _rules_after(program, compilation, model)
