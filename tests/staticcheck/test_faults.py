"""The deliberately broken passes are each caught by their expected rule."""

import pytest

from repro.staticcheck.diagnostics import RULES, Severity
from repro.staticcheck.faults import BROKEN_PASSES
from repro.staticcheck.lint import LintSettings, prove_rules

CORPUS_DIR = "tests/corpus"

EXPECTED = {
    "alias-blind-deadstores": "DST300",
    "amortization-dropping-coster": "CST200",
    "clobber-blind-classifier": "SLC104",
    "rec-misplacing-rewriter": "SLC103",
}


def test_registry_shape():
    assert {name: rule for name, (rule, _) in BROKEN_PASSES.items()} == EXPECTED
    for rule_id, _ in BROKEN_PASSES.values():
        assert RULES[rule_id].severity is Severity.ERROR


@pytest.fixture(scope="module")
def outcomes():
    settings = LintSettings(corpus_dir=CORPUS_DIR, prove_rules=True)
    return prove_rules(settings)


def test_every_broken_pass_is_caught(outcomes):
    assert {o.name for o in outcomes} == set(EXPECTED)
    for outcome in outcomes:
        assert outcome.ok, (
            f"broken pass {outcome.name} was not flagged with "
            f"{outcome.expected_rule} on any corpus program "
            f"({outcome.attempted} attempted)"
        )
        assert outcome.expected_rule == EXPECTED[outcome.name]
        assert outcome.expected_rule in outcome.rules_seen


def test_outcomes_serialize(outcomes):
    for outcome in outcomes:
        payload = outcome.to_json()
        assert payload["ok"] is True
        assert payload["pass"] == outcome.name
        assert payload["triggered_on"] == outcome.triggered_on
