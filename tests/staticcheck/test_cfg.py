"""CFG construction: edge kinds, blocks, and whole-corpus invariants."""

import pytest

from repro.fuzz.corpus import load_corpus
from repro.fuzz.oracle import default_fuzz_model
from repro.fuzz.spec import materialize
from repro.compiler.amnesic_pass import compile_amnesic
from repro.isa import (
    Imm,
    Instruction,
    Opcode,
    Program,
    Reg,
    SReg,
    SliceRegion,
    alu,
    branch,
    halt,
    li,
    rcmp,
    rtn,
)
from repro.staticcheck.cfg import build_cfg

CORPUS_DIR = "tests/corpus"


def straight_line() -> Program:
    program = Program("straight")
    program.append(li(Reg(1), 1))
    program.append(alu(Opcode.ADD, Reg(2), Reg(1), Imm(1)))
    program.append(halt())
    return program


def test_straight_line_is_one_block():
    cfg = build_cfg(straight_line())
    assert len(cfg.blocks) == 1
    assert cfg.blocks[0].start == 0 and cfg.blocks[0].end == 3
    assert cfg.successors[0] == [1]
    assert cfg.successors[1] == [2]
    assert cfg.successors[2] == []  # HALT ends execution
    assert all(edge.kind == "fall" for edge in cfg.edges)


def test_branch_has_fall_and_target_edges():
    program = Program("diamond")
    program.append(li(Reg(1), 1))
    program.append(branch(Opcode.BEQ, Reg(1), Imm(0), "merge"))
    program.append(li(Reg(2), 2))
    program.add_label("merge", 3)
    program.append(halt())
    cfg = build_cfg(program)
    kinds = {(e.src, e.dst): e.kind for e in cfg.edges}
    assert kinds[(1, 2)] == "fall"
    assert kinds[(1, 3)] == "branch"
    # The branch target starts a new block; so does the fallthrough.
    assert cfg.block_of[0] == cfg.block_of[1]
    assert cfg.block_of[2] != cfg.block_of[1]
    assert cfg.block_of[3] != cfg.block_of[2]
    merge = cfg.blocks[cfg.block_of[3]]
    assert sorted(merge.predecessors) == sorted(
        {cfg.block_of[1], cfg.block_of[2]}
    )


def test_jr_goes_to_every_return_site():
    program = Program("calls")
    program.add_label("sub", 3)
    program.append(Instruction(Opcode.JAL, dest=Reg(7), target="sub"))
    program.append(Instruction(Opcode.JAL, dest=Reg(7), target="sub"))
    program.append(halt())
    program.append(Instruction(Opcode.JR, srcs=(Reg(7),)))
    cfg = build_cfg(program)
    kinds = {(e.src, e.dst): e.kind for e in cfg.edges}
    assert kinds[(0, 3)] == "call"
    assert kinds[(1, 3)] == "call"
    # JR is approximated by the pc after every JAL.
    assert sorted(cfg.successors[3]) == [1, 2]
    assert all(kinds[(3, dst)] == "return" for dst in cfg.successors[3])


def amnesic_program() -> Program:
    program = Program("amnesic")
    program.append(li(Reg(1), 5))
    program.append(rcmp(Reg(2), Reg(1), 0, slice_id=0, target="rslice_0"))
    program.append(halt())
    program.add_label("rslice_0", 3)
    program.append(alu(Opcode.LI, SReg(0), Imm(7)))
    program.append(rtn(0, SReg(0)))
    program.register_slice(
        SliceRegion(slice_id=0, entry_label="rslice_0", start=3, end=5, load_pc=1)
    )
    return program


def test_rcmp_and_rtn_edges():
    cfg = build_cfg(amnesic_program())
    kinds = {(e.src, e.dst): e.kind for e in cfg.edges}
    assert kinds[(1, 2)] == "fall"
    assert kinds[(1, 3)] == "rcmp"
    # The slice's RTN resumes at the RCMP's fallthrough.
    assert kinds[(4, 2)] == "rtn"
    # Slice regions form their own blocks.
    assert cfg.block_of[3] == cfg.block_of[4]
    assert cfg.block_of[2] != cfg.block_of[3]


def test_off_end_transfers_are_recorded_not_fatal():
    program = Program("off-end")
    program.add_label("end", 2)
    program.append(branch(Opcode.BEQ, Reg(1), Imm(0), "end"))
    program.append(alu(Opcode.ADD, Reg(1), Reg(1), Imm(1)))
    cfg = build_cfg(program)
    # Both the branch (to pc 2 == size) and the trailing ALU fall off.
    assert cfg.off_end == {0, 1}
    assert all(edge.dst < 2 for edge in cfg.edges)


def test_reaches_with_avoiding():
    program = Program("path")
    program.append(li(Reg(1), 1))
    program.append(branch(Opcode.BEQ, Reg(1), Imm(0), "skip"))
    program.append(li(Reg(2), 2))
    program.add_label("skip", 3)
    program.append(halt())
    cfg = build_cfg(program)
    assert cfg.reaches(0, 3)
    assert cfg.reaches(0, 3, avoiding=2)  # the branch edge bypasses pc 2
    assert not cfg.reaches(0, 2, avoiding=1)  # pc 1 is the only way in
    assert cfg.reachable_pcs(0) == frozenset({0, 1, 2, 3})


def _assert_cfg_invariants(program: Program) -> None:
    cfg = build_cfg(program)
    size = len(program.instructions)
    # The blocks partition [0, size).
    covered = sorted(pc for block in cfg.blocks for pc in block.pcs)
    assert covered == list(range(size))
    assert sorted(cfg.block_of) == list(range(size))
    for block in cfg.blocks:
        for pc in block.pcs:
            assert cfg.block_of[pc] == block.index
    # Every edge stays inside the program and matches the successor map.
    for edge in cfg.edges:
        assert 0 <= edge.src < size and 0 <= edge.dst < size
        assert edge.dst in cfg.successors[edge.src]
        assert edge.src in cfg.predecessors[edge.dst]
    # Block successor lists agree with the last instruction's edges.
    for block in cfg.blocks:
        if block.start == block.end:
            continue
        expected = {cfg.block_of[dst] for dst in cfg.successors[block.end - 1]}
        assert set(block.successors) == expected


@pytest.mark.parametrize(
    "entry", load_corpus(CORPUS_DIR), ids=lambda entry: entry.name
)
def test_cfg_on_every_corpus_program(entry):
    """Satellite requirement: CFG construction over the whole seed corpus,

    on both the original program and its compiled amnesic binary.
    """
    program = materialize(entry.spec)
    _assert_cfg_invariants(program)
    if entry.expect == "classic-fault":
        # The classic run itself faults by design, so the profiling
        # pass cannot produce an amnesic binary to build a CFG over.
        return
    compilation = compile_amnesic(program, default_fuzz_model())
    _assert_cfg_invariants(compilation.binary.program)
