"""The run ledger end to end: ``--ledger-dir`` recording and the
``repro runs``/``repro cache`` command families.

Everything goes through ``repro.cli.main`` — the same code path CI's
soft gate exercises — including the acceptance scenario: a seeded >=10%
ips/fidelity regression against synthetic ledger history makes ``repro
runs check`` exit non-zero, while flat history passes.
"""

import dataclasses
import json

import pytest

from repro.cli import main
from repro.telemetry.ledger import RunLedger, RunManifest, new_run_id


@pytest.fixture
def ledger_dir(tmp_path):
    return str(tmp_path / "ledger")


def run_bfs(ledger_dir, extra=()):
    return main([
        "run", "bfs", "--policy", "FLC", "--scale", "0.25",
        "--ledger-dir", ledger_dir, *extra,
    ])


# ----------------------------------------------------------------------
# Recording.
# ----------------------------------------------------------------------
def test_run_with_ledger_dir_records_one_manifest(ledger_dir, capsys):
    assert run_bfs(ledger_dir) == 0
    assert "ledger: recorded run" in capsys.readouterr().err
    manifests = RunLedger(ledger_dir).read()
    assert len(manifests) == 1
    manifest = manifests[0]
    assert manifest.kind == "run"
    assert manifest.target == "bfs"
    assert manifest.command == "repro run bfs"
    assert manifest.scale == 0.25
    assert manifest.policies == ["FLC"]
    assert manifest.wall_s > 0
    assert manifest.instructions > 0
    assert manifest.ips > 0
    assert manifest.phases  # span-derived phase timings came along
    assert manifest.python  # provenance stamped


def test_no_ledger_flag_records_nothing(tmp_path, capsys, monkeypatch):
    monkeypatch.delenv("REPRO_LEDGER_DIR", raising=False)
    monkeypatch.chdir(tmp_path)
    assert main(["run", "bfs", "--policy", "FLC", "--scale", "0.25"]) == 0
    assert "ledger" not in capsys.readouterr().err
    assert list(tmp_path.iterdir()) == []  # opt-in: no stray files


def test_ledger_env_var_enables_recording(ledger_dir, capsys, monkeypatch):
    monkeypatch.setenv("REPRO_LEDGER_DIR", ledger_dir)
    assert main(["run", "bfs", "--policy", "FLC", "--scale", "0.25"]) == 0
    assert len(RunLedger(ledger_dir).read()) == 1


def test_experiment_records_manifest(ledger_dir, capsys):
    assert main([
        "experiment", "table1", "--ledger-dir", ledger_dir,
    ]) == 0
    manifest = RunLedger(ledger_dir).read()[0]
    assert manifest.kind == "experiment"
    assert manifest.target == "table1"


def test_repeat_runs_append(ledger_dir, capsys):
    assert run_bfs(ledger_dir) == 0
    assert run_bfs(ledger_dir) == 0
    manifests = RunLedger(ledger_dir).read()
    assert len(manifests) == 2
    assert manifests[0].run_id != manifests[1].run_id


# ----------------------------------------------------------------------
# runs list / show / diff.
# ----------------------------------------------------------------------
def test_runs_list_table_and_json(ledger_dir, capsys):
    assert run_bfs(ledger_dir) == 0
    capsys.readouterr()
    assert main(["runs", "list", "--ledger-dir", ledger_dir]) == 0
    out = capsys.readouterr().out
    assert "bfs" in out and "run id" in out
    assert main([
        "runs", "list", "--ledger-dir", ledger_dir, "--format", "json",
    ]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert len(payload) == 1 and payload[0]["target"] == "bfs"
    # Filters that match nothing produce an empty result, not an error.
    assert main([
        "runs", "list", "--ledger-dir", ledger_dir, "--target", "mcf",
    ]) == 0
    assert "no matching runs" in capsys.readouterr().out


def test_runs_show_by_prefix(ledger_dir, capsys):
    assert run_bfs(ledger_dir) == 0
    run_id = RunLedger(ledger_dir).read()[0].run_id
    capsys.readouterr()
    assert main([
        "runs", "show", run_id[:-4], "--ledger-dir", ledger_dir,
    ]) == 0
    out = capsys.readouterr().out
    assert run_id in out and "wall_s" in out
    assert main([
        "runs", "show", "zzz-no-such", "--ledger-dir", ledger_dir,
    ]) == 1
    assert "no ledger run matches" in capsys.readouterr().err


def test_runs_diff_two_runs(ledger_dir, capsys):
    assert run_bfs(ledger_dir) == 0
    assert run_bfs(ledger_dir) == 0
    first, second = (m.run_id for m in RunLedger(ledger_dir).read())
    capsys.readouterr()
    assert main([
        "runs", "diff", first, second, "--ledger-dir", ledger_dir,
        "--format", "json",
    ]) == 0
    diff = json.loads(capsys.readouterr().out)
    assert diff["a"] == first and diff["b"] == second
    assert diff["config"] == {}  # identical configuration
    assert "wall_s" in diff["metrics"]


def test_runs_commands_without_ledger_exit_2(capsys, monkeypatch):
    monkeypatch.delenv("REPRO_LEDGER_DIR", raising=False)
    assert main(["runs", "list"]) == 2
    assert "no run ledger configured" in capsys.readouterr().err
    assert main(["runs", "check"]) == 2


# ----------------------------------------------------------------------
# runs check: the drift watchdog acceptance scenario.
# ----------------------------------------------------------------------
def seed_history(ledger_dir, n=6, ips=1000.0, fidelity=0.8, **overrides):
    ledger = RunLedger(ledger_dir)
    for _ in range(n):
        fields = dict(
            kind="bench", command="repro bench", target="fig3,fig4",
            scale=1.0, backend="classic", policies=["FLC"],
            wall_s=2.0, ips=ips, instructions=int(2.0 * ips),
            fidelity={"score": fidelity, "metrics": 10},
        )
        fields.update(overrides)
        ledger.append(RunManifest.new(**fields))
    return ledger


def test_check_passes_on_flat_history(ledger_dir, capsys):
    seed_history(ledger_dir, n=7)
    assert main(["runs", "check", "--ledger-dir", ledger_dir]) == 0
    assert "PASS" in capsys.readouterr().out


def test_check_flags_seeded_ips_regression_nonzero(ledger_dir, capsys):
    seed_history(ledger_dir, n=6)
    seed_history(ledger_dir, n=1, ips=850.0)  # 15% > the 10% tolerance
    assert main(["runs", "check", "--ledger-dir", ledger_dir]) == 1
    out = capsys.readouterr().out
    assert "REGRESSED" in out and "FAIL" in out


def test_check_flags_seeded_fidelity_regression_nonzero(ledger_dir, capsys):
    seed_history(ledger_dir, n=6)
    seed_history(ledger_dir, n=1, fidelity=0.68)
    assert main(["runs", "check", "--ledger-dir", ledger_dir]) == 1
    assert "fidelity" in capsys.readouterr().out


def test_check_tolerance_and_metric_flags(ledger_dir, capsys):
    seed_history(ledger_dir, n=6)
    seed_history(ledger_dir, n=1, ips=950.0)  # -5%
    assert main(["runs", "check", "--ledger-dir", ledger_dir]) == 0
    assert main([
        "runs", "check", "--ledger-dir", ledger_dir, "--tolerance", "0.02",
    ]) == 1
    capsys.readouterr()
    # Watching only wall_s ignores the ips move entirely.
    assert main([
        "runs", "check", "--ledger-dir", ledger_dir, "--tolerance", "0.02",
        "--metric", "wall_s",
    ]) == 0


def test_check_young_ledger_passes(ledger_dir, capsys):
    seed_history(ledger_dir, n=2)
    assert main(["runs", "check", "--ledger-dir", ledger_dir]) == 0
    assert "insufficient history" in capsys.readouterr().out


def test_check_json_output(ledger_dir, capsys):
    seed_history(ledger_dir, n=6)
    seed_history(ledger_dir, n=1, ips=850.0)
    assert main([
        "runs", "check", "--ledger-dir", ledger_dir, "--format", "json",
    ]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is False


# ----------------------------------------------------------------------
# cache stats.
# ----------------------------------------------------------------------
def test_cache_stats_text_and_json(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    assert main([
        "run", "bfs", "--policy", "FLC", "--scale", "0.25",
        "--cache-dir", cache_dir,
    ]) == 0
    capsys.readouterr()
    assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
    out = capsys.readouterr().out
    assert "entries      1" in out and "<1m" in out
    assert main([
        "cache", "stats", "--cache-dir", cache_dir, "--format", "json",
    ]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["entries"] == 1
    assert payload["total_bytes"] > 0
    assert sum(payload["age_histogram"].values()) == 1


def test_cache_stats_without_cache_exits_2(capsys, monkeypatch):
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    assert main(["cache", "stats"]) == 2
    assert "no result cache configured" in capsys.readouterr().err


def test_stats_json_carries_cache_io_and_pool_sections(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    args = [
        "stats", "bfs", "--policy", "FLC", "--scale", "0.25",
        "--cache-dir", cache_dir, "--format", "json",
    ]
    assert main(args) == 0  # cold: one store
    capsys.readouterr()
    assert main(args) == 0  # warm: one disk hit
    payload = json.loads(capsys.readouterr().out)
    assert payload["cache_io"].get("hits") == 1
    assert "pool" in payload


def test_run_records_even_with_metrics_session(ledger_dir, capsys):
    # --metrics opens the ambient session; recording must reuse it
    # instead of opening a second one.
    assert run_bfs(ledger_dir, extra=("--metrics",)) == 0
    manifests = RunLedger(ledger_dir).read()
    assert len(manifests) == 1 and manifests[0].instructions > 0


def test_diff_run_ids_helper():
    # new_run_id stays unique across rapid calls (used by diff tests).
    assert new_run_id() != new_run_id()
    manifest = RunManifest.new(kind="run", command="c", target="t")
    clone = dataclasses.replace(manifest, run_id=new_run_id())
    assert clone.run_id != manifest.run_id
