"""Command-line interface behaviour."""

import pytest

from repro.cli import main


def test_no_command_prints_help(capsys):
    assert main([]) == 2
    assert "repro" in capsys.readouterr().out


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "mcf" in out and "blackscholes" in out


def test_list_filters(capsys):
    assert main(["list", "--suite", "NAS"]) == 0
    out = capsys.readouterr().out
    assert "is" in out and "cg" in out
    assert "mcf" not in out
    assert main(["list", "--responsive"]) == 0
    out = capsys.readouterr().out
    assert "blackscholes" not in out


def test_experiments_registry(capsys):
    assert main(["experiments"]) == 0
    out = capsys.readouterr().out
    for experiment_id in ("table1", "fig3", "fig8", "table6"):
        assert experiment_id in out


def test_experiment_table1(capsys):
    assert main(["experiment", "table1"]) == 0
    out = capsys.readouterr().out
    assert "40nm" in out and "5.75" in out


def test_run_single_policy(capsys):
    assert main(["run", "bfs", "--policy", "Compiler", "--scale", "0.25"]) == 0
    out = capsys.readouterr().out
    assert "Compiler" in out and "EDP gain" in out


def test_run_fast_backend_matches_classic(capsys):
    args = ["run", "bfs", "--policy", "Compiler", "--scale", "0.25"]
    assert main(args + ["--backend", "fast"]) == 0
    fast_out = capsys.readouterr().out
    assert main(args) == 0
    assert capsys.readouterr().out == fast_out


def test_backend_flag_rejects_unknown_names(capsys):
    with pytest.raises(SystemExit):
        main(["run", "bfs", "--backend", "turbo"])
    assert "invalid choice" in capsys.readouterr().err


def test_run_unknown_benchmark(capsys):
    assert main(["run", "nope"]) == 1
    assert "unknown workload" in capsys.readouterr().err


def test_compile_shows_slices_and_rejections(capsys):
    assert main(["compile", "bfs", "--scale", "0.25"]) == 0
    out = capsys.readouterr().out
    assert "slices embedded" in out
    assert "E_rc" in out


def test_disasm_plain_and_amnesic(capsys):
    assert main(["disasm", "bfs", "--limit", "10", "--scale", "0.25"]) == 0
    plain = capsys.readouterr().out
    assert "li" in plain and "more lines" in plain
    assert main(["disasm", "bfs", "--amnesic", "--limit", "0",
                 "--scale", "0.25"]) == 0
    amnesic = capsys.readouterr().out
    assert "rcmp" in amnesic and "rtn" in amnesic


def test_report_command(tmp_path, capsys):
    out = tmp_path / "report.md"
    assert main(["report", "--out", str(out), "--scale", "0.25",
                 "--experiments", "table1"]) == 0
    assert out.exists()
    assert "40nm" in out.read_text()


def test_stats_command(capsys):
    assert main(["stats", "bfs", "--policy", "FLC", "--scale", "0.25"]) == 0
    out = capsys.readouterr().out
    assert "EDP gain" in out
    assert "span tree" in out
    assert "hottest spans" in out
    assert "RCMP decisions" in out
    for span_name in ("profile", "compile", "execute.amnesic"):
        assert span_name in out


def test_stats_unknown_benchmark(capsys):
    assert main(["stats", "nope"]) == 1
    assert "unknown workload" in capsys.readouterr().err


def test_run_with_trace_out_writes_jsonl(tmp_path, capsys):
    from repro.telemetry import decision_records, read_events

    trace = tmp_path / "trace.jsonl"
    assert main(["run", "bfs", "--policy", "FLC", "--scale", "0.25",
                 "--trace-out", str(trace)]) == 0
    assert trace.exists()
    events = read_events(str(trace))
    opened = {e["name"] for e in events if e["type"] == "span_open"}
    assert {"evaluate", "profile", "compile", "execute.amnesic"} <= opened
    assert decision_records(events)


def test_global_flag_position_also_works(tmp_path, capsys):
    trace = tmp_path / "trace.jsonl"
    assert main(["--trace-out", str(trace), "run", "bfs",
                 "--policy", "FLC", "--scale", "0.25"]) == 0
    assert trace.exists()


def test_metrics_flag_prints_registry(capsys):
    assert main(["run", "bfs", "--policy", "FLC", "--scale", "0.25",
                 "--metrics"]) == 0
    out = capsys.readouterr().out
    assert "metrics:" in out
    assert "rcmp.outcomes{outcome=" in out
    assert "runstats.dynamic_instructions{run=amnesic}" in out


def test_telemetry_disabled_by_default(capsys):
    from repro.telemetry import get_telemetry

    assert main(["run", "bfs", "--policy", "FLC", "--scale", "0.25"]) == 0
    assert not get_telemetry().enabled
    out = capsys.readouterr().out
    assert "metrics:" not in out
