"""``repro bench`` plus the ``--format json`` scripting paths."""

import json

import pytest

from repro.bench import BENCH_SCHEMA_VERSION, BenchArtifact
from repro.cli import main


def bench_table1(tmp_path, capsys, *extra) -> BenchArtifact:
    out = tmp_path / "BENCH_t.json"
    assert main(
        ["bench", "--experiments", "table1", "--out", str(out), *extra]
    ) == 0
    capsys.readouterr()
    return BenchArtifact.load(out)


def test_bench_writes_schema_versioned_artifact(tmp_path, capsys):
    artifact = bench_table1(tmp_path, capsys)
    assert artifact.schema_version == BENCH_SCHEMA_VERSION
    assert list(artifact.reports) == ["table1"]
    assert artifact.environment["python"]


def test_bench_prints_summary_table(tmp_path, capsys):
    out = tmp_path / "BENCH_t.json"
    assert main(["bench", "--experiments", "table1", "--out", str(out)]) == 0
    captured = capsys.readouterr()
    assert "bench summary" in captured.out
    assert str(out) in captured.err


def test_bench_json_format_dumps_the_artifact(tmp_path, capsys):
    out = tmp_path / "BENCH_t.json"
    assert main(
        ["bench", "--experiments", "table1", "--out", str(out),
         "--format", "json"]
    ) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema_version"] == BENCH_SCHEMA_VERSION


def test_bench_rejects_unknown_experiment(tmp_path):
    with pytest.raises(KeyError):
        main(["bench", "--experiments", "nope",
              "--out", str(tmp_path / "x.json")])


def test_bench_current_requires_compare(tmp_path, capsys):
    assert main(["bench", "--current", "whatever.json"]) == 2
    assert "--compare" in capsys.readouterr().err


def _doctor(artifact_path, bad_path):
    """A copy of the artifact with its wall clock regressed 10x."""
    payload = json.loads(artifact_path.read_text())
    payload["reports"]["table1"]["wall_s"] = (
        payload["reports"]["table1"]["wall_s"] * 10 + 1.0
    )
    bad_path.write_text(json.dumps(payload))


def test_bench_offline_compare_identical_artifacts_passes(tmp_path, capsys):
    bench_table1(tmp_path, capsys)
    out = str(tmp_path / "BENCH_t.json")
    assert main(
        ["bench", "--current", out, "--compare", out, "--fail-on-regression"]
    ) == 0
    assert "0 fidelity regression(s)" in capsys.readouterr().out


def test_bench_timing_regression_warns_by_default_but_can_gate(
    tmp_path, capsys
):
    bench_table1(tmp_path, capsys)
    baseline = tmp_path / "BENCH_t.json"
    bad = tmp_path / "BENCH_bad.json"
    _doctor(baseline, bad)
    # Timing regressions are warn-only under --fail-on-regression...
    assert main(
        ["bench", "--current", str(bad), "--compare", str(baseline),
         "--fail-on-regression"]
    ) == 0
    assert "1 timing regression(s)" in capsys.readouterr().out
    # ...and gate only when explicitly strict.
    assert main(
        ["bench", "--current", str(bad), "--compare", str(baseline),
         "--fail-on-regression", "--fail-on-timing-regression"]
    ) == 1
    captured = capsys.readouterr()
    assert "regression(s) vs" in captured.err


def test_bench_compare_json_format(tmp_path, capsys):
    bench_table1(tmp_path, capsys)
    out = str(tmp_path / "BENCH_t.json")
    assert main(["bench", "--current", out, "--compare", out,
                 "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["experiments"] == ["table1"]


def test_run_format_json(capsys):
    assert main(
        ["run", "bfs", "--policy", "Compiler", "--scale", "0.25",
         "--format", "json"]
    ) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["benchmark"] == "bfs"
    gains = payload["policies"]["Compiler"]
    assert {"edp_gain_percent", "energy_gain_percent", "time_gain_percent",
            "fired", "skipped", "fallbacks"} <= set(gains)


def test_experiment_format_json(capsys):
    assert main(["experiment", "table1", "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["experiment_id"] == "table1"
    assert payload["data"]
    assert "40nm" in payload["text"]
