"""The ``repro fuzz`` subcommand: flags, determinism, exit codes."""

import json

import pytest

from repro.cli import main
from repro.fuzz import CorpusEntry, save_entry
from repro.fuzz.generator import random_spec

pytestmark = pytest.mark.integration


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_fuzz_clean_campaign_exits_zero(capsys):
    code, out, _ = run_cli(
        capsys, "fuzz", "--seed", "0", "--iterations", "10"
    )
    assert code == 0
    assert "10 programs checked" in out
    assert "no equivalence violations found" in out


def test_fuzz_json_output_is_deterministic(capsys):
    argv = ("fuzz", "--seed", "0", "--iterations", "10", "--format", "json")
    code_a, out_a, _ = run_cli(capsys, *argv)
    code_b, out_b, _ = run_cli(capsys, *argv)
    assert code_a == code_b == 0
    first, second = json.loads(out_a), json.loads(out_b)
    first.pop("elapsed_s"), second.pop("elapsed_s")
    assert first == second
    assert first["programs"] == 10
    assert first["counterexamples"] == []


def test_fuzz_policy_filter_and_validation(capsys):
    code, out, _ = run_cli(
        capsys,
        "fuzz", "--seed", "0", "--iterations", "5", "--policies", "FLC,LLC",
    )
    assert code == 0
    assert "FLC, LLC" in out

    code, _, err = run_cli(
        capsys, "fuzz", "--iterations", "1", "--policies", "Psychic"
    )
    assert code == 2
    assert "unknown policies" in err


def test_fuzz_replay_requires_corpus_dir(capsys):
    code, _, err = run_cli(capsys, "fuzz", "--replay")
    assert code == 2
    assert "--corpus-dir" in err


def test_fuzz_replay_corpus(tmp_path, capsys):
    corpus_dir = tmp_path / "corpus"
    save_entry(
        corpus_dir,
        CorpusEntry(spec=random_spec(4, name="replayable"), source="test"),
    )
    code, out, _ = run_cli(
        capsys, "fuzz", "--replay", "--corpus-dir", str(corpus_dir)
    )
    assert code == 0
    assert "replayed 1 corpus entries, 0 failing" in out

    code, out, _ = run_cli(
        capsys,
        "fuzz", "--replay", "--corpus-dir", str(corpus_dir),
        "--format", "json",
    )
    assert code == 0
    payload = json.loads(out)
    assert payload == {"entries": 1, "failures": []}


def test_fuzz_banks_counterexamples_nowhere_on_clean_run(tmp_path, capsys):
    corpus_dir = tmp_path / "corpus"
    code, _, _ = run_cli(
        capsys,
        "fuzz", "--seed", "0", "--iterations", "5",
        "--corpus-dir", str(corpus_dir),
    )
    assert code == 0
    assert not list(corpus_dir.glob("*.json")) if corpus_dir.exists() else True
