"""CLI surface for the observability stack.

``repro profile``, ``repro trace export|validate``, ``repro stats
--format json`` and ``repro stats --from-trace`` — including the
one-line (no traceback) error contract for missing or corrupt traces.
"""

import json

import pytest

from repro.cli import main


def run_json(capsys, argv):
    assert main(argv) == 0
    return json.loads(capsys.readouterr().out)


@pytest.fixture
def trace_file(tmp_path):
    """A real recorded trace: bfs under FLC with timeline sampling."""
    path = tmp_path / "run.jsonl"
    assert main(["run", "bfs", "--policy", "FLC", "--scale", "0.25",
                 "--trace-out", str(path), "--timeline", "500"]) == 0
    return path


# ----------------------------------------------------------------------
# repro profile
# ----------------------------------------------------------------------
def test_profile_benchmark_prints_ranked_table(capsys):
    assert main(["profile", "bfs", "--scale", "0.25", "--exact"]) == 0
    out = capsys.readouterr().out
    assert "profile target: bfs" in out
    assert "hot-loop profile" in out
    assert "reconciliation vs RunStats: ok" in out
    assert "opcode" in out


def test_profile_experiment_target(capsys):
    assert main(["profile", "table1", "--sample-every", "64"]) == 0
    out = capsys.readouterr().out
    assert "profile target: table1" in out
    assert "reconciliation vs RunStats: ok" in out


def test_profile_json_reconciles(capsys):
    payload = run_json(
        capsys, ["profile", "bfs", "--scale", "0.25", "--exact",
                 "--format", "json"],
    )
    assert payload["target"] == "bfs"
    assert payload["mode"] == "exact"
    assert payload["reconciliation"]["reconciled"] is True
    assert payload["reconciliation"]["instructions_delta"] == 0
    assert payload["rows"], "profile must attribute at least one opcode"
    total = sum(row["instructions"] for row in payload["rows"])
    assert total == payload["totals"]["instructions"] > 0


def test_profile_rejects_conflicting_modes(capsys):
    assert main(["profile", "bfs", "--exact", "--sample-every", "4"]) == 2
    assert "mutually exclusive" in capsys.readouterr().err


def test_profile_unknown_target(capsys):
    assert main(["profile", "nope"]) == 2
    err = capsys.readouterr().err
    assert "unknown profile target" in err
    assert "fig4" in err  # the error lists valid experiment ids


# ----------------------------------------------------------------------
# repro trace export / validate
# ----------------------------------------------------------------------
def test_trace_export_writes_valid_chrome_trace(trace_file, tmp_path, capsys):
    out = tmp_path / "run.trace.json"
    assert main(["trace", "export", str(trace_file), "-o", str(out)]) == 0
    stdout = capsys.readouterr().out
    assert "ui.perfetto.dev" in stdout
    trace = json.loads(out.read_text())
    phases = {event["ph"] for event in trace["traceEvents"]}
    assert {"X", "C", "M"} <= phases
    names = {e["name"] for e in trace["traceEvents"] if e["ph"] == "X"}
    assert "evaluate" in names
    counters = {e["name"] for e in trace["traceEvents"] if e["ph"] == "C"}
    assert any("sfile.occupancy" in name for name in counters)

    assert main(["trace", "validate", str(out)]) == 0
    assert "ok" in capsys.readouterr().out


def test_trace_export_default_output_path(trace_file, capsys):
    assert main(["trace", "export", str(trace_file)]) == 0
    derived = trace_file.with_name("run.trace.json")
    assert derived.exists()


def test_trace_export_missing_file_one_line_error(tmp_path, capsys):
    assert main(["trace", "export", str(tmp_path / "nope.jsonl")]) == 1
    err = capsys.readouterr().err
    assert err.startswith("error: cannot read trace")
    assert "Traceback" not in err


def test_trace_export_empty_trace_one_line_error(tmp_path, capsys):
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    assert main(["trace", "export", str(empty)]) == 1
    err = capsys.readouterr().err
    assert "contains no telemetry events" in err
    assert "Traceback" not in err


def test_trace_validate_rejects_bad_json(tmp_path, capsys):
    bad = tmp_path / "bad.trace.json"
    bad.write_text("{not json")
    assert main(["trace", "validate", str(bad)]) == 1
    assert "not valid JSON" in capsys.readouterr().err


def test_trace_validate_rejects_malformed_trace(tmp_path, capsys):
    bad = tmp_path / "bad.trace.json"
    bad.write_text(json.dumps({"traceEvents": [{"ph": "Z"}]}))
    assert main(["trace", "validate", str(bad)]) == 1
    captured = capsys.readouterr()
    assert "unknown phase" in captured.err
    assert "INVALID" in captured.out


def test_trace_without_subcommand_prints_help(capsys):
    assert main(["trace"]) == 2
    assert "export" in capsys.readouterr().out


# ----------------------------------------------------------------------
# repro stats --format json / --from-trace
# ----------------------------------------------------------------------
def test_stats_json_document(capsys):
    payload = run_json(
        capsys, ["stats", "bfs", "--policy", "FLC", "--scale", "0.25",
                 "--format", "json"],
    )
    assert payload["benchmark"] == "bfs"
    assert "FLC" in payload["policies"]
    policy = payload["policies"]["FLC"]
    assert {"edp_gain_percent", "fired", "skipped"} <= set(policy)
    assert payload["hottest_spans"]
    assert "slice_lengths" in payload["figures"]
    assert any(
        key.startswith("rcmp.outcomes{") for key in payload["metrics"]
    )


def test_stats_from_trace_summarises_without_rerun(trace_file, capsys):
    assert main(["stats", "--from-trace", str(trace_file)]) == 0
    out = capsys.readouterr().out
    assert "span tree" in out
    assert "hottest spans" in out
    assert "evaluate" in out
    assert "recomputation" in out and "FLC" in out


def test_stats_from_trace_json(trace_file, capsys):
    payload = run_json(
        capsys, ["stats", "--from-trace", str(trace_file),
                 "--format", "json"],
    )
    assert payload["events"] > 0
    assert payload["skipped_lines"] == 0
    assert "FLC" in payload["rcmp"]
    assert payload["spans"] >= 1


def test_stats_from_trace_missing_file_one_line_error(tmp_path, capsys):
    assert main(["stats", "--from-trace", str(tmp_path / "gone.jsonl")]) == 1
    err = capsys.readouterr().err
    assert err.startswith("error: cannot read trace")
    assert "Traceback" not in err


def test_stats_from_trace_empty_file_one_line_error(tmp_path, capsys):
    empty = tmp_path / "empty.jsonl"
    empty.write_text("\n")
    assert main(["stats", "--from-trace", str(empty)]) == 1
    assert "contains no telemetry events" in capsys.readouterr().err


def test_stats_from_trace_warns_on_torn_line(trace_file, capsys):
    torn = trace_file.read_text()[:-15]
    trace_file.write_text(torn)
    assert main(["stats", "--from-trace", str(trace_file)]) == 0
    assert "skipped 1 undecodable line(s)" in capsys.readouterr().err


def test_stats_requires_benchmark_or_trace(capsys):
    assert main(["stats"]) == 2
    assert "benchmark name" in capsys.readouterr().err


# ----------------------------------------------------------------------
# --timeline plumbing
# ----------------------------------------------------------------------
def test_timeline_flag_records_window_events(trace_file):
    from repro.telemetry import read_events

    events = read_events(str(trace_file))
    windows = [e for e in events if e.get("type") == "timeline"]
    assert windows, "--timeline must record window samples"
    tracks = {e["track"] for e in windows}
    assert any(track.startswith("amnesic#") for track in tracks)
    assert any("sfile.occupancy" in (e.get("levels") or {}) for e in windows)
