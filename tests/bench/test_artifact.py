"""BENCH artifact persistence: round-trips, schema guard, fingerprint."""

import json

import pytest

from repro.bench import (
    BENCH_SCHEMA_VERSION,
    COMPATIBLE_SCHEMA_VERSIONS,
    BenchArtifact,
    BenchReport,
    FidelityMetric,
    artifact_provenance,
    environment_fingerprint,
)


def sample_report(**overrides) -> BenchReport:
    fields = dict(
        experiment_id="fig4",
        title="Figure 4: energy gain (%)",
        wall_s=1.5,
        phases={"suite.benchmark": {"self_s": 1.2, "count": 11}},
        throughput_ips=120000.0,
        instructions=180000,
        rcmp={"fired": 2128, "skipped": 192},
        cache={"memory": {"hit": 4, "miss": 1}},
        cache_hit_rate=0.8,
        fidelity=[
            FidelityMetric(
                figure="fig4", metric="energy", policy="Compiler",
                benchmark="mcf", paper=55.0, measured=31.4,
                abs_error=23.6, rel_error=0.43, tolerance_pp=30.0,
                within=True,
            ),
            FidelityMetric(
                figure="fig4", metric="energy", policy="Compiler",
                benchmark="is", paper=65.0, measured=20.0,
                abs_error=45.0, rel_error=0.69, tolerance_pp=30.0,
                within=False,
            ),
        ],
    )
    fields.update(overrides)
    return BenchReport(**fields)


def sample_artifact() -> BenchArtifact:
    return BenchArtifact(
        schema_version=BENCH_SCHEMA_VERSION,
        created="20260806T000000Z",
        environment={"python": "3.11.7", "scale": 1.0, "git_sha": None},
        reports={"fig4": sample_report()},
        provenance={
            "git_sha": None, "python": "3.11.7",
            "platform": "Linux-test", "backend": "classic",
        },
    )


def test_report_round_trips_through_json():
    report = sample_report()
    clone = BenchReport.from_json(json.loads(json.dumps(report.to_json())))
    assert clone == report
    assert clone.fidelity[0].key == "fig4/energy/Compiler/mcf"


def test_fidelity_failures_lists_out_of_tolerance_metrics():
    failures = sample_report().fidelity_failures
    assert [metric.benchmark for metric in failures] == ["is"]


def test_artifact_write_and_load(tmp_path):
    path = tmp_path / "nested" / "BENCH_t.json"
    written = sample_artifact().write(path)
    assert written == path and path.exists()
    loaded = BenchArtifact.load(path)
    assert loaded == sample_artifact()
    # The on-disk form is plain, pretty-printed JSON.
    assert path.read_text().endswith("\n")
    assert json.loads(path.read_text())["schema_version"] == BENCH_SCHEMA_VERSION


def test_load_rejects_other_schema_versions(tmp_path):
    payload = sample_artifact().to_json()
    payload["schema_version"] = BENCH_SCHEMA_VERSION + 1
    path = tmp_path / "BENCH_future.json"
    path.write_text(json.dumps(payload))
    with pytest.raises(ValueError, match="schema"):
        BenchArtifact.load(path)


def test_v1_artifact_loads_with_synthesised_provenance(tmp_path):
    assert 1 in COMPATIBLE_SCHEMA_VERSIONS
    payload = sample_artifact().to_json()
    payload["schema_version"] = 1
    del payload["provenance"]  # version 1 predates the block
    payload["environment"]["platform"] = "Linux-v1"
    payload["environment"]["git_sha"] = "abc123"
    path = tmp_path / "BENCH_v1.json"
    path.write_text(json.dumps(payload))
    loaded = BenchArtifact.load(path)
    assert loaded.schema_version == 1
    assert loaded.provenance == {
        "git_sha": "abc123",
        "python": "3.11.7",
        "platform": "Linux-v1",
        "backend": "classic",  # v1 predates the fast backend too
    }
    assert loaded.reports["fig4"] == sample_report()


def test_artifact_provenance_stamps_toolchain_and_backend():
    class StubRunner:
        def describe(self):
            return {"backend": "fast", "scale": 0.25}

    block = artifact_provenance(StubRunner())
    assert block["backend"] == "fast"
    for key in ("python", "platform", "git_sha"):
        assert key in block
    # A runner that does not name a backend gets the classic default.
    class QuietRunner:
        def describe(self):
            return {}

    assert artifact_provenance(QuietRunner())["backend"] == "classic"


def test_environment_fingerprint_embeds_runner_config():
    class StubRunner:
        def describe(self):
            return {"scale": 0.25, "jobs": 2, "model_fingerprint": "abc123"}

    fingerprint = environment_fingerprint(StubRunner())
    assert fingerprint["scale"] == 0.25
    assert fingerprint["jobs"] == 2
    assert fingerprint["model_fingerprint"] == "abc123"
    for key in ("python", "platform", "cpu_count", "git_sha"):
        assert key in fingerprint
