"""Telemetry-off overhead guard for the interpreter hot loop.

This PR added per-instruction observability hooks to ``CPU._emit`` (a
timeline attribute load + ``is not None`` test) and a telemetry lookup
per ``run()``.  The acceptance bar is that telemetry-*off* runs stay
within 2% of the pre-PR instructions/sec, so the guard times the
instrumented loop against a baseline subclass with the hooks compiled
out — the same interpreter, minus exactly this PR's per-instruction
cost.

Wall-clock tests are noisy under shared CI runners, so the comparison
is gated behind ``REPRO_PERF_TESTS=1`` (the CI bench job sets it); the
structural assertions always run.
"""

import os
import time

import pytest

from repro.machine import CPU
from repro.machine.cpu import ExecutionLimitExceeded
from repro.telemetry.runtime import get_telemetry
from tests.conftest import build_spill_kernel

#: Allowed slowdown of the instrumented loop over the baseline loop
#: with telemetry off (the ISSUE's 2% bar, plus measurement headroom).
OVERHEAD_BUDGET = 0.02

REPS = 15


class BaselineCPU(CPU):
    """The pre-PR hot loop: no timeline check in _emit, no hooks in run."""

    def run(self):
        while not self.halted:
            if self._dynamic_index >= self.max_instructions:
                raise ExecutionLimitExceeded(
                    f"exceeded {self.max_instructions} dynamic instructions",
                    pc=self.pc,
                )
            self.step()
        self.finalize()
        return self.stats

    def _emit(self, instruction, operand_values=(), result=None,
              address=None, level=None, taken=None):
        # The pre-PR body verbatim (sans the timeline check): keeping
        # the index load and tracer branch makes the comparison isolate
        # exactly the code this PR added.
        index = self._dynamic_index
        self._dynamic_index += 1
        if self.tracer is None:
            return
        del index
        raise AssertionError("overhead guard must run without a tracer")


def _timed_run(cpu_factory, program, model):
    import gc

    cpu = cpu_factory(program, model)
    gc.collect()
    gc.disable()  # a collection landing in one side of a pair skews its ratio
    try:
        start = time.perf_counter()
        cpu.run()
        elapsed = time.perf_counter() - start
    finally:
        gc.enable()
    return elapsed, cpu.stats.dynamic_instructions


def _median_slowdown(program, model):
    """Median paired slowdown of the instrumented loop over the baseline.

    The two loops are timed back-to-back within every rep and compared
    as a per-rep *ratio*, so machine-level noise (a shared runner
    warming up, a neighbour stealing the core) hits both sides of each
    pair alike; the median then discards the reps where it did not.
    """
    import statistics

    ratios = []
    for _ in range(REPS):
        inst_elapsed, _ = _timed_run(CPU, program, model)
        base_elapsed, _ = _timed_run(BaselineCPU, program, model)
        ratios.append(inst_elapsed / base_elapsed)
    return statistics.median(ratios) - 1.0


def test_telemetry_off_run_skips_all_observability_work(model):
    """Structural half of the guard: off means *no* per-run state."""
    program = build_spill_kernel(iterations=5, chain=3, gap=4)
    telemetry = get_telemetry()
    assert not telemetry.enabled
    cpu = CPU(program, model)
    cpu.run()
    assert cpu._timeline is None
    assert telemetry.timelines == []
    assert telemetry.active_profiler() is None


@pytest.mark.integration
@pytest.mark.skipif(
    os.environ.get("REPRO_PERF_TESTS") != "1",
    reason="wall-clock comparison; set REPRO_PERF_TESTS=1 to enable",
)
def test_batched_backend_not_slower_than_fast():
    """The fast-batched backend must hold its fig4 throughput edge.

    Same paired-ratio discipline as the telemetry guard: per rep, time
    an untraced amnesic run on ``fast`` then on ``fast-batched``
    back-to-back, compare as a ratio, take the median.  The bench
    artifact's acceptance bar is a 1.2x untraced-ips edge on the full
    fig4 sweep; a single-kernel guard can't pin that margin without
    flaking, so it asserts the weaker invariant that batching never
    *loses* — a fusing regression shows up as batched slower than fast.
    """
    import statistics

    from repro.compiler.amnesic_pass import compile_amnesic
    from repro.core.backend import BACKENDS
    from repro.core.policies import make_policy
    from repro.energy import paper_energy_model
    from repro.workloads import get

    energy_model = paper_energy_model()
    program = get("mcf").instantiate(1.0)
    binary = compile_amnesic(program, energy_model).binary

    def factory(name):
        cls = BACKENDS[name].amnesic_cls
        return lambda b, m: cls(b, m, make_policy("Compiler"))

    fast, batched = factory("fast"), factory("fast-batched")
    # Warm both (decode caches, generated slice code) before timing.
    _timed_run(fast, binary, energy_model)
    _timed_run(batched, binary, energy_model)

    attempts = []
    for _ in range(3):
        ratios = []
        for _ in range(7):
            fast_elapsed, _ = _timed_run(fast, binary, energy_model)
            batched_elapsed, _ = _timed_run(batched, binary, energy_model)
            ratios.append(batched_elapsed / fast_elapsed)
        attempts.append(statistics.median(ratios))
        if attempts[-1] <= 1.0:
            return
    summary = ", ".join(f"{a:.2f}x" for a in attempts)
    raise AssertionError(
        f"fast-batched is persistently slower than fast on an untraced "
        f"amnesic run (batched/fast wall-clock medians: {summary})"
    )


@pytest.mark.integration
@pytest.mark.skipif(
    os.environ.get("REPRO_PERF_TESTS") != "1",
    reason="wall-clock comparison; set REPRO_PERF_TESTS=1 to enable",
)
def test_telemetry_off_overhead_within_budget(model):
    program = build_spill_kernel(iterations=400, chain=4, gap=8)
    assert not get_telemetry().enabled

    # Warm both paths once (code objects, caches) before timing.
    CPU(program, model).run()
    BaselineCPU(program, model).run()

    # Best of three attempts: a noise spike on a shared runner can push
    # one median past the budget, but a real regression pushes all of
    # them.
    slowdowns = []
    for _ in range(3):
        slowdowns.append(_median_slowdown(program, model))
        if slowdowns[-1] <= OVERHEAD_BUDGET:
            return
    summary = ", ".join(f"{s:+.1%}" for s in slowdowns)
    raise AssertionError(
        f"telemetry-off hot loop is persistently slower than the pre-PR "
        f"baseline loop (budget {OVERHEAD_BUDGET:.0%}; attempts: {summary})"
    )
