"""Fidelity scoring against the paper's encoded reference values."""

from types import SimpleNamespace

import pytest

from repro.bench.paper_reference import (
    AGGREGATE_MAX,
    AGGREGATE_MEAN,
    BOUNDS,
    FIG3_EDP,
    REFERENCES,
    SCORED_EXPERIMENTS,
    fidelity_metrics,
)


class FakeMatrix:
    """GainMatrix-shaped stub: every gain is the same constant."""

    def __init__(self, value: float):
        self.value = value

    def gain(self, benchmark, policy, metric):
        return self.value

    def mean_gain(self, policy, metric):
        return self.value

    def max_gain(self, policy, metric):
        return self.value


def matrix_report(experiment_id: str, value: float):
    return SimpleNamespace(experiment_id=experiment_id, data=FakeMatrix(value))


# ----------------------------------------------------------------------
# Series scoring (Figures 3-5).
# ----------------------------------------------------------------------
def test_fig3_scores_every_reference_benchmark_and_aggregates():
    metrics = fidelity_metrics(matrix_report("fig3", 30.0))
    assert len(metrics) == len(FIG3_EDP.values)
    benchmarks = {metric.benchmark for metric in metrics}
    assert {AGGREGATE_MEAN, AGGREGATE_MAX, "mcf", "sr"} <= benchmarks
    by_bench = {metric.benchmark: metric for metric in metrics}
    # cg paper 28, measured 30 -> 2pp off, well inside the 25pp band.
    assert by_bench["cg"].abs_error == pytest.approx(2.0)
    assert by_bench["cg"].within
    # is paper 87, measured 30 -> 57pp off, out of band.
    assert by_bench["is"].abs_error == pytest.approx(57.0)
    assert not by_bench["is"].within
    assert by_bench["is"].rel_error == pytest.approx(57.0 / 87.0)


def test_metric_key_is_stable_across_runs():
    (metric,) = [
        m for m in fidelity_metrics(matrix_report("fig4", 60.0))
        if m.benchmark == "mcf"
    ]
    assert metric.key == "fig4/energy/Compiler/mcf"


# ----------------------------------------------------------------------
# Row scoring (Table 5).
# ----------------------------------------------------------------------
def _table5_row(benchmark, policy, l1, l2, mem):
    return SimpleNamespace(
        benchmark=benchmark, policy=policy,
        l1_percent=l1, l2_percent=l2, mem_percent=mem,
    )


def test_table5_scores_matching_policy_rows_only():
    report = SimpleNamespace(
        experiment_id="table5",
        data=[
            _table5_row("mcf", "Compiler", 12.0, 11.0, 77.0),  # exact paper
            _table5_row("mcf", "FLC", 99.0, 0.5, 0.5),  # wrong policy
            _table5_row("bfs", "Compiler", 50.0, 0.0, 50.0),  # l1 48.4pp off
        ],
    )
    metrics = fidelity_metrics(report)
    # 3 levels x 2 Compiler rows; the FLC row is never scored.
    assert len(metrics) == 6
    mcf_l1 = next(
        m for m in metrics if m.benchmark == "mcf" and m.metric == "l1_percent"
    )
    assert mcf_l1.abs_error == pytest.approx(0.0)
    assert mcf_l1.within
    bfs_l1 = next(
        m for m in metrics if m.benchmark == "bfs" and m.metric == "l1_percent"
    )
    assert bfs_l1.abs_error == pytest.approx(48.4)
    assert not bfs_l1.within


# ----------------------------------------------------------------------
# Directional bounds (Table 4).
# ----------------------------------------------------------------------
def _table4_row(benchmark, instr, loads, hist):
    return SimpleNamespace(
        benchmark=benchmark,
        instruction_increase_percent=instr,
        load_decrease_percent=loads,
        amnesic_hist=hist,
    )


def test_table4_bounds_score_zero_error_inside_the_claim():
    report = SimpleNamespace(
        experiment_id="table4", data=[_table4_row("mcf", 12.0, 30.0, 4.0)]
    )
    metrics = fidelity_metrics(report)
    assert len(metrics) == len(BOUNDS["table4"])
    assert all(m.within and m.abs_error == 0.0 for m in metrics)


def test_table4_bounds_report_overshoot_distance():
    report = SimpleNamespace(
        experiment_id="table4",
        data=[_table4_row("is", -5.0, 30.0, 12.5)],  # instr below lo, hist over hi
    )
    by_metric = {m.metric: m for m in fidelity_metrics(report)}
    instr = by_metric["instruction_increase_percent"]
    assert not instr.within and instr.abs_error == pytest.approx(5.0)
    hist = by_metric["amnesic_hist"]
    assert not hist.within and hist.abs_error == pytest.approx(2.5)
    assert by_metric["load_decrease_percent"].within


# ----------------------------------------------------------------------
# Registry shape.
# ----------------------------------------------------------------------
def test_scored_experiments_cover_references_and_bounds():
    assert SCORED_EXPERIMENTS == ("fig3", "fig4", "fig5", "table4", "table5")
    assert set(REFERENCES) | set(BOUNDS) == set(SCORED_EXPERIMENTS)


def test_unscored_experiments_return_no_metrics():
    report = SimpleNamespace(experiment_id="table1", data=object())
    assert fidelity_metrics(report) == []
