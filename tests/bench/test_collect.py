"""BenchRunner end-to-end: real experiments, assembled artifacts."""

import pytest

from repro.bench import (
    BENCH_DEFAULT_EXPERIMENTS,
    BENCH_SCHEMA_VERSION,
    BenchRunner,
    SCORED_EXPERIMENTS,
)
from repro.harness.runner import SuiteRunner


@pytest.fixture(scope="module")
def artifact():
    """One small bench run shared by the module: fig4 + table1 at 0.25."""
    runner = SuiteRunner(scale=0.25, jobs=2)
    bench = BenchRunner(runner=runner, experiments=("fig4", "table1"))
    return bench.run()


def test_default_selection_is_the_scored_set():
    assert tuple(sorted(BENCH_DEFAULT_EXPERIMENTS)) == SCORED_EXPERIMENTS


def test_unknown_experiment_rejected_eagerly():
    with pytest.raises(KeyError, match="nope"):
        BenchRunner(experiments=("fig4", "nope"))


def test_artifact_shape(artifact):
    assert artifact.schema_version == BENCH_SCHEMA_VERSION
    assert list(artifact.reports) == ["fig4", "table1"]
    assert artifact.environment["scale"] == 0.25
    assert "Compiler" in artifact.environment["policies"]
    assert artifact.environment["python"]


def test_evaluated_experiment_measures_work(artifact):
    fig4 = artifact.reports["fig4"]
    assert fig4.title.startswith("Figure 4")
    assert fig4.wall_s > 0
    assert fig4.instructions > 0
    assert fig4.throughput_ips == pytest.approx(
        fig4.instructions / fig4.wall_s
    )
    # The responsive suite ran under this session: spans and RCMP
    # decisions were recorded, and the memory cache saw only misses.
    assert fig4.phases
    assert fig4.rcmp.get("fired", 0) > 0
    assert fig4.cache["memory"]["miss"] == 11
    assert fig4.cache_hit_rate == 0.0


def test_fidelity_scored_for_fig4_only(artifact):
    fig4 = artifact.reports["fig4"]
    assert {metric.benchmark for metric in fig4.fidelity} == {"is", "mcf"}
    for metric in fig4.fidelity:
        assert metric.figure == "fig4"
        assert metric.measured == pytest.approx(
            metric.paper - metric.abs_error
        ) or metric.measured == pytest.approx(metric.paper + metric.abs_error)
    assert artifact.reports["table1"].fidelity == []


def test_artifact_json_round_trip(artifact, tmp_path):
    from repro.bench import BenchArtifact

    path = artifact.write(tmp_path / "BENCH_t.json")
    assert BenchArtifact.load(path) == artifact
