"""Baseline diffing: timing noise bands, hard fidelity gates, counters."""

import pytest

from repro.bench import (
    BENCH_SCHEMA_VERSION,
    BenchArtifact,
    BenchReport,
    FidelityMetric,
    compare,
)
from repro.bench.compare import (
    ADDED,
    IMPROVED,
    KIND_COUNTER,
    KIND_FIDELITY,
    KIND_TIMING,
    REGRESSED,
    REMOVED,
    UNCHANGED,
)


def fidelity(benchmark="mcf", abs_error=5.0, within=True) -> FidelityMetric:
    return FidelityMetric(
        figure="fig4", metric="energy", policy="Compiler",
        benchmark=benchmark, paper=55.0, measured=55.0 - abs_error,
        abs_error=abs_error, rel_error=abs_error / 55.0,
        tolerance_pp=30.0, within=within,
    )


def report(
    wall_s=10.0,
    throughput_ips=100000.0,
    phases=None,
    rcmp=None,
    cache_hit_rate=0.5,
    fidelity_metrics=(),
) -> BenchReport:
    return BenchReport(
        experiment_id="fig4", title="Figure 4", wall_s=wall_s,
        phases=phases if phases is not None else {},
        throughput_ips=throughput_ips, instructions=0,
        rcmp=rcmp if rcmp is not None else {},
        cache={}, cache_hit_rate=cache_hit_rate,
        fidelity=list(fidelity_metrics),
    )


def artifact(**reports) -> BenchArtifact:
    return BenchArtifact(
        schema_version=BENCH_SCHEMA_VERSION, created="t",
        environment={}, reports=reports,
    )


def verdict_for(diff, metric):
    return next(v for v in diff.verdicts if v.metric == metric)


# ----------------------------------------------------------------------
# Timing: relative noise band plus an absolute floor.
# ----------------------------------------------------------------------
def test_wall_clock_within_noise_is_unchanged():
    diff = compare(
        artifact(fig4=report(wall_s=10.0)), artifact(fig4=report(wall_s=11.0))
    )
    assert verdict_for(diff, "fig4/wall_s").verdict == UNCHANGED


def test_wall_clock_beyond_noise_regresses_but_does_not_gate_by_default():
    diff = compare(
        artifact(fig4=report(wall_s=10.0)), artifact(fig4=report(wall_s=14.0))
    )
    assert verdict_for(diff, "fig4/wall_s").verdict == REGRESSED
    assert diff.timing_regressions and not diff.fidelity_regressions
    assert diff.regressed() == []
    assert diff.regressed(include_timing=True) == diff.timing_regressions


def test_sub_floor_jitter_is_ignored_even_at_huge_relative_change():
    diff = compare(
        artifact(fig4=report(wall_s=0.001)), artifact(fig4=report(wall_s=0.004))
    )
    assert verdict_for(diff, "fig4/wall_s").verdict == UNCHANGED


def test_throughput_is_higher_is_better():
    diff = compare(
        artifact(fig4=report(throughput_ips=100000.0)),
        artifact(fig4=report(throughput_ips=50000.0)),
    )
    assert verdict_for(diff, "fig4/throughput_ips").verdict == REGRESSED
    diff = compare(
        artifact(fig4=report(throughput_ips=100000.0)),
        artifact(fig4=report(throughput_ips=200000.0)),
    )
    assert verdict_for(diff, "fig4/throughput_ips").verdict == IMPROVED


def test_phases_diff_only_where_both_sides_ran_them():
    old = report(phases={
        "suite.benchmark": {"self_s": 8.0, "count": 11},
        "profile": {"self_s": 1.0, "count": 11},
    })
    new = report(phases={
        "suite.benchmark": {"self_s": 16.0, "count": 11},
        "suite.parallel": {"self_s": 2.0, "count": 1},  # jobs>1 shape
    })
    diff = compare(artifact(fig4=old), artifact(fig4=new))
    phase_metrics = [
        v.metric for v in diff.verdicts if v.metric.startswith("fig4/phase/")
    ]
    assert phase_metrics == ["fig4/phase/suite.benchmark"]
    assert verdict_for(diff, "fig4/phase/suite.benchmark").verdict == REGRESSED


# ----------------------------------------------------------------------
# Fidelity: hard thresholds, REMOVED counts against the gate.
# ----------------------------------------------------------------------
def test_leaving_the_tolerance_band_is_a_gated_regression():
    old = report(fidelity_metrics=[fidelity(abs_error=25.0, within=True)])
    new = report(fidelity_metrics=[fidelity(abs_error=35.0, within=False)])
    diff = compare(artifact(fig4=old), artifact(fig4=new))
    (verdict,) = diff.fidelity_regressions
    assert verdict.verdict == REGRESSED
    assert "tolerance band" in verdict.note
    assert diff.regressed() == [verdict]


def test_drifting_further_from_the_paper_regresses_within_the_band():
    old = report(fidelity_metrics=[fidelity(abs_error=5.0)])
    new = report(fidelity_metrics=[fidelity(abs_error=6.0)])  # +1pp > 0.25pp
    diff = compare(artifact(fig4=old), artifact(fig4=new))
    (verdict,) = diff.fidelity_regressions
    assert verdict.delta == pytest.approx(1.0)


def test_sub_noise_fidelity_drift_is_unchanged():
    old = report(fidelity_metrics=[fidelity(abs_error=5.0)])
    new = report(fidelity_metrics=[fidelity(abs_error=5.1)])
    diff = compare(artifact(fig4=old), artifact(fig4=new))
    assert diff.fidelity_regressions == []
    key = "fig4/fidelity/energy/Compiler/mcf"
    assert verdict_for(diff, key).verdict == UNCHANGED


def test_moving_closer_to_the_paper_improves():
    old = report(fidelity_metrics=[fidelity(abs_error=20.0)])
    new = report(fidelity_metrics=[fidelity(abs_error=10.0)])
    diff = compare(artifact(fig4=old), artifact(fig4=new))
    key = "fig4/fidelity/energy/Compiler/mcf"
    assert verdict_for(diff, key).verdict == IMPROVED


def test_removed_fidelity_metric_gates_and_added_does_not():
    old = report(fidelity_metrics=[fidelity("mcf")])
    new = report(fidelity_metrics=[fidelity("is")])
    diff = compare(artifact(fig4=old), artifact(fig4=new))
    removed = verdict_for(diff, "fig4/fidelity/energy/Compiler/mcf")
    added = verdict_for(diff, "fig4/fidelity/energy/Compiler/is")
    assert removed.verdict == REMOVED and added.verdict == ADDED
    assert diff.regressed() == [removed]


# ----------------------------------------------------------------------
# Counters and asymmetric artifacts.
# ----------------------------------------------------------------------
def test_counter_changes_are_informational_only():
    old = report(rcmp={"fired": 100, "skipped": 10}, cache_hit_rate=0.5)
    new = report(rcmp={"fired": 120, "skipped": 10}, cache_hit_rate=1.0)
    diff = compare(artifact(fig4=old), artifact(fig4=new))
    fired = verdict_for(diff, "fig4/rcmp/fired")
    assert fired.kind == KIND_COUNTER and fired.verdict == "changed"
    assert verdict_for(diff, "fig4/rcmp/skipped").verdict == UNCHANGED
    assert verdict_for(diff, "fig4/cache_hit_rate").verdict == "changed"
    assert diff.regressed(include_timing=True) == []


def test_experiments_on_one_side_only_are_skipped_not_failed():
    baseline = artifact(fig4=report(), fig3=report())
    current = artifact(fig4=report(), table4=report())
    diff = compare(baseline, current)
    assert diff.experiments == ["fig4"]
    assert diff.skipped_experiments == ["fig3", "table4"]
    assert diff.regressed(include_timing=True) == []


def test_diff_serialises_every_verdict():
    old = report(fidelity_metrics=[fidelity(abs_error=5.0)])
    new = report(fidelity_metrics=[fidelity(abs_error=35.0, within=False)])
    payload = compare(artifact(fig4=old), artifact(fig4=new)).to_json()
    assert payload["experiments"] == ["fig4"]
    kinds = {verdict["kind"] for verdict in payload["verdicts"]}
    assert {KIND_TIMING, KIND_FIDELITY, KIND_COUNTER} <= kinds
