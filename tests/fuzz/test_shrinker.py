"""Shrinking: injected bugs reduce to minimal readable counterexamples."""

from repro.fuzz import (
    FuzzConfig,
    SkipHistReadCPU,
    check_spec,
    default_fuzz_model,
    materialize,
    run_fuzz,
    shrink_spec,
)
from repro.fuzz.shrinker import MIN_ITERATIONS, candidate_specs, instruction_count
from repro.fuzz.spec import validate_spec
from repro.fuzz.generator import random_spec


def test_candidates_are_strictly_simpler_and_valid():
    spec = random_spec(1)
    original_size = len(spec.statements)
    for candidate in candidate_specs(spec):
        assert len(candidate.statements) <= original_size
        assert candidate.iterations <= spec.iterations
        # Candidates may orphan a temp reference (that's fine — the
        # predicate filters them), but never break spec-level bounds.
        if candidate.iterations != spec.iterations:
            assert candidate.iterations >= MIN_ITERATIONS


def test_shrinker_respects_the_failure_predicate():
    spec = random_spec(1)
    # Predicate: fails iff a Gap statement survives.  The shrinker must
    # keep at least one Gap while deleting everything else it can.
    def has_gap(candidate):
        validate_spec(candidate)
        return any(s.kind == "gap" for s in candidate.statements)

    if not has_gap(spec):
        spec = random_spec(3)
        assert has_gap(spec)
    result = shrink_spec(spec, has_gap)
    assert has_gap(result.spec)
    assert result.steps > 0
    assert len(result.spec.statements) < len(spec.statements)


def test_shrink_is_bounded():
    spec = random_spec(1)
    result = shrink_spec(spec, lambda candidate: True, max_attempts=10)
    assert result.attempts <= 10


def test_injected_scheduler_bug_shrinks_to_small_counterexample():
    """The PR's acceptance bar: a deliberately injected scheduler bug
    (Hist lookups skipped during slice traversal) is caught by a short
    campaign and shrunk to a <= 15-instruction counterexample.
    """
    model = default_fuzz_model()
    config = FuzzConfig(
        seed=0,
        iterations=40,
        policies=("Compiler",),
        cpu_cls=SkipHistReadCPU,
        max_counterexamples=1,
    )
    result = run_fuzz(config, model=model)
    assert result.counterexamples, "the injected bug was never caught"
    cx = result.counterexamples[0]
    assert cx.verdict.is_counterexample
    shrunk_size = len(materialize(cx.shrunk).instructions)
    original_size = len(materialize(cx.original).instructions)
    assert shrunk_size <= 15, materialize(cx.shrunk).render()
    assert shrunk_size <= original_size
    assert cx.shrink_steps > 0
    # The reduced spec still fails for the same reason on a fresh check.
    replay = check_spec(
        cx.shrunk, model=model, policies=("Compiler",), cpu_cls=SkipHistReadCPU
    )
    assert replay.is_counterexample
    assert instruction_count(cx.shrunk) == shrunk_size
