"""Replay of the committed regression corpus (tests/corpus/*.json).

Every entry runs through the full differential oracle on every CI run.
If a pipeline change breaks one of these known-tricky shapes, this is
where it fails — immediately, not at the next nightly fuzz campaign.
"""

from pathlib import Path

import pytest

from repro.core.policies import POLICY_NAMES
from repro.fuzz import (
    check_spec,
    default_fuzz_model,
    load_corpus,
    load_entry,
    materialize,
)
from repro.fuzz.corpus import corpus_paths
from repro.fuzz.oracle import DEFAULT_MAX_INSTRUCTIONS
from repro.fuzz.runner import entry_satisfied

CORPUS_DIR = Path(__file__).resolve().parent.parent / "corpus"


def entry_ids():
    return [path.stem for path in corpus_paths(CORPUS_DIR)]


@pytest.fixture(scope="module")
def model():
    return default_fuzz_model()


def test_corpus_is_committed_and_populated():
    assert CORPUS_DIR.is_dir()
    assert len(corpus_paths(CORPUS_DIR)) >= 5


@pytest.mark.parametrize(
    "path", corpus_paths(CORPUS_DIR), ids=entry_ids()
)
def test_corpus_entry_replays_clean(path, model):
    entry = load_entry(path)
    verdict = check_spec(
        entry.spec,
        model=model,
        policies=entry.policies or POLICY_NAMES,
        max_instructions=entry.max_instructions or DEFAULT_MAX_INSTRUCTIONS,
    )
    # ``expect="classic-fault"`` entries replay to an invalid verdict
    # (the classic run faults by design); everything else must be ok.
    assert entry_satisfied(entry, verdict), (
        f"{entry.name}: expected {entry.expect}, got {verdict.summary()}"
    )


def test_corpus_covers_the_tricky_shapes(model):
    """The satellite's named shapes are present and behave as described."""
    from repro.compiler.amnesic_pass import compile_amnesic

    by_name = {entry.spec.name: entry for entry in load_corpus(CORPUS_DIR)}
    for required in ("aliasing-store", "clobbered-leaf", "trivial-checkpoint"):
        assert required in by_name, f"corpus lost the {required} shape"

    def hist_leaves(entry):
        result = compile_amnesic(materialize(entry.spec), model)
        return {
            sid: info.hist_leaf_ids
            for sid, info in result.binary.slices.items()
        }

    # The clobbered-leaf and trivial-checkpoint slices depend on Hist
    # checkpoints; the aliasing-store slice recomputes from live state.
    assert any(leaves for leaves in hist_leaves(by_name["clobbered-leaf"]).values())
    assert any(
        leaves for leaves in hist_leaves(by_name["trivial-checkpoint"]).values()
    )
    aliasing = hist_leaves(by_name["aliasing-store"])
    assert aliasing and all(not leaves for leaves in aliasing.values())


def test_corpus_filenames_match_content_digests():
    for path in corpus_paths(CORPUS_DIR):
        entry = load_entry(path)
        assert path.name.endswith(f"{entry.spec.digest()}.json"), (
            f"{path.name} was edited without renaming: content digest is "
            f"{entry.spec.digest()}"
        )
