"""Corpus persistence: atomic writes, deterministic naming, strict loads."""

import json

import pytest

from repro.errors import FuzzError
from repro.fuzz import CorpusEntry, load_corpus, load_entry, save_entry
from repro.fuzz.corpus import corpus_paths, entry_filename
from repro.fuzz.generator import random_spec


@pytest.fixture
def entry():
    return CorpusEntry(
        spec=random_spec(5, name="sample"),
        description="a sample entry",
        source="unit test",
        policies=("Compiler", "FLC"),
    )


def test_save_load_roundtrip(tmp_path, entry):
    path = save_entry(tmp_path, entry)
    assert path.name == entry_filename(entry)
    clone = load_entry(path)
    assert clone == entry


def test_save_leaves_no_temp_files(tmp_path, entry):
    save_entry(tmp_path, entry)
    save_entry(tmp_path, entry)  # overwrite is idempotent
    leftovers = [p.name for p in tmp_path.iterdir() if p.name.startswith(".tmp")]
    assert leftovers == []
    assert len(corpus_paths(tmp_path)) == 1


def test_load_corpus_is_sorted_and_complete(tmp_path):
    names = []
    for seed in (3, 1, 2):
        entry = CorpusEntry(spec=random_spec(seed, name=f"s{seed}"))
        save_entry(tmp_path, entry)
        names.append(entry_filename(entry))
    loaded = load_corpus(tmp_path)
    assert [entry_filename(e) for e in loaded] == sorted(names)


def test_missing_directory_is_an_empty_corpus(tmp_path):
    assert load_corpus(tmp_path / "never-created") == []


def test_malformed_entry_raises_instead_of_skipping(tmp_path, entry):
    path = save_entry(tmp_path, entry)
    path.write_text("{not json", encoding="utf-8")
    with pytest.raises(FuzzError):
        load_corpus(tmp_path)


def test_unknown_corpus_format_is_rejected(tmp_path, entry):
    path = save_entry(tmp_path, entry)
    payload = json.loads(path.read_text(encoding="utf-8"))
    payload["format"] = 99
    path.write_text(json.dumps(payload), encoding="utf-8")
    with pytest.raises(FuzzError):
        load_entry(path)


def test_hidden_and_partial_files_are_ignored_by_listing(tmp_path, entry):
    save_entry(tmp_path, entry)
    (tmp_path / ".tmp-abandoned.json").write_text("{", encoding="utf-8")
    assert len(corpus_paths(tmp_path)) == 1
