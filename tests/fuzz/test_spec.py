"""ProgramSpec: serialisation, validation, and materialisation."""

import pytest

from repro.errors import FuzzError
from repro.fuzz import (
    Carry,
    Clobber,
    Gap,
    Produce,
    ProgramSpec,
    Reload,
    Store,
    materialize,
    validate_spec,
)
from repro.isa.opcodes import Opcode


def simple_spec(**overrides):
    fields = dict(
        name="simple",
        iterations=4,
        slot_words=8,
        statements=(
            Produce(temp="t0", source="index", chain=(("mul", 7), ("xor", 3))),
            Store(temp="t0", offset=1),
            Reload(offset=1),
        ),
    )
    fields.update(overrides)
    return ProgramSpec(**fields)


def test_json_roundtrip_preserves_every_statement_kind():
    spec = ProgramSpec(
        name="everything",
        iterations=5,
        slot_words=16,
        emit_output=False,
        seed=1234,
        statements=(
            Produce(temp="t0", source="roload", chain=(("add", 1),), ro_stride=2),
            Produce(temp="t1", source="t0", chain=()),
            Store(temp="t1", offset=3, stride=2),
            Clobber(temp="t0", value=0xBEEF),
            Gap(count=4, stride=3),
            Reload(offset=3, stride=2, accumulate=False),
            Carry(temp="t2", source="t1", op="xor"),
        ),
    )
    clone = ProgramSpec.from_json(spec.to_json())
    assert clone == spec


def test_digest_ignores_name_and_seed_but_not_behaviour():
    spec = simple_spec()
    assert spec.digest() == simple_spec(name="other", seed=99).digest()
    assert spec.digest() != simple_spec(iterations=5).digest()


def test_from_json_rejects_unknown_format_and_statement_kind():
    payload = simple_spec().to_json()
    payload["format"] = 999
    with pytest.raises(FuzzError):
        ProgramSpec.from_json(payload)
    payload = simple_spec().to_json()
    payload["statements"][0]["kind"] = "teleport"
    with pytest.raises(FuzzError):
        ProgramSpec.from_json(payload)


@pytest.mark.parametrize(
    "overrides",
    [
        {"iterations": 0},
        {"slot_words": 0},
        {"slot_words": 12},  # not a power of two
        {"statements": ()},
        {"statements": (Store(temp="nope", offset=0),)},
        {"statements": (Store(temp="t0", offset=64),)},  # outside slot_words
        {"statements": (Gap(count=0),)},
        {"statements": (Produce(temp="t0", chain=(("warp", 1),)),)},
        {"statements": (Carry(temp="t0", source="index"),)},
    ],
)
def test_validate_rejects_malformed_specs(overrides):
    with pytest.raises(FuzzError):
        validate_spec(simple_spec(**overrides))


def test_materialize_is_deterministic_and_ends_in_halt():
    first = materialize(simple_spec())
    second = materialize(simple_spec())
    assert first.render() == second.render()
    assert first.instructions[-1].opcode is Opcode.HALT


def test_materialize_initialises_temps_read_before_written():
    # t1 is stored before anything writes it, so it must be seeded
    # before the loop; t0 is produced first and needs no init.
    spec = simple_spec(
        statements=(
            Store(temp="t1", offset=0),
            Produce(temp="t0", source="index", chain=(("add", 1),)),
            Store(temp="t0", offset=1),
            Reload(offset=1),
        )
    )
    program = materialize(spec)
    from repro.core.execution import run_classic
    from repro.fuzz import default_fuzz_model

    outcome = run_classic(program, default_fuzz_model())
    assert outcome.stats.stores_performed == 2 * spec.iterations + 1


def test_materialize_emits_no_output_store_when_disabled():
    with_output = materialize(simple_spec(emit_output=True))
    without = materialize(simple_spec(emit_output=False))
    assert len(without.instructions) < len(with_output.instructions)


def test_minimal_spec_is_tiny():
    # The shrinker's floor: a one-group fixed-slot spec with no
    # accumulation must stay within the counterexample budget.
    spec = ProgramSpec(
        name="minimal",
        iterations=2,
        slot_words=8,
        emit_output=False,
        statements=(
            Produce(temp="t0", source="roload", chain=(), ro_stride=0),
            Store(temp="t0", offset=0),
            Reload(offset=0, accumulate=False),
        ),
    )
    assert len(materialize(spec).instructions) <= 15
