"""Classic-vs-fast(-batched) backend equivalence over the corpus.

Satellite of the fast-backend PRs: every committed corpus entry replays
through each non-classic backend and must match the classic interpreter
on registers, the memory image, and the energy accounts — under plain
classic semantics *and* under every amnesic policy.  Entries that
expect a classic fault (scheduled traps, tight budgets) must reproduce
the fault with parity: an *invalid* verdict with zero failures.  A
seeded ``check_spec`` round additionally runs the standard
amnesic-vs-classic oracle with the fast amnesic CPU substituted,
pinning the backends against each other through the full differential
pipeline.
"""

from pathlib import Path

import pytest

from repro.core.policies import POLICY_NAMES
from repro.errors import ReproError
from repro.fuzz import (
    check_backend_equivalence,
    check_spec,
    default_fuzz_model,
    generate_specs,
    load_entry,
    materialize,
)
from repro.fuzz.corpus import EXPECT_CLASSIC_FAULT, corpus_paths
from repro.fuzz.oracle import DEFAULT_MAX_INSTRUCTIONS

CORPUS_DIR = Path(__file__).resolve().parent.parent / "corpus"

#: Fixed seed so CI failures reproduce locally from the same specs.
BACKEND_FUZZ_SEED = 0xA32E51AC

#: Every backend that must match classic bit-for-bit.
NON_CLASSIC_BACKENDS = ("fast", "fast-batched")


def entry_ids():
    return [path.stem for path in corpus_paths(CORPUS_DIR)]


@pytest.fixture(scope="module")
def model():
    return default_fuzz_model()


def assert_matches_expectation(entry, verdict):
    if entry.expect == EXPECT_CLASSIC_FAULT:
        assert verdict.invalid and not verdict.failures, (
            f"{entry.name}: expected classic fault with backend parity, "
            f"got {verdict.summary()}"
        )
    else:
        assert verdict.ok, f"{entry.name}: {verdict.summary()}"


@pytest.mark.parametrize("backend", NON_CLASSIC_BACKENDS)
@pytest.mark.parametrize("path", corpus_paths(CORPUS_DIR), ids=entry_ids())
def test_corpus_entry_matches_classic_under_backend(path, backend, model):
    entry = load_entry(path)
    verdict = check_backend_equivalence(
        materialize(entry.spec),
        spec=entry.spec,
        model=model,
        policies=entry.policies or POLICY_NAMES,
        max_instructions=entry.max_instructions or DEFAULT_MAX_INSTRUCTIONS,
        backend=backend,
    )
    assert_matches_expectation(entry, verdict)


def test_seeded_fuzz_round_with_fast_amnesic_cpu(model):
    # The standard oracle, but the amnesic side runs on the fast
    # backend: amnesic-vs-classic equivalence must hold regardless of
    # which backend executes the binary.
    from repro.core.backend import BACKENDS

    fast_amnesic = BACKENDS["fast"].amnesic_cls
    checked = 0
    for spec in generate_specs(BACKEND_FUZZ_SEED, 10):
        try:
            materialize(spec)
        except ReproError:
            continue
        verdict = check_spec(spec, model=model, cpu_cls=fast_amnesic)
        # A generated spec may carry a live trap; the classic fault makes
        # it invalid, which says nothing about the backend under test.
        assert verdict.ok or (verdict.invalid and not verdict.failures), (
            f"{spec.name}: {verdict.summary()}"
        )
        checked += 1
    assert checked >= 5, "seed produced too few materializable specs"


@pytest.mark.parametrize("backend", NON_CLASSIC_BACKENDS)
def test_seeded_backend_equivalence_round(backend, model):
    # Direct classic-vs-backend differential over generated programs,
    # under all five policies (the check runs each policy on both
    # backends).
    checked = 0
    for spec in generate_specs(BACKEND_FUZZ_SEED + 1, 10):
        try:
            program = materialize(spec)
        except ReproError:
            continue
        verdict = check_backend_equivalence(
            program, spec=spec, model=model, backend=backend
        )
        assert verdict.ok or (verdict.invalid and not verdict.failures), (
            f"{spec.name}: {verdict.summary()}"
        )
        checked += 1
    assert checked >= 5, "seed produced too few materializable specs"


def test_compilation_identical_across_profiling_backends(model):
    # The compiler's profiling run may execute on either backend: the
    # traced fast closures emit the classic event stream field for
    # field, so the dependence/load/locality profiles — and therefore
    # the compiled binary — must come out identical.
    from repro.compiler.amnesic_pass import compile_amnesic

    checked = 0
    for spec in generate_specs(BACKEND_FUZZ_SEED + 2, 8):
        try:
            program = materialize(spec)
        except ReproError:
            continue
        try:
            classic = compile_amnesic(program, model, backend="classic")
        except ReproError:
            continue  # uncompilable spec; backend choice is moot
        for backend in NON_CLASSIC_BACKENDS:
            fast = compile_amnesic(program, model, backend=backend)
            assert classic.swapped_load_pcs == fast.swapped_load_pcs, spec.name
            assert classic.rejected == fast.rejected, spec.name
            assert (
                classic.binary.program.instructions
                == fast.binary.program.instructions
            ), spec.name
            assert (
                classic.profile.stats.dynamic_instructions
                == fast.profile.stats.dynamic_instructions
            ), spec.name
        checked += 1
    assert checked >= 4, "seed produced too few compilable specs"


def test_backend_check_reports_fault_divergence_kind(model):
    # The failure channel itself: a program whose classic run faults
    # must produce a clean (fault-parity) verdict, not a crash.
    from repro.isa import ProgramBuilder

    b = ProgramBuilder()
    t = b.reg("t")
    b.li(t, 3)
    b.ret(t)
    b.halt()
    verdict = check_backend_equivalence(b.build(), model=model)
    assert not verdict.failures  # both backends faulted identically
    assert verdict.invalid  # classic faulted; parity was still checked
    assert "jump-register" in (verdict.invalid_reason or "")
