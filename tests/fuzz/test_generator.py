"""Generator determinism and coverage of the tricky-shape space."""

from repro.fuzz import generate_specs, materialize, program_seed, random_spec
from repro.fuzz.spec import Clobber, Gap, Produce, Reload, Store, validate_spec

SAMPLE = 60


def test_same_seed_same_spec():
    for seed in range(SAMPLE):
        assert random_spec(seed) == random_spec(seed)


def test_different_seeds_differ():
    specs = {random_spec(seed).digest() for seed in range(SAMPLE)}
    assert len(specs) > SAMPLE * 0.9  # near-total distinctness


def test_every_generated_spec_is_valid_and_materialises():
    for seed in range(SAMPLE):
        spec = random_spec(seed)
        validate_spec(spec)
        program = materialize(spec)
        assert program.static_loads()  # there is always a reload to swap


def test_generator_covers_the_tricky_shapes():
    """Across a modest sample, every statement kind and shape appears."""
    kinds = set()
    sources = set()
    strided_store = fixed_store = aliasing = False
    for seed in range(SAMPLE * 3):
        spec = random_spec(seed)
        seen_slots = set()
        for statement in spec.statements:
            kinds.add(type(statement).__name__)
            if isinstance(statement, Produce):
                sources.add(statement.source)
            if isinstance(statement, Store):
                if statement.stride:
                    strided_store = True
                else:
                    fixed_store = True
                slot = (statement.offset, statement.stride)
                if slot in seen_slots:
                    aliasing = True
                seen_slots.add(slot)
    assert {"Produce", "Store", "Clobber", "Gap", "Reload", "Carry"} <= kinds
    assert {"index", "roload"} <= sources
    assert sources - {"index", "roload"}  # temp-sourced deep trees
    assert strided_store and fixed_store and aliasing


def test_program_seed_streams_do_not_collide_across_campaigns():
    first = {program_seed(0, index) for index in range(1000)}
    second = {program_seed(1, index) for index in range(1000)}
    assert not first & second


def test_generate_specs_matches_per_index_generation():
    specs = generate_specs(7, 5)
    assert [s.seed for s in specs] == [program_seed(7, i) for i in range(5)]
    assert specs[2] == random_spec(program_seed(7, 2))
