"""Campaign behaviour: determinism, telemetry, banking, budgets."""

from repro.fuzz import (
    FuzzConfig,
    SkipHistReadCPU,
    default_fuzz_model,
    load_corpus,
    replay_corpus,
    run_fuzz,
)
from repro.telemetry.runtime import telemetry_session


def campaign_fingerprint(result):
    payload = result.to_json()
    payload.pop("elapsed_s")
    return payload


def test_campaign_is_deterministic():
    model = default_fuzz_model()
    config = FuzzConfig(seed=3, iterations=15)
    first = run_fuzz(config, model=model)
    second = run_fuzz(config, model=model)
    assert campaign_fingerprint(first) == campaign_fingerprint(second)
    assert first.programs == 15
    assert first.ok


def test_campaign_emits_the_issue_counters():
    model = default_fuzz_model()
    with telemetry_session() as telemetry:
        run_fuzz(FuzzConfig(seed=0, iterations=5), model=model)
        registry = telemetry.registry
        assert registry.value("fuzz.programs") == 5
        assert registry.get("fuzz.program_instructions").count == 5
        # A clean campaign reports no mismatches and no shrink work.
        assert registry.value("fuzz.oracle.mismatches") is None
        assert registry.value("fuzz.shrink.steps") is None


def test_failing_campaign_counts_mismatches_and_shrink_steps():
    model = default_fuzz_model()
    config = FuzzConfig(
        seed=0,
        iterations=40,
        policies=("Compiler",),
        cpu_cls=SkipHistReadCPU,
        max_counterexamples=1,
    )
    with telemetry_session() as telemetry:
        result = run_fuzz(config, model=model)
        assert result.counterexamples
        assert telemetry.registry.value("fuzz.oracle.mismatches") >= 1
        assert telemetry.registry.value("fuzz.shrink.steps") >= 1


def test_counterexamples_are_banked_and_deduplicated(tmp_path):
    model = default_fuzz_model()
    corpus_dir = str(tmp_path / "corpus")
    config = FuzzConfig(
        seed=0,
        iterations=40,
        policies=("Compiler",),
        cpu_cls=SkipHistReadCPU,
        max_counterexamples=1,
        corpus_dir=corpus_dir,
    )
    first = run_fuzz(config, model=model)
    assert first.counterexamples[0].corpus_path is not None
    banked = load_corpus(corpus_dir)
    assert len(banked) == 1
    assert banked[0].spec.digest() == first.counterexamples[0].shrunk.digest()

    # A second identical campaign rediscovers the bug but banks nothing new.
    second = run_fuzz(config, model=model)
    assert second.counterexamples[0].corpus_path is None
    assert len(load_corpus(corpus_dir)) == 1


def test_time_budget_stops_the_campaign():
    model = default_fuzz_model()
    result = run_fuzz(
        FuzzConfig(seed=0, iterations=10_000, time_budget_s=0.0), model=model
    )
    assert result.stopped_early == "time-budget"
    assert result.programs < 10_000


def test_max_counterexamples_stops_the_campaign():
    model = default_fuzz_model()
    result = run_fuzz(
        FuzzConfig(
            seed=0,
            iterations=200,
            policies=("Compiler",),
            cpu_cls=SkipHistReadCPU,
            max_counterexamples=1,
            shrink=False,
        ),
        model=model,
    )
    assert result.stopped_early == "max-counterexamples"
    assert len(result.counterexamples) == 1
    # Without shrinking the original spec is reported untouched.
    cx = result.counterexamples[0]
    assert cx.shrunk == cx.original
    assert cx.shrink_steps == 0


def test_replay_corpus_runs_every_entry(tmp_path):
    model = default_fuzz_model()
    corpus_dir = str(tmp_path / "corpus")
    config = FuzzConfig(
        seed=0,
        iterations=40,
        policies=("Compiler",),
        cpu_cls=SkipHistReadCPU,
        max_counterexamples=1,
        corpus_dir=corpus_dir,
    )
    run_fuzz(config, model=model)

    # Replayed against the healthy scheduler, the banked counterexample
    # passes; replayed against the buggy one, it fails again.
    healthy = replay_corpus(corpus_dir, model=model, policies=("Compiler",))
    assert healthy.ok
    buggy = replay_corpus(
        corpus_dir,
        model=model,
        policies=("Compiler",),
        cpu_cls=SkipHistReadCPU,
    )
    assert not buggy.ok
    assert len(buggy.failures) == 1
