"""The differential oracle: clean on main, loud on injected bugs."""

import dataclasses

import pytest

from repro.core.policies import POLICY_NAMES
from repro.fuzz import (
    EagerFireCPU,
    Produce,
    ProgramSpec,
    Reload,
    SkipHistReadCPU,
    Store,
    check_spec,
    default_fuzz_model,
    random_spec,
)
from repro.fuzz.spec import Gap


@pytest.fixture(scope="module")
def model():
    return default_fuzz_model()


def hist_leaf_spec():
    """A spec whose slice depends on a Hist checkpoint (non-zero value)."""
    return ProgramSpec(
        name="hist-leaf",
        iterations=4,
        slot_words=8,
        statements=(
            Produce(temp="t0", source="roload", chain=(("add", 3),), ro_stride=1),
            Store(temp="t0", offset=0),
            Gap(count=4, stride=2),
            Reload(offset=0),
        ),
    )


def test_generated_programs_pass_under_every_policy(model):
    for seed in range(20):
        verdict = check_spec(random_spec(seed), model=model)
        # A live generated trap faults the classic run by design; the
        # spec is invalid for amnesic comparison, never *failing*.
        assert verdict.ok or (verdict.invalid and not verdict.failures), (
            f"seed {seed}: {verdict.summary()}"
        )
        assert verdict.policies == POLICY_NAMES


def test_oracle_reports_slice_counts(model):
    verdict = check_spec(hist_leaf_spec(), model=model)
    assert verdict.ok
    assert verdict.slice_count >= 1
    assert verdict.instruction_count > 0


def test_classic_fault_marks_spec_invalid_not_failing(model):
    verdict = check_spec(
        hist_leaf_spec(), model=model, max_instructions=10
    )
    assert verdict.invalid
    assert not verdict.is_counterexample
    assert "classic" in verdict.invalid_reason


def test_unmaterialisable_spec_is_invalid(model):
    spec = dataclasses.replace(hist_leaf_spec(), iterations=0)
    verdict = check_spec(spec, model=model)
    assert verdict.invalid
    assert "materialise" in verdict.invalid_reason


def test_skip_hist_read_bug_is_caught(model):
    """The ISSUE's injected bug: Hist lookups skipped during traversal.

    REC still records and readiness still passes, so the scheduler fires
    — but checkpointed operands arrive as zero and the recomputed value
    diverges from what the load would have returned.
    """
    verdict = check_spec(
        hist_leaf_spec(),
        model=model,
        policies=("Compiler",),
        cpu_cls=SkipHistReadCPU,
    )
    assert verdict.is_counterexample
    kinds = {failure.kind for failure in verdict.failures}
    assert "equivalence" in kinds


def test_skip_hist_read_bug_survives_across_policies(model):
    verdict = check_spec(hist_leaf_spec(), model=model, cpu_cls=SkipHistReadCPU)
    failing_policies = {failure.policy for failure in verdict.failures}
    # Every always-fire policy that traverses the Hist-leaf slice must
    # diverge; probing policies may legitimately skip on L1 hits.
    assert "Compiler" in failing_policies


def test_eager_fire_bug_surfaces_as_failure_not_crash(model):
    # Firing without the readiness check either faults on the missing
    # checkpoint or recomputes garbage; the oracle must report a
    # failure either way, never propagate the exception.
    found = False
    for seed in range(30):
        verdict = check_spec(
            random_spec(seed),
            model=model,
            policies=("Compiler",),
            cpu_cls=EagerFireCPU,
        )
        if verdict.is_counterexample:
            found = True
            break
    assert found, "no generated program tripped the eager-fire bug"


def test_clean_cpu_on_the_same_specs_stays_clean(model):
    """The bug tests above prove detection; this proves specificity."""
    verdict = check_spec(hist_leaf_spec(), model=model)
    assert verdict.ok, verdict.summary()
