"""Reproduce the section 3.4 / 5.4 storage-complexity analysis.

The paper sizes the amnesic structures from the observed slices: "a Hist
design of no more than 600 entries can accommodate such demand" and
"less than 50 entries for SFile or IBuff can cover most of the RSlices".
"""

from repro.harness import SHARED_RUNNER
from repro.workloads.suite import RESPONSIVE

from conftest import record_report


def measure():
    rows = []
    for bench in RESPONSIVE:
        comparison = SHARED_RUNNER.result(bench)["Compiler"]
        cpu = comparison.amnesic.cpu
        max_sreg = max(
            (info.sreg_demand for info in comparison.compilation.binary.slices.values()),
            default=0,
        )
        rows.append(
            (bench, cpu.hist.stats.high_water, max_sreg,
             cpu.ibuff.stats.high_water, cpu.sfile.stats.high_water)
        )
    return rows


def test_storage_sizing(benchmark):
    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = ["storage sizing (per benchmark): hist_hw  sreg_demand  ibuff_hw  sfile_hw"]
    for bench, hist_hw, sreg, ibuff_hw, sfile_hw in rows:
        lines.append(f"  {bench:4s} {hist_hw:8d} {sreg:11d} {ibuff_hw:9d} {sfile_hw:9d}")
    record_report("storage_sizing", "\n".join(lines))

    for bench, hist_hw, sreg, ibuff_hw, sfile_hw in rows:
        # Paper section 5.4: Hist demand stays under 600 entries.
        assert hist_hw <= 600, bench
        # SFile/IBuff demand per slice stays under 50 entries.
        assert sreg <= 50, bench
        assert sfile_hw <= 50, bench
        assert ibuff_hw <= 64, bench
