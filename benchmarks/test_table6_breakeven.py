"""Reproduce paper Table 6: break-even R multipliers (C-Oracle).

Each benchmark's bisection recompiles and re-runs at every probed
factor, so this experiment runs at a reduced scale and coarse tolerance.
"""

from repro.harness import SHARED_RUNNER, SuiteRunner, run_experiment
from repro.harness.experiments import table6_breakeven

from conftest import record_report

#: Bisection is expensive; a representative subset keeps the bench
#: tractable while spanning the paper's range (bfs lowest, mcf high).
SUBSET = ("mcf", "is", "bfs", "sr", "cg")


def test_table6_breakeven(benchmark):
    runner = SuiteRunner(scale=0.5)
    report = benchmark.pedantic(
        lambda: table6_breakeven(runner, benchmarks=SUBSET, max_factor=128.0),
        rounds=1, iterations=1,
    )
    record_report("table6", report.text)
    results = {r.benchmark: r for r in report.data}

    # Every profitable benchmark must tolerate a multi-x increase in R
    # before recomputation stops paying (paper: 3.89x .. 83x).
    for name in ("mcf", "is", "cg"):
        assert results[name].breakeven_factor > 2.0, name
    # bfs is the paper's most fragile benchmark (3.89x); ours is the
    # low-margin one too.
    profitable = [r for r in results.values() if r.gain_at_default_percent > 0]
    assert profitable
    lowest = min(profitable, key=lambda r: r.breakeven_factor)
    assert lowest.benchmark in ("bfs", "sr", "rt", "cg")
