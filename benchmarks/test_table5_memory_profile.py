"""Reproduce paper Table 5: classic service profile of swapped loads."""

from repro.harness import SHARED_RUNNER, run_experiment
from repro.workloads.suite import get

from conftest import record_report


def test_table5_memory_profile(benchmark):
    report = benchmark.pedantic(
        lambda: run_experiment("table5", SHARED_RUNNER), rounds=1, iterations=1
    )
    record_report("table5", report.text)
    rows = {(row.benchmark, row.policy): row for row in report.data}

    # Per-benchmark shape checks against the calibration targets: the
    # dominant service level of the paper's Table 5 must dominate here.
    for bench in ("mcf", "sx", "cg", "is", "ca", "fs", "fe", "rt", "bp", "bfs", "sr"):
        target = get(bench).calibration.swapped_levels
        measured = rows[(bench, "Compiler")].as_tuple()
        dominant = max(range(3), key=lambda i: target[i])
        assert max(range(3), key=lambda i: measured[i]) == dominant, (
            f"{bench}: dominant level {measured} vs target {target}"
        )

    # The memory-heavy and L1-heavy extremes, quantitatively.
    assert rows[("mcf", "Compiler")].mem_percent > 50
    assert rows[("bfs", "Compiler")].l1_percent > 90
    assert rows[("sr", "Compiler")].l1_percent > 80
