"""Reproduce the paper's suite-level selection claim (sections 5.1, 7).

"Out of 33 benchmarks we deployed, only 11 have the potential to provide
more than 10% EDP gain. ... The rest of the benchmarks did not benefit
much from recomputation (only 4 provided more than 5% gain)."

This experiment evaluates the full 33-benchmark suite (best-policy gain
per benchmark) and checks the partition.
"""

from repro.analysis.tables import render_table
from repro.core.execution import evaluate_policies
from repro.energy.tech import paper_energy_model
from repro.workloads.suite import RESPONSIVE, all_specs

from conftest import record_report

POLICIES = ("Oracle", "Compiler", "FLC")


def measure():
    model = paper_energy_model()
    rows = []
    for spec in all_specs():
        program = spec.instantiate(1.0)
        results = evaluate_policies(program, policies=POLICIES, model=model)
        best = max(r.edp_gain_percent for r in results.values())
        rows.append((spec.name, spec.suite, spec.responsive, best,
                     results["Compiler"].edp_gain_percent))
    return rows


def test_suite_selection(benchmark):
    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    table_rows = [
        [name, suite, "yes" if responsive else "", best, compiler]
        for name, suite, responsive, best, compiler in rows
    ]
    report = render_table(
        ["bench", "suite", "responsive", "best EDP %", "Compiler EDP %"],
        table_rows, title="suite selection (all 33 benchmarks)",
    )
    over_10 = sorted(name for name, *_rest, best, _c in
                     [(r[0], r[1], r[2], r[3], r[4]) for r in rows] if best > 10)
    record_report("suite_selection", report + f"\n\n>10% potential: {over_10}")

    by_name = {row[0]: row for row in rows}

    # Every paper-responsive benchmark shows real potential; every
    # unresponsive one stays below the paper's 10% line.
    for name, suite, responsive, best, compiler in rows:
        if responsive:
            assert best > 5.0, (name, best)
        else:
            assert best <= 10.0, (name, best)

    # The >10% set is dominated by the responsive 11 (a couple of the
    # marginal responsive benchmarks may sit at 6-10%).
    over_10_names = {name for name, _s, _r, best, _c in rows if best > 10.0}
    assert over_10_names <= set(RESPONSIVE)
    assert len(over_10_names) >= 8

    # "Only 4 provided more than 5% gain" among the unresponsive 22.
    unresponsive_over_5 = [
        name for name, _s, responsive, best, _c in rows
        if not responsive and best > 5.0
    ]
    assert len(unresponsive_over_5) <= 6

    # Compiler never degrades anything badly (paper: worst case sr -7%).
    for name, _s, _r, _best, compiler in rows:
        assert compiler > -8.0, (name, compiler)
