"""Reproduce paper Table 4: instruction mix and energy breakdown."""

from repro.harness import SHARED_RUNNER, run_experiment

from conftest import record_report


def test_table4_breakdown(benchmark):
    report = benchmark.pedantic(
        lambda: run_experiment("table4", SHARED_RUNNER), rounds=1, iterations=1
    )
    record_report("table4", report.text)
    rows = {row.benchmark: row for row in report.data}

    for name, row in rows.items():
        # Recomputation replaces loads with extra instructions.
        assert row.instruction_increase_percent > 0, name
        assert row.load_decrease_percent > 0, name
        # "Amnesic execution reduces the energy consumed by load
        # instructions for all benchmarks" (section 5.2).
        assert row.amnesic_load < row.classic_load, name
        # "...while the energy consumed by Non-mem instructions
        # increases due to recomputation along RSlices."
        assert row.amnesic_nonmem >= row.classic_nonmem - 0.01, name

    # Hist reads are a small slice of amnesic energy (paper: 0-7.4%).
    for name, row in rows.items():
        assert row.amnesic_hist < 8.0, name
    # The most load-dominated classic profile belongs to `is`, the
    # benchmark the paper calls "the most responsive".
    assert rows["is"].classic_load > 40
