"""Reproduce paper Figure 3: EDP gain under amnesic execution.

Headline shapes asserted (paper section 5.1 / 7):
* every responsive benchmark shows double-digit gain under its best
  policy except the deliberately marginal rt/bfs/sr class;
* FLC >= LLC on every benchmark (probe-cost asymmetry);
* Compiler degrades sr while FLC does not (the probabilistic model's
  blind spot);
* Oracle >= C-Oracle >= 0-ish everywhere.
"""

from repro.harness import SHARED_RUNNER, run_experiment
from repro.workloads.suite import RESPONSIVE

from conftest import record_report


def test_fig3_edp_gain(benchmark):
    report = benchmark.pedantic(
        lambda: run_experiment("fig3", SHARED_RUNNER), rounds=1, iterations=1
    )
    record_report("fig3", report.text)
    matrix = report.data

    for bench in RESPONSIVE:
        assert matrix.gain(bench, "FLC") >= matrix.gain(bench, "LLC") - 0.5, bench
        assert matrix.gain(bench, "Oracle") >= matrix.gain(bench, "C-Oracle") - 0.5, bench

    # The sr inversion: always-firing recomputation hurts, FLC does not.
    assert matrix.gain("sr", "Compiler") < 0
    assert matrix.gain("sr", "FLC") > 0

    # Best case and mean, roughly in the paper's league (87% / 24.92%).
    assert matrix.max_gain("Compiler") > 60
    assert matrix.mean_gain("Compiler") > 15
