"""Ablation: history-table capacity sweep (paper sections 3.4/3.5).

Hist overflow may only cause fallbacks (lost opportunity), never wrong
results; gains must be monotone-ish in capacity and saturate well below
the paper's 600-entry bound.
"""

from repro.core.execution import run_amnesic
from repro.harness import SHARED_RUNNER

from conftest import record_report

CAPACITIES = (1, 2, 8, 64, 600)


def measure(bench="sx"):
    comparisons = SHARED_RUNNER.result(bench)
    classic = comparisons["Compiler"].classic
    compilation = comparisons["Compiler"].compilation
    gains = {}
    for capacity in CAPACITIES:
        amnesic = run_amnesic(
            compilation, "Compiler", SHARED_RUNNER.model, hist_capacity=capacity
        )
        gains[capacity] = {
            "edp_gain": 100 * (classic.edp - amnesic.edp) / classic.edp,
            "fallbacks": amnesic.stats.recomputation_fallbacks,
        }
    return gains


def test_hist_capacity_sweep(benchmark):
    gains = benchmark.pedantic(measure, rounds=1, iterations=1)
    record_report(
        "ablation_hist_capacity",
        "hist capacity sweep (sx): "
        + "  ".join(
            f"{cap}: edp={g['edp_gain']:.2f}% fb={g['fallbacks']}"
            for cap, g in gains.items()
        ),
    )
    # Saturation: beyond a modest capacity nothing changes.
    assert gains[64]["edp_gain"] == gains[600]["edp_gain"]
    assert gains[600]["fallbacks"] == 0
    # Starved Hist falls back more and gains no more than the saturated
    # configuration.
    assert gains[1]["fallbacks"] >= gains[600]["fallbacks"]
    assert gains[1]["edp_gain"] <= gains[600]["edp_gain"] + 0.5
