"""Ablation: the paper's greedy slice growth vs the minimum-cost cut.

The optimal cut produces much shorter slices (a Hist read beats
re-executing more than ~2 instructions) at equal-or-better energy; the
greedy growth is what reproduces the paper's Figure 6 length spread.
"""

import dataclasses

from repro.compiler import PassOptions, compile_amnesic
from repro.compiler.formation import FORMATION_GREEDY, FORMATION_OPTIMAL
from repro.core.execution import run_amnesic, run_classic
from repro.harness import SHARED_RUNNER
from repro.workloads.suite import get

from conftest import record_report


def measure(bench="sx"):
    model = SHARED_RUNNER.model
    program = get(bench).instantiate(SHARED_RUNNER.scale)
    out = {}
    for mode in (FORMATION_GREEDY, FORMATION_OPTIMAL):
        compilation = compile_amnesic(
            program, model, options=PassOptions(formation=mode)
        )
        classic = run_classic(program, model)
        amnesic = run_amnesic(compilation, "Compiler", model)
        lengths = [rs.length for rs in compilation.rslices]
        out[mode] = {
            "edp_gain": 100 * (classic.edp - amnesic.edp) / classic.edp,
            "mean_length": sum(lengths) / max(len(lengths), 1),
        }
    return out


def test_formation_mode_tradeoff(benchmark):
    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    record_report(
        "ablation_formation",
        "formation ablation (sx): "
        + "  ".join(
            f"{mode}: edp={r['edp_gain']:.2f}% mean_len={r['mean_length']:.1f}"
            for mode, r in results.items()
        ),
    )
    greedy = results[FORMATION_GREEDY]
    optimal = results[FORMATION_OPTIMAL]
    assert optimal["mean_length"] <= greedy["mean_length"]
    # The optimal cut must not lose EDP against greedy growth.
    assert optimal["edp_gain"] >= greedy["edp_gain"] - 1.0
