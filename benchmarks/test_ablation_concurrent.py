"""Ablation: concurrent recomputation on a helper core (paper footnote 4).

"Offloading recomputation to spare or idle cores, or using helper
threads may improve energy efficiency further by enabling concurrent
recomputation.  However, the basic proof-of-concept implementation
assumes strictly sequential execution semantics."

We bound that future work: the offload mode hides all slice-traversal
latency (a perfect helper core) while still paying its energy, giving
the maximum additional EDP concurrent recomputation could deliver.
"""

from repro.core.execution import run_amnesic
from repro.harness import SHARED_RUNNER

from conftest import record_report

BENCHES = ("is", "mcf", "sr")


def measure():
    rows = []
    for bench in BENCHES:
        comparisons = SHARED_RUNNER.result(bench)
        classic = comparisons["Compiler"].classic
        compilation = comparisons["Compiler"].compilation
        sequential = comparisons["Compiler"].amnesic
        offloaded = run_amnesic(
            compilation, "Compiler", SHARED_RUNNER.model, concurrent_offload=True
        )

        def gain(outcome):
            return 100 * (classic.edp - outcome.edp) / classic.edp

        rows.append((bench, gain(sequential), gain(offloaded)))
    return rows


def test_concurrent_offload_upper_bound(benchmark):
    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = ["concurrent recomputation (perfect helper core): sequential -> offloaded EDP gain"]
    for bench, sequential, offloaded in rows:
        lines.append(f"  {bench:4s} {sequential:7.2f}% -> {offloaded:7.2f}%")
    record_report("ablation_concurrent", "\n".join(lines))

    for bench, sequential, offloaded in rows:
        # Hiding traversal latency can only help (energy unchanged).
        assert offloaded >= sequential - 1e-9, bench
    by_bench = {r[0]: r for r in rows}
    # sr is the showcase: its degradation under Compiler is mostly the
    # latency of recomputing L1-resident values; a helper core hides it.
    _, sr_sequential, sr_offloaded = by_bench["sr"]
    assert sr_offloaded > sr_sequential + 1.0
