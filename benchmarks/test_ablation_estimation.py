"""Ablation: global (paper) vs per-load PrLi estimation.

The paper derives PrLi from suite-wide per-level hit/miss statistics; a
per-load profile is sharper and prevents the sr-style misprediction
where always-firing recomputation degrades EDP.
"""

from repro.compiler import PassOptions, compile_amnesic
from repro.compiler.cost import ESTIMATION_GLOBAL, ESTIMATION_PER_LOAD
from repro.core.execution import run_amnesic, run_classic
from repro.harness import SHARED_RUNNER
from repro.workloads.suite import get

from conftest import record_report


def measure(bench="sr"):
    model = SHARED_RUNNER.model
    program = get(bench).instantiate(SHARED_RUNNER.scale)
    classic = run_classic(program, model)
    out = {}
    for mode in (ESTIMATION_GLOBAL, ESTIMATION_PER_LOAD):
        compilation = compile_amnesic(
            program, model, options=PassOptions(estimation=mode)
        )
        amnesic = run_amnesic(compilation, "Compiler", model)
        out[mode] = {
            "edp_gain": 100 * (classic.edp - amnesic.edp) / classic.edp,
            "slices": len(compilation.rslices),
        }
    return out


def test_estimation_mode(benchmark):
    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    record_report(
        "ablation_estimation",
        "estimation ablation (sr): "
        + "  ".join(
            f"{mode}: edp={r['edp_gain']:.2f}% slices={r['slices']}"
            for mode, r in results.items()
        ),
    )
    # Global estimation swaps the hot loads too (the sr blind spot);
    # per-load estimation refuses them and cannot do worse.
    assert results[ESTIMATION_GLOBAL]["slices"] >= results[ESTIMATION_PER_LOAD]["slices"]
    assert (
        results[ESTIMATION_PER_LOAD]["edp_gain"]
        >= results[ESTIMATION_GLOBAL]["edp_gain"] - 0.5
    )
