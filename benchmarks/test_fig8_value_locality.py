"""Reproduce paper Figure 8: value locality of swapped loads.

Known deviation (see EXPERIMENTS.md): strict replay-verified slices keep
values stable between region rewrites, so MEM-heavy benchmarks measure
higher locality than the paper's unverified selection.  The outliers the
paper calls out (bfs, sr: high locality) still hold, and locality varies
across the suite.
"""

from repro.harness import SHARED_RUNNER, run_experiment

from conftest import record_report


def test_fig8_value_locality(benchmark):
    report = benchmark.pedantic(
        lambda: run_experiment("fig8", SHARED_RUNNER), rounds=1, iterations=1
    )
    record_report("fig8", report.text)
    histograms = {h.benchmark: h for h in report.data}

    # The paper's explicit high-locality outliers.
    assert histograms["bfs"].weighted_mean_percent() > 80
    assert histograms["sr"].weighted_mean_percent() > 80
    # Every histogram is a proper distribution.
    for name, histogram in histograms.items():
        assert abs(sum(histogram.fractions) - 1.0) < 1e-9, name
