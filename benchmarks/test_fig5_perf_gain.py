"""Reproduce paper Figure 5: % reduction in execution time."""

from repro.analysis import METRIC_TIME
from repro.harness import SHARED_RUNNER, run_experiment

from conftest import record_report


def test_fig5_time_gain(benchmark):
    report = benchmark.pedantic(
        lambda: run_experiment("fig5", SHARED_RUNNER), rounds=1, iterations=1
    )
    record_report("fig5", report.text)
    matrix = report.data
    # "Most of the time, the reduction in EDP comes from a reduction in
    # both energy and execution time" (section 5.1).
    both_improve = sum(
        1
        for bench in matrix.benchmarks()
        if matrix.gain(bench, "FLC", METRIC_TIME) > 0
    )
    assert both_improve >= 8
    assert matrix.gain("is", "Compiler", METRIC_TIME) > 20
