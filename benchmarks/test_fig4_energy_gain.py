"""Reproduce paper Figure 4: energy gain under amnesic execution."""

from repro.analysis import METRIC_ENERGY
from repro.harness import SHARED_RUNNER, run_experiment

from conftest import record_report


def test_fig4_energy_gain(benchmark):
    report = benchmark.pedantic(
        lambda: run_experiment("fig4", SHARED_RUNNER), rounds=1, iterations=1
    )
    record_report("fig4", report.text)
    matrix = report.data
    # Energy gains track the EDP trend: memory-bound leaders win big.
    assert matrix.gain("is", "Compiler", METRIC_ENERGY) > 20
    assert matrix.gain("mcf", "Compiler", METRIC_ENERGY) > 15
    # EDP compounds energy and time: (1-edp) == (1-e)(1-t) must hold
    # identically for every cell.
    from repro.analysis import METRIC_TIME

    for bench in matrix.benchmarks():
        for policy in matrix.policies:
            edp = matrix.gain(bench, policy) / 100
            energy = matrix.gain(bench, policy, METRIC_ENERGY) / 100
            time = matrix.gain(bench, policy, METRIC_TIME) / 100
            assert abs((1 - edp) - (1 - energy) * (1 - time)) < 1e-9, (bench, policy)
