"""Benchmark harness plumbing.

Experiment reports are collected here and echoed after the
pytest-benchmark table (pytest captures stdout during the runs), and
also written to ``results/<experiment>.txt`` so a benchmark session
leaves the regenerated tables on disk.
"""

import pathlib

_REPORTS = []
RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


def pytest_report_header(config):
    """Surface the shared runner's engine settings in the session header.

    The harness honours ``REPRO_JOBS`` (parallel evaluation) and
    ``REPRO_CACHE_DIR`` (persistent result cache); echoing the resolved
    configuration makes warm-cache and parallel benchmark sessions
    distinguishable in CI logs.
    """
    from repro.harness.runner import SHARED_RUNNER

    cache = SHARED_RUNNER.result_cache
    cache_state = "off" if cache is None else str(cache.directory)
    return (
        f"repro harness: jobs={SHARED_RUNNER.jobs}, result cache={cache_state}"
    )


def record_report(experiment_id: str, text: str) -> None:
    """Register a report for the end-of-session summary and save it."""
    _REPORTS.append((experiment_id, text))
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{experiment_id}.txt").write_text(text + "\n")


def pytest_terminal_summary(terminalreporter):
    if not _REPORTS:
        return
    terminalreporter.write_sep("=", "reproduced tables and figures")
    for experiment_id, text in _REPORTS:
        terminalreporter.write_sep("-", experiment_id)
        for line in text.splitlines():
            terminalreporter.write_line(line)
