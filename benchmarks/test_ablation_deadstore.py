"""Ablation: the store-elision opportunity (paper section 1).

"For each load replaced with an RSlice, the corresponding store can
become redundant if no other load depends on it."  This experiment
quantifies, per responsive benchmark, the fraction of dynamic stores
whose every consumer is a swapped load — the upper bound on footprint
and store-energy relief amnesic execution unlocks.
"""

from repro.compiler.deadstore import analysis_for_compilation
from repro.harness import SHARED_RUNNER
from repro.workloads.suite import RESPONSIVE

from conftest import record_report


def measure():
    rows = []
    for bench in RESPONSIVE:
        compilation = SHARED_RUNNER.result(bench)["Compiler"].compilation
        analysis = analysis_for_compilation(compilation)
        rows.append(
            (bench, analysis.elidable_fraction,
             analysis.elidable_dynamic_stores, analysis.total_dynamic_stores)
        )
    return rows


def test_deadstore_opportunity(benchmark):
    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    lines = ["dead-store opportunity: elidable%  (elidable/total dynamic stores)"]
    for bench, fraction, elidable, total in rows:
        lines.append(f"  {bench:4s} {100 * fraction:8.1f}%  ({elidable}/{total})")
    record_report("ablation_deadstore", "\n".join(lines))

    by_bench = {row[0]: row[1] for row in rows}
    # Phase-constant regions are written once per refill and consumed
    # only by swapped loads: big elision opportunity on the memory-bound
    # benchmarks, tiny on the flag-churning bfs.
    assert by_bench["is"] > 0.3
    assert by_bench["mcf"] > 0.3
    for bench, fraction, *_ in rows:
        assert 0.0 <= fraction <= 1.0, bench
