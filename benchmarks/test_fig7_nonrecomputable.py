"""Reproduce paper Figure 7: slices with non-recomputable leaf inputs."""

from repro.harness import SHARED_RUNNER, run_experiment
from repro.workloads.suite import get

from conftest import record_report


def test_fig7_nonrecomputable(benchmark):
    report = benchmark.pedantic(
        lambda: run_experiment("fig7", SHARED_RUNNER), rounds=1, iterations=1
    )
    record_report("fig7", report.text)
    shares = {share.benchmark: share for share in report.data}

    # "With the exception of is and bfs, such RSlices represent the vast
    # majority" (section 5.4).
    for name, share in shares.items():
        expected_majority = get(name).calibration.nonrecomputable_majority
        assert (share.with_nc_percent > 50) == expected_majority, name
    assert shares["is"].with_nc_percent < 50
    assert shares["bfs"].with_nc_percent < 50
