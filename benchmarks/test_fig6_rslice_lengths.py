"""Reproduce paper Figure 6: RSlice length distributions."""

from repro.harness import SHARED_RUNNER, run_experiment

from conftest import record_report


def test_fig6_rslice_lengths(benchmark):
    report = benchmark.pedantic(
        lambda: run_experiment("fig6", SHARED_RUNNER), rounds=1, iterations=1
    )
    record_report("fig6", report.text)
    histograms = {h.benchmark: h for h in report.data}

    # "78.32% of the RSlices have a length less than 10 instructions";
    # the reproduction's suite is similarly short-slice-dominated.
    all_lengths = [l for h in histograms.values() for l in h.lengths]
    short_share = sum(1 for l in all_lengths if l < 10) / len(all_lengths)
    assert short_share > 0.6

    # bfs has the shortest slices; sr's are mid-length (paper Fig 6j/6k).
    assert histograms["bfs"].max_length <= 3
    assert 4 <= histograms["sr"].max_length <= 10
    # Nothing pathological: the paper saw only 0.09% above 50.
    assert max(all_lengths) <= 50
