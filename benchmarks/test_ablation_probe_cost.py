"""Ablation: the L2 probe overhead is "the main delimiter for LLC".

Re-running LLC with a hypothetical free probe must close (most of) the
FLC-LLC gap, isolating the probe cost as the cause rather than the
firing decisions themselves.
"""

import dataclasses

from repro.core.execution import run_amnesic
from repro.core.policies import Decision, LLCPolicy
from repro.harness import SHARED_RUNNER

from conftest import record_report


class FreeProbeLLC(LLCPolicy):
    """LLC with magically free probes (ablation only)."""

    name = "LLC-free-probe"

    def decide(self, context):
        decision = super().decide(context)
        return dataclasses.replace(decision, probe_cost=None)


def measure(bench="is"):
    comparisons = SHARED_RUNNER.result(bench)
    classic = comparisons["FLC"].classic
    compilation = comparisons["FLC"].compilation
    free = run_amnesic(compilation, FreeProbeLLC(), SHARED_RUNNER.model)

    def gain(outcome):
        return 100 * (classic.edp - outcome.edp) / classic.edp

    return {
        "FLC": gain(comparisons["FLC"].amnesic),
        "LLC": gain(comparisons["LLC"].amnesic),
        "LLC-free-probe": gain(free),
    }


def test_probe_cost_is_the_llc_delimiter(benchmark):
    gains = benchmark.pedantic(measure, rounds=1, iterations=1)
    record_report(
        "ablation_probe_cost",
        "probe-cost ablation (is): "
        + "  ".join(f"{k}={v:.2f}%" for k, v in gains.items()),
    )
    assert gains["FLC"] > gains["LLC"]
    # Freeing the probe recovers most of the gap.
    gap = gains["FLC"] - gains["LLC"]
    recovered = gains["LLC-free-probe"] - gains["LLC"]
    assert recovered > 0.5 * gap
