"""Reproduce paper Table 1: communication vs computation energy."""

from repro.harness import SHARED_RUNNER, run_experiment

from conftest import record_report


def test_table1_technology_trend(benchmark):
    report = benchmark.pedantic(
        lambda: run_experiment("table1", SHARED_RUNNER),
        rounds=1, iterations=1,
    )
    record_report("table1", report.text)
    nodes = {node.label: node for node in report.data}
    # The headline motivation numbers, verbatim from the paper.
    assert nodes["40nm HP"].sram_load_over_fma == 1.55
    assert nodes["10nm HP"].sram_load_over_fma == 5.75
    assert nodes["10nm LP"].sram_load_over_fma == 5.77
