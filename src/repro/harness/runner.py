"""Suite runner with memoisation, parallel fan-out, and a disk cache.

Reproducing every table and figure requires the same (benchmark, scale)
runs over and over; :class:`SuiteRunner` executes each combination once
and caches the per-policy comparisons.  Three layers cooperate:

* an in-memory cache keyed by ``(benchmark, scale, model fingerprint,
  policies)`` — the energy model is keyed by *value* via
  :meth:`~repro.energy.model.EnergyModel.fingerprint`, so swapping in an
  equivalent model keeps serving cached results while a genuinely
  different model transparently re-evaluates;
* an optional persistent :class:`~repro.harness.cache.ResultCache`
  (``cache_dir=`` / ``$REPRO_CACHE_DIR``) that survives the process, so
  repeat ``repro`` runs, the benchmark harness, and CI skip
  already-evaluated combinations;
* the parallel engine (:mod:`repro.harness.parallel`): with ``jobs > 1``
  the batch entry points fan cache misses out over a process pool and
  merge each worker's telemetry back into the parent session.

The module-level :data:`SHARED_RUNNER` is what the benchmark harness
uses, so one pytest session evaluates each benchmark exactly once no
matter how many experiments consume it; it honours ``$REPRO_JOBS`` and
``$REPRO_CACHE_DIR``.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, Optional, Sequence, Tuple

from ..core.backend import resolve_backend
from ..core.execution import PolicyComparison, evaluate_policies
from ..core.policies import POLICY_NAMES
from ..energy.model import EnergyModel
from ..energy.tech import paper_energy_model
from ..isa.program import Program
from ..machine.cpu import DEFAULT_MAX_INSTRUCTIONS
from ..telemetry.ledger import LEDGER_ENV_VAR, RunLedger, RunManifest
from ..telemetry.runtime import get_telemetry
from ..workloads.base import SCALE_SMALL, WorkloadSpec
from ..workloads.suite import RESPONSIVE, all_specs, get
from .cache import ResultCache, ResultKey
from .parallel import WorkUnit, default_jobs, evaluate_many

CacheKey = ResultKey


class SuiteRunner:
    """Runs suite benchmarks under all policies, caching results.

    The cache key includes the energy model's content fingerprint, so
    results can never silently mix models: replacing :attr:`model` with
    a value-equal instance keeps the cache warm, replacing it with a
    different one re-evaluates on demand.  ``jobs`` controls how many
    worker processes the batch entry points (:meth:`results`,
    :meth:`responsive_results`, :meth:`full_suite_results`) may use;
    ``cache_dir`` enables the persistent on-disk result cache.
    """

    def __init__(
        self,
        model: Optional[EnergyModel] = None,
        scale: float = SCALE_SMALL,
        policies: Sequence[str] = POLICY_NAMES,
        jobs: int = 1,
        cache_dir: Optional[str] = None,
        max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
        backend: Optional[str] = None,
        ledger_dir: Optional[str] = None,
    ):
        self.model = model or paper_energy_model()
        self.scale = scale
        self.policies = tuple(policies)
        self.jobs = max(1, int(jobs))
        self.max_instructions = max_instructions
        #: Resolved eagerly (explicit arg > $REPRO_BACKEND > classic) so
        #: cache keys and worker units name the backend by value.
        self.backend = resolve_backend(backend).name
        self.result_cache = ResultCache(cache_dir) if cache_dir else None
        #: Cross-run manifest store (``--ledger-dir``); off by default.
        self.ledger = RunLedger(ledger_dir) if ledger_dir else None
        self._cache: Dict[CacheKey, Dict[str, PolicyComparison]] = {}
        self._programs: Dict[Tuple[str, float], Program] = {}

    @classmethod
    def from_env(cls, **overrides) -> "SuiteRunner":
        """A runner configured from ``$REPRO_JOBS``/``$REPRO_CACHE_DIR``."""
        overrides.setdefault("jobs", default_jobs())
        overrides.setdefault("cache_dir", os.environ.get("REPRO_CACHE_DIR") or None)
        overrides.setdefault("ledger_dir", os.environ.get(LEDGER_ENV_VAR) or None)
        return cls(**overrides)

    # ------------------------------------------------------------------
    # Keys and lookups.
    # ------------------------------------------------------------------
    def _key(self, benchmark: str) -> CacheKey:
        return ResultKey(
            benchmark=benchmark,
            scale=self.scale,
            policies=self.policies,
            model_fingerprint=self.model.fingerprint(),
            max_instructions=self.max_instructions,
            backend=self.backend,
        )

    def _lookup(self, key: CacheKey) -> Optional[Dict[str, PolicyComparison]]:
        """Memory first, then disk; promotes disk hits into memory."""
        if key in self._cache:
            get_telemetry().counter("suite.cache", result="hit").inc()
            return self._cache[key]
        if self.result_cache is not None:
            stored = self.result_cache.get(key)
            if stored is not None:
                self._cache[key] = stored
                return stored
        return None

    def _store(self, key: CacheKey, comparisons: Dict[str, PolicyComparison]) -> None:
        self._cache[key] = comparisons
        if self.result_cache is not None:
            self.result_cache.put(key, comparisons)

    # ------------------------------------------------------------------
    # Evaluation.
    # ------------------------------------------------------------------
    def program(self, benchmark: str) -> Program:
        """The instantiated kernel at the current scale (memoised).

        Shared by :meth:`result` and experiments that need the program
        itself (e.g. the Table 6 break-even bisection), so each
        (benchmark, scale) is instantiated exactly once per session.
        """
        key = (benchmark, self.scale)
        if key not in self._programs:
            spec: WorkloadSpec = get(benchmark)
            self._programs[key] = spec.instantiate(self.scale)
        return self._programs[key]

    def result(self, benchmark: str) -> Dict[str, PolicyComparison]:
        """All-policy comparison for *benchmark* at the current scale."""
        telemetry = get_telemetry()
        key = self._key(benchmark)
        cached = self._lookup(key)
        if cached is not None:
            return cached
        telemetry.counter("suite.cache", result="miss").inc()
        with telemetry.span(
            "suite.benchmark", benchmark=benchmark, scale=self.scale
        ):
            comparisons = evaluate_policies(
                self.program(benchmark),
                policies=self.policies,
                model=self.model,
                max_instructions=self.max_instructions,
                backend=self.backend,
            )
        self._store(key, comparisons)
        return comparisons

    def results(
        self, benchmarks: Iterable[str]
    ) -> Dict[str, Dict[str, PolicyComparison]]:
        """Results for several benchmarks, preserving order.

        With ``jobs > 1`` the cache misses are evaluated concurrently by
        the parallel engine; ordering and values are identical to the
        serial path, and worker telemetry (metrics deltas, span and RCMP
        decision events) is merged into the ambient session.
        """
        names = list(benchmarks)
        if self.jobs <= 1:
            return {name: self.result(name) for name in names}

        telemetry = get_telemetry()
        misses: list = []
        for name in names:
            if name not in misses and self._lookup(self._key(name)) is None:
                misses.append(name)
        if misses:
            for name in misses:
                telemetry.counter("suite.cache", result="miss").inc()
            units = [
                WorkUnit.mirroring(
                    telemetry,
                    benchmark=name,
                    scale=self.scale,
                    policies=self.policies,
                    model=self.model,
                    max_instructions=self.max_instructions,
                    backend=self.backend,
                )
                for name in misses
            ]
            for envelope in evaluate_many(units, jobs=self.jobs):
                self._store(self._key(envelope.benchmark), envelope.comparisons)
        return {name: self._cache[self._key(name)] for name in names}

    def responsive_results(self) -> Dict[str, Dict[str, PolicyComparison]]:
        """The paper's 11 focus benchmarks, in figure order."""
        return self.results(RESPONSIVE)

    def full_suite_results(self) -> Dict[str, Dict[str, PolicyComparison]]:
        """All 33 benchmarks."""
        return self.results(spec.name for spec in all_specs())

    def describe(self) -> Dict[str, object]:
        """The runner's configuration, by value (bench artifacts embed it).

        Everything a result depends on is here — scale, policy tuple,
        model fingerprint, instruction budget — so two artifacts can be
        checked for comparability before their metrics are diffed.
        """
        return {
            "scale": self.scale,
            "policies": list(self.policies),
            "model_fingerprint": self.model.fingerprint(),
            "max_instructions": self.max_instructions,
            "backend": self.backend,
            "jobs": self.jobs,
            "result_cache": (
                str(self.result_cache.directory)
                if self.result_cache is not None else None
            ),
            "ledger": (
                str(self.ledger.directory) if self.ledger is not None else None
            ),
        }

    def record_manifest(self, manifest: RunManifest) -> Optional[RunManifest]:
        """Append *manifest* to the configured run ledger.

        A strict no-op (returns ``None``) when no ledger is configured,
        so entry points can call it unconditionally — the ledger stays
        opt-in and costs nothing when off.
        """
        if self.ledger is None:
            return None
        return self.ledger.append(manifest)

    def invalidate(self) -> None:
        """Drop the in-memory caches (programs included).

        The persistent cache is left alone — its entries are content
        keyed, so they can only ever be served for a matching model,
        scale, and policy set; use ``result_cache.clear()`` to actually
        delete stored results.
        """
        self._cache.clear()
        self._programs.clear()


#: Shared runner for the benchmark harness (one evaluation per session).
SHARED_RUNNER = SuiteRunner.from_env()
