"""Suite runner with memoisation.

Reproducing every table and figure requires the same (benchmark, scale)
runs over and over; :class:`SuiteRunner` executes each combination once
and caches the per-policy comparisons.  The module-level
:data:`SHARED_RUNNER` is what the benchmark harness uses, so one pytest
session evaluates each benchmark exactly once no matter how many
experiments consume it.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Tuple

from ..core.execution import PolicyComparison, evaluate_policies
from ..core.policies import POLICY_NAMES
from ..energy.model import EnergyModel
from ..energy.tech import paper_energy_model
from ..telemetry.runtime import get_telemetry
from ..workloads.base import SCALE_SMALL, WorkloadSpec
from ..workloads.suite import RESPONSIVE, all_specs, get

CacheKey = Tuple[str, float]  # (benchmark, scale)


class SuiteRunner:
    """Runs suite benchmarks under all policies, caching results.

    The cache is keyed by ``(benchmark, scale)`` so changing
    :attr:`scale` between calls re-evaluates instead of silently serving
    a stale run.  The energy model cannot be keyed by value, so swapping
    :attr:`model` while results are cached raises until
    :meth:`invalidate` acknowledges the change.
    """

    def __init__(
        self,
        model: Optional[EnergyModel] = None,
        scale: float = SCALE_SMALL,
        policies: Sequence[str] = POLICY_NAMES,
    ):
        self.model = model or paper_energy_model()
        self.scale = scale
        self.policies = tuple(policies)
        self._cache: Dict[CacheKey, Dict[str, PolicyComparison]] = {}
        self._cache_model: Optional[EnergyModel] = None

    def _check_model_identity(self) -> None:
        if self._cache and self._cache_model is not self.model:
            raise RuntimeError(
                "SuiteRunner.model changed while results were cached; "
                "call invalidate() before evaluating under a new model"
            )

    def result(self, benchmark: str) -> Dict[str, PolicyComparison]:
        """All-policy comparison for *benchmark* at the current scale."""
        telemetry = get_telemetry()
        key: CacheKey = (benchmark, self.scale)
        self._check_model_identity()
        if key in self._cache:
            telemetry.counter("suite.cache", result="hit").inc()
            return self._cache[key]
        telemetry.counter("suite.cache", result="miss").inc()
        with telemetry.span(
            "suite.benchmark", benchmark=benchmark, scale=self.scale
        ):
            spec: WorkloadSpec = get(benchmark)
            program = spec.instantiate(self.scale)
            comparisons = evaluate_policies(
                program, policies=self.policies, model=self.model
            )
        self._cache[key] = comparisons
        self._cache_model = self.model
        return comparisons

    def results(self, benchmarks: Iterable[str]) -> Dict[str, Dict[str, PolicyComparison]]:
        """Results for several benchmarks, preserving order."""
        return {name: self.result(name) for name in benchmarks}

    def responsive_results(self) -> Dict[str, Dict[str, PolicyComparison]]:
        """The paper's 11 focus benchmarks, in figure order."""
        return self.results(RESPONSIVE)

    def full_suite_results(self) -> Dict[str, Dict[str, PolicyComparison]]:
        """All 33 benchmarks."""
        return self.results(spec.name for spec in all_specs())

    def invalidate(self) -> None:
        """Drop all cached runs (and forget which model produced them)."""
        self._cache.clear()
        self._cache_model = None


#: Shared runner for the benchmark harness (one evaluation per session).
SHARED_RUNNER = SuiteRunner()
