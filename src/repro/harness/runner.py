"""Suite runner with memoisation.

Reproducing every table and figure requires the same (benchmark, scale)
runs over and over; :class:`SuiteRunner` executes each combination once
and caches the per-policy comparisons.  The module-level
:data:`SHARED_RUNNER` is what the benchmark harness uses, so one pytest
session evaluates each benchmark exactly once no matter how many
experiments consume it.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence

from ..core.execution import PolicyComparison, evaluate_policies
from ..core.policies import POLICY_NAMES
from ..energy.model import EnergyModel
from ..energy.tech import paper_energy_model
from ..workloads.base import SCALE_SMALL, WorkloadSpec
from ..workloads.suite import RESPONSIVE, all_specs, get


class SuiteRunner:
    """Runs suite benchmarks under all policies, caching results."""

    def __init__(
        self,
        model: Optional[EnergyModel] = None,
        scale: float = SCALE_SMALL,
        policies: Sequence[str] = POLICY_NAMES,
    ):
        self.model = model or paper_energy_model()
        self.scale = scale
        self.policies = tuple(policies)
        self._cache: Dict[str, Dict[str, PolicyComparison]] = {}

    def result(self, benchmark: str) -> Dict[str, PolicyComparison]:
        """All-policy comparison for *benchmark* (cached)."""
        if benchmark not in self._cache:
            spec: WorkloadSpec = get(benchmark)
            program = spec.instantiate(self.scale)
            self._cache[benchmark] = evaluate_policies(
                program, policies=self.policies, model=self.model
            )
        return self._cache[benchmark]

    def results(self, benchmarks: Iterable[str]) -> Dict[str, Dict[str, PolicyComparison]]:
        """Results for several benchmarks, preserving order."""
        return {name: self.result(name) for name in benchmarks}

    def responsive_results(self) -> Dict[str, Dict[str, PolicyComparison]]:
        """The paper's 11 focus benchmarks, in figure order."""
        return self.results(RESPONSIVE)

    def full_suite_results(self) -> Dict[str, Dict[str, PolicyComparison]]:
        """All 33 benchmarks."""
        return self.results(spec.name for spec in all_specs())

    def invalidate(self) -> None:
        """Drop all cached runs."""
        self._cache.clear()


#: Shared runner for the benchmark harness (one evaluation per session).
SHARED_RUNNER = SuiteRunner()
