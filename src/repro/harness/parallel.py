"""Parallel evaluation engine: fan work units over a process pool.

A full-suite evaluation is embarrassingly parallel — 33 independent
``(benchmark, scale, policies)`` combinations — but each evaluation is
interpreter-bound, so threads cannot help.  This module ships the work
to a :class:`concurrent.futures.ProcessPoolExecutor` instead:

* a :class:`WorkUnit` is a picklable descriptor of one evaluation
  (benchmark name, scale, policy tuple, energy model, instruction
  budget).  Workers re-instantiate the benchmark from the registry, so
  only small descriptors cross the process boundary on the way in;
* :func:`evaluate_unit` runs one unit under a private telemetry session
  and returns a :class:`ResultEnvelope` carrying the per-policy
  comparisons *plus* the worker's metrics-registry dump and structured
  events (spans, per-RCMP decision records);
* :func:`evaluate_many` preserves submission order — results come back
  deterministically no matter which worker finished first — and falls
  back to in-process execution for ``jobs=1`` or a single unit.  Each
  unit is submitted as its own future, so one worker dying mid-batch
  (OOM kill, segfault) costs only that unit: the survivors' telemetry
  is merged exactly once and the failure is raised as a
  :class:`ParallelEvaluationError` naming the lost benchmarks;
* :func:`merge_envelope` folds a worker's telemetry back into the
  parent session (counters add, histograms extend, gauges last-write,
  events re-emitted to the parent sink), so ``repro stats`` and
  ``--trace-out`` report a complete picture across workers.  Worker
  events are tagged with the worker's pid, span ids are remapped into
  the parent tracer's id space, and worker root spans are re-parented
  under the parent's open span — a merged trace reconstructs as one
  tree with cross-process nesting intact, and each worker's
  ``clock_sync`` event lets :mod:`repro.telemetry.export` align every
  process onto one timeline.

Within one unit the compile-once/run-many structure of
:func:`repro.core.execution.evaluate_policies` is preserved: the worker
profiles and compiles once and measures every policy against the same
classic baseline.
"""

from __future__ import annotations

import dataclasses
import os
import statistics
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.execution import PolicyComparison, evaluate_policies
from ..core.policies import POLICY_NAMES
from ..energy.model import EnergyModel
from ..machine.cpu import DEFAULT_MAX_INSTRUCTIONS
from ..telemetry.runtime import (
    Telemetry,
    get_telemetry,
    set_telemetry,
    telemetry_session,
)
from ..telemetry.sink import ListSink
from ..workloads.base import SCALE_SMALL
from ..workloads.suite import get


@dataclasses.dataclass(frozen=True)
class WorkUnit:
    """One evaluation to run: everything a worker needs, by value.

    ``capture_metrics``/``capture_events`` control how much telemetry
    the worker records for the parent-side merge.  Callers mirror the
    parent session here (metrics when telemetry is enabled, events only
    when a sink is attached): per-RCMP decision events are the dominant
    capture cost, and recording them for a parent that would drop them
    would erase most of the parallel speed-up.
    """

    benchmark: str
    scale: float = SCALE_SMALL
    policies: Tuple[str, ...] = POLICY_NAMES
    model: Optional[EnergyModel] = None
    max_instructions: int = DEFAULT_MAX_INSTRUCTIONS
    #: Execution backend name; None resolves from the worker's env.
    backend: Optional[str] = None
    capture_metrics: bool = True
    capture_events: bool = True
    #: Mirror of the parent session's timeline window: workers sample
    #: their own runs and the timeline events merge back with the rest.
    timeline_window: Optional[int] = None
    #: Wall-clock submission stamp (set by :func:`evaluate_many`); the
    #: worker subtracts it from its own start to measure queue wait.
    #: Wall clocks are shared across processes, so no sync is needed.
    submitted_wall: Optional[float] = None

    @classmethod
    def mirroring(
        cls, telemetry: Optional[Telemetry] = None, **fields
    ) -> "WorkUnit":
        """A unit whose capture settings mirror the given session."""
        telemetry = telemetry or get_telemetry()
        capture_events = telemetry.enabled and telemetry.sink is not None
        return cls(
            capture_metrics=telemetry.enabled,
            capture_events=capture_events,
            timeline_window=(
                telemetry.timeline_window if capture_events else None
            ),
            **fields,
        )


@dataclasses.dataclass
class ResultEnvelope:
    """One finished unit: results plus the worker's telemetry capture."""

    benchmark: str
    scale: float
    comparisons: Dict[str, PolicyComparison]
    #: The worker registry's :meth:`~MetricsRegistry.dump` (counters,
    #: gauges, histogram observations) for the parent-side merge.
    metrics: List[dict] = dataclasses.field(default_factory=list)
    #: Structured events (span open/close, RCMP decisions) in emit order.
    events: List[dict] = dataclasses.field(default_factory=list)
    #: Pid of the process that evaluated the unit; the merge tags the
    #: re-emitted events with it so traces attribute work per worker.
    worker_pid: Optional[int] = None
    #: Worker-side busy time spent on this unit (seconds).
    elapsed_s: float = 0.0
    #: Time the unit sat in the pool queue before a worker picked it up
    #: (seconds); 0.0 when the submission stamp is unknown.
    queue_wait_s: float = 0.0


def _evaluate(unit: WorkUnit) -> Dict[str, PolicyComparison]:
    program = get(unit.benchmark).instantiate(unit.scale)
    return evaluate_policies(
        program,
        policies=unit.policies,
        model=unit.model,
        max_instructions=unit.max_instructions,
        backend=unit.backend,
    )


def evaluate_unit(unit: WorkUnit) -> ResultEnvelope:
    """Evaluate one unit under an isolated telemetry session.

    Runs in a worker process (top-level so it pickles), but is equally
    valid in-process — :func:`evaluate_many` uses it for the serial
    fallback, which keeps jobs=1 and jobs=N behaviourally identical.
    """
    started_wall = time.time()
    queue_wait_s = (
        max(0.0, started_wall - unit.submitted_wall)
        if unit.submitted_wall is not None else 0.0
    )
    if not unit.capture_metrics:
        # Nothing to merge back: run with telemetry hard-off.  A fresh
        # disabled facade also shields a forked worker from any sink
        # (open file) inherited from the parent session.
        previous = set_telemetry(Telemetry(enabled=False))
        started = time.perf_counter()
        try:
            comparisons = _evaluate(unit)
        finally:
            elapsed_s = time.perf_counter() - started
            set_telemetry(previous)
        return ResultEnvelope(
            benchmark=unit.benchmark, scale=unit.scale,
            comparisons=comparisons, worker_pid=os.getpid(),
            elapsed_s=elapsed_s, queue_wait_s=queue_wait_s,
        )

    sink = ListSink() if unit.capture_events else None
    with telemetry_session(
        sink=sink,
        timeline_window=unit.timeline_window if unit.capture_events else None,
    ) as telemetry:
        started = time.perf_counter()
        with telemetry.span(
            "suite.benchmark", benchmark=unit.benchmark, scale=unit.scale
        ):
            comparisons = _evaluate(unit)
        elapsed_s = time.perf_counter() - started
        metrics = telemetry.registry.dump()
    return ResultEnvelope(
        benchmark=unit.benchmark,
        scale=unit.scale,
        comparisons=comparisons,
        metrics=metrics,
        events=sink.events if sink is not None else [],
        worker_pid=os.getpid(),
        elapsed_s=elapsed_s,
        queue_wait_s=queue_wait_s,
    )


def merge_envelope(
    envelope: ResultEnvelope, telemetry: Optional[Telemetry] = None
) -> None:
    """Fold a worker's telemetry into the (enabled) parent session.

    Besides the metric fold, the event re-emission rewrites span
    identity so the merged trace reads as one session:

    * every event gains a ``worker`` field (the worker pid);
    * span ids are remapped to fresh ids from the parent tracer, so two
      workers' span 0 never collide;
    * worker *root* spans are re-parented under the span open in the
      parent at merge time (``suite.parallel``), preserving cross
      process parent/child nesting in the reconstructed tree.
    """
    telemetry = telemetry or get_telemetry()
    if not telemetry.enabled:
        return
    telemetry.registry.merge_dump(envelope.metrics)
    if telemetry.sink is None:
        return
    anchor = telemetry.tracer.current()
    anchor_id = None if anchor is None else anchor.span_id
    remap: Dict[int, int] = {}

    def remapped(span_id) -> int:
        span_id = int(span_id)
        if span_id not in remap:
            remap[span_id] = telemetry.tracer.allocate_id()
        return remap[span_id]

    for event in envelope.events:
        event = dict(event)
        if envelope.worker_pid is not None and "worker" not in event:
            event["worker"] = envelope.worker_pid
        kind = event.get("type")
        if kind in ("span_open", "span_close") and "span" in event:
            event["span"] = remapped(event["span"])
            if kind == "span_open":
                parent = event.get("parent")
                event["parent"] = (
                    anchor_id if parent is None else remapped(parent)
                )
        telemetry.sink.emit(event)


def publish_pool_metrics(
    envelopes: Sequence[Optional[ResultEnvelope]],
    workers: int,
    telemetry: Optional[Telemetry] = None,
) -> None:
    """Fold a batch's utilisation into the parent registry and sink.

    Histograms and gauges only — never counters — so the serial and
    parallel paths keep producing identical merged *counter* totals
    (worker pids differ between the two, and the equivalence contract
    tests compare counters).  Per batch this records:

    * ``pool.unit_s`` / ``pool.queue_wait_s`` histograms (one
      observation per unit);
    * ``pool.busy_s{worker=pid}`` histograms — summing a worker's
      observations gives its busy time, and comparing workers exposes
      load imbalance;
    * ``pool.workers`` / ``pool.straggler_max_s`` /
      ``pool.straggler_median_s`` / ``pool.straggler_ratio`` gauges —
      the straggler ratio (max unit time over median unit time) is the
      one-number answer to "did one benchmark serialise the batch?";
    * one ``pool`` event per unit, which the Perfetto exporter turns
      into ``pool unit_s`` / ``pool queue_wait_s`` counter tracks.
    """
    telemetry = telemetry or get_telemetry()
    if not telemetry.enabled:
        return
    finished = [env for env in envelopes if env is not None]
    if not finished:
        return
    unit_times = []
    for envelope in finished:
        unit_times.append(envelope.elapsed_s)
        telemetry.histogram("pool.unit_s").observe(envelope.elapsed_s)
        telemetry.histogram("pool.queue_wait_s").observe(envelope.queue_wait_s)
        if envelope.worker_pid is not None:
            telemetry.histogram(
                "pool.busy_s", worker=envelope.worker_pid
            ).observe(envelope.elapsed_s)
        telemetry.event(
            "pool",
            t=time.perf_counter(),
            benchmark=envelope.benchmark,
            worker_pid=envelope.worker_pid,
            unit_s=envelope.elapsed_s,
            queue_wait_s=envelope.queue_wait_s,
        )
    median_s = statistics.median(unit_times)
    max_s = max(unit_times)
    telemetry.gauge("pool.workers").set(workers)
    telemetry.gauge("pool.straggler_max_s").set(max_s)
    telemetry.gauge("pool.straggler_median_s").set(median_s)
    telemetry.gauge("pool.straggler_ratio").set(
        max_s / median_s if median_s > 0 else 0.0
    )


class ParallelEvaluationError(RuntimeError):
    """One or more workers died mid-batch.

    Raised *after* the surviving envelopes' telemetry has been merged
    (exactly once), so a partial batch still reports everything it
    measured.  ``failures`` maps benchmark name to the error string;
    ``envelopes`` holds the surviving results in submission order.
    """

    def __init__(self, failures, envelopes):
        self.failures = list(failures)
        self.envelopes = list(envelopes)
        names = ", ".join(name for name, _ in self.failures)
        super().__init__(
            f"{len(self.failures)} evaluation(s) failed in worker "
            f"processes: {names}"
        )


def default_jobs() -> int:
    """Worker count from ``$REPRO_JOBS`` (1 = serial, the default)."""
    raw = os.environ.get("REPRO_JOBS", "").strip()
    if not raw:
        return 1
    try:
        return max(1, int(raw))
    except ValueError:
        raise ValueError(
            f"REPRO_JOBS must be a positive integer, got {raw!r}"
        ) from None


def evaluate_many(
    units: Sequence[WorkUnit],
    jobs: int = 1,
    merge_telemetry: bool = True,
) -> List[ResultEnvelope]:
    """Evaluate *units*, fanning out over *jobs* worker processes.

    The returned list is index-aligned with *units* regardless of
    completion order.  With ``jobs <= 1`` (or a single unit) everything
    runs in-process; telemetry is still captured per unit and merged,
    so the two paths produce identical counter totals.
    """
    units = list(units)
    telemetry = get_telemetry()
    workers = min(max(1, jobs), len(units)) if units else 1
    failures: List[Tuple[str, BaseException]] = []
    with telemetry.span("suite.parallel", units=len(units), jobs=workers):
        if workers <= 1:
            envelopes = [
                evaluate_unit(
                    dataclasses.replace(unit, submitted_wall=time.time())
                )
                for unit in units
            ]
        else:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                # One future per unit (not Executor.map): a worker that
                # dies poisons only its own future, and iterating in
                # submission order keeps results deterministic.
                futures = [
                    pool.submit(
                        evaluate_unit,
                        dataclasses.replace(unit, submitted_wall=time.time()),
                    )
                    for unit in units
                ]
                envelopes = []
                for unit, future in zip(units, futures):
                    try:
                        envelopes.append(future.result())
                    except Exception as error:
                        envelopes.append(None)
                        failures.append((unit.benchmark, error))
        # Merge inside the suite.parallel span so worker root spans are
        # re-parented under it (the cross-process nesting anchor).
        if merge_telemetry:
            for envelope in envelopes:
                if envelope is not None:
                    merge_envelope(envelope, telemetry)
            publish_pool_metrics(envelopes, workers, telemetry)
    if failures:
        raise ParallelEvaluationError(
            [(name, str(error)) for name, error in failures],
            [envelope for envelope in envelopes if envelope is not None],
        )
    return envelopes
