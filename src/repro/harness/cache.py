"""Persistent, content-keyed result cache for policy evaluations.

A :class:`ResultCache` maps a fully-descriptive evaluation key —
benchmark, scale, policy tuple, energy-model fingerprint
(:meth:`repro.energy.model.EnergyModel.fingerprint`), and instruction
budget — to the pickled ``{policy: PolicyComparison}`` dict that run
produced.  Because the key captures everything the evaluation depends
on *by value*, a warm cache directory lets repeat ``repro`` runs, the
benchmark harness, and CI skip already-evaluated combinations entirely
while still serving bitwise-identical experiment tables.

Entries are one zlib-compressed pickle per key under the cache
directory; writes go through a temporary file plus :func:`os.replace`
so concurrent writers (parallel workers, overlapping CI jobs) can never
leave a torn entry behind.  Unreadable or stale-format entries are
treated as misses, never as errors.
"""

from __future__ import annotations

import contextlib
import dataclasses
import hashlib
import json
import os
import pathlib
import pickle
import tempfile
import time
import zlib
from typing import Dict, Optional, Sequence, Tuple

from ..telemetry.runtime import get_telemetry

#: Age-histogram bucket upper bounds (seconds) for :meth:`ResultCache.stats`.
AGE_BUCKETS = (
    ("<1m", 60.0),
    ("<1h", 3600.0),
    ("<1d", 86400.0),
    ("<7d", 7 * 86400.0),
    ("older", float("inf")),
)

#: Bump to orphan every existing entry when the result layout changes.
CACHE_FORMAT_VERSION = 1


@dataclasses.dataclass(frozen=True)
class ResultKey:
    """Everything a policy evaluation's outcome depends on, by value."""

    benchmark: str
    scale: float
    policies: Tuple[str, ...]
    model_fingerprint: str
    max_instructions: int
    backend: str = "classic"

    def digest(self) -> str:
        """Stable hex digest used as the on-disk entry name."""
        payload = {
            "version": CACHE_FORMAT_VERSION,
            "benchmark": self.benchmark,
            "scale": repr(self.scale),
            "policies": list(self.policies),
            "model": self.model_fingerprint,
            "max_instructions": self.max_instructions,
        }
        if self.backend != "classic":
            # Omitted for the reference backend so entries cached before
            # backends existed keep serving classic evaluations; any
            # other backend gets its own namespace (and therefore always
            # runs cold the first time, which is what the bench
            # comparison wants).
            payload["backend"] = self.backend
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ResultCache:
    """Directory of evaluated ``(benchmark, scale, policies, model)`` runs."""

    def __init__(self, directory: os.PathLike | str):
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path(self, key: ResultKey) -> pathlib.Path:
        return self.directory / f"{key.digest()}.pkl.z"

    def get(self, key: ResultKey):
        """The cached result for *key*, or ``None`` on any kind of miss."""
        telemetry = get_telemetry()
        path = self._path(key)
        try:
            blob = path.read_bytes()
            result = pickle.loads(zlib.decompress(blob))
        except FileNotFoundError:
            telemetry.counter("suite.result_cache", result="miss").inc()
            telemetry.counter("cache.misses").inc()
            return None
        except (OSError, zlib.error, pickle.UnpicklingError, EOFError,
                AttributeError, ImportError, IndexError):
            # A torn, corrupt, or stale-format entry is a miss; drop it
            # so the rewritten entry is clean.
            telemetry.counter("suite.result_cache", result="corrupt").inc()
            telemetry.counter("cache.corrupt_misses").inc()
            with contextlib.suppress(OSError):
                path.unlink()
            return None
        telemetry.counter("suite.result_cache", result="hit").inc()
        telemetry.counter("cache.hits").inc()
        return result

    def put(self, key: ResultKey, value) -> None:
        """Persist *value* under *key* atomically."""
        blob = zlib.compress(
            pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL), level=3
        )
        fd, tmp_name = tempfile.mkstemp(
            dir=self.directory, prefix=".tmp-", suffix=".pkl.z"
        )
        try:
            with os.fdopen(fd, "wb") as stream:
                stream.write(blob)
            os.replace(tmp_name, self._path(key))
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp_name)
            raise
        telemetry = get_telemetry()
        telemetry.counter("suite.result_cache", result="store").inc()
        telemetry.counter("cache.bytes_written").inc(len(blob))

    # ------------------------------------------------------------------
    # Maintenance.
    # ------------------------------------------------------------------
    def entries(self) -> Sequence[pathlib.Path]:
        """Paths of every stored entry (maintenance/tests)."""
        return sorted(self.directory.glob("*.pkl.z"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in self.entries():
            with contextlib.suppress(OSError):
                path.unlink()
                removed += 1
        return removed

    def stats(self, now: Optional[float] = None) -> Dict[str, object]:
        """Operational snapshot: entry count, bytes on disk, age shape.

        ``repro cache stats`` renders this; entries racing a concurrent
        writer's unlink are simply skipped (the snapshot is advisory,
        not transactional).
        """
        now = time.time() if now is None else now
        entries = 0
        total_bytes = 0
        oldest: Optional[float] = None
        newest: Optional[float] = None
        ages = {label: 0 for label, _ in AGE_BUCKETS}
        for path in self.entries():
            try:
                info = path.stat()
            except OSError:
                continue
            entries += 1
            total_bytes += info.st_size
            age = max(0.0, now - info.st_mtime)
            oldest = age if oldest is None else max(oldest, age)
            newest = age if newest is None else min(newest, age)
            for label, bound in AGE_BUCKETS:
                if age < bound:
                    ages[label] += 1
                    break
        return {
            "directory": str(self.directory),
            "entries": entries,
            "total_bytes": total_bytes,
            "oldest_age_s": oldest,
            "newest_age_s": newest,
            "age_histogram": ages,
        }

    def __len__(self) -> int:
        return len(self.entries())

    def __repr__(self) -> str:
        return f"ResultCache({str(self.directory)!r}, {len(self)} entries)"


def cache_from_env(explicit: Optional[str] = None) -> Optional[ResultCache]:
    """A :class:`ResultCache` from *explicit* or ``$REPRO_CACHE_DIR``."""
    directory = explicit or os.environ.get("REPRO_CACHE_DIR") or None
    return ResultCache(directory) if directory else None
