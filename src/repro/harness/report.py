"""Markdown report generation: the whole evaluation in one document.

:func:`write_report` runs every registered experiment against a
:class:`~repro.harness.runner.SuiteRunner` and renders a self-contained
markdown report — the programmatic way to regenerate an
EXPERIMENTS-style record after changing the model, the workloads, or
the compiler.
"""

from __future__ import annotations

import pathlib
from typing import List, Optional, Sequence

from .experiments import EXPERIMENTS, ExperimentReport, run_experiment
from .runner import SuiteRunner

#: Experiments included by default, in paper order.  ``table6`` is
#: excluded unless asked for: its bisection re-runs the suite dozens of
#: times.
DEFAULT_EXPERIMENTS = (
    "table1", "fig3", "fig4", "fig5", "table4", "table5",
    "fig6", "fig7", "fig8",
)


def build_report(
    runner: SuiteRunner,
    experiments: Sequence[str] = DEFAULT_EXPERIMENTS,
) -> str:
    """Render the selected experiments as one markdown document."""
    reports: List[ExperimentReport] = [
        run_experiment(experiment_id, runner) for experiment_id in experiments
    ]
    parts = [
        "# AMNESIAC reproduction — evaluation report",
        "",
        f"Machine: scaled 22nm harness model, suite scale {runner.scale}.",
        f"Policies: {', '.join(runner.policies)}.",
        "",
    ]
    for report in reports:
        parts.append(f"## {report.experiment_id}: {report.title}")
        parts.append("")
        parts.append("```")
        parts.append(report.text)
        parts.append("```")
        parts.append("")
    return "\n".join(parts)


def write_report(
    runner: SuiteRunner,
    path: str,
    experiments: Optional[Sequence[str]] = None,
) -> pathlib.Path:
    """Build the report and write it to *path*; returns the path."""
    selected = tuple(experiments) if experiments else DEFAULT_EXPERIMENTS
    unknown = [e for e in selected if e not in EXPERIMENTS]
    if unknown:
        raise KeyError(f"unknown experiments: {unknown}")
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(build_report(runner, selected))
    return target
