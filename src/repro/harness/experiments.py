"""Experiment registry: one entry per paper table/figure.

Each experiment takes a :class:`~repro.harness.runner.SuiteRunner` and
returns a printable report plus structured data, so the benchmark
harness (``benchmarks/``) and EXPERIMENTS.md generation share one
implementation.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List

from ..analysis.breakdown import breakdown_table, render_breakdown
from ..analysis.breakeven import find_breakeven
from ..analysis.gains import METRIC_EDP, METRIC_ENERGY, METRIC_TIME, GainMatrix
from ..analysis.histograms import (
    locality_histogram,
    nonrecomputable_share,
    render_length_histogram,
    render_locality_histogram,
    render_nc_table,
    slice_length_histogram,
)
from ..analysis.memory_profile import memory_profile_table, render_memory_profile
from ..analysis.tables import render_table
from ..energy.tech import TABLE1_NODES
from ..workloads.suite import RESPONSIVE
from .runner import SuiteRunner


@dataclasses.dataclass
class ExperimentReport:
    """One regenerated table/figure."""

    experiment_id: str
    title: str
    text: str
    data: object


# ----------------------------------------------------------------------
# Table 1: technology trend (static data, no simulation needed).
# ----------------------------------------------------------------------
def table1_technology_trend(runner: SuiteRunner) -> ExperimentReport:
    """Communication vs computation energy across nodes (paper Table 1)."""
    headers = ["node", "voltage (V)", "SRAM-load / FMA", "off-chip / FMA"]
    rows = [
        [node.label, node.operating_voltage_v, node.sram_load_over_fma,
         node.offchip_load_over_fma]
        for node in TABLE1_NODES
    ]
    return ExperimentReport(
        "table1", "Communication vs computation energy",
        render_table(headers, rows, title="Table 1"), TABLE1_NODES,
    )


# ----------------------------------------------------------------------
# Figures 3-5: gains per policy.
# ----------------------------------------------------------------------
def _gain_report(runner: SuiteRunner, metric: str, experiment_id: str,
                 title: str) -> ExperimentReport:
    matrix = GainMatrix(runner.responsive_results())
    return ExperimentReport(experiment_id, title, matrix.render(metric, title), matrix)


def fig3_edp_gain(runner: SuiteRunner) -> ExperimentReport:
    """EDP gain under amnesic execution (paper Figure 3)."""
    return _gain_report(runner, METRIC_EDP, "fig3", "Figure 3: EDP gain (%)")


def fig4_energy_gain(runner: SuiteRunner) -> ExperimentReport:
    """Energy gain (paper Figure 4)."""
    return _gain_report(runner, METRIC_ENERGY, "fig4", "Figure 4: energy gain (%)")


def fig5_time_gain(runner: SuiteRunner) -> ExperimentReport:
    """Execution-time reduction (paper Figure 5)."""
    return _gain_report(runner, METRIC_TIME, "fig5", "Figure 5: time reduction (%)")


# ----------------------------------------------------------------------
# Table 4: instruction mix and energy breakdown.
# ----------------------------------------------------------------------
def table4_breakdown(runner: SuiteRunner) -> ExperimentReport:
    """Dynamic instruction mix / energy breakdown (paper Table 4)."""
    rows = breakdown_table(runner.responsive_results(), policy="Compiler")
    return ExperimentReport(
        "table4", "Instruction mix and energy breakdown",
        render_breakdown(rows, title="Table 4 (Compiler policy)"), rows,
    )


# ----------------------------------------------------------------------
# Table 5: memory access profile of swapped loads.
# ----------------------------------------------------------------------
def table5_memory_profile(runner: SuiteRunner) -> ExperimentReport:
    """Service-level profile of swapped loads (paper Table 5)."""
    rows = memory_profile_table(runner.responsive_results())
    return ExperimentReport(
        "table5", "Memory access profile of swapped loads",
        render_memory_profile(rows, title="Table 5"), rows,
    )


# ----------------------------------------------------------------------
# Figure 6: slice-length histograms.
# ----------------------------------------------------------------------
def fig6_slice_lengths(runner: SuiteRunner) -> ExperimentReport:
    """Instruction count per recomputed RSlice (paper Figure 6)."""
    histograms = []
    parts = ["Figure 6: RSlice length distributions (Compiler policy)"]
    results = runner.responsive_results()  # batch: honours runner.jobs
    for benchmark in RESPONSIVE:
        comparison = results[benchmark]["Compiler"]
        histogram = slice_length_histogram(benchmark, comparison.compilation)
        histograms.append(histogram)
        parts.append(render_length_histogram(histogram))
    overall = [length for h in histograms for length in h.lengths]
    short = sum(1 for length in overall if length < 10) / max(len(overall), 1)
    parts.append(f"overall: {100 * short:.1f}% of RSlices shorter than 10 instructions")
    return ExperimentReport("fig6", "RSlice lengths", "\n\n".join(parts), histograms)


# ----------------------------------------------------------------------
# Figure 7: non-recomputable leaf inputs.
# ----------------------------------------------------------------------
def fig7_nonrecomputable(runner: SuiteRunner) -> ExperimentReport:
    """% RSlices with non-recomputable leaf inputs (paper Figure 7)."""
    results = runner.responsive_results()
    shares = [
        nonrecomputable_share(
            benchmark, results[benchmark]["Compiler"].compilation
        )
        for benchmark in RESPONSIVE
    ]
    return ExperimentReport(
        "fig7", "RSlices with non-recomputable leaf inputs",
        render_nc_table(shares, title="Figure 7"), shares,
    )


# ----------------------------------------------------------------------
# Figure 8: value locality of swapped loads.
# ----------------------------------------------------------------------
def fig8_value_locality(runner: SuiteRunner) -> ExperimentReport:
    """Value locality of swapped loads (paper Figure 8)."""
    histograms = []
    parts = ["Figure 8: value locality of swapped loads (Compiler policy)"]
    results = runner.responsive_results()
    for benchmark in RESPONSIVE:
        histogram = locality_histogram(benchmark, results[benchmark]["Compiler"])
        histograms.append(histogram)
        parts.append(render_locality_histogram(histogram))
    return ExperimentReport("fig8", "Value locality", "\n\n".join(parts), histograms)


# ----------------------------------------------------------------------
# Table 6: break-even R multipliers.
# ----------------------------------------------------------------------
def table6_breakeven(runner: SuiteRunner, benchmarks=RESPONSIVE,
                     max_factor: float = 128.0) -> ExperimentReport:
    """Break-even compute/communication ratio per benchmark (Table 6).

    Routed through the runner's caches: the kernel instantiation is the
    same memoised :meth:`~repro.harness.runner.SuiteRunner.program` the
    other experiments share, and the profiling run is lifted from the
    cached all-policy comparison instead of being redone per benchmark
    (the bisection still recompiles per probed factor — the factor
    scales EPI, which moves compile-time costs but not the trace).
    """
    results = []
    all_comparisons = runner.results(benchmarks)
    for benchmark in benchmarks:
        program = runner.program(benchmark)
        comparisons = all_comparisons[benchmark]
        profile = next(iter(comparisons.values())).compilation.profile
        results.append(
            find_breakeven(
                benchmark, program, runner.model,
                max_factor=max_factor, profile=profile,
            )
        )
    headers = ["bench", "R_breakeven (normalized)", "gain@default %", "converged"]
    rows = [
        [r.benchmark, r.breakeven_factor, r.gain_at_default_percent, str(r.converged)]
        for r in results
    ]
    return ExperimentReport(
        "table6", "Break-even point (C-Oracle)",
        render_table(headers, rows, title="Table 6"), results,
    )


# ----------------------------------------------------------------------
# Sections 3.4/5.4: storage sizing.
# ----------------------------------------------------------------------
def storage_sizing(runner: SuiteRunner) -> ExperimentReport:
    """Amnesic structure demand vs the paper's section 3.4 bounds."""
    from ..analysis.storage import observed_utilisation

    rows = []
    results = runner.responsive_results()
    for benchmark in RESPONSIVE:
        comparison = results[benchmark]["Compiler"]
        utilisation = observed_utilisation(
            comparison.compilation.binary, comparison.amnesic.cpu
        )
        bounds = utilisation.bounds
        rows.append(
            [benchmark, utilisation.hist_high_water, bounds.hist_entries,
             utilisation.sfile_high_water, bounds.sfile_entries,
             utilisation.ibuff_high_water, bounds.ibuff_entries]
        )
    text = render_table(
        ["bench", "Hist hw", "Hist bound", "SFile hw", "SFile bound",
         "IBuff hw", "IBuff bound"],
        rows, title="Storage sizing (observed high-water vs paper 3.4 bounds)",
    )
    return ExperimentReport("storage", "Storage sizing", text, rows)


# ----------------------------------------------------------------------
# Sections 5.1/7: full-suite selection.
# ----------------------------------------------------------------------
def suite_selection(runner: SuiteRunner) -> ExperimentReport:
    """Best-policy EDP gain over all 33 benchmarks (the '11 of 33' claim)."""
    from ..workloads.suite import all_specs

    rows = []
    full_results = runner.full_suite_results()
    for spec in all_specs():
        results = full_results[spec.name]
        best = max(r.edp_gain_percent for r in results.values())
        rows.append(
            [spec.name, spec.suite, "yes" if spec.responsive else "", best]
        )
    text = render_table(
        ["bench", "suite", "responsive", "best EDP gain %"],
        rows, title="Suite selection (all 33 benchmarks)",
    )
    over_10 = [row[0] for row in rows if row[3] > 10]
    text += f"\n\n>10% potential: {sorted(over_10)}"
    return ExperimentReport("suite", "Full-suite selection", text, rows)


# ----------------------------------------------------------------------
# Registry.
# ----------------------------------------------------------------------
EXPERIMENTS: Dict[str, Callable[[SuiteRunner], ExperimentReport]] = {
    "table1": table1_technology_trend,
    "fig3": fig3_edp_gain,
    "fig4": fig4_energy_gain,
    "fig5": fig5_time_gain,
    "table4": table4_breakdown,
    "table5": table5_memory_profile,
    "fig6": fig6_slice_lengths,
    "fig7": fig7_nonrecomputable,
    "fig8": fig8_value_locality,
    "table6": table6_breakeven,
    "storage": storage_sizing,
    "suite": suite_selection,
}


def run_experiment(experiment_id: str, runner: SuiteRunner) -> ExperimentReport:
    """Run one registered experiment."""
    from ..telemetry.runtime import get_telemetry

    try:
        experiment = EXPERIMENTS[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {sorted(EXPERIMENTS)}"
        ) from None
    with get_telemetry().span("experiment", id=experiment_id):
        return experiment(runner)


def run_all(runner: SuiteRunner) -> List[ExperimentReport]:
    """Run every registered experiment, in paper order."""
    return [run_experiment(experiment_id, runner) for experiment_id in EXPERIMENTS]


# ----------------------------------------------------------------------
# Machine-readable experiment output (``--format json``).
# ----------------------------------------------------------------------
def _jsonable_data(value):
    """Best-effort JSON projection of an experiment's ``data`` payload."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: _jsonable_data(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {
            str(getattr(key, "value", key)): _jsonable_data(item)
            for key, item in value.items()
        }
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable_data(item) for item in value]
    enum_value = getattr(value, "value", None)
    if isinstance(enum_value, (str, int, float)):
        return enum_value
    return str(value)


def report_payload(report: ExperimentReport) -> dict:
    """An :class:`ExperimentReport` as a JSON-ready dict.

    Gain matrices are projected onto all three metrics (so one
    ``repro experiment fig3 --format json`` carries the EDP, energy,
    and time axes); dataclass rows become plain dicts; anything else
    falls back to a structural best effort.  The rendered text rides
    along so scripted consumers can still show the human table.
    """
    from ..analysis.gains import _METRIC_ACCESSOR

    data = report.data
    if isinstance(data, GainMatrix):
        payload: object = {
            "policies": list(data.policies),
            "gains_percent": {
                metric: {
                    benchmark: {
                        policy: data.gain(benchmark, policy, metric)
                        for policy in data.policies
                    }
                    for benchmark in data.benchmarks()
                }
                for metric in _METRIC_ACCESSOR
            },
        }
    else:
        payload = _jsonable_data(data)
    return {
        "experiment_id": report.experiment_id,
        "title": report.title,
        "data": payload,
        "text": report.text,
    }
