"""Evaluation harness: experiments, cached suite runner, parallel engine."""

from .cache import CACHE_FORMAT_VERSION, ResultCache, ResultKey
from .experiments import (
    EXPERIMENTS,
    ExperimentReport,
    report_payload,
    run_all,
    run_experiment,
)
from .parallel import (
    ParallelEvaluationError,
    ResultEnvelope,
    WorkUnit,
    default_jobs,
    evaluate_many,
    evaluate_unit,
    merge_envelope,
)
from .report import DEFAULT_EXPERIMENTS, build_report, write_report
from .runner import SHARED_RUNNER, SuiteRunner

__all__ = [
    "CACHE_FORMAT_VERSION",
    "DEFAULT_EXPERIMENTS",
    "EXPERIMENTS",
    "ExperimentReport",
    "ParallelEvaluationError",
    "ResultCache",
    "ResultEnvelope",
    "ResultKey",
    "SHARED_RUNNER",
    "SuiteRunner",
    "WorkUnit",
    "build_report",
    "default_jobs",
    "evaluate_many",
    "evaluate_unit",
    "merge_envelope",
    "report_payload",
    "run_all",
    "run_experiment",
    "write_report",
]
