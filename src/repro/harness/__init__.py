"""Evaluation harness: experiment registry and cached suite runner."""

from .experiments import (
    EXPERIMENTS,
    ExperimentReport,
    run_all,
    run_experiment,
)
from .report import DEFAULT_EXPERIMENTS, build_report, write_report
from .runner import SHARED_RUNNER, SuiteRunner

__all__ = [
    "DEFAULT_EXPERIMENTS",
    "EXPERIMENTS",
    "build_report",
    "write_report",
    "ExperimentReport",
    "SHARED_RUNNER",
    "SuiteRunner",
    "run_all",
    "run_experiment",
]
