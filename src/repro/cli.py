"""Command-line interface: explore the suite and rerun the evaluation.

Usage (also available as ``python -m repro``)::

    repro list [--suite SPEC] [--responsive]
    repro run mcf [--policy FLC | --all-policies] [--scale 1.0]
    repro stats mcf [--policy FLC] [--scale 1.0]
    repro compile is [--scale 1.0]
    repro disasm bfs [--amnesic] [--limit 40]
    repro experiment fig3 [--scale 1.0] [--format json]
    repro experiments
    repro bench [--out BENCH_dev.json] [--compare BASELINE.json]
    repro profile fig4 [--scale 1.0] [--exact | --sample-every N]
    repro trace export run.jsonl -o run.trace.json
    repro trace validate run.trace.json
    repro lint [--benchmarks is,mcf] [--cross-check] [--prove-rules]
    repro lint --self
    repro runs list [--kind bench] [--target fig4] [--limit 20]
    repro runs show <run-id>
    repro runs diff <run-a> <run-b>
    repro runs check [--window 10] [--tolerance 0.10]
    repro cache stats [--format json]

Telemetry flags work globally and per-subcommand: ``--trace-out FILE``
streams span and per-RCMP decision events as JSONL, ``--metrics`` prints
the metrics registry once the command finishes, and ``--timeline N``
attaches the windowed microarchitectural sampler (one occupancy/
pressure sample every N retired instructions, recorded as ``timeline``
events in the trace).

Evaluation-engine flags (also global or per-subcommand): ``--jobs N``
fans benchmark evaluations over N worker processes (default:
``$REPRO_JOBS`` or serial), ``--cache-dir DIR`` persists evaluated
results on disk (default: ``$REPRO_CACHE_DIR`` or off), and
``--no-result-cache`` disables the disk cache even when the environment
configures one.

Cross-run observability: ``--ledger-dir DIR`` (or ``$REPRO_LEDGER_DIR``)
appends one schema-versioned manifest per ``run``/``stats``/
``experiment``/``bench`` invocation to a persistent run ledger; the
``repro runs`` family browses that history and ``repro runs check``
gates the latest run against it (the drift watchdog).
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import sys
import time
from typing import List, Optional

from .analysis.tables import render_table
from .compiler import compile_amnesic
from .core.backend import BACKEND_NAMES
from .core.policies import POLICY_NAMES
from .energy.tech import paper_energy_model
from .harness.experiments import EXPERIMENTS, run_experiment
from .harness.parallel import default_jobs
from .harness.runner import SuiteRunner
from .telemetry.drift import (
    DEFAULT_MIN_HISTORY,
    DEFAULT_TOLERANCE,
    DEFAULT_WINDOW,
)
from .telemetry.runtime import get_telemetry, telemetry_session
from .telemetry.summary import render_metrics, render_summary
from .workloads.suite import REGISTRY, get


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    try:
        return _main(argv)
    except BrokenPipeError:
        # Output piped into `head` & co.; the consumer closing early is
        # not an error worth a traceback.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


def _main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 2
    trace_out = getattr(args, "trace_out", None)
    metrics = getattr(args, "metrics", False)
    timeline = getattr(args, "timeline", None)
    if not (trace_out or metrics or timeline):
        return args.handler(args)
    with telemetry_session(
        trace_path=trace_out, timeline_window=timeline
    ) as telemetry:
        code = args.handler(args)
        if metrics:
            print()
            print(render_metrics(telemetry.registry))
    if trace_out:
        print(f"telemetry events written to {trace_out}", file=sys.stderr)
    return code


def _add_telemetry_flags(command: argparse.ArgumentParser) -> None:
    """Accept the global telemetry flags after the subcommand too.

    ``default=SUPPRESS`` keeps a subcommand that omits the flag from
    clobbering a value parsed at the top level (``repro --metrics run
    mcf`` and ``repro run mcf --metrics`` are equivalent).
    """
    command.add_argument(
        "--trace-out", metavar="FILE", default=argparse.SUPPRESS,
        help="write telemetry events (spans, RCMP decisions) as JSONL",
    )
    command.add_argument(
        "--metrics", action="store_true", default=argparse.SUPPRESS,
        help="print the metrics registry when the command finishes",
    )
    command.add_argument(
        "--timeline", type=int, metavar="N", default=argparse.SUPPRESS,
        help="sample SFile/Hist/IBuff/cache occupancy every N retired "
             "instructions (recorded as timeline events)",
    )


def _add_runner_flags(command: argparse.ArgumentParser) -> None:
    """Accept the evaluation-engine flags after the subcommand too."""
    command.add_argument(
        "--jobs", type=int, metavar="N", default=argparse.SUPPRESS,
        help="evaluate benchmarks over N worker processes "
             "(default: $REPRO_JOBS or 1)",
    )
    command.add_argument(
        "--cache-dir", metavar="DIR", default=argparse.SUPPRESS,
        help="persist evaluated results under DIR "
             "(default: $REPRO_CACHE_DIR or no disk cache)",
    )
    command.add_argument(
        "--no-result-cache", action="store_true", default=argparse.SUPPRESS,
        help="disable the persistent result cache even if configured",
    )
    command.add_argument(
        "--backend", choices=BACKEND_NAMES, default=argparse.SUPPRESS,
        help="execution backend (default: $REPRO_BACKEND or classic)",
    )
    _add_ledger_flag(command)


def _add_ledger_flag(command: argparse.ArgumentParser) -> None:
    command.add_argument(
        "--ledger-dir", metavar="DIR", default=argparse.SUPPRESS,
        help="append run manifests to the ledger under DIR "
             "(default: $REPRO_LEDGER_DIR or no ledger)",
    )


def _runner_options(args) -> dict:
    """SuiteRunner kwargs from parsed flags plus the environment."""
    jobs = getattr(args, "jobs", None)
    if jobs is None:
        jobs = default_jobs()
    cache_dir = getattr(args, "cache_dir", None)
    if cache_dir is None:
        cache_dir = os.environ.get("REPRO_CACHE_DIR") or None
    if getattr(args, "no_result_cache", False):
        cache_dir = None
    ledger_dir = getattr(args, "ledger_dir", None)
    if ledger_dir is None:
        ledger_dir = os.environ.get("REPRO_LEDGER_DIR") or None
    # backend=None lets SuiteRunner fall back to $REPRO_BACKEND.
    return {
        "jobs": jobs,
        "cache_dir": cache_dir,
        "backend": getattr(args, "backend", None),
        "ledger_dir": ledger_dir,
    }


def _ledger_session(runner):
    """An enabled telemetry context when a manifest will be collected.

    Manifests are assembled from the session registry and span tree, so
    recording needs telemetry on: reuse the ambient session when
    ``--trace-out``/``--metrics`` already opened one, otherwise open a
    private one.  With no ledger configured this is a no-op context
    yielding the ambient (possibly disabled) facade — the ledger stays
    strictly opt-in.
    """
    ambient = get_telemetry()
    if runner.ledger is None or ambient.enabled:
        return contextlib.nullcontext(ambient)
    return telemetry_session()


def _record_run(
    runner, kind, command, target, telemetry, wall_s, seed=None, fidelity=None
) -> None:
    """Append one manifest for a finished command (no-op without a ledger)."""
    if runner.ledger is None:
        return
    from .telemetry.ledger import collect_manifest

    manifest = collect_manifest(
        kind, command, target, telemetry, wall_s,
        runner_config=runner.describe(), seed=seed, fidelity=fidelity,
    )
    runner.record_manifest(manifest)
    print(
        f"ledger: recorded {kind} {manifest.run_id} in {runner.ledger.path}",
        file=sys.stderr,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="AMNESIAC (ASPLOS 2017) reproduction toolkit",
    )
    parser.add_argument(
        "--trace-out", metavar="FILE", default=None,
        help="write telemetry events (spans, RCMP decisions) as JSONL",
    )
    parser.add_argument(
        "--metrics", action="store_true", default=False,
        help="print the metrics registry when the command finishes",
    )
    parser.add_argument(
        "--timeline", type=int, metavar="N", default=None,
        help="sample SFile/Hist/IBuff/cache occupancy every N retired "
             "instructions (recorded as timeline events)",
    )
    parser.add_argument(
        "--jobs", type=int, metavar="N", default=None,
        help="evaluate benchmarks over N worker processes "
             "(default: $REPRO_JOBS or 1)",
    )
    parser.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="persist evaluated results under DIR "
             "(default: $REPRO_CACHE_DIR or no disk cache)",
    )
    parser.add_argument(
        "--no-result-cache", action="store_true", default=False,
        help="disable the persistent result cache even if configured",
    )
    parser.add_argument(
        "--backend", choices=BACKEND_NAMES, default=None,
        help="execution backend (default: $REPRO_BACKEND or classic)",
    )
    parser.add_argument(
        "--ledger-dir", metavar="DIR", default=None,
        help="append run manifests to the ledger under DIR "
             "(default: $REPRO_LEDGER_DIR or no ledger)",
    )
    sub = parser.add_subparsers(dest="command")

    list_cmd = sub.add_parser("list", help="list the benchmark suite")
    list_cmd.add_argument("--suite", help="filter by suite (SPEC/NAS/PARSEC/Rodinia)")
    list_cmd.add_argument(
        "--responsive", action="store_true",
        help="only the 11 responsive benchmarks",
    )
    list_cmd.set_defaults(handler=cmd_list)

    run_cmd = sub.add_parser("run", help="evaluate one benchmark")
    run_cmd.add_argument("benchmark")
    run_cmd.add_argument("--policy", default=None, choices=POLICY_NAMES)
    run_cmd.add_argument("--all-policies", action="store_true")
    run_cmd.add_argument("--scale", type=float, default=1.0)
    run_cmd.add_argument(
        "--format", choices=("table", "json"), default="table",
        help="output format (json is stable for scripting)",
    )
    _add_telemetry_flags(run_cmd)
    _add_runner_flags(run_cmd)
    run_cmd.set_defaults(handler=cmd_run)

    stats_cmd = sub.add_parser(
        "stats", help="run one benchmark with telemetry and summarise it"
    )
    stats_cmd.add_argument("benchmark", nargs="?", default=None)
    stats_cmd.add_argument("--policy", default=None, choices=POLICY_NAMES,
                           help="evaluate one policy (default: all)")
    stats_cmd.add_argument("--scale", type=float, default=1.0)
    stats_cmd.add_argument("--top", type=int, default=5,
                           help="hottest spans to list")
    stats_cmd.add_argument(
        "--from-trace", metavar="FILE", default=None,
        help="summarise a recorded JSONL trace instead of running",
    )
    stats_cmd.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (json is stable for scripting)",
    )
    _add_telemetry_flags(stats_cmd)
    _add_runner_flags(stats_cmd)
    stats_cmd.set_defaults(handler=cmd_stats)

    profile_cmd = sub.add_parser(
        "profile",
        help="hot-loop profile: per-opcode wall-clock and energy attribution",
    )
    profile_cmd.add_argument(
        "target",
        help="benchmark name (e.g. mcf) or experiment id (e.g. fig4)",
    )
    profile_cmd.add_argument("--scale", type=float, default=1.0)
    profile_cmd.add_argument(
        "--sample-every", type=int, default=None, metavar="N",
        help="attribute one sample every N dispatches (default: 16)",
    )
    profile_cmd.add_argument(
        "--exact", action="store_true",
        help="per-dispatch attribution (sample-every 1; slower, precise)",
    )
    profile_cmd.add_argument(
        "--top", type=int, default=0,
        help="rows to print (0 = all)",
    )
    profile_cmd.add_argument(
        "--fold-runs", action="store_true",
        help="fold classic/amnesic rows into one row per opcode",
    )
    profile_cmd.add_argument(
        "--format", choices=("table", "json"), default="table",
        help="output format (json is stable for scripting)",
    )
    profile_cmd.add_argument(
        "--backend", choices=BACKEND_NAMES, default=argparse.SUPPRESS,
        help="execution backend (profiled dispatch always runs the "
             "classic instrumented loop; this selects everything else)",
    )
    profile_cmd.set_defaults(handler=cmd_profile)

    trace_cmd = sub.add_parser(
        "trace", help="export and validate recorded telemetry traces"
    )
    trace_sub = trace_cmd.add_subparsers(dest="trace_command")
    trace_cmd.set_defaults(handler=lambda args: (trace_cmd.print_help(), 2)[1])
    export_cmd = trace_sub.add_parser(
        "export",
        help="convert a JSONL trace into Chrome/Perfetto trace_event JSON",
    )
    export_cmd.add_argument("trace", help="JSONL trace from --trace-out")
    export_cmd.add_argument(
        "-o", "--out", default=None,
        help="output path (default: <trace stem>.trace.json)",
    )
    export_cmd.set_defaults(handler=cmd_trace_export)
    validate_cmd = trace_sub.add_parser(
        "validate",
        help="structurally check an exported trace_event JSON file",
    )
    validate_cmd.add_argument("trace", help="exported .trace.json file")
    validate_cmd.set_defaults(handler=cmd_trace_validate)

    compile_cmd = sub.add_parser("compile", help="show a benchmark's slices")
    compile_cmd.add_argument("benchmark")
    compile_cmd.add_argument("--scale", type=float, default=1.0)
    _add_telemetry_flags(compile_cmd)
    compile_cmd.set_defaults(handler=cmd_compile)

    disasm_cmd = sub.add_parser("disasm", help="disassemble a benchmark")
    disasm_cmd.add_argument("benchmark")
    disasm_cmd.add_argument("--amnesic", action="store_true",
                            help="disassemble the rewritten amnesic binary")
    disasm_cmd.add_argument("--limit", type=int, default=60,
                            help="lines to print (0 = everything)")
    disasm_cmd.add_argument("--scale", type=float, default=1.0)
    disasm_cmd.set_defaults(handler=cmd_disasm)

    experiment_cmd = sub.add_parser("experiment", help="rerun one paper artifact")
    experiment_cmd.add_argument("experiment_id", choices=sorted(EXPERIMENTS))
    experiment_cmd.add_argument("--scale", type=float, default=1.0)
    experiment_cmd.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (json emits the experiment's data payload)",
    )
    _add_telemetry_flags(experiment_cmd)
    _add_runner_flags(experiment_cmd)
    experiment_cmd.set_defaults(handler=cmd_experiment)

    experiments_cmd = sub.add_parser("experiments", help="list the registry")
    experiments_cmd.set_defaults(handler=cmd_experiments)

    report_cmd = sub.add_parser(
        "report", help="write a full markdown evaluation report"
    )
    report_cmd.add_argument("--out", default="results/report.md")
    report_cmd.add_argument("--scale", type=float, default=1.0)
    report_cmd.add_argument(
        "--experiments", nargs="*", default=None,
        help="experiment ids (default: every table/figure except table6)",
    )
    _add_telemetry_flags(report_cmd)
    _add_runner_flags(report_cmd)
    report_cmd.set_defaults(handler=cmd_report)

    bench_cmd = sub.add_parser(
        "bench",
        help="benchmark the reproduction and score fidelity vs the paper",
    )
    bench_cmd.add_argument(
        "--experiments", metavar="IDS", default=None,
        help="comma-separated experiment ids "
             "(default: the scored figure/table experiments)",
    )
    bench_cmd.add_argument("--scale", type=float, default=1.0)
    bench_cmd.add_argument(
        "--out", metavar="FILE", default=None,
        help="artifact path (default: BENCH_<timestamp>.json)",
    )
    bench_cmd.add_argument(
        "--compare", metavar="BASELINE.json", default=None,
        help="diff the run (or --current) against a baseline artifact",
    )
    bench_cmd.add_argument(
        "--current", metavar="BENCH.json", default=None,
        help="diff an existing artifact instead of running (needs --compare)",
    )
    bench_cmd.add_argument(
        "--fail-on-regression", action="store_true",
        help="exit non-zero when fidelity regresses vs the baseline",
    )
    bench_cmd.add_argument(
        "--fail-on-timing-regression", action="store_true",
        help="with --fail-on-regression, also gate on timing/throughput",
    )
    bench_cmd.add_argument(
        "--format", choices=("text", "markdown", "json"), default="text",
        help="diff/report rendering (json dumps the diff verdicts)",
    )
    _add_telemetry_flags(bench_cmd)
    _add_runner_flags(bench_cmd)
    bench_cmd.set_defaults(handler=cmd_bench)

    fuzz_cmd = sub.add_parser(
        "fuzz",
        help="differentially fuzz the amnesic pipeline against classic "
             "execution",
    )
    fuzz_cmd.add_argument(
        "--seed", type=int, default=0,
        help="campaign seed; the same seed replays the same programs",
    )
    fuzz_cmd.add_argument(
        "--iterations", type=int, default=200,
        help="programs to generate and check",
    )
    fuzz_cmd.add_argument(
        "--time-budget", type=float, default=None, metavar="SECONDS",
        help="stop generating once this much wall-clock time has elapsed",
    )
    fuzz_cmd.add_argument(
        "--corpus-dir", metavar="DIR", default=None,
        help="bank shrunk counterexamples here (and dedupe against it)",
    )
    fuzz_cmd.add_argument(
        "--policies", metavar="NAMES", default=None,
        help="comma-separated scheduler policies (default: all five)",
    )
    fuzz_cmd.add_argument(
        "--no-shrink", action="store_true",
        help="report counterexamples without minimising them",
    )
    fuzz_cmd.add_argument(
        "--max-counterexamples", type=int, default=5,
        help="stop the campaign after this many distinct failures",
    )
    fuzz_cmd.add_argument(
        "--replay", action="store_true",
        help="replay the --corpus-dir entries instead of generating",
    )
    fuzz_cmd.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (json is stable for scripting)",
    )
    fuzz_cmd.add_argument(
        "--backend", choices=BACKEND_NAMES, default=None,
        help="amnesic scheduler under test (default: $REPRO_BACKEND or "
             "classic); the oracle baseline always runs classic",
    )
    _add_telemetry_flags(fuzz_cmd)
    fuzz_cmd.set_defaults(handler=cmd_fuzz)

    lint_cmd = sub.add_parser(
        "lint",
        help="static slice-safety verifier and region analyzer over "
             "compiled artifacts",
    )
    lint_cmd.add_argument(
        "--benchmarks", metavar="NAMES", default=None,
        help="comma-separated kernels to lint (default: the whole suite)",
    )
    lint_cmd.add_argument(
        "--scale", type=float, default=1.0,
        help="workload scale factor for kernel compilation",
    )
    lint_cmd.add_argument(
        "--corpus-dir", metavar="DIR", default="tests/corpus",
        help="fuzz-corpus directory to sweep (default: tests/corpus)",
    )
    lint_cmd.add_argument(
        "--no-kernels", action="store_true",
        help="skip the kernel suite",
    )
    lint_cmd.add_argument(
        "--no-corpus", action="store_true",
        help="skip the fuzz corpus",
    )
    lint_cmd.add_argument(
        "--self", dest="self_only", action="store_true",
        help="run only the codebase layering lint (import-graph rules)",
    )
    lint_cmd.add_argument(
        "--cross-check", action="store_true",
        help="compare every corpus entry's static verdict against the "
             "dynamic oracle (static PASS + dynamic FAIL is a hard error)",
    )
    lint_cmd.add_argument(
        "--prove-rules", action="store_true",
        help="run the deliberately broken compiler passes; each must be "
             "flagged with its expected rule id",
    )
    lint_cmd.add_argument(
        "--regions-out", metavar="DIR", default=None,
        help="write schema-versioned region artifacts here (one JSON "
             "per program)",
    )
    lint_cmd.add_argument(
        "--backend", choices=BACKEND_NAMES, default=None,
        help="execution backend for profiling runs",
    )
    lint_cmd.add_argument(
        "--max-findings", type=int, default=0, metavar="N",
        help="truncate each program's finding list (0 = show all)",
    )
    lint_cmd.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (json is stable for scripting)",
    )
    _add_telemetry_flags(lint_cmd)
    lint_cmd.set_defaults(handler=cmd_lint)

    runs_cmd = sub.add_parser(
        "runs", help="browse and gate the persistent run ledger"
    )
    runs_sub = runs_cmd.add_subparsers(dest="runs_command")
    runs_cmd.set_defaults(handler=lambda args: (runs_cmd.print_help(), 2)[1])

    runs_list = runs_sub.add_parser(
        "list", help="table of recorded runs, most recent last"
    )
    _add_ledger_flag(runs_list)
    runs_list.add_argument(
        "--kind", default=None,
        help="filter by entry kind (run/stats/experiment/bench)",
    )
    runs_list.add_argument(
        "--target", default=None,
        help="filter by benchmark/experiment target",
    )
    runs_list.add_argument(
        "--backend", default=None, help="filter by execution backend"
    )
    runs_list.add_argument(
        "--limit", type=int, default=20, metavar="N",
        help="show only the most recent N runs (0 = all)",
    )
    runs_list.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (json is stable for scripting)",
    )
    runs_list.set_defaults(handler=cmd_runs_list)

    runs_show = runs_sub.add_parser(
        "show", help="every recorded field of one run"
    )
    _add_ledger_flag(runs_show)
    runs_show.add_argument("run_id", help="run id (unique prefixes accepted)")
    runs_show.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (json is stable for scripting)",
    )
    runs_show.set_defaults(handler=cmd_runs_show)

    runs_diff = runs_sub.add_parser(
        "diff", help="per-field deltas between two recorded runs"
    )
    _add_ledger_flag(runs_diff)
    runs_diff.add_argument("run_a", help="baseline run id (prefix ok)")
    runs_diff.add_argument("run_b", help="candidate run id (prefix ok)")
    runs_diff.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (json is stable for scripting)",
    )
    runs_diff.set_defaults(handler=cmd_runs_diff)

    runs_check = runs_sub.add_parser(
        "check",
        help="drift watchdog: gate the latest run against ledger history",
    )
    _add_ledger_flag(runs_check)
    runs_check.add_argument(
        "--kind", default=None, help="restrict the checked population"
    )
    runs_check.add_argument(
        "--target", default=None, help="restrict the checked population"
    )
    runs_check.add_argument(
        "--window", type=int, default=DEFAULT_WINDOW, metavar="N",
        help="rolling window of comparable history (median baseline)",
    )
    runs_check.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE, metavar="FRAC",
        help="relative drift allowed before a metric regresses "
             "(0.10 = 10%%)",
    )
    runs_check.add_argument(
        "--min-history", type=int, default=DEFAULT_MIN_HISTORY, metavar="N",
        help="comparable runs required before a metric is gated",
    )
    runs_check.add_argument(
        "--metric", action="append", choices=("ips", "wall_s", "fidelity"),
        default=None,
        help="watch only these metrics (repeatable; default: all)",
    )
    runs_check.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (json is stable for scripting)",
    )
    runs_check.set_defaults(handler=cmd_runs_check)

    cache_cmd = sub.add_parser(
        "cache", help="inspect the persistent result cache"
    )
    cache_sub = cache_cmd.add_subparsers(dest="cache_command")
    cache_cmd.set_defaults(handler=lambda args: (cache_cmd.print_help(), 2)[1])
    cache_stats_cmd = cache_sub.add_parser(
        "stats", help="entry count, bytes on disk, and entry-age histogram"
    )
    cache_stats_cmd.add_argument(
        "--cache-dir", metavar="DIR", default=argparse.SUPPRESS,
        help="cache directory (default: $REPRO_CACHE_DIR)",
    )
    cache_stats_cmd.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (json is stable for scripting)",
    )
    cache_stats_cmd.set_defaults(handler=cmd_cache_stats)
    return parser


# ----------------------------------------------------------------------
# Handlers.
# ----------------------------------------------------------------------
def cmd_list(args) -> int:
    rows = []
    for spec in REGISTRY:
        if args.suite and spec.suite != args.suite:
            continue
        if args.responsive and not spec.responsive:
            continue
        rows.append(
            [spec.name, spec.suite, "yes" if spec.responsive else "",
             spec.description.split(";")[0][:60]]
        )
    print(render_table(["bench", "suite", "responsive", "description"], rows))
    return 0


def _render_policy_table(spec, scale, results) -> str:
    rows = []
    for name, result in results.items():
        stats = result.amnesic.stats
        rows.append(
            [name, result.edp_gain_percent, result.energy_gain_percent,
             result.time_gain_percent, stats.recomputations_fired,
             stats.recomputations_skipped, stats.recomputation_fallbacks]
        )
    return render_table(
        ["policy", "EDP gain %", "energy %", "time %", "fired", "skipped", "fallback"],
        rows, title=f"{spec.name} (scale {scale})",
    )


def cmd_run(args) -> int:
    spec = _lookup(args.benchmark)
    if spec is None:
        return 1
    policies = POLICY_NAMES if (args.all_policies or not args.policy) else (args.policy,)
    runner = SuiteRunner(
        model=paper_energy_model(), scale=args.scale, policies=policies,
        **_runner_options(args),
    )
    with _ledger_session(runner) as telemetry:
        started = time.perf_counter()
        results = runner.result(args.benchmark)
        _record_run(
            runner, "run", f"repro run {args.benchmark}", spec.name,
            telemetry, time.perf_counter() - started,
        )
    if args.format == "json":
        payload = {
            "benchmark": spec.name,
            "scale": args.scale,
            "policies": {
                name: {
                    "edp_gain_percent": result.edp_gain_percent,
                    "energy_gain_percent": result.energy_gain_percent,
                    "time_gain_percent": result.time_gain_percent,
                    "fired": result.amnesic.stats.recomputations_fired,
                    "skipped": result.amnesic.stats.recomputations_skipped,
                    "fallbacks": result.amnesic.stats.recomputation_fallbacks,
                }
                for name, result in results.items()
            },
        }
        print(json.dumps(payload, indent=2))
        return 0
    print(_render_policy_table(spec, args.scale, results))
    return 0


def _stats_json_payload(spec, args, results, telemetry) -> dict:
    """The ``repro stats --format json`` document for a live run."""
    from .telemetry.summary import (
        cache_io_stats,
        cache_stats,
        hottest_spans,
        pool_stats,
        rcmp_breakdown,
    )
    from .telemetry.views import figure_observables

    events = getattr(telemetry.sink, "events", []) or []
    return {
        "benchmark": spec.name,
        "scale": args.scale,
        "policies": {
            name: {
                "edp_gain_percent": result.edp_gain_percent,
                "energy_gain_percent": result.energy_gain_percent,
                "time_gain_percent": result.time_gain_percent,
                "fired": result.amnesic.stats.recomputations_fired,
                "skipped": result.amnesic.stats.recomputations_skipped,
                "fallbacks": result.amnesic.stats.recomputation_fallbacks,
            }
            for name, result in results.items()
        },
        "hottest_spans": [
            {"name": name, "self_time_s": seconds, "count": count}
            for name, seconds, count in hottest_spans(
                telemetry.tracer.tree(), top=args.top
            )
        ],
        "rcmp": rcmp_breakdown(telemetry.registry),
        "caches": cache_stats(telemetry.registry),
        "cache_io": cache_io_stats(telemetry.registry),
        "pool": pool_stats(telemetry.registry),
        "figures": figure_observables(events, telemetry.timelines),
        "metrics": telemetry.registry.snapshot(),
    }


def _stats_from_trace(args) -> int:
    """Summarise a recorded JSONL trace without re-running anything."""
    from collections import defaultdict

    from .telemetry.sink import read_events, reconstruct_spans
    from .telemetry.summary import render_hottest_spans, render_span_tree
    from .telemetry.views import figure_observables

    path = args.from_trace
    try:
        events = read_events(path)
    except OSError as error:
        reason = error.strerror or str(error)
        print(f"error: cannot read trace {path}: {reason}", file=sys.stderr)
        return 1
    if not events:
        print(
            f"error: trace {path} contains no telemetry events "
            f"(empty or fully corrupt file)",
            file=sys.stderr,
        )
        return 1
    roots = reconstruct_spans(events)
    outcomes: dict = defaultdict(lambda: defaultdict(int))
    for event in events:
        if event.get("type") == "rcmp":
            outcomes[str(event.get("policy", "?"))][
                str(event.get("outcome", "?"))
            ] += 1
    if args.format == "json":
        payload = {
            "trace": path,
            "events": len(events),
            "skipped_lines": events.skipped_lines,
            "rcmp": {policy: dict(counts) for policy, counts in outcomes.items()},
            "figures": figure_observables(events),
            "spans": len(roots),
        }
        print(json.dumps(payload, indent=2))
        return 0
    if events.skipped_lines:
        print(
            f"warning: skipped {events.skipped_lines} undecodable line(s) "
            f"(truncated trace?)",
            file=sys.stderr,
        )
    print(f"trace {path}: {len(events)} events")
    print()
    print("== span tree ==")
    print(render_span_tree(roots))
    print()
    print("== hottest spans ==")
    print(render_hottest_spans(roots, top=args.top))
    if outcomes:
        print()
        print("== recomputation ==")
        for policy in sorted(outcomes):
            counts = outcomes[policy]
            detail = ", ".join(
                f"{outcome}={counts[outcome]}" for outcome in sorted(counts)
            )
            print(f"  {policy}: {detail}")
    return 0


def cmd_stats(args) -> int:
    """Evaluate one benchmark with telemetry on and print the summary."""
    if args.from_trace:
        return _stats_from_trace(args)
    if not args.benchmark:
        print(
            "error: a benchmark name (or --from-trace FILE) is required",
            file=sys.stderr,
        )
        return 2
    spec = _lookup(args.benchmark)
    if spec is None:
        return 1
    policies = (args.policy,) if args.policy else POLICY_NAMES
    runner = SuiteRunner(
        model=paper_energy_model(), scale=args.scale, policies=policies,
        **_runner_options(args),
    )

    def evaluate_and_summarise(telemetry) -> int:
        started = time.perf_counter()
        results = runner.result(args.benchmark)
        _record_run(
            runner, "stats", f"repro stats {args.benchmark}", spec.name,
            telemetry, time.perf_counter() - started,
        )
        if args.format == "json":
            print(
                json.dumps(
                    _stats_json_payload(spec, args, results, telemetry),
                    indent=2,
                )
            )
            return 0
        print(_render_policy_table(spec, args.scale, results))
        print()
        print(render_summary(telemetry, top=args.top))
        return 0

    ambient = get_telemetry()
    if ambient.enabled:  # --trace-out/--metrics already opened a session
        return evaluate_and_summarise(ambient)
    with telemetry_session(
        # The JSON document embeds the live figure observables, which
        # are derived from the per-RCMP events; the text summary only
        # needs spans and metrics, so it skips event collection.
        collect_events=args.format == "json",
        timeline_window=getattr(args, "timeline", None),
    ) as telemetry:
        return evaluate_and_summarise(telemetry)


def cmd_profile(args) -> int:
    """Profile the interpreter hot loop over a benchmark or experiment."""
    from .telemetry.profiler import (
        DEFAULT_SAMPLE_EVERY,
        HotLoopProfiler,
        reconcile,
        render_profile,
    )

    if args.exact and args.sample_every is not None:
        print("--exact and --sample-every are mutually exclusive", file=sys.stderr)
        return 2
    sample_every = 1 if args.exact else (args.sample_every or DEFAULT_SAMPLE_EVERY)

    is_experiment = args.target in EXPERIMENTS
    if not is_experiment:
        try:
            get(args.target)
        except KeyError:
            print(
                f"unknown profile target {args.target!r}: expected a "
                f"benchmark (see `repro list`) or an experiment id "
                f"({', '.join(sorted(EXPERIMENTS))})",
                file=sys.stderr,
            )
            return 2

    profiler = HotLoopProfiler(sample_every=sample_every)
    # Profiling measures *this* process's wall clock, so the run is
    # forced serial and uncached — a cache hit would profile nothing.
    # The backend still flows through: the fast backend hands profiled
    # runs to the classic instrumented loop (that's what the profiler
    # measures), so attribution stays meaningful either way.
    runner = SuiteRunner(
        scale=args.scale, jobs=1, cache_dir=None,
        backend=getattr(args, "backend", None),
    )
    with telemetry_session(profiler=profiler) as session:
        if is_experiment:
            run_experiment(args.target, runner)
        else:
            runner.result(args.target)
        snapshot = session.registry.snapshot()

    def total(prefix: str) -> float:
        return sum(
            value for key, value in snapshot.items()
            if key.startswith(prefix) and isinstance(value, (int, float))
        )

    reconciliation = reconcile(
        profiler,
        runstats_instructions=int(total("runstats.dynamic_instructions{")),
        accounts_energy_nj=total("run.energy_nj{"),
    )
    if args.format == "json":
        payload = profiler.to_json()
        payload["target"] = args.target
        payload["scale"] = args.scale
        payload["reconciliation"] = reconciliation
        print(json.dumps(payload, indent=2))
    else:
        print(f"profile target: {args.target} (scale {args.scale})")
        print(
            render_profile(
                profiler,
                top=args.top,
                fold_runs=args.fold_runs,
                reconciliation=reconciliation,
            )
        )
    return 0 if reconciliation["reconciled"] else 1


def cmd_trace_export(args) -> int:
    """Convert a recorded JSONL trace to Chrome trace_event JSON."""
    from .telemetry.export import (
        export_chrome_trace,
        trace_summary,
        validate_chrome_trace,
    )
    from .telemetry.sink import read_events

    try:
        events = read_events(args.trace)
    except OSError as error:
        reason = error.strerror or str(error)
        print(f"error: cannot read trace {args.trace}: {reason}", file=sys.stderr)
        return 1
    if not events:
        print(
            f"error: trace {args.trace} contains no telemetry events",
            file=sys.stderr,
        )
        return 1
    if events.skipped_lines:
        print(
            f"warning: skipped {events.skipped_lines} undecodable line(s)",
            file=sys.stderr,
        )
    trace = export_chrome_trace(events)
    problems = validate_chrome_trace(trace)
    if problems:
        for problem in problems[:10]:
            print(f"error: exported trace invalid: {problem}", file=sys.stderr)
        return 1
    out = args.out
    if out is None:
        stem = args.trace[:-6] if args.trace.endswith(".jsonl") else args.trace
        out = f"{stem}.trace.json"
    with open(out, "w", encoding="utf-8") as stream:
        json.dump(trace, stream, separators=(",", ":"))
    summary = trace_summary(trace)
    print(
        f"{out}: {summary['events']} trace events, "
        f"{summary['threads']} thread track(s), "
        f"{summary['counter_tracks']} counter track(s) "
        f"(open in ui.perfetto.dev)"
    )
    return 0


def cmd_trace_validate(args) -> int:
    """Structurally validate an exported trace_event JSON file."""
    from .telemetry.export import trace_summary, validate_chrome_trace

    try:
        with open(args.trace, "r", encoding="utf-8") as stream:
            trace = json.load(stream)
    except OSError as error:
        reason = error.strerror or str(error)
        print(f"error: cannot read {args.trace}: {reason}", file=sys.stderr)
        return 1
    except ValueError as error:
        print(f"error: {args.trace} is not valid JSON: {error}", file=sys.stderr)
        return 1
    problems = validate_chrome_trace(trace)
    if problems:
        for problem in problems:
            print(f"error: {problem}", file=sys.stderr)
        print(f"{args.trace}: INVALID ({len(problems)} problem(s))")
        return 1
    summary = trace_summary(trace)
    print(
        f"{args.trace}: ok — {summary['events']} events, "
        f"{summary['threads']} thread track(s), "
        f"{summary['counter_tracks']} counter track(s)"
    )
    return 0


def cmd_compile(args) -> int:
    spec = _lookup(args.benchmark)
    if spec is None:
        return 1
    program = spec.instantiate(args.scale)
    result = compile_amnesic(program, paper_energy_model())
    rows = [
        [rs.slice_id, rs.load_pc, rs.length, rs.height,
         f"{rs.traversal_cost.energy_nj:.2f}",
         f"{rs.estimated_load_cost.energy_nj:.2f}",
         "yes" if rs.has_nonrecomputable_inputs else "no"]
        for rs in result.rslices
    ]
    print(render_table(
        ["slice", "load pc", "len", "height", "E_rc nJ", "E_ld nJ", "w/ nc"],
        rows, title=f"{spec.name}: {len(result.rslices)} slices embedded",
    ))
    if result.rejected:
        print(f"\nrejected loads ({len(result.rejected)}):")
        for pc, reason in sorted(result.rejected.items()):
            print(f"  pc {pc}: {reason}")
    return 0


def cmd_disasm(args) -> int:
    spec = _lookup(args.benchmark)
    if spec is None:
        return 1
    program = spec.instantiate(args.scale)
    if args.amnesic:
        program = compile_amnesic(program, paper_energy_model()).binary.program
    text = program.render()
    lines = text.splitlines()
    if args.limit and len(lines) > args.limit:
        shown = lines[: args.limit]
        shown.append(f"  ... ({len(lines) - args.limit} more lines)")
        text = "\n".join(shown)
    print(text)
    return 0


def cmd_experiment(args) -> int:
    runner = SuiteRunner(scale=args.scale, **_runner_options(args))
    with _ledger_session(runner) as telemetry:
        started = time.perf_counter()
        report = run_experiment(args.experiment_id, runner)
        _record_run(
            runner, "experiment", f"repro experiment {args.experiment_id}",
            args.experiment_id, telemetry, time.perf_counter() - started,
        )
    if getattr(args, "format", "text") == "json":
        from .harness.experiments import report_payload

        print(json.dumps(report_payload(report), indent=2))
        return 0
    print(report.text)
    return 0


def cmd_bench(args) -> int:
    """Collect a BENCH artifact and optionally gate against a baseline."""
    from .bench import (
        BenchArtifact,
        BenchRunner,
        compare,
        render_bench_diff,
        render_bench_report,
        timestamp,
    )

    if args.current and not args.compare:
        print("--current requires --compare", file=sys.stderr)
        return 2

    if args.current:
        artifact = BenchArtifact.load(args.current)
    else:
        experiments = None
        if args.experiments:
            experiments = [
                part.strip() for part in args.experiments.split(",") if part.strip()
            ]
        runner = SuiteRunner(scale=args.scale, **_runner_options(args))
        bench = BenchRunner(runner=runner, experiments=experiments)
        artifact = bench.run()
        out = args.out or f"BENCH_{timestamp()}.json"
        path = artifact.write(out)
        print(f"bench artifact written to {path}", file=sys.stderr)
        if runner.ledger is not None:
            from .bench import manifest_from_artifact

            manifest = runner.record_manifest(
                manifest_from_artifact(artifact, runner)
            )
            print(
                f"ledger: recorded bench {manifest.run_id} "
                f"in {runner.ledger.path}",
                file=sys.stderr,
            )
        if args.format != "json":
            print(render_bench_report(artifact))

    if not args.compare:
        if args.format == "json":
            print(json.dumps(artifact.to_json(), indent=2))
        return 0

    baseline = BenchArtifact.load(args.compare)
    diff = compare(baseline, artifact)
    if args.format == "json":
        print(json.dumps(diff.to_json(), indent=2))
    else:
        print()
        print(render_bench_diff(diff, fmt=args.format))
    regressions = diff.regressed(include_timing=args.fail_on_timing_regression)
    if regressions and args.fail_on_regression:
        print(
            f"{len(regressions)} regression(s) vs {args.compare}",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_fuzz(args) -> int:
    """Run a differential fuzz campaign (or replay the corpus)."""
    from .core.backend import resolve_backend
    from .fuzz import FuzzConfig, materialize, replay_corpus, run_fuzz

    amnesic_cls = resolve_backend(args.backend).amnesic_cls
    policies = None
    if args.policies:
        policies = tuple(
            part.strip() for part in args.policies.split(",") if part.strip()
        )
        unknown = [name for name in policies if name not in POLICY_NAMES]
        if unknown:
            print(
                f"unknown policies: {', '.join(unknown)} "
                f"(choose from {', '.join(POLICY_NAMES)})",
                file=sys.stderr,
            )
            return 2

    if args.replay:
        if not args.corpus_dir:
            print("--replay requires --corpus-dir", file=sys.stderr)
            return 2
        report = replay_corpus(
            args.corpus_dir, policies=policies, cpu_cls=amnesic_cls
        )
        if args.format == "json":
            payload = {
                "entries": len(report.verdicts),
                "failures": [
                    {"name": entry.name, "verdict": verdict.summary()}
                    for entry, verdict in report.failures
                ],
            }
            print(json.dumps(payload, indent=2))
        else:
            for entry, verdict in report.verdicts:
                marker = "ok  " if verdict.ok else "FAIL"
                print(f"{marker} {entry.name}: {verdict.summary()}")
            print(
                f"\nreplayed {len(report.verdicts)} corpus entries, "
                f"{len(report.failures)} failing"
            )
        return 0 if report.ok else 1

    config = FuzzConfig(
        seed=args.seed,
        iterations=args.iterations,
        time_budget_s=args.time_budget,
        corpus_dir=args.corpus_dir,
        policies=policies or POLICY_NAMES,
        shrink=not args.no_shrink,
        max_counterexamples=args.max_counterexamples,
        cpu_cls=amnesic_cls,
    )
    result = run_fuzz(config)
    if args.format == "json":
        print(json.dumps(result.to_json(), indent=2))
    else:
        print(
            f"fuzz: seed {config.seed}, {result.programs} programs checked "
            f"({result.invalid} invalid) in {result.elapsed_s:.1f}s "
            f"across {', '.join(config.policies)}"
        )
        if result.stopped_early:
            print(f"stopped early: {result.stopped_early}")
        for cx in result.counterexamples:
            program = materialize(cx.shrunk)
            print(
                f"\ncounterexample (program seed {cx.original.seed}, shrunk "
                f"in {cx.shrink_steps} steps to "
                f"{len(program.instructions)} instructions):"
            )
            for failure in cx.verdict.failures:
                print(f"  {failure}")
            if cx.corpus_path:
                print(f"  banked at {cx.corpus_path}")
            print(program.render())
        if result.ok:
            print("no equivalence violations found")
    return 0 if result.ok else 1


def cmd_lint(args) -> int:
    """Static slice-safety verification; exit 1 on any ERROR finding."""
    from .staticcheck.diagnostics import Severity
    from .staticcheck.lint import LintSettings, run_lint

    benchmarks = None
    if args.benchmarks:
        benchmarks = [
            part.strip() for part in args.benchmarks.split(",") if part.strip()
        ]
    corpus_dir: Optional[str] = args.corpus_dir
    if args.no_corpus or args.self_only:
        corpus_dir = None
    elif corpus_dir is not None and not os.path.isdir(corpus_dir):
        print(f"error: corpus directory {corpus_dir} not found",
              file=sys.stderr)
        return 2
    settings = LintSettings(
        benchmarks=benchmarks,
        include_kernels=not (args.no_kernels or args.self_only),
        corpus_dir=corpus_dir,
        scale=args.scale,
        cross_check=args.cross_check,
        prove_rules=args.prove_rules and corpus_dir is not None,
        self_check=True,
        regions_out=args.regions_out,
        backend=args.backend,
    )
    text = args.format == "text"
    try:
        run = run_lint(settings, progress=print if text else None)
    except KeyError as error:
        print(f"error: unknown benchmark(s): {error.args[0]}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(json.dumps(run.to_json(), indent=2))
        return 0 if run.ok else 1

    shown = False
    for report in run.reports:
        interesting = [
            finding for finding in report.findings
            if finding.effective_severity is not Severity.INFO
        ]
        if not interesting:
            continue
        shown = True
        print()
        limit = args.max_findings
        for finding in interesting[: limit or len(interesting)]:
            print(f"  {finding}")
        if limit and len(interesting) > limit:
            print(f"  ... ({len(interesting) - limit} more)")
    missed = [outcome for outcome in run.prove if not outcome.ok]
    for outcome in missed:
        print(
            f"\nbroken pass {outcome.name} was NOT flagged with "
            f"{outcome.expected_rule} ({outcome.attempted} program(s) tried)"
        )
    if shown or missed:
        print()
    print(
        f"lint: {len(run.results)} program(s), {run.error_count} error(s), "
        f"{run.warning_count} warning(s)"
        + (f", {len(run.prove)} broken pass(es) proven" if run.prove and not missed else "")
    )
    return 0 if run.ok else 1


def cmd_report(args) -> int:
    from .harness.report import write_report

    runner = SuiteRunner(scale=args.scale, **_runner_options(args))
    path = write_report(runner, args.out, experiments=args.experiments)
    print(f"report written to {path}")
    return 0


def cmd_experiments(args) -> int:
    for experiment_id, fn in EXPERIMENTS.items():
        doc = (fn.__doc__ or "").strip().splitlines()[0]
        print(f"{experiment_id:8s} {doc}")
    return 0


# ----------------------------------------------------------------------
# Run-ledger commands.
# ----------------------------------------------------------------------
def _require_ledger(args):
    """The ledger from ``--ledger-dir``/env, or ``None`` (with an error)."""
    from .telemetry.ledger import ledger_from_env

    ledger = ledger_from_env(getattr(args, "ledger_dir", None))
    if ledger is None:
        print(
            "error: no run ledger configured "
            "(pass --ledger-dir DIR or set $REPRO_LEDGER_DIR)",
            file=sys.stderr,
        )
    return ledger


def _warn_skipped(result) -> None:
    if result.skipped_lines:
        print(
            f"warning: skipped {result.skipped_lines} undecodable ledger "
            f"line(s) (writer killed mid-append?)",
            file=sys.stderr,
        )


def cmd_runs_list(args) -> int:
    """Filterable table of every recorded run, most recent last."""
    ledger = _require_ledger(args)
    if ledger is None:
        return 2
    result = ledger.select(
        kind=args.kind, target=args.target, backend=args.backend
    )
    _warn_skipped(result)
    manifests = list(result)
    if args.limit and args.limit > 0:
        manifests = manifests[-args.limit:]
    if args.format == "json":
        print(json.dumps([m.to_json() for m in manifests], indent=2))
        return 0
    if not manifests:
        print(f"(no matching runs in {ledger.path})")
        return 0
    rows = []
    for manifest in manifests:
        fidelity = (
            "-" if not manifest.fidelity
            else f"{manifest.fidelity.get('score', 0):.2f}"
        )
        rows.append([
            manifest.run_id, manifest.kind, manifest.target,
            manifest.backend, f"{manifest.scale:g}",
            f"{manifest.wall_s:.2f}", f"{manifest.ips:,.0f}", fidelity,
        ])
    print(render_table(
        ["run id", "kind", "target", "backend", "scale", "wall s", "ips",
         "fidelity"],
        rows,
        title=f"{len(manifests)} of {len(result)} run(s) in {ledger.path}",
    ))
    return 0


def cmd_runs_show(args) -> int:
    """Every recorded field of one run (prefix lookup allowed)."""
    ledger = _require_ledger(args)
    if ledger is None:
        return 2
    from .telemetry.ledger import render_manifest

    try:
        manifest = ledger.get(args.run_id)
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 1
    if args.format == "json":
        print(json.dumps(manifest.to_json(), indent=2))
        return 0
    print(render_manifest(manifest))
    return 0


def cmd_runs_diff(args) -> int:
    """Per-field deltas between two recorded runs."""
    ledger = _require_ledger(args)
    if ledger is None:
        return 2
    from .telemetry.ledger import diff_manifests, render_manifest_diff

    try:
        manifest_a = ledger.get(args.run_a)
        manifest_b = ledger.get(args.run_b)
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 1
    diff = diff_manifests(manifest_a, manifest_b)
    if args.format == "json":
        print(json.dumps(diff, indent=2))
        return 0
    print(render_manifest_diff(diff))
    return 0


def cmd_runs_check(args) -> int:
    """Drift watchdog: exit non-zero when the latest run regressed."""
    ledger = _require_ledger(args)
    if ledger is None:
        return 2
    from .telemetry.drift import check_drift, render_drift_report

    result = ledger.select(kind=args.kind, target=args.target)
    _warn_skipped(result)
    try:
        report = check_drift(
            result,
            window=args.window,
            tolerance=args.tolerance,
            min_history=args.min_history,
            metrics=args.metric or None,
        )
    except KeyError as error:
        print(f"error: {error.args[0]}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps(report.to_json(), indent=2))
    else:
        print(render_drift_report(report))
    return 0 if report.ok else 1


def cmd_cache_stats(args) -> int:
    """Operational snapshot of the persistent result cache."""
    from .harness.cache import cache_from_env

    cache = cache_from_env(getattr(args, "cache_dir", None))
    if cache is None:
        print(
            "error: no result cache configured "
            "(pass --cache-dir DIR or set $REPRO_CACHE_DIR)",
            file=sys.stderr,
        )
        return 2
    stats = cache.stats()
    if args.format == "json":
        print(json.dumps(stats, indent=2))
        return 0
    print(f"result cache {stats['directory']}:")
    print(f"  entries      {stats['entries']}")
    print(f"  total bytes  {stats['total_bytes']:,}")
    if stats["entries"]:
        print(f"  newest age   {stats['newest_age_s']:.0f}s")
        print(f"  oldest age   {stats['oldest_age_s']:.0f}s")
        print("  age histogram:")
        for label, count in stats["age_histogram"].items():
            print(f"    {label:<6} {count}")
    return 0


def _lookup(name: str):
    try:
        return get(name)
    except KeyError as error:
        print(error, file=sys.stderr)
        return None


if __name__ == "__main__":
    sys.exit(main())
