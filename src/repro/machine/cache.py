"""Set-associative write-back cache model (tags + LRU + dirty bits).

Caches here are *metadata only*: they answer "would this access hit, and
what gets evicted", which is all the energy/timing model needs.  Values
always come from :class:`repro.machine.memory.Memory`.

The model implements LRU replacement and write-back/write-allocate, the
policies of the paper's simulated L1-D and L2 (Table 3).
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from typing import Dict, List, Optional

from .config import CacheGeometry


@dataclasses.dataclass
class CacheStats:
    """Hit/miss/eviction counters for one cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0
    probes: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hit fraction; zero for an untouched cache."""
        return self.hits / self.accesses if self.accesses else 0.0


@dataclasses.dataclass(frozen=True)
class EvictedLine:
    """Result of an eviction: which line left and whether it was dirty."""

    line_address: int
    dirty: bool


class Cache:
    """One level of set-associative, LRU, write-back cache."""

    def __init__(self, geometry: CacheGeometry, name: str = "cache"):
        self.geometry = geometry
        self.name = name
        self.stats = CacheStats()
        # One OrderedDict per set, mapping line address -> dirty flag.
        # Ordering encodes recency: last item is most recently used.
        self._sets: List[OrderedDict] = [OrderedDict() for _ in range(geometry.sets)]
        self._line_shift = geometry.line_words.bit_length() - 1
        if 1 << self._line_shift != geometry.line_words:
            # CacheGeometry.__post_init__ rejects this; guard against a
            # geometry constructed around the dataclass (e.g. __new__).
            raise ValueError(
                f"line_words must be a power of two for shift-based line "
                f"mapping, got {geometry.line_words}"
            )

    # ------------------------------------------------------------------
    # Address mapping.
    # ------------------------------------------------------------------
    def line_address(self, address: int) -> int:
        """The line-granular address containing word *address*."""
        return address >> self._line_shift

    def _set_for(self, line_address: int) -> OrderedDict:
        return self._sets[line_address % self.geometry.sets]

    # ------------------------------------------------------------------
    # Operations.
    # ------------------------------------------------------------------
    def lookup(self, address: int, update_lru: bool = True) -> bool:
        """Check presence of *address*; counts a hit or miss.

        Does not allocate on miss — use :meth:`fill`.  On hit the line is
        promoted to most-recently-used unless *update_lru* is false.
        """
        line = self.line_address(address)
        cache_set = self._set_for(line)
        if line in cache_set:
            self.stats.hits += 1
            if update_lru:
                cache_set.move_to_end(line)
            return True
        self.stats.misses += 1
        return False

    def probe(self, address: int) -> bool:
        """Presence check without statistics or LRU side effects.

        Used by the amnesic scheduler's FLC/LLC policies: probing is a
        tag lookup that does not change replacement state or hit/miss
        accounting of the classic access stream.
        """
        self.stats.probes += 1
        line = self.line_address(address)
        return line in self._set_for(line)

    def contains(self, address: int) -> bool:
        """Pure presence check with no side effects at all (oracles)."""
        line = self.line_address(address)
        return line in self._set_for(line)

    def fill(self, address: int, dirty: bool = False) -> Optional[EvictedLine]:
        """Bring the line of *address* in, evicting LRU if the set is full."""
        line = self.line_address(address)
        cache_set = self._set_for(line)
        evicted = None
        if line in cache_set:
            cache_set[line] = cache_set[line] or dirty
            cache_set.move_to_end(line)
            return None
        if len(cache_set) >= self.geometry.associativity:
            victim, victim_dirty = cache_set.popitem(last=False)
            self.stats.evictions += 1
            if victim_dirty:
                self.stats.writebacks += 1
            evicted = EvictedLine(victim, victim_dirty)
        cache_set[line] = dirty
        return evicted

    def mark_dirty(self, address: int) -> None:
        """Mark the (present) line of *address* dirty."""
        line = self.line_address(address)
        cache_set = self._set_for(line)
        if line in cache_set:
            cache_set[line] = True
            cache_set.move_to_end(line)

    def invalidate(self, address: int) -> bool:
        """Drop the line of *address* if present; return whether it was."""
        line = self.line_address(address)
        cache_set = self._set_for(line)
        if line in cache_set:
            del cache_set[line]
            return True
        return False

    # ------------------------------------------------------------------
    # Inspection.
    # ------------------------------------------------------------------
    def resident_lines(self) -> Dict[int, bool]:
        """Map of resident line addresses to dirty flags (tests/analysis)."""
        resident: Dict[int, bool] = {}
        for cache_set in self._sets:
            resident.update(cache_set)
        return resident

    def occupancy(self) -> int:
        """Number of lines currently resident."""
        return sum(len(s) for s in self._sets)

    def observe(self) -> Dict[str, float]:
        """Flat snapshot for the telemetry timeline sampler.

        ``occupancy`` is instantaneous; every other series is cumulative
        (the sampler differences consecutive snapshots into per-window
        rates).  Called only at window boundaries — never on the access
        path — so it costs nothing when telemetry is off.
        """
        stats = self.stats
        return {
            "occupancy": self.occupancy(),
            "hits": stats.hits,
            "misses": stats.misses,
            "evictions": stats.evictions,
            "writebacks": stats.writebacks,
        }

    def __repr__(self) -> str:
        geometry = self.geometry
        return (
            f"Cache({self.name}, {geometry.total_lines} lines, "
            f"{geometry.associativity}-way, {self.occupancy()} resident)"
        )
