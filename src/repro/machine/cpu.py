"""The classic in-order CPU interpreter.

:class:`CPU` executes a program under *classic* execution semantics:
every load walks the memory hierarchy, every instruction is priced by
the energy model, and an optional tracer observes each retired
instruction.  The amnesic machine (:mod:`repro.core.amnesic_cpu`)
subclasses this interpreter and overrides only the handling of the three
amnesic opcodes, so classic and amnesic execution share all value,
memory, and pricing semantics — exactly the "equivalent to classic
execution" baseline the paper defines (section 2).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Union

from ..energy.account import (
    GROUP_LOAD,
    GROUP_NONMEM,
    GROUP_STORE,
    GROUP_WRITEBACK,
    EnergyAccount,
)

if TYPE_CHECKING:  # avoid a circular import: energy.model depends on machine
    from ..energy.model import EnergyModel
from ..errors import ExecutionLimitExceeded, MachineFault
from ..isa.instructions import Instruction
from ..isa.opcodes import Category, Opcode
from ..isa.operands import Imm, Operand, Reg
from ..isa.program import Program
from ..isa.semantics import branch_taken, evaluate
from ..telemetry.profiler import TAIL_KEY
from ..telemetry.runtime import get_telemetry
from ..trace.events import InstructionEvent
from .hierarchy import MemoryHierarchy
from .memory import Memory
from .stats import RunStats

Value = Union[int, float]

#: Default dynamic-instruction budget; exceeded means livelock.
DEFAULT_MAX_INSTRUCTIONS = 5_000_000


class CPU:
    """In-order interpreter with energy/timing accounting."""

    #: Distinguishes ``execute.classic`` / ``execute.amnesic`` telemetry.
    TELEMETRY_LABEL = "classic"

    def __init__(
        self,
        program: Program,
        model: "EnergyModel",
        tracer=None,
        max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
    ):
        self.program = program
        self.model = model
        self.tracer = tracer
        self.max_instructions = max_instructions
        self.memory = Memory(program.data)
        self.hierarchy = MemoryHierarchy(model.config)
        self.registers: List[Value] = [0] * 32
        self.account = EnergyAccount()
        self.stats = RunStats()
        self.pc = 0
        self.halted = False
        self._dynamic_index = 0
        self._charged_writeback_nj = 0.0
        #: Windowed timeline track, attached by the telemetry runtime at
        #: run start; None (one pointer check per retired instruction)
        #: whenever telemetry is off or no timeline was requested.
        self._timeline = None
        #: Per-opcode dispatch table of bound handlers; building it here
        #: binds subclass overrides (e.g. the amnesic opcodes).
        self._dispatch = self._build_dispatch()

    def _build_dispatch(self):
        """Opcode -> bound handler, replacing an if/elif chain per dispatch."""
        dispatch = {}
        for opcode in Opcode:
            category = opcode.category
            if category.is_compute:
                handler = self._execute_compute
            elif opcode is Opcode.LD:
                handler = self._execute_load
            elif opcode is Opcode.ST:
                handler = self._execute_store
            elif category is Category.BRANCH:
                handler = self._execute_branch
            elif opcode is Opcode.JMP:
                handler = self._execute_jmp
            elif opcode is Opcode.JAL:
                handler = self._execute_jal
            elif opcode is Opcode.JR:
                handler = self._execute_jr
            elif opcode is Opcode.NOP:
                handler = self._execute_nop
            elif opcode is Opcode.HALT:
                handler = self._execute_halt
            elif category is Category.AMNESIC:
                handler = self._execute_amnesic
            else:  # pragma: no cover - the mapping above is exhaustive
                continue
            dispatch[opcode] = handler
        return dispatch

    # ------------------------------------------------------------------
    # Operand plumbing.
    # ------------------------------------------------------------------
    def resolve(self, operand: Operand) -> Value:
        """Resolve an operand to its current value."""
        if isinstance(operand, Reg):
            return 0 if operand.index == 0 else self.registers[operand.index]
        if isinstance(operand, Imm):
            return operand.value
        raise MachineFault(
            f"operand {operand} is not valid under classic execution", pc=self.pc
        )

    def write_register(self, reg: Reg, value: Value) -> None:
        """Write an architectural register (writes to r0 are discarded)."""
        if reg.index != 0:
            self.registers[reg.index] = value

    def effective_address(self, base: Operand, offset: Operand) -> int:
        """Compute and validate an effective word address."""
        base_value = self.resolve(base)
        offset_value = self.resolve(offset)
        address = base_value + offset_value
        if isinstance(address, float):
            if not address.is_integer():
                raise MachineFault(
                    f"non-integer effective address {address}", pc=self.pc
                )
            address = int(address)
        return address

    # ------------------------------------------------------------------
    # Execution loop.
    # ------------------------------------------------------------------
    def run(self) -> RunStats:
        """Execute until HALT; return the run statistics."""
        telemetry = get_telemetry()
        profiler = telemetry.active_profiler()
        self._timeline = telemetry.open_timeline(self)
        # Instrumented runs (tracer events, timeline sampling, hot-loop
        # profiling) take per-instruction fallback loops; the ``mode``
        # attribute lets the bench artifacts aggregate untraced
        # execution throughput separately from instrumented runs.
        traced = (
            profiler is not None
            or self.tracer is not None
            or self._timeline is not None
        )
        with telemetry.span(
            f"execute.{self.TELEMETRY_LABEL}",
            mode="traced" if traced else "untraced",
        ) as span:
            try:
                if profiler is None:
                    self._run_loop()
                else:
                    self._run_loop_profiled(profiler)
            finally:
                if self._timeline is not None:
                    self._timeline.close(self._dynamic_index)
                    self._timeline = None
            span.set(
                instructions=self._dynamic_index,
                energy_nj=round(self.account.total_energy_nj, 3),
                time_ns=round(self.account.total_time_ns, 3),
            )
        telemetry.publish_run_stats(self.stats, run=self.TELEMETRY_LABEL)
        if telemetry.enabled:
            telemetry.counter("run.energy_nj", run=self.TELEMETRY_LABEL).inc(
                self.account.total_energy_nj
            )
            telemetry.counter("run.time_ns", run=self.TELEMETRY_LABEL).inc(
                self.account.total_time_ns
            )
        return self.stats

    def _run_loop(self) -> None:
        """The plain dispatch loop (no profiler attached)."""
        while not self.halted:
            self.step()
        self.finalize()

    def _run_loop_profiled(self, profiler) -> None:
        """Dispatch loop with per-opcode wall/instruction/energy sampling.

        Records at every ``sample_every``-th dispatch; the recorded
        deltas telescope, so profile totals stay exact at any stride
        (see :mod:`repro.telemetry.profiler`).
        """
        profiler.runs += 1
        clock = profiler.clock
        label = self.TELEMETRY_LABEL
        stride = profiler.sample_every
        pending = stride
        account = self.account
        last_t = clock()
        last_d = self._dynamic_index
        last_e = account.total_energy_nj
        opcode_name = None
        while not self.halted:
            self._check_budget()
            try:
                instruction = self.program.instruction_at(self.pc)
            except IndexError:
                raise MachineFault(
                    "pc ran off the end of the program", pc=self.pc
                ) from None
            opcode_name = instruction.opcode.value
            self.execute(instruction)
            pending -= 1
            if pending == 0:
                pending = stride
                now = clock()
                energy = account.total_energy_nj
                profiler.record(
                    label,
                    opcode_name,
                    now - last_t,
                    self._dynamic_index - last_d,
                    energy - last_e,
                )
                last_t, last_d, last_e = now, self._dynamic_index, energy
        if pending != stride and opcode_name is not None:
            # Flush the partial tail so instruction/energy totals stay
            # exact.  The window covers up to stride-1 *different*
            # opcodes, so attributing it to the last dispatched one would
            # skew per-opcode shares at large strides; it gets its own
            # synthetic row instead.
            now = clock()
            energy = account.total_energy_nj
            profiler.record(
                label, TAIL_KEY, now - last_t,
                self._dynamic_index - last_d, energy - last_e,
            )
            last_t, last_e = now, energy
        before = account.total_energy_nj
        start = clock()
        self.finalize()
        profiler.record_finalize(
            label, clock() - start, account.total_energy_nj - before
        )

    def _check_budget(self) -> None:
        """Raise once the dynamic-instruction budget is exhausted.

        Shared by every dispatch loop *and* :meth:`step`, so
        single-stepping callers and alternative backends enforce the same
        livelock limit as ``run()``.
        """
        if self._dynamic_index >= self.max_instructions:
            raise ExecutionLimitExceeded(
                f"exceeded {self.max_instructions} dynamic instructions",
                pc=self.pc,
            )

    def step(self) -> None:
        """Execute one instruction at the current pc."""
        self._check_budget()
        try:
            instruction = self.program.instruction_at(self.pc)
        except IndexError:
            raise MachineFault("pc ran off the end of the program", pc=self.pc) from None
        self.execute(instruction)

    def finalize(self) -> None:
        """Charge deferred costs (dirty write-backs) once, idempotently."""
        pending = self.hierarchy.stats.writeback_energy_nj - self._charged_writeback_nj
        if pending > 0:
            self.account.charge_energy_only(GROUP_WRITEBACK, pending)
            self._charged_writeback_nj += pending

    # ------------------------------------------------------------------
    # Dispatch.
    # ------------------------------------------------------------------
    def execute(self, instruction: Instruction) -> None:
        """Execute *instruction*, advance pc, account, and trace."""
        self.stats.count_instruction(instruction.opcode.category)
        handler = self._dispatch.get(instruction.opcode)
        if handler is None:  # pragma: no cover - the table is exhaustive
            raise MachineFault(f"undecodable instruction {instruction}", pc=self.pc)
        handler(instruction)

    def _execute_jmp(self, instruction: Instruction) -> None:
        self._emit(instruction)
        self.account.charge(GROUP_NONMEM, self.model.compute_cost(Category.JUMP))
        self.pc = self.program.pc_of(instruction.target)

    def _execute_jal(self, instruction: Instruction) -> None:
        # Call: store the return pc in the link register, then jump.
        return_pc = self.pc + 1
        self.write_register(instruction.dest, return_pc)
        self._emit(instruction, result=return_pc)
        self.account.charge(GROUP_NONMEM, self.model.compute_cost(Category.JUMP))
        self.pc = self.program.pc_of(instruction.target)

    def _execute_jr(self, instruction: Instruction) -> None:
        target = self.resolve(instruction.srcs[0])
        limit = len(self.program.instructions)
        # target == limit is rejected *here*: letting it through would
        # only die on the next fetch with a misleading "ran off the end"
        # fault attributed to the wrong pc.
        if not isinstance(target, int) or not 0 <= target < limit:
            raise MachineFault(
                f"jump-register {instruction} to invalid pc {target!r} "
                f"(valid pcs are 0..{limit - 1})",
                pc=self.pc,
            )
        self._emit(instruction, operand_values=(target,))
        self.account.charge(GROUP_NONMEM, self.model.compute_cost(Category.JUMP))
        self.pc = target

    def _execute_nop(self, instruction: Instruction) -> None:
        self._emit(instruction)
        self.account.charge(GROUP_NONMEM, self.model.compute_cost(Category.NOP))
        self.pc += 1

    def _execute_halt(self, instruction: Instruction) -> None:
        self._emit(instruction)
        self.halted = True

    def _execute_compute(self, instruction: Instruction) -> None:
        values = tuple(self.resolve(src) for src in instruction.srcs)
        try:
            result = evaluate(instruction.opcode, values)
        except MachineFault as fault:
            raise type(fault)(str(fault), pc=self.pc) from None
        if not isinstance(instruction.dest, Reg):
            raise MachineFault(
                f"compute instruction without register destination: {instruction}",
                pc=self.pc,
            )
        self.write_register(instruction.dest, result)
        self.account.charge(GROUP_NONMEM, self.model.compute_cost(instruction.category))
        self._emit(instruction, operand_values=values, result=result)
        self.pc += 1

    def _execute_load(self, instruction: Instruction) -> None:
        address = self.effective_address(instruction.srcs[0], instruction.srcs[1])
        value = self.memory.read(address)
        access = self.hierarchy.load(address)
        self.account.charge(GROUP_LOAD, self.model.access_cost(access))
        self.stats.loads_performed += 1
        self.write_register(instruction.dest, value)
        self._emit(
            instruction, result=value, address=address, level=access.level
        )
        self.pc += 1

    def _execute_store(self, instruction: Instruction) -> None:
        value = self.resolve(instruction.srcs[0])
        address = self.effective_address(instruction.srcs[1], instruction.srcs[2])
        self.memory.write(address, value)
        access = self.hierarchy.store(address)
        self.account.charge(GROUP_STORE, self.model.access_cost(access))
        self.stats.stores_performed += 1
        self._emit(
            instruction, operand_values=(value,), address=address, level=access.level
        )
        self.pc += 1

    def _execute_branch(self, instruction: Instruction) -> None:
        a = self.resolve(instruction.srcs[0])
        b = self.resolve(instruction.srcs[1])
        taken = branch_taken(instruction.opcode, a, b)
        self.account.charge(GROUP_NONMEM, self.model.compute_cost(Category.BRANCH))
        self._emit(instruction, operand_values=(a, b), taken=taken)
        if taken:
            self.stats.branches_taken += 1
            self.pc = self.program.pc_of(instruction.target)
        else:
            self.pc += 1

    def _execute_amnesic(self, instruction: Instruction) -> None:
        """Classic execution does not understand amnesic opcodes."""
        raise MachineFault(
            f"amnesic instruction {instruction.opcode.value} on a classic CPU",
            pc=self.pc,
        )

    # ------------------------------------------------------------------
    # Tracing.
    # ------------------------------------------------------------------
    def _emit(
        self,
        instruction: Instruction,
        operand_values=(),
        result=None,
        address=None,
        level=None,
        taken=None,
    ) -> None:
        index = self._dynamic_index
        self._dynamic_index += 1
        timeline = self._timeline
        if timeline is not None and self._dynamic_index >= timeline.next_capture:
            timeline.capture(self._dynamic_index)
        if self.tracer is None:
            return
        self.tracer.on_instruction(
            InstructionEvent(
                index=index,
                pc=self.pc,
                instruction=instruction,
                operand_values=operand_values,
                result=result,
                address=address,
                level=level,
                taken=taken,
            )
        )

    @property
    def dynamic_count(self) -> int:
        """Number of retired dynamic instructions."""
        return self._dynamic_index

    # ------------------------------------------------------------------
    # Timeline observability.
    # ------------------------------------------------------------------
    def observe(self) -> dict:
        """Flat snapshot of run counters and hierarchy pressure.

        The telemetry timeline sampler polls this at window boundaries
        only; the amnesic CPU extends it with SFile/Hist/IBuff series.
        """
        snapshot = {
            "instructions": self._dynamic_index,
            "loads": self.stats.loads_performed,
            "stores": self.stats.stores_performed,
            "branches_taken": self.stats.branches_taken,
            "energy_nj": self.account.total_energy_nj,
        }
        for name, value in self.hierarchy.observe().items():
            snapshot[name] = value
        return snapshot
