"""Three-level data memory hierarchy: L1-D, L2, main memory.

Implements the walk/fill/write-back protocol over two
:class:`~repro.machine.cache.Cache` levels plus DRAM, and prices each
access with the configured per-level energy/latency (paper Table 3).
The hierarchy also exposes the two inspection primitives the amnesic
scheduler needs:

* :meth:`probe` — a tag lookup that does **not** fill or disturb LRU
  state, used by the FLC/LLC runtime policies (paper section 3.3.1);
* :meth:`residence` — a side-effect-free peek used by the oracular
  policies, which "can predict with 100% accuracy where the load of v
  will be serviced" (paper section 5.1).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from .cache import Cache
from .config import Level, MachineConfig


@dataclasses.dataclass(frozen=True)
class Access:
    """Outcome of one data access: servicing level, energy, latency."""

    level: Level
    energy_nj: float
    latency_ns: float
    is_store: bool = False


@dataclasses.dataclass
class HierarchyStats:
    """Aggregate counters over the whole hierarchy."""

    loads_by_level: Dict[Level, int] = dataclasses.field(
        default_factory=lambda: {level: 0 for level in Level}
    )
    stores_by_level: Dict[Level, int] = dataclasses.field(
        default_factory=lambda: {level: 0 for level in Level}
    )
    writeback_energy_nj: float = 0.0

    @property
    def total_loads(self) -> int:
        return sum(self.loads_by_level.values())

    @property
    def total_stores(self) -> int:
        return sum(self.stores_by_level.values())

    def load_fractions(self) -> Dict[Level, float]:
        """Fraction of loads serviced per level (the paper's PrLi)."""
        total = self.total_loads
        if not total:
            return {level: 0.0 for level in Level}
        return {level: count / total for level, count in self.loads_by_level.items()}


class MemoryHierarchy:
    """L1-D + L2 + DRAM with LRU write-back caches."""

    def __init__(self, config: MachineConfig):
        self.config = config
        self.l1 = Cache(config.l1_geometry, name="L1-D")
        self.l2 = Cache(config.l2_geometry, name="L2")
        self.stats = HierarchyStats()

    # ------------------------------------------------------------------
    # The classic access path.
    # ------------------------------------------------------------------
    def load(self, address: int) -> Access:
        """Perform a load: walk, fill on the way back, price the access."""
        level = self._walk_and_fill(address, dirty=False)
        self.stats.loads_by_level[level] += 1
        return Access(
            level=level,
            energy_nj=self.config.load_energy_nj(level),
            latency_ns=self.config.load_latency_ns(level),
        )

    def store(self, address: int) -> Access:
        """Perform a store (write-allocate, write-back)."""
        level = self._walk_and_fill(address, dirty=True)
        self.stats.stores_by_level[level] += 1
        params = self.config.params(level)
        energy = self.config.load_energy_nj(level)
        # Replace the read at the servicing level by a write there.
        energy += params.write_energy_nj - params.read_energy_nj
        return Access(
            level=level,
            energy_nj=energy,
            latency_ns=params.latency_ns,
            is_store=True,
        )

    def _walk_and_fill(self, address: int, dirty: bool) -> Level:
        if self.l1.lookup(address):
            if dirty:
                self.l1.mark_dirty(address)
            return Level.L1
        return self._service_miss(address, dirty)

    def _service_miss(self, address: int, dirty: bool) -> Level:
        """Continue the walk below an L1 miss (already counted by the caller).

        Split out of :meth:`_walk_and_fill` so alternative execution
        backends that inline the L1 hit check share the exact L2/MEM
        walk, fill, and write-back accounting with the classic path.
        """
        if self.l2.lookup(address):
            self._fill_l1(address, dirty)
            return Level.L2
        l2_evicted = self.l2.fill(address)
        if l2_evicted is not None and l2_evicted.dirty:
            self.stats.writeback_energy_nj += self.config.mem_params.write_energy_nj
        self._fill_l1(address, dirty)
        return Level.MEM

    def _fill_l1(self, address: int, dirty: bool) -> None:
        evicted = self.l1.fill(address, dirty=dirty)
        if evicted is not None and evicted.dirty:
            # Write the victim back into L2 (allocate there if needed).
            word_address = evicted.line_address << (
                self.l1.geometry.line_words.bit_length() - 1
            )
            l2_evicted = self.l2.fill(word_address, dirty=True)
            self.stats.writeback_energy_nj += self.config.l2_params.write_energy_nj
            if l2_evicted is not None and l2_evicted.dirty:
                self.stats.writeback_energy_nj += self.config.mem_params.write_energy_nj

    # ------------------------------------------------------------------
    # Amnesic inspection primitives.
    # ------------------------------------------------------------------
    def probe(self, address: int, through: Level) -> Optional[Level]:
        """Tag-probe the hierarchy down to *through* without filling.

        Returns the level where the line was found, or ``None`` if it is
        absent from every probed cache.  FLC probes ``through=Level.L1``;
        LLC probes ``through=Level.L2``.
        """
        if self.l1.probe(address):
            return Level.L1
        if through is Level.L1:
            return None
        if self.l2.probe(address):
            return Level.L2
        return None

    def probe_cost(self, found: Optional[Level], through: Level) -> Access:
        """Energy/latency of a probe that stopped at *found* (or missed).

        A probe that hits in L1 pays one L1 lookup; probing through L2
        pays the L1 lookup plus the L2 lookup — this asymmetry is "the
        main delimiter for LLC" in the paper's section 5.1 comparison.
        """
        energy = self.config.l1_params.read_energy_nj
        latency = self.config.l1_params.latency_ns
        probed_l2 = through is Level.L2 and found is not Level.L1
        if probed_l2:
            energy += self.config.l2_params.read_energy_nj
            latency += self.config.l2_params.latency_ns
        return Access(level=found or Level.MEM, energy_nj=energy, latency_ns=latency)

    def observe(self) -> Dict[str, float]:
        """Flat per-level snapshot for the telemetry timeline sampler."""
        snapshot: Dict[str, float] = {}
        for cache in (self.l1, self.l2):
            prefix = cache.name.lower().replace("-d", "")
            for key, value in cache.observe().items():
                snapshot[f"{prefix}.{key}"] = value
        for level, count in self.stats.loads_by_level.items():
            snapshot[f"loads.{level.value}"] = count
        return snapshot

    def residence(self, address: int) -> Level:
        """Where a load of *address* would be serviced right now (oracle)."""
        if self.l1.contains(address):
            return Level.L1
        if self.l2.contains(address):
            return Level.L2
        return Level.MEM
