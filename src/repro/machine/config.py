"""Machine configuration: cache geometry and per-level energy/latency.

The defaults reproduce the paper's simulated architecture (Table 3):

=================  ======================  ========  =========
Component          Geometry                Energy    Latency
=================  ======================  ========  =========
L1-I (LRU)         32KB, 4-way             0.88 nJ   3.66 ns
L1-D (LRU, WB)     32KB, 8-way             0.88 nJ   3.66 ns
L2 (LRU, WB)       512KB, 8-way            7.72 nJ   24.77 ns
Main memory        --                      52.14 nJ read / 62.14 nJ write, 100 ns
=================  ======================  ========  =========

operating at 1.09 GHz in a 22nm node.  Because our synthetic kernels are
laptop-scale rather than SPEC-scale, the harness uses a *scaled* geometry
(same ratios, smaller capacities) so that working sets produce the same
service-level profiles the paper reports for its benchmarks; the paper
geometry remains available as :func:`paper_geometry`.
"""

from __future__ import annotations

import dataclasses
import enum


class Level(enum.Enum):
    """A level of the data memory hierarchy."""

    L1 = "L1"
    L2 = "L2"
    MEM = "MEM"

    @property
    def depth(self) -> int:
        """0 for L1, 1 for L2, 2 for main memory."""
        return _LEVEL_DEPTH[self]


_LEVEL_DEPTH = {Level.L1: 0, Level.L2: 1, Level.MEM: 2}

#: Hierarchy walk order, nearest first.
LEVELS = (Level.L1, Level.L2, Level.MEM)


@dataclasses.dataclass(frozen=True)
class CacheGeometry:
    """Geometry of one cache: capacity in lines, associativity, line size.

    ``line_words`` is the number of 64-bit words per line (8 words = the
    64-byte lines of the paper's configuration).
    """

    total_lines: int
    associativity: int
    line_words: int = 8

    def __post_init__(self) -> None:
        if self.total_lines <= 0 or self.associativity <= 0 or self.line_words <= 0:
            raise ValueError(
                f"cache geometry fields must be positive, got "
                f"total_lines={self.total_lines}, "
                f"associativity={self.associativity}, "
                f"line_words={self.line_words}"
            )
        if self.total_lines % self.associativity:
            raise ValueError(
                f"total_lines ({self.total_lines}) must be a multiple of "
                f"associativity ({self.associativity}) so the sets divide "
                f"evenly"
            )
        if self.line_words & (self.line_words - 1):
            # Cache.line_address maps word -> line with a right shift of
            # log2(line_words); a non-power-of-two would silently map
            # addresses to the wrong line.
            raise ValueError(
                f"line_words must be a power of two (shift-based line "
                f"mapping), got {self.line_words}"
            )

    @property
    def sets(self) -> int:
        return self.total_lines // self.associativity

    @property
    def capacity_words(self) -> int:
        return self.total_lines * self.line_words


@dataclasses.dataclass(frozen=True)
class LevelParams:
    """Energy and round-trip latency of one memory level."""

    read_energy_nj: float
    write_energy_nj: float
    latency_ns: float


@dataclasses.dataclass(frozen=True)
class MachineConfig:
    """Complete machine description consumed by the simulator."""

    l1_geometry: CacheGeometry
    l2_geometry: CacheGeometry
    l1_params: LevelParams
    l2_params: LevelParams
    mem_params: LevelParams
    frequency_ghz: float = 1.09

    @property
    def cycle_ns(self) -> float:
        """Duration of one core cycle in nanoseconds."""
        return 1.0 / self.frequency_ghz

    def params(self, level: Level) -> LevelParams:
        """Energy/latency parameters for *level*."""
        if level is Level.L1:
            return self.l1_params
        if level is Level.L2:
            return self.l2_params
        return self.mem_params

    def load_energy_nj(self, level: Level) -> float:
        """Cumulative energy of a load serviced at *level*.

        A load that misses in L1 pays the L1 lookup *and* the L2 access;
        a load serviced by memory pays all three, matching how Sniper +
        McPAT accumulate access energy along the walk.
        """
        energy = self.l1_params.read_energy_nj
        if level.depth >= 1:
            energy += self.l2_params.read_energy_nj
        if level.depth >= 2:
            energy += self.mem_params.read_energy_nj
        return energy

    def load_latency_ns(self, level: Level) -> float:
        """Round-trip latency of a load serviced at *level*."""
        return self.params(level).latency_ns


#: Paper Table 3 per-level parameters (22nm).
PAPER_L1_PARAMS = LevelParams(read_energy_nj=0.88, write_energy_nj=0.88, latency_ns=3.66)
PAPER_L2_PARAMS = LevelParams(read_energy_nj=7.72, write_energy_nj=7.72, latency_ns=24.77)
PAPER_MEM_PARAMS = LevelParams(read_energy_nj=52.14, write_energy_nj=62.14, latency_ns=100.0)


def paper_geometry() -> MachineConfig:
    """The exact simulated architecture of paper Table 3.

    32KB 8-way L1-D and 512KB 8-way L2 with 64B lines, in word terms:
    L1 holds 512 lines of 8 words; L2 holds 8192 lines of 8 words.
    """
    return MachineConfig(
        l1_geometry=CacheGeometry(total_lines=512, associativity=8),
        l2_geometry=CacheGeometry(total_lines=8192, associativity=8),
        l1_params=PAPER_L1_PARAMS,
        l2_params=PAPER_L2_PARAMS,
        mem_params=PAPER_MEM_PARAMS,
    )


def default_config() -> MachineConfig:
    """Scaled-down geometry used by the evaluation harness.

    Capacities shrink 32x (16 lines / 128 words of L1, 128 lines / 1024
    words of L2) while keeping associativity, write-back LRU policies,
    and all energy/latency parameters.  Synthetic kernels with
    kilobyte-scale footprints then exercise the same L1/L2/MEM
    service-level profiles the paper's benchmarks exhibit at SPEC scale
    (documented per benchmark in ``repro.workloads.suite``), and whole
    evaluation sweeps stay laptop-fast on a Python interpreter.
    """
    return MachineConfig(
        l1_geometry=CacheGeometry(total_lines=16, associativity=8),
        l2_geometry=CacheGeometry(total_lines=128, associativity=8),
        l1_params=PAPER_L1_PARAMS,
        l2_params=PAPER_L2_PARAMS,
        mem_params=PAPER_MEM_PARAMS,
    )
