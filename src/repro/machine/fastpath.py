"""The fast execution backend: predecoded closures over classic semantics.

:class:`FastExecutionMixin` replaces the classic fetch/decode/dispatch
loop of :class:`~repro.machine.cpu.CPU` with a *predecoded* program: one
closure per static instruction, specialized at decode time over

* the opcode's evaluator / branch condition (no per-dispatch dict walk),
* the operand kinds (register reads and immediates are resolved to
  direct indexed reads — no ``isinstance`` chains per dynamic
  instruction),
* the branch/jump target pcs (label lookups happen once per static
  instruction, not once per dynamic one),
* the energy/latency costs (plain ``float`` pairs instead of a
  :class:`~repro.energy.account.Cost` allocation per charge).

Each closure executes one instruction *bit-identically* to the classic
handler — same value semantics, same energy charges in the same order,
same cache/LRU state transitions, same fault types, messages, and
fault-time architectural state — and returns the next pc (or ``-1``
after ``HALT``).  Straight-line regions therefore run with no
per-instruction branch/halt checks: the hot loop is an array index, a
call, and a budget compare.

The semantics/timing/observability contract a backend must honour:

* **Semantics** live in :mod:`repro.isa.semantics` and
  :class:`~repro.machine.memory.Memory` — closures call the same
  evaluator lambdas and read/write the same cell dict.
* **Timing/energy** live in :class:`~repro.energy.account.EnergyAccount`
  and :class:`~repro.machine.hierarchy.MemoryHierarchy` — closures
  inline only the L1-hit fast path (the dominant case) and delegate
  every miss to :meth:`MemoryHierarchy._service_miss`, the exact code
  the classic walk runs, so hit/miss/eviction/write-back accounting
  cannot diverge.
* **Observability**: a run with a timeline attached falls back to the
  classic loop (timelines sample mid-run state at instruction
  granularity); a run under the hot-loop profiler uses the classic
  profiled loop (the profiler measures the classic dispatch path); a
  run with a tracer keeps the predecoded loop with *traced* closure
  variants that construct the same
  :class:`~repro.trace.events.InstructionEvent` the classic handler
  would emit — same index, pc, operand values, result, address, level,
  and branch outcome — so dependence/locality profiles built on the
  event stream are identical.  The tracer is bound at decode time
  (tracers are fixed at CPU construction), and opcodes without a traced
  template (the amnesic control opcodes) thunk through the classic
  handler, which emits via ``CPU._emit`` as before.

Instruction counting (``RunStats.dynamic_instructions`` /
``by_category``) is deferred to a per-pc hit-count array and flushed
when the loop exits (including on faults, preserving the classic
"count before execute" order); ``CPU._dynamic_index`` stays live
because budgets, timelines, and event indices read it mid-run.
"""

from __future__ import annotations

from ..energy.account import (
    GROUP_AMNESIC,
    GROUP_LOAD,
    GROUP_NONMEM,
    GROUP_STORE,
)
from ..errors import ExecutionLimitExceeded, MachineFault, MemoryFault
from ..isa.opcodes import _OPCODE_CATEGORY, Category, Opcode
from ..isa.operands import Imm, Reg
from ..isa.semantics import _BRANCH_CONDITIONS, _EVALUATORS
from ..trace.events import InstructionEvent
from .config import Level
from .cpu import CPU


def _operand_box(registers, operand):
    """Resolve an operand once: a (sequence, index) pair read per dispatch.

    Registers read ``cpu.registers[index]``; immediates read a one-slot
    constant tuple.  Both cost one indexed load, so every operand-kind
    combination collapses into a single closure template.  Returns None
    for operands that need the classic slow path (SReg/HistRef).
    """
    if isinstance(operand, Reg):
        # r0 is never written (write_register discards), so reading the
        # backing slot is equivalent to the classic hardwired zero.
        return registers, operand.index
    if isinstance(operand, Imm):
        return (operand.value,), 0
    return None


class _ProgramDecoder:
    """Builds the per-pc closure table for one CPU instance."""

    def __init__(self, cpu: CPU):
        self.cpu = cpu
        self.program = cpu.program
        self.registers = cpu.registers
        self.stats = cpu.stats
        self.account = cpu.account
        self.energy = cpu.account._energy_by_group
        self.cells = cpu.memory._cells
        model = cpu.model
        config = model.config
        self.load_costs = {}
        self.store_costs = {}
        for level in Level:
            self.load_costs[level] = (
                config.load_energy_nj(level),
                config.load_latency_ns(level),
            )
            params = config.params(level)
            # Mirrors MemoryHierarchy.store: replace the read at the
            # servicing level by a write there (same float operations,
            # same order, so charges stay bit-identical).
            store_energy = config.load_energy_nj(level)
            store_energy += params.write_energy_nj - params.read_energy_nj
            self.store_costs[level] = (store_energy, params.latency_ns)
        self._compute_costs = {}
        self.model = model

    def compute_cost(self, category):
        pair = self._compute_costs.get(category)
        if pair is None:
            cost = self.model.compute_cost(category)
            pair = self._compute_costs[category] = (cost.energy_nj, cost.time_ns)
        return pair

    # ------------------------------------------------------------------
    # Decode driver.
    # ------------------------------------------------------------------
    def decode(self):
        """Return ``(fns, cats)``: per-pc closures + per-pc categories.

        ``fns`` has one trailing sentinel entry (index ``len(program)``)
        raising the classic "ran off the end" fault, so the hot loop
        needs no bounds check; its category slot is ``None`` and its
        hit count is never flushed into RunStats — the classic loop
        faults on fetch *before* counting, and so do we.
        """
        cpu = self.cpu
        tracer = cpu.tracer
        fns = []
        cats = []
        for pc, instruction in enumerate(self.program.instructions):
            cats.append(_OPCODE_CATEGORY[instruction.opcode])
            fn = None
            if instruction.opcode is Opcode.HALT:
                fn = self._make_halt(pc, instruction)
            elif tracer is None:
                fn = self._make_specialized(pc, instruction)
            else:
                fn = self._make_traced(pc, instruction, tracer.on_instruction)
            if fn is None:
                fn = self._make_thunk(pc, instruction)
            fns.append(fn)
        fns.append(self._make_off_end(len(fns)))
        cats.append(None)
        return fns, cats

    def _make_specialized(self, pc, instruction):
        opcode = instruction.opcode
        category = _OPCODE_CATEGORY[opcode]
        if category.is_compute:
            return self._make_compute(pc, instruction)
        if opcode is Opcode.LD:
            return self._make_load(pc, instruction)
        if opcode is Opcode.ST:
            return self._make_store(pc, instruction)
        if category is Category.BRANCH:
            return self._make_branch(pc, instruction)
        if opcode is Opcode.JMP:
            return self._make_jmp(pc, instruction)
        if opcode is Opcode.JAL:
            return self._make_jal(pc, instruction)
        if opcode is Opcode.JR:
            return self._make_jr(pc, instruction)
        if opcode is Opcode.NOP:
            return self._make_nop(pc, instruction)
        if opcode is Opcode.REC:
            return self._make_rec(pc, instruction)
        return None

    def _make_traced(self, pc, instruction, emit):
        """Specialized closure that also emits the classic trace event.

        Each traced template performs the same specialized work as its
        untraced sibling and then constructs the exact
        :class:`InstructionEvent` the classic handler would pass to the
        tracer: operand values read once and reused, results/addresses/
        service levels captured mid-execution, the event index taken
        from the live ``_dynamic_index``.  Fault paths emit nothing,
        matching classic handlers (which fault before ``_emit``).
        """
        opcode = instruction.opcode
        category = _OPCODE_CATEGORY[opcode]
        if category.is_compute:
            return self._make_traced_compute(pc, instruction, emit)
        if opcode is Opcode.LD:
            return self._make_traced_load(pc, instruction, emit)
        if opcode is Opcode.ST:
            return self._make_traced_store(pc, instruction, emit)
        if category is Category.BRANCH:
            return self._make_traced_branch(pc, instruction, emit)
        if opcode is Opcode.JMP:
            return self._make_traced_jmp(pc, instruction, emit)
        if opcode is Opcode.JAL:
            return self._make_traced_jal(pc, instruction, emit)
        if opcode is Opcode.JR:
            return self._make_traced_jr(pc, instruction, emit)
        if opcode is Opcode.NOP:
            return self._make_traced_nop(pc, instruction, emit)
        # Amnesic control opcodes and odd instructions thunk: the
        # classic handler emits via CPU._emit.
        return None

    def _boxes(self, srcs):
        boxes = []
        for src in srcs:
            box = _operand_box(self.registers, src)
            if box is None:
                return None
            boxes.append(box)
        return boxes

    # ------------------------------------------------------------------
    # Closure templates.  Each mirrors the classic handler line by line:
    # same operation order, same fault points, same charges.
    # ------------------------------------------------------------------
    def _make_compute(self, pc, instruction):
        evaluator = _EVALUATORS.get(instruction.opcode)
        if evaluator is None or not isinstance(instruction.dest, Reg):
            return None
        boxes = self._boxes(instruction.srcs)
        if boxes is None:
            return None
        energy_nj, time_ns = self.compute_cost(instruction.category)
        regs = self.registers
        energy = self.energy
        account = self.account
        cpu = self.cpu
        dest = instruction.dest.index
        nxt = pc + 1

        if len(boxes) == 2:
            (b0, i0), (b1, i1) = boxes

            def f(
                evaluator=evaluator, b0=b0, i0=i0, b1=b1, i1=i1, regs=regs,
                dest=dest, energy=energy, account=account, cpu=cpu,
                energy_nj=energy_nj, time_ns=time_ns, nxt=nxt, pc=pc,
            ):
                try:
                    result = evaluator(b0[i0], b1[i1])
                except MachineFault as fault:
                    raise type(fault)(str(fault), pc=pc) from None
                if dest:
                    regs[dest] = result
                energy[GROUP_NONMEM] += energy_nj
                account._time_ns += time_ns
                cpu._dynamic_index += 1
                return nxt

            return f

        if len(boxes) == 1:
            ((b0, i0),) = boxes

            def f(
                evaluator=evaluator, b0=b0, i0=i0, regs=regs, dest=dest,
                energy=energy, account=account, cpu=cpu,
                energy_nj=energy_nj, time_ns=time_ns, nxt=nxt, pc=pc,
            ):
                try:
                    result = evaluator(b0[i0])
                except MachineFault as fault:
                    raise type(fault)(str(fault), pc=pc) from None
                if dest:
                    regs[dest] = result
                energy[GROUP_NONMEM] += energy_nj
                account._time_ns += time_ns
                cpu._dynamic_index += 1
                return nxt

            return f

        def f(
            evaluator=evaluator, boxes=tuple(boxes), regs=regs, dest=dest,
            energy=energy, account=account, cpu=cpu,
            energy_nj=energy_nj, time_ns=time_ns, nxt=nxt, pc=pc,
        ):
            try:
                result = evaluator(*[b[i] for b, i in boxes])
            except MachineFault as fault:
                raise type(fault)(str(fault), pc=pc) from None
            if dest:
                regs[dest] = result
            energy[GROUP_NONMEM] += energy_nj
            account._time_ns += time_ns
            cpu._dynamic_index += 1
            return nxt

        return f

    def _address_parts(self, base, offset):
        box0 = _operand_box(self.registers, base)
        box1 = _operand_box(self.registers, offset)
        if box0 is None or box1 is None:
            return None
        return box0, box1

    def _make_load(self, pc, instruction):
        if not isinstance(instruction.dest, Reg):
            return None
        parts = self._address_parts(instruction.srcs[0], instruction.srcs[1])
        if parts is None:
            return None
        (b0, i0), (b1, i1) = parts
        cpu = self.cpu
        hierarchy = cpu.hierarchy
        l1 = hierarchy.l1

        def f(
            b0=b0, i0=i0, b1=b1, i1=i1, pc=pc, nxt=pc + 1,
            cells=self.cells, regs=self.registers, dest=instruction.dest.index,
            l1_sets=l1._sets, shift=l1._line_shift, nsets=l1.geometry.sets,
            l1_stats=l1.stats, service_miss=hierarchy._service_miss,
            loads_by_level=hierarchy.stats.loads_by_level, l1_level=Level.L1,
            l1_cost=self.load_costs[Level.L1], load_costs=self.load_costs,
            stats=self.stats, energy=self.energy, account=self.account, cpu=cpu,
        ):
            address = b0[i0] + b1[i1]
            if isinstance(address, float):
                if not address.is_integer():
                    raise MachineFault(
                        f"non-integer effective address {address}", pc=pc
                    )
                address = int(address)
            try:
                value = cells[address]
            except KeyError:
                raise MemoryFault(
                    f"read of unmapped address {address:#x}"
                ) from None
            line = address >> shift
            cache_set = l1_sets[line % nsets]
            if line in cache_set:
                l1_stats.hits += 1
                cache_set.move_to_end(line)
                loads_by_level[l1_level] += 1
                energy_nj, time_ns = l1_cost
            else:
                l1_stats.misses += 1
                level = service_miss(address, False)
                loads_by_level[level] += 1
                energy_nj, time_ns = load_costs[level]
            energy[GROUP_LOAD] += energy_nj
            account._time_ns += time_ns
            stats.loads_performed += 1
            if dest:
                regs[dest] = value
            cpu._dynamic_index += 1
            return nxt

        return f

    def _make_store(self, pc, instruction):
        value_box = _operand_box(self.registers, instruction.srcs[0])
        parts = self._address_parts(instruction.srcs[1], instruction.srcs[2])
        if value_box is None or parts is None:
            return None
        (b0, i0), (b1, i1) = parts
        bv, iv = value_box
        cpu = self.cpu
        memory = cpu.memory
        hierarchy = cpu.hierarchy
        l1 = hierarchy.l1
        # With no read-only ranges configured the classic check can
        # never fire; drop it from the hot path entirely.
        read_only = memory.is_read_only if memory._read_only else None

        def f(
            bv=bv, iv=iv, b0=b0, i0=i0, b1=b1, i1=i1, pc=pc, nxt=pc + 1,
            cells=self.cells, read_only=read_only,
            l1_sets=l1._sets, shift=l1._line_shift, nsets=l1.geometry.sets,
            l1_stats=l1.stats, service_miss=hierarchy._service_miss,
            stores_by_level=hierarchy.stats.stores_by_level, l1_level=Level.L1,
            l1_cost=self.store_costs[Level.L1], store_costs=self.store_costs,
            stats=self.stats, energy=self.energy, account=self.account, cpu=cpu,
        ):
            value = bv[iv]
            address = b0[i0] + b1[i1]
            if isinstance(address, float):
                if not address.is_integer():
                    raise MachineFault(
                        f"non-integer effective address {address}", pc=pc
                    )
                address = int(address)
            if read_only is not None and read_only(address):
                raise MemoryFault(f"write to read-only address {address:#x}")
            cells[address] = value
            line = address >> shift
            cache_set = l1_sets[line % nsets]
            if line in cache_set:
                l1_stats.hits += 1
                cache_set[line] = True
                cache_set.move_to_end(line)
                stores_by_level[l1_level] += 1
                energy_nj, time_ns = l1_cost
            else:
                l1_stats.misses += 1
                level = service_miss(address, True)
                stores_by_level[level] += 1
                energy_nj, time_ns = store_costs[level]
            energy[GROUP_STORE] += energy_nj
            account._time_ns += time_ns
            stats.stores_performed += 1
            cpu._dynamic_index += 1
            return nxt

        return f

    def _make_branch(self, pc, instruction):
        condition = _BRANCH_CONDITIONS.get(instruction.opcode)
        if condition is None:
            return None
        boxes = self._boxes(instruction.srcs)
        if boxes is None or len(boxes) != 2:
            return None
        taken_pc = self._target_pc(instruction)
        if taken_pc is None:
            return None
        (b0, i0), (b1, i1) = boxes
        energy_nj, time_ns = self.compute_cost(Category.BRANCH)

        def f(
            condition=condition, b0=b0, i0=i0, b1=b1, i1=i1,
            energy=self.energy, account=self.account, cpu=self.cpu,
            stats=self.stats, energy_nj=energy_nj, time_ns=time_ns,
            taken_pc=taken_pc, nxt=pc + 1,
        ):
            taken = condition(b0[i0], b1[i1])
            energy[GROUP_NONMEM] += energy_nj
            account._time_ns += time_ns
            cpu._dynamic_index += 1
            if taken:
                stats.branches_taken += 1
                return taken_pc
            return nxt

        return f

    def _target_pc(self, instruction):
        """Resolve the static jump/branch target, or None for the slow path.

        An undefined label keeps the classic at-execution fault by
        leaving the pc thunked.
        """
        return self.program.labels.get(instruction.target)

    def _make_jmp(self, pc, instruction):
        target_pc = self._target_pc(instruction)
        if target_pc is None:
            return None
        energy_nj, time_ns = self.compute_cost(Category.JUMP)

        def f(
            energy=self.energy, account=self.account, cpu=self.cpu,
            energy_nj=energy_nj, time_ns=time_ns, target_pc=target_pc,
        ):
            cpu._dynamic_index += 1
            energy[GROUP_NONMEM] += energy_nj
            account._time_ns += time_ns
            return target_pc

        return f

    def _make_jal(self, pc, instruction):
        target_pc = self._target_pc(instruction)
        if target_pc is None or not isinstance(instruction.dest, Reg):
            return None
        energy_nj, time_ns = self.compute_cost(Category.JUMP)

        def f(
            regs=self.registers, dest=instruction.dest.index, return_pc=pc + 1,
            energy=self.energy, account=self.account, cpu=self.cpu,
            energy_nj=energy_nj, time_ns=time_ns, target_pc=target_pc,
        ):
            if dest:
                regs[dest] = return_pc
            cpu._dynamic_index += 1
            energy[GROUP_NONMEM] += energy_nj
            account._time_ns += time_ns
            return target_pc

        return f

    def _make_jr(self, pc, instruction):
        box = _operand_box(self.registers, instruction.srcs[0])
        if box is None:
            return None
        b0, i0 = box
        energy_nj, time_ns = self.compute_cost(Category.JUMP)
        limit = len(self.program.instructions)

        def f(
            b0=b0, i0=i0, limit=limit, pc=pc, instruction=instruction,
            energy=self.energy, account=self.account, cpu=self.cpu,
            energy_nj=energy_nj, time_ns=time_ns,
        ):
            target = b0[i0]
            if not isinstance(target, int) or not 0 <= target < limit:
                raise MachineFault(
                    f"jump-register {instruction} to invalid pc {target!r} "
                    f"(valid pcs are 0..{limit - 1})",
                    pc=pc,
                )
            cpu._dynamic_index += 1
            energy[GROUP_NONMEM] += energy_nj
            account._time_ns += time_ns
            return target

        return f

    def _make_nop(self, pc, instruction):
        energy_nj, time_ns = self.compute_cost(Category.NOP)

        def f(
            energy=self.energy, account=self.account, cpu=self.cpu,
            energy_nj=energy_nj, time_ns=time_ns, nxt=pc + 1,
        ):
            cpu._dynamic_index += 1
            energy[GROUP_NONMEM] += energy_nj
            account._time_ns += time_ns
            return nxt

        return f

    def _make_rec(self, pc, instruction):
        """REC fast path, available only on amnesic machines."""
        hist = getattr(self.cpu, "hist", None)
        if hist is None:
            return None
        boxes = self._boxes(instruction.srcs)
        if boxes is None:
            return None
        cost = self.model.rec_cost()

        def f(
            boxes=tuple(boxes), record=hist.record,
            slice_id=instruction.slice_id, leaf_id=instruction.leaf_id,
            stats=self.stats, energy=self.energy, account=self.account,
            cpu=self.cpu, energy_nj=cost.energy_nj, time_ns=cost.time_ns,
            nxt=pc + 1,
        ):
            values = tuple(b[i] for b, i in boxes)
            record(slice_id, leaf_id, values)
            stats.hist_writes += 1
            energy[GROUP_AMNESIC] += energy_nj
            account._time_ns += time_ns
            cpu._dynamic_index += 1
            return nxt

        return f

    # ------------------------------------------------------------------
    # Traced closure templates.  Same specialized work as above, plus
    # the classic handler's InstructionEvent, field for field.
    # ------------------------------------------------------------------
    def _make_traced_compute(self, pc, instruction, emit):
        evaluator = _EVALUATORS.get(instruction.opcode)
        if evaluator is None or not isinstance(instruction.dest, Reg):
            return None
        boxes = self._boxes(instruction.srcs)
        if boxes is None:
            return None
        energy_nj, time_ns = self.compute_cost(instruction.category)
        regs = self.registers
        dest = instruction.dest.index
        nxt = pc + 1

        if len(boxes) == 2:
            (b0, i0), (b1, i1) = boxes

            def f(
                evaluator=evaluator, b0=b0, i0=i0, b1=b1, i1=i1, regs=regs,
                dest=dest, energy=self.energy, account=self.account,
                cpu=self.cpu, energy_nj=energy_nj, time_ns=time_ns,
                nxt=nxt, pc=pc, instruction=instruction, emit=emit,
                Event=InstructionEvent,
            ):
                v0 = b0[i0]
                v1 = b1[i1]
                try:
                    result = evaluator(v0, v1)
                except MachineFault as fault:
                    raise type(fault)(str(fault), pc=pc) from None
                if dest:
                    regs[dest] = result
                energy[GROUP_NONMEM] += energy_nj
                account._time_ns += time_ns
                index = cpu._dynamic_index
                cpu._dynamic_index = index + 1
                emit(Event(index, pc, instruction, (v0, v1), result))
                return nxt

            return f

        def f(
            evaluator=evaluator, boxes=tuple(boxes), regs=regs, dest=dest,
            energy=self.energy, account=self.account, cpu=self.cpu,
            energy_nj=energy_nj, time_ns=time_ns, nxt=nxt, pc=pc,
            instruction=instruction, emit=emit, Event=InstructionEvent,
        ):
            values = tuple(b[i] for b, i in boxes)
            try:
                result = evaluator(*values)
            except MachineFault as fault:
                raise type(fault)(str(fault), pc=pc) from None
            if dest:
                regs[dest] = result
            energy[GROUP_NONMEM] += energy_nj
            account._time_ns += time_ns
            index = cpu._dynamic_index
            cpu._dynamic_index = index + 1
            emit(Event(index, pc, instruction, values, result))
            return nxt

        return f

    def _make_traced_load(self, pc, instruction, emit):
        if not isinstance(instruction.dest, Reg):
            return None
        parts = self._address_parts(instruction.srcs[0], instruction.srcs[1])
        if parts is None:
            return None
        (b0, i0), (b1, i1) = parts
        cpu = self.cpu
        hierarchy = cpu.hierarchy
        l1 = hierarchy.l1

        def f(
            b0=b0, i0=i0, b1=b1, i1=i1, pc=pc, nxt=pc + 1,
            cells=self.cells, regs=self.registers, dest=instruction.dest.index,
            l1_sets=l1._sets, shift=l1._line_shift, nsets=l1.geometry.sets,
            l1_stats=l1.stats, service_miss=hierarchy._service_miss,
            loads_by_level=hierarchy.stats.loads_by_level, l1_level=Level.L1,
            l1_cost=self.load_costs[Level.L1], load_costs=self.load_costs,
            stats=self.stats, energy=self.energy, account=self.account,
            cpu=cpu, instruction=instruction, emit=emit,
            Event=InstructionEvent,
        ):
            address = b0[i0] + b1[i1]
            if isinstance(address, float):
                if not address.is_integer():
                    raise MachineFault(
                        f"non-integer effective address {address}", pc=pc
                    )
                address = int(address)
            try:
                value = cells[address]
            except KeyError:
                raise MemoryFault(
                    f"read of unmapped address {address:#x}"
                ) from None
            line = address >> shift
            cache_set = l1_sets[line % nsets]
            if line in cache_set:
                l1_stats.hits += 1
                cache_set.move_to_end(line)
                loads_by_level[l1_level] += 1
                level = l1_level
                energy_nj, time_ns = l1_cost
            else:
                l1_stats.misses += 1
                level = service_miss(address, False)
                loads_by_level[level] += 1
                energy_nj, time_ns = load_costs[level]
            energy[GROUP_LOAD] += energy_nj
            account._time_ns += time_ns
            stats.loads_performed += 1
            if dest:
                regs[dest] = value
            index = cpu._dynamic_index
            cpu._dynamic_index = index + 1
            emit(Event(index, pc, instruction, (), value, address, level))
            return nxt

        return f

    def _make_traced_store(self, pc, instruction, emit):
        value_box = _operand_box(self.registers, instruction.srcs[0])
        parts = self._address_parts(instruction.srcs[1], instruction.srcs[2])
        if value_box is None or parts is None:
            return None
        (b0, i0), (b1, i1) = parts
        bv, iv = value_box
        cpu = self.cpu
        memory = cpu.memory
        hierarchy = cpu.hierarchy
        l1 = hierarchy.l1
        read_only = memory.is_read_only if memory._read_only else None

        def f(
            bv=bv, iv=iv, b0=b0, i0=i0, b1=b1, i1=i1, pc=pc, nxt=pc + 1,
            cells=self.cells, read_only=read_only,
            l1_sets=l1._sets, shift=l1._line_shift, nsets=l1.geometry.sets,
            l1_stats=l1.stats, service_miss=hierarchy._service_miss,
            stores_by_level=hierarchy.stats.stores_by_level, l1_level=Level.L1,
            l1_cost=self.store_costs[Level.L1], store_costs=self.store_costs,
            stats=self.stats, energy=self.energy, account=self.account,
            cpu=cpu, instruction=instruction, emit=emit,
            Event=InstructionEvent,
        ):
            value = bv[iv]
            address = b0[i0] + b1[i1]
            if isinstance(address, float):
                if not address.is_integer():
                    raise MachineFault(
                        f"non-integer effective address {address}", pc=pc
                    )
                address = int(address)
            if read_only is not None and read_only(address):
                raise MemoryFault(f"write to read-only address {address:#x}")
            cells[address] = value
            line = address >> shift
            cache_set = l1_sets[line % nsets]
            if line in cache_set:
                l1_stats.hits += 1
                cache_set[line] = True
                cache_set.move_to_end(line)
                stores_by_level[l1_level] += 1
                level = l1_level
                energy_nj, time_ns = l1_cost
            else:
                l1_stats.misses += 1
                level = service_miss(address, True)
                stores_by_level[level] += 1
                energy_nj, time_ns = store_costs[level]
            energy[GROUP_STORE] += energy_nj
            account._time_ns += time_ns
            stats.stores_performed += 1
            index = cpu._dynamic_index
            cpu._dynamic_index = index + 1
            emit(Event(index, pc, instruction, (value,), None, address, level))
            return nxt

        return f

    def _make_traced_branch(self, pc, instruction, emit):
        condition = _BRANCH_CONDITIONS.get(instruction.opcode)
        if condition is None:
            return None
        boxes = self._boxes(instruction.srcs)
        if boxes is None or len(boxes) != 2:
            return None
        taken_pc = self._target_pc(instruction)
        if taken_pc is None:
            return None
        (b0, i0), (b1, i1) = boxes
        energy_nj, time_ns = self.compute_cost(Category.BRANCH)

        def f(
            condition=condition, b0=b0, i0=i0, b1=b1, i1=i1,
            energy=self.energy, account=self.account, cpu=self.cpu,
            stats=self.stats, energy_nj=energy_nj, time_ns=time_ns,
            taken_pc=taken_pc, nxt=pc + 1, pc=pc, instruction=instruction,
            emit=emit, Event=InstructionEvent,
        ):
            a = b0[i0]
            b = b1[i1]
            taken = condition(a, b)
            energy[GROUP_NONMEM] += energy_nj
            account._time_ns += time_ns
            index = cpu._dynamic_index
            cpu._dynamic_index = index + 1
            emit(Event(index, pc, instruction, (a, b), None, None, None, taken))
            if taken:
                stats.branches_taken += 1
                return taken_pc
            return nxt

        return f

    def _make_traced_jmp(self, pc, instruction, emit):
        target_pc = self._target_pc(instruction)
        if target_pc is None:
            return None
        energy_nj, time_ns = self.compute_cost(Category.JUMP)

        def f(
            energy=self.energy, account=self.account, cpu=self.cpu,
            energy_nj=energy_nj, time_ns=time_ns, target_pc=target_pc,
            pc=pc, instruction=instruction, emit=emit, Event=InstructionEvent,
        ):
            index = cpu._dynamic_index
            cpu._dynamic_index = index + 1
            emit(Event(index, pc, instruction))
            energy[GROUP_NONMEM] += energy_nj
            account._time_ns += time_ns
            return target_pc

        return f

    def _make_traced_jal(self, pc, instruction, emit):
        target_pc = self._target_pc(instruction)
        if target_pc is None or not isinstance(instruction.dest, Reg):
            return None
        energy_nj, time_ns = self.compute_cost(Category.JUMP)

        def f(
            regs=self.registers, dest=instruction.dest.index, return_pc=pc + 1,
            energy=self.energy, account=self.account, cpu=self.cpu,
            energy_nj=energy_nj, time_ns=time_ns, target_pc=target_pc,
            pc=pc, instruction=instruction, emit=emit, Event=InstructionEvent,
        ):
            if dest:
                regs[dest] = return_pc
            index = cpu._dynamic_index
            cpu._dynamic_index = index + 1
            emit(Event(index, pc, instruction, (), return_pc))
            energy[GROUP_NONMEM] += energy_nj
            account._time_ns += time_ns
            return target_pc

        return f

    def _make_traced_jr(self, pc, instruction, emit):
        box = _operand_box(self.registers, instruction.srcs[0])
        if box is None:
            return None
        b0, i0 = box
        energy_nj, time_ns = self.compute_cost(Category.JUMP)
        limit = len(self.program.instructions)

        def f(
            b0=b0, i0=i0, limit=limit, pc=pc, instruction=instruction,
            energy=self.energy, account=self.account, cpu=self.cpu,
            energy_nj=energy_nj, time_ns=time_ns, emit=emit,
            Event=InstructionEvent,
        ):
            target = b0[i0]
            if not isinstance(target, int) or not 0 <= target < limit:
                raise MachineFault(
                    f"jump-register {instruction} to invalid pc {target!r} "
                    f"(valid pcs are 0..{limit - 1})",
                    pc=pc,
                )
            index = cpu._dynamic_index
            cpu._dynamic_index = index + 1
            emit(Event(index, pc, instruction, (target,)))
            energy[GROUP_NONMEM] += energy_nj
            account._time_ns += time_ns
            return target

        return f

    def _make_traced_nop(self, pc, instruction, emit):
        energy_nj, time_ns = self.compute_cost(Category.NOP)

        def f(
            energy=self.energy, account=self.account, cpu=self.cpu,
            energy_nj=energy_nj, time_ns=time_ns, nxt=pc + 1, pc=pc,
            instruction=instruction, emit=emit, Event=InstructionEvent,
        ):
            index = cpu._dynamic_index
            cpu._dynamic_index = index + 1
            emit(Event(index, pc, instruction))
            energy[GROUP_NONMEM] += energy_nj
            account._time_ns += time_ns
            return nxt

        return f

    def _make_halt(self, pc, instruction):
        def f(cpu=self.cpu, pc=pc, instruction=instruction):
            cpu.pc = pc
            cpu._emit(instruction)
            cpu.halted = True
            return -1

        return f

    def _make_thunk(self, pc, instruction):
        """Classic-handler fallback: exact semantics at dispatch-table speed.

        Covers traced runs (identical event streams by construction),
        the amnesic control opcodes, slice-region pcs, and any statically
        odd instruction whose classic handler should fault at runtime.
        """
        handler = self.cpu._dispatch.get(instruction.opcode)
        if handler is None:
            def f(cpu=self.cpu, pc=pc, instruction=instruction):
                cpu.pc = pc
                raise MachineFault(
                    f"undecodable instruction {instruction}", pc=pc
                )

            return f

        def f(cpu=self.cpu, pc=pc, handler=handler, instruction=instruction):
            cpu.pc = pc
            handler(instruction)
            return cpu.pc

        return f

    def _make_off_end(self, pc):
        def f(pc=pc):
            raise MachineFault("pc ran off the end of the program", pc=pc)

        return f


class FastExecutionMixin:
    """Swap the classic per-instruction loop for the predecoded one.

    Mix in ahead of :class:`CPU` (or a subclass).  Timeline and profiler
    runs fall back to the classic loops — see the module docstring for
    the full backend contract.
    """

    def _decoded(self):
        cached = self.__dict__.get("_fast_decode")
        if cached is None:
            cached = self.__dict__["_fast_decode"] = _ProgramDecoder(self).decode()
        return cached

    def __getstate__(self):
        # The decode cache is per-pc closures over this instance's hot
        # state — unpicklable and meaningless in another process (the
        # parallel engine ships finished CPUs back to the parent).  Drop
        # it; _decoded() rebuilds on demand.
        state = self.__dict__.copy()
        state.pop("_fast_decode", None)
        return state

    def _run_loop(self) -> None:
        if self._timeline is not None:
            # Timelines capture mid-run state per retired instruction;
            # the classic loop keeps that observability exact.
            return super()._run_loop()
        fns, cats = self._decoded()
        counts = [0] * len(fns)
        max_instructions = self.max_instructions
        pc = self.pc
        try:
            if not self.halted:
                while True:
                    if self._dynamic_index >= max_instructions:
                        raise ExecutionLimitExceeded(
                            f"exceeded {max_instructions} dynamic instructions",
                            pc=pc,
                        )
                    counts[pc] += 1
                    pc = fns[pc]()
                    if pc < 0:
                        break
        finally:
            stats = self.stats
            by_category = stats.by_category
            flushed = 0
            for index, hits in enumerate(counts):
                if hits:
                    category = cats[index]
                    if category is not None:
                        by_category[category] += hits
                        flushed += hits
            stats.dynamic_instructions += flushed
            if pc >= 0:
                # Keep the architectural pc observable exactly as the
                # classic loop leaves it (fault pc, halt pc, budget pc).
                self.pc = pc
        self.finalize()


class FastCPU(FastExecutionMixin, CPU):
    """The fast backend for classic execution semantics."""
