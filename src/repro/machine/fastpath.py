"""The fast execution backend: predecoded closures over classic semantics.

:class:`FastExecutionMixin` replaces the classic fetch/decode/dispatch
loop of :class:`~repro.machine.cpu.CPU` with a *predecoded* program: one
closure per static instruction, specialized at decode time over

* the opcode's evaluator / branch condition (no per-dispatch dict walk),
* the operand kinds (register reads and immediates are resolved to
  direct indexed reads — no ``isinstance`` chains per dynamic
  instruction),
* the branch/jump target pcs (label lookups happen once per static
  instruction, not once per dynamic one),
* the energy/latency costs (plain ``float`` pairs instead of a
  :class:`~repro.energy.account.Cost` allocation per charge).

Each closure executes one instruction *bit-identically* to the classic
handler — same value semantics, same energy charges in the same order,
same cache/LRU state transitions, same fault types, messages, and
fault-time architectural state — and returns the next pc (or ``-1``
after ``HALT``).  Straight-line regions therefore run with no
per-instruction branch/halt checks: the hot loop is an array index, a
call, and a budget compare.

The semantics/timing/observability contract a backend must honour:

* **Semantics** live in :mod:`repro.isa.semantics` and
  :class:`~repro.machine.memory.Memory` — closures call the same
  evaluator lambdas and read/write the same cell dict.
* **Timing/energy** live in :class:`~repro.energy.account.EnergyAccount`
  and :class:`~repro.machine.hierarchy.MemoryHierarchy` — closures
  inline only the L1-hit fast path (the dominant case) and delegate
  every miss to :meth:`MemoryHierarchy._service_miss`, the exact code
  the classic walk runs, so hit/miss/eviction/write-back accounting
  cannot diverge.
* **Observability**: a run with a timeline attached falls back to the
  classic loop (timelines sample mid-run state at instruction
  granularity); a run under the hot-loop profiler uses the classic
  profiled loop (the profiler measures the classic dispatch path); a
  run with a tracer keeps the predecoded loop with *traced* closure
  variants that construct the same
  :class:`~repro.trace.events.InstructionEvent` the classic handler
  would emit — same index, pc, operand values, result, address, level,
  and branch outcome — so dependence/locality profiles built on the
  event stream are identical.  The tracer is bound at decode time
  (tracers are fixed at CPU construction), and opcodes without a traced
  template (the amnesic control opcodes) thunk through the classic
  handler, which emits via ``CPU._emit`` as before.

Instruction counting (``RunStats.dynamic_instructions`` /
``by_category``) is deferred to a per-pc hit-count array and flushed
when the loop exits (including on faults, preserving the classic
"count before execute" order); ``CPU._dynamic_index`` stays live
because budgets, timelines, and event indices read it mid-run.
"""

from __future__ import annotations

import os
from functools import lru_cache

from ..energy.account import (
    GROUP_AMNESIC,
    GROUP_HIST,
    GROUP_LOAD,
    GROUP_NONMEM,
    GROUP_STORE,
)
from ..errors import ExecutionLimitExceeded, MachineFault, MemoryFault
from ..isa.opcodes import _OPCODE_CATEGORY, Category, Opcode
from ..isa.operands import HistRef, Imm, Reg, SReg
from ..isa.semantics import _BRANCH_CONDITIONS, _EVALUATORS, wrap_int64
from ..trace.events import InstructionEvent
from .config import Level
from .cpu import CPU


def _operand_box(registers, operand):
    """Resolve an operand once: a (sequence, index) pair read per dispatch.

    Registers read ``cpu.registers[index]``; immediates read a one-slot
    constant tuple.  Both cost one indexed load, so every operand-kind
    combination collapses into a single closure template.  Returns None
    for operands that need the classic slow path (SReg/HistRef).
    """
    if isinstance(operand, Reg):
        # r0 is never written (write_register discards), so reading the
        # backing slot is equivalent to the classic hardwired zero.
        return registers, operand.index
    if isinstance(operand, Imm):
        return (operand.value,), 0
    return None


class _ProgramDecoder:
    """Builds the per-pc closure table for one CPU instance."""

    def __init__(self, cpu: CPU):
        self.cpu = cpu
        self.program = cpu.program
        self.registers = cpu.registers
        self.stats = cpu.stats
        self.account = cpu.account
        self.energy = cpu.account._energy_by_group
        self.cells = cpu.memory._cells
        model = cpu.model
        config = model.config
        self.load_costs = {}
        self.store_costs = {}
        for level in Level:
            self.load_costs[level] = (
                config.load_energy_nj(level),
                config.load_latency_ns(level),
            )
            params = config.params(level)
            # Mirrors MemoryHierarchy.store: replace the read at the
            # servicing level by a write there (same float operations,
            # same order, so charges stay bit-identical).
            store_energy = config.load_energy_nj(level)
            store_energy += params.write_energy_nj - params.read_energy_nj
            self.store_costs[level] = (store_energy, params.latency_ns)
        self._compute_costs = {}
        self.model = model

    def compute_cost(self, category):
        pair = self._compute_costs.get(category)
        if pair is None:
            cost = self.model.compute_cost(category)
            pair = self._compute_costs[category] = (cost.energy_nj, cost.time_ns)
        return pair

    # ------------------------------------------------------------------
    # Decode driver.
    # ------------------------------------------------------------------
    def decode(self):
        """Return ``(fns, cats)``: per-pc closures + per-pc categories.

        ``fns`` has one trailing sentinel entry (index ``len(program)``)
        raising the classic "ran off the end" fault, so the hot loop
        needs no bounds check; its category slot is ``None`` and its
        hit count is never flushed into RunStats — the classic loop
        faults on fetch *before* counting, and so do we.
        """
        cpu = self.cpu
        tracer = cpu.tracer
        fns = []
        cats = []
        for pc, instruction in enumerate(self.program.instructions):
            cats.append(_OPCODE_CATEGORY[instruction.opcode])
            fn = None
            if instruction.opcode is Opcode.HALT:
                fn = self._make_halt(pc, instruction)
            elif tracer is None:
                fn = self._make_specialized(pc, instruction)
            else:
                fn = self._make_traced(pc, instruction, tracer.on_instruction)
            if fn is None:
                fn = self._make_thunk(pc, instruction)
            fns.append(fn)
        fns.append(self._make_off_end(len(fns)))
        cats.append(None)
        return fns, cats

    def _make_specialized(self, pc, instruction):
        opcode = instruction.opcode
        category = _OPCODE_CATEGORY[opcode]
        if category.is_compute:
            return self._make_compute(pc, instruction)
        if opcode is Opcode.LD:
            return self._make_load(pc, instruction)
        if opcode is Opcode.ST:
            return self._make_store(pc, instruction)
        if category is Category.BRANCH:
            return self._make_branch(pc, instruction)
        if opcode is Opcode.JMP:
            return self._make_jmp(pc, instruction)
        if opcode is Opcode.JAL:
            return self._make_jal(pc, instruction)
        if opcode is Opcode.JR:
            return self._make_jr(pc, instruction)
        if opcode is Opcode.NOP:
            return self._make_nop(pc, instruction)
        if opcode is Opcode.REC:
            return self._make_rec(pc, instruction)
        return None

    def _make_traced(self, pc, instruction, emit):
        """Specialized closure that also emits the classic trace event.

        Each traced template performs the same specialized work as its
        untraced sibling and then constructs the exact
        :class:`InstructionEvent` the classic handler would pass to the
        tracer: operand values read once and reused, results/addresses/
        service levels captured mid-execution, the event index taken
        from the live ``_dynamic_index``.  Fault paths emit nothing,
        matching classic handlers (which fault before ``_emit``).
        """
        opcode = instruction.opcode
        category = _OPCODE_CATEGORY[opcode]
        if category.is_compute:
            return self._make_traced_compute(pc, instruction, emit)
        if opcode is Opcode.LD:
            return self._make_traced_load(pc, instruction, emit)
        if opcode is Opcode.ST:
            return self._make_traced_store(pc, instruction, emit)
        if category is Category.BRANCH:
            return self._make_traced_branch(pc, instruction, emit)
        if opcode is Opcode.JMP:
            return self._make_traced_jmp(pc, instruction, emit)
        if opcode is Opcode.JAL:
            return self._make_traced_jal(pc, instruction, emit)
        if opcode is Opcode.JR:
            return self._make_traced_jr(pc, instruction, emit)
        if opcode is Opcode.NOP:
            return self._make_traced_nop(pc, instruction, emit)
        # Amnesic control opcodes and odd instructions thunk: the
        # classic handler emits via CPU._emit.
        return None

    def _boxes(self, srcs):
        boxes = []
        for src in srcs:
            box = _operand_box(self.registers, src)
            if box is None:
                return None
            boxes.append(box)
        return boxes

    # ------------------------------------------------------------------
    # Closure templates.  Each mirrors the classic handler line by line:
    # same operation order, same fault points, same charges.
    # ------------------------------------------------------------------
    def _make_compute(self, pc, instruction):
        evaluator = _EVALUATORS.get(instruction.opcode)
        if evaluator is None or not isinstance(instruction.dest, Reg):
            return None
        boxes = self._boxes(instruction.srcs)
        if boxes is None:
            return None
        energy_nj, time_ns = self.compute_cost(instruction.category)
        regs = self.registers
        energy = self.energy
        account = self.account
        cpu = self.cpu
        dest = instruction.dest.index
        nxt = pc + 1

        if len(boxes) == 2:
            (b0, i0), (b1, i1) = boxes

            def f(
                evaluator=evaluator, b0=b0, i0=i0, b1=b1, i1=i1, regs=regs,
                dest=dest, energy=energy, account=account, cpu=cpu,
                energy_nj=energy_nj, time_ns=time_ns, nxt=nxt, pc=pc,
            ):
                try:
                    result = evaluator(b0[i0], b1[i1])
                except MachineFault as fault:
                    raise type(fault)(str(fault), pc=pc) from None
                if dest:
                    regs[dest] = result
                energy[GROUP_NONMEM] += energy_nj
                account._time_ns += time_ns
                cpu._dynamic_index += 1
                return nxt

            return f

        if len(boxes) == 1:
            ((b0, i0),) = boxes

            def f(
                evaluator=evaluator, b0=b0, i0=i0, regs=regs, dest=dest,
                energy=energy, account=account, cpu=cpu,
                energy_nj=energy_nj, time_ns=time_ns, nxt=nxt, pc=pc,
            ):
                try:
                    result = evaluator(b0[i0])
                except MachineFault as fault:
                    raise type(fault)(str(fault), pc=pc) from None
                if dest:
                    regs[dest] = result
                energy[GROUP_NONMEM] += energy_nj
                account._time_ns += time_ns
                cpu._dynamic_index += 1
                return nxt

            return f

        def f(
            evaluator=evaluator, boxes=tuple(boxes), regs=regs, dest=dest,
            energy=energy, account=account, cpu=cpu,
            energy_nj=energy_nj, time_ns=time_ns, nxt=nxt, pc=pc,
        ):
            try:
                result = evaluator(*[b[i] for b, i in boxes])
            except MachineFault as fault:
                raise type(fault)(str(fault), pc=pc) from None
            if dest:
                regs[dest] = result
            energy[GROUP_NONMEM] += energy_nj
            account._time_ns += time_ns
            cpu._dynamic_index += 1
            return nxt

        return f

    def _address_parts(self, base, offset):
        box0 = _operand_box(self.registers, base)
        box1 = _operand_box(self.registers, offset)
        if box0 is None or box1 is None:
            return None
        return box0, box1

    def _make_load(self, pc, instruction):
        if not isinstance(instruction.dest, Reg):
            return None
        parts = self._address_parts(instruction.srcs[0], instruction.srcs[1])
        if parts is None:
            return None
        (b0, i0), (b1, i1) = parts
        cpu = self.cpu
        hierarchy = cpu.hierarchy
        l1 = hierarchy.l1

        def f(
            b0=b0, i0=i0, b1=b1, i1=i1, pc=pc, nxt=pc + 1,
            cells=self.cells, regs=self.registers, dest=instruction.dest.index,
            l1_sets=l1._sets, shift=l1._line_shift, nsets=l1.geometry.sets,
            l1_stats=l1.stats, service_miss=hierarchy._service_miss,
            loads_by_level=hierarchy.stats.loads_by_level, l1_level=Level.L1,
            l1_cost=self.load_costs[Level.L1], load_costs=self.load_costs,
            stats=self.stats, energy=self.energy, account=self.account, cpu=cpu,
        ):
            address = b0[i0] + b1[i1]
            if isinstance(address, float):
                if not address.is_integer():
                    raise MachineFault(
                        f"non-integer effective address {address}", pc=pc
                    )
                address = int(address)
            try:
                value = cells[address]
            except KeyError:
                raise MemoryFault(
                    f"read of unmapped address {address:#x}"
                ) from None
            line = address >> shift
            cache_set = l1_sets[line % nsets]
            if line in cache_set:
                l1_stats.hits += 1
                cache_set.move_to_end(line)
                loads_by_level[l1_level] += 1
                energy_nj, time_ns = l1_cost
            else:
                l1_stats.misses += 1
                level = service_miss(address, False)
                loads_by_level[level] += 1
                energy_nj, time_ns = load_costs[level]
            energy[GROUP_LOAD] += energy_nj
            account._time_ns += time_ns
            stats.loads_performed += 1
            if dest:
                regs[dest] = value
            cpu._dynamic_index += 1
            return nxt

        return f

    def _make_store(self, pc, instruction):
        value_box = _operand_box(self.registers, instruction.srcs[0])
        parts = self._address_parts(instruction.srcs[1], instruction.srcs[2])
        if value_box is None or parts is None:
            return None
        (b0, i0), (b1, i1) = parts
        bv, iv = value_box
        cpu = self.cpu
        memory = cpu.memory
        hierarchy = cpu.hierarchy
        l1 = hierarchy.l1
        # With no read-only ranges configured the classic check can
        # never fire; drop it from the hot path entirely.
        read_only = memory.is_read_only if memory._read_only else None

        def f(
            bv=bv, iv=iv, b0=b0, i0=i0, b1=b1, i1=i1, pc=pc, nxt=pc + 1,
            cells=self.cells, read_only=read_only,
            l1_sets=l1._sets, shift=l1._line_shift, nsets=l1.geometry.sets,
            l1_stats=l1.stats, service_miss=hierarchy._service_miss,
            stores_by_level=hierarchy.stats.stores_by_level, l1_level=Level.L1,
            l1_cost=self.store_costs[Level.L1], store_costs=self.store_costs,
            stats=self.stats, energy=self.energy, account=self.account, cpu=cpu,
        ):
            value = bv[iv]
            address = b0[i0] + b1[i1]
            if isinstance(address, float):
                if not address.is_integer():
                    raise MachineFault(
                        f"non-integer effective address {address}", pc=pc
                    )
                address = int(address)
            if read_only is not None and read_only(address):
                raise MemoryFault(f"write to read-only address {address:#x}")
            cells[address] = value
            line = address >> shift
            cache_set = l1_sets[line % nsets]
            if line in cache_set:
                l1_stats.hits += 1
                cache_set[line] = True
                cache_set.move_to_end(line)
                stores_by_level[l1_level] += 1
                energy_nj, time_ns = l1_cost
            else:
                l1_stats.misses += 1
                level = service_miss(address, True)
                stores_by_level[level] += 1
                energy_nj, time_ns = store_costs[level]
            energy[GROUP_STORE] += energy_nj
            account._time_ns += time_ns
            stats.stores_performed += 1
            cpu._dynamic_index += 1
            return nxt

        return f

    def _make_branch(self, pc, instruction):
        condition = _BRANCH_CONDITIONS.get(instruction.opcode)
        if condition is None:
            return None
        boxes = self._boxes(instruction.srcs)
        if boxes is None or len(boxes) != 2:
            return None
        taken_pc = self._target_pc(instruction)
        if taken_pc is None:
            return None
        (b0, i0), (b1, i1) = boxes
        energy_nj, time_ns = self.compute_cost(Category.BRANCH)

        def f(
            condition=condition, b0=b0, i0=i0, b1=b1, i1=i1,
            energy=self.energy, account=self.account, cpu=self.cpu,
            stats=self.stats, energy_nj=energy_nj, time_ns=time_ns,
            taken_pc=taken_pc, nxt=pc + 1,
        ):
            taken = condition(b0[i0], b1[i1])
            energy[GROUP_NONMEM] += energy_nj
            account._time_ns += time_ns
            cpu._dynamic_index += 1
            if taken:
                stats.branches_taken += 1
                return taken_pc
            return nxt

        return f

    def _target_pc(self, instruction):
        """Resolve the static jump/branch target, or None for the slow path.

        An undefined label keeps the classic at-execution fault by
        leaving the pc thunked.
        """
        return self.program.labels.get(instruction.target)

    def _make_jmp(self, pc, instruction):
        target_pc = self._target_pc(instruction)
        if target_pc is None:
            return None
        energy_nj, time_ns = self.compute_cost(Category.JUMP)

        def f(
            energy=self.energy, account=self.account, cpu=self.cpu,
            energy_nj=energy_nj, time_ns=time_ns, target_pc=target_pc,
        ):
            cpu._dynamic_index += 1
            energy[GROUP_NONMEM] += energy_nj
            account._time_ns += time_ns
            return target_pc

        return f

    def _make_jal(self, pc, instruction):
        target_pc = self._target_pc(instruction)
        if target_pc is None or not isinstance(instruction.dest, Reg):
            return None
        energy_nj, time_ns = self.compute_cost(Category.JUMP)

        def f(
            regs=self.registers, dest=instruction.dest.index, return_pc=pc + 1,
            energy=self.energy, account=self.account, cpu=self.cpu,
            energy_nj=energy_nj, time_ns=time_ns, target_pc=target_pc,
        ):
            if dest:
                regs[dest] = return_pc
            cpu._dynamic_index += 1
            energy[GROUP_NONMEM] += energy_nj
            account._time_ns += time_ns
            return target_pc

        return f

    def _make_jr(self, pc, instruction):
        box = _operand_box(self.registers, instruction.srcs[0])
        if box is None:
            return None
        b0, i0 = box
        energy_nj, time_ns = self.compute_cost(Category.JUMP)
        limit = len(self.program.instructions)

        def f(
            b0=b0, i0=i0, limit=limit, pc=pc, instruction=instruction,
            energy=self.energy, account=self.account, cpu=self.cpu,
            energy_nj=energy_nj, time_ns=time_ns,
        ):
            target = b0[i0]
            if not isinstance(target, int) or not 0 <= target < limit:
                raise MachineFault(
                    f"jump-register {instruction} to invalid pc {target!r} "
                    f"(valid pcs are 0..{limit - 1})",
                    pc=pc,
                )
            cpu._dynamic_index += 1
            energy[GROUP_NONMEM] += energy_nj
            account._time_ns += time_ns
            return target

        return f

    def _make_nop(self, pc, instruction):
        energy_nj, time_ns = self.compute_cost(Category.NOP)

        def f(
            energy=self.energy, account=self.account, cpu=self.cpu,
            energy_nj=energy_nj, time_ns=time_ns, nxt=pc + 1,
        ):
            cpu._dynamic_index += 1
            energy[GROUP_NONMEM] += energy_nj
            account._time_ns += time_ns
            return nxt

        return f

    def _make_rec(self, pc, instruction):
        """REC fast path, available only on amnesic machines."""
        hist = getattr(self.cpu, "hist", None)
        if hist is None:
            return None
        boxes = self._boxes(instruction.srcs)
        if boxes is None:
            return None
        cost = self.model.rec_cost()

        def f(
            boxes=tuple(boxes), record=hist.record,
            slice_id=instruction.slice_id, leaf_id=instruction.leaf_id,
            stats=self.stats, energy=self.energy, account=self.account,
            cpu=self.cpu, energy_nj=cost.energy_nj, time_ns=cost.time_ns,
            nxt=pc + 1,
        ):
            values = tuple(b[i] for b, i in boxes)
            record(slice_id, leaf_id, values)
            stats.hist_writes += 1
            energy[GROUP_AMNESIC] += energy_nj
            account._time_ns += time_ns
            cpu._dynamic_index += 1
            return nxt

        return f

    # ------------------------------------------------------------------
    # Traced closure templates.  Same specialized work as above, plus
    # the classic handler's InstructionEvent, field for field.
    # ------------------------------------------------------------------
    def _make_traced_compute(self, pc, instruction, emit):
        evaluator = _EVALUATORS.get(instruction.opcode)
        if evaluator is None or not isinstance(instruction.dest, Reg):
            return None
        boxes = self._boxes(instruction.srcs)
        if boxes is None:
            return None
        energy_nj, time_ns = self.compute_cost(instruction.category)
        regs = self.registers
        dest = instruction.dest.index
        nxt = pc + 1

        if len(boxes) == 2:
            (b0, i0), (b1, i1) = boxes

            def f(
                evaluator=evaluator, b0=b0, i0=i0, b1=b1, i1=i1, regs=regs,
                dest=dest, energy=self.energy, account=self.account,
                cpu=self.cpu, energy_nj=energy_nj, time_ns=time_ns,
                nxt=nxt, pc=pc, instruction=instruction, emit=emit,
                Event=InstructionEvent,
            ):
                v0 = b0[i0]
                v1 = b1[i1]
                try:
                    result = evaluator(v0, v1)
                except MachineFault as fault:
                    raise type(fault)(str(fault), pc=pc) from None
                if dest:
                    regs[dest] = result
                energy[GROUP_NONMEM] += energy_nj
                account._time_ns += time_ns
                index = cpu._dynamic_index
                cpu._dynamic_index = index + 1
                emit(Event(index, pc, instruction, (v0, v1), result))
                return nxt

            return f

        def f(
            evaluator=evaluator, boxes=tuple(boxes), regs=regs, dest=dest,
            energy=self.energy, account=self.account, cpu=self.cpu,
            energy_nj=energy_nj, time_ns=time_ns, nxt=nxt, pc=pc,
            instruction=instruction, emit=emit, Event=InstructionEvent,
        ):
            values = tuple(b[i] for b, i in boxes)
            try:
                result = evaluator(*values)
            except MachineFault as fault:
                raise type(fault)(str(fault), pc=pc) from None
            if dest:
                regs[dest] = result
            energy[GROUP_NONMEM] += energy_nj
            account._time_ns += time_ns
            index = cpu._dynamic_index
            cpu._dynamic_index = index + 1
            emit(Event(index, pc, instruction, values, result))
            return nxt

        return f

    def _make_traced_load(self, pc, instruction, emit):
        if not isinstance(instruction.dest, Reg):
            return None
        parts = self._address_parts(instruction.srcs[0], instruction.srcs[1])
        if parts is None:
            return None
        (b0, i0), (b1, i1) = parts
        cpu = self.cpu
        hierarchy = cpu.hierarchy
        l1 = hierarchy.l1

        def f(
            b0=b0, i0=i0, b1=b1, i1=i1, pc=pc, nxt=pc + 1,
            cells=self.cells, regs=self.registers, dest=instruction.dest.index,
            l1_sets=l1._sets, shift=l1._line_shift, nsets=l1.geometry.sets,
            l1_stats=l1.stats, service_miss=hierarchy._service_miss,
            loads_by_level=hierarchy.stats.loads_by_level, l1_level=Level.L1,
            l1_cost=self.load_costs[Level.L1], load_costs=self.load_costs,
            stats=self.stats, energy=self.energy, account=self.account,
            cpu=cpu, instruction=instruction, emit=emit,
            Event=InstructionEvent,
        ):
            address = b0[i0] + b1[i1]
            if isinstance(address, float):
                if not address.is_integer():
                    raise MachineFault(
                        f"non-integer effective address {address}", pc=pc
                    )
                address = int(address)
            try:
                value = cells[address]
            except KeyError:
                raise MemoryFault(
                    f"read of unmapped address {address:#x}"
                ) from None
            line = address >> shift
            cache_set = l1_sets[line % nsets]
            if line in cache_set:
                l1_stats.hits += 1
                cache_set.move_to_end(line)
                loads_by_level[l1_level] += 1
                level = l1_level
                energy_nj, time_ns = l1_cost
            else:
                l1_stats.misses += 1
                level = service_miss(address, False)
                loads_by_level[level] += 1
                energy_nj, time_ns = load_costs[level]
            energy[GROUP_LOAD] += energy_nj
            account._time_ns += time_ns
            stats.loads_performed += 1
            if dest:
                regs[dest] = value
            index = cpu._dynamic_index
            cpu._dynamic_index = index + 1
            emit(Event(index, pc, instruction, (), value, address, level))
            return nxt

        return f

    def _make_traced_store(self, pc, instruction, emit):
        value_box = _operand_box(self.registers, instruction.srcs[0])
        parts = self._address_parts(instruction.srcs[1], instruction.srcs[2])
        if value_box is None or parts is None:
            return None
        (b0, i0), (b1, i1) = parts
        bv, iv = value_box
        cpu = self.cpu
        memory = cpu.memory
        hierarchy = cpu.hierarchy
        l1 = hierarchy.l1
        read_only = memory.is_read_only if memory._read_only else None

        def f(
            bv=bv, iv=iv, b0=b0, i0=i0, b1=b1, i1=i1, pc=pc, nxt=pc + 1,
            cells=self.cells, read_only=read_only,
            l1_sets=l1._sets, shift=l1._line_shift, nsets=l1.geometry.sets,
            l1_stats=l1.stats, service_miss=hierarchy._service_miss,
            stores_by_level=hierarchy.stats.stores_by_level, l1_level=Level.L1,
            l1_cost=self.store_costs[Level.L1], store_costs=self.store_costs,
            stats=self.stats, energy=self.energy, account=self.account,
            cpu=cpu, instruction=instruction, emit=emit,
            Event=InstructionEvent,
        ):
            value = bv[iv]
            address = b0[i0] + b1[i1]
            if isinstance(address, float):
                if not address.is_integer():
                    raise MachineFault(
                        f"non-integer effective address {address}", pc=pc
                    )
                address = int(address)
            if read_only is not None and read_only(address):
                raise MemoryFault(f"write to read-only address {address:#x}")
            cells[address] = value
            line = address >> shift
            cache_set = l1_sets[line % nsets]
            if line in cache_set:
                l1_stats.hits += 1
                cache_set[line] = True
                cache_set.move_to_end(line)
                stores_by_level[l1_level] += 1
                level = l1_level
                energy_nj, time_ns = l1_cost
            else:
                l1_stats.misses += 1
                level = service_miss(address, True)
                stores_by_level[level] += 1
                energy_nj, time_ns = store_costs[level]
            energy[GROUP_STORE] += energy_nj
            account._time_ns += time_ns
            stats.stores_performed += 1
            index = cpu._dynamic_index
            cpu._dynamic_index = index + 1
            emit(Event(index, pc, instruction, (value,), None, address, level))
            return nxt

        return f

    def _make_traced_branch(self, pc, instruction, emit):
        condition = _BRANCH_CONDITIONS.get(instruction.opcode)
        if condition is None:
            return None
        boxes = self._boxes(instruction.srcs)
        if boxes is None or len(boxes) != 2:
            return None
        taken_pc = self._target_pc(instruction)
        if taken_pc is None:
            return None
        (b0, i0), (b1, i1) = boxes
        energy_nj, time_ns = self.compute_cost(Category.BRANCH)

        def f(
            condition=condition, b0=b0, i0=i0, b1=b1, i1=i1,
            energy=self.energy, account=self.account, cpu=self.cpu,
            stats=self.stats, energy_nj=energy_nj, time_ns=time_ns,
            taken_pc=taken_pc, nxt=pc + 1, pc=pc, instruction=instruction,
            emit=emit, Event=InstructionEvent,
        ):
            a = b0[i0]
            b = b1[i1]
            taken = condition(a, b)
            energy[GROUP_NONMEM] += energy_nj
            account._time_ns += time_ns
            index = cpu._dynamic_index
            cpu._dynamic_index = index + 1
            emit(Event(index, pc, instruction, (a, b), None, None, None, taken))
            if taken:
                stats.branches_taken += 1
                return taken_pc
            return nxt

        return f

    def _make_traced_jmp(self, pc, instruction, emit):
        target_pc = self._target_pc(instruction)
        if target_pc is None:
            return None
        energy_nj, time_ns = self.compute_cost(Category.JUMP)

        def f(
            energy=self.energy, account=self.account, cpu=self.cpu,
            energy_nj=energy_nj, time_ns=time_ns, target_pc=target_pc,
            pc=pc, instruction=instruction, emit=emit, Event=InstructionEvent,
        ):
            index = cpu._dynamic_index
            cpu._dynamic_index = index + 1
            emit(Event(index, pc, instruction))
            energy[GROUP_NONMEM] += energy_nj
            account._time_ns += time_ns
            return target_pc

        return f

    def _make_traced_jal(self, pc, instruction, emit):
        target_pc = self._target_pc(instruction)
        if target_pc is None or not isinstance(instruction.dest, Reg):
            return None
        energy_nj, time_ns = self.compute_cost(Category.JUMP)

        def f(
            regs=self.registers, dest=instruction.dest.index, return_pc=pc + 1,
            energy=self.energy, account=self.account, cpu=self.cpu,
            energy_nj=energy_nj, time_ns=time_ns, target_pc=target_pc,
            pc=pc, instruction=instruction, emit=emit, Event=InstructionEvent,
        ):
            if dest:
                regs[dest] = return_pc
            index = cpu._dynamic_index
            cpu._dynamic_index = index + 1
            emit(Event(index, pc, instruction, (), return_pc))
            energy[GROUP_NONMEM] += energy_nj
            account._time_ns += time_ns
            return target_pc

        return f

    def _make_traced_jr(self, pc, instruction, emit):
        box = _operand_box(self.registers, instruction.srcs[0])
        if box is None:
            return None
        b0, i0 = box
        energy_nj, time_ns = self.compute_cost(Category.JUMP)
        limit = len(self.program.instructions)

        def f(
            b0=b0, i0=i0, limit=limit, pc=pc, instruction=instruction,
            energy=self.energy, account=self.account, cpu=self.cpu,
            energy_nj=energy_nj, time_ns=time_ns, emit=emit,
            Event=InstructionEvent,
        ):
            target = b0[i0]
            if not isinstance(target, int) or not 0 <= target < limit:
                raise MachineFault(
                    f"jump-register {instruction} to invalid pc {target!r} "
                    f"(valid pcs are 0..{limit - 1})",
                    pc=pc,
                )
            index = cpu._dynamic_index
            cpu._dynamic_index = index + 1
            emit(Event(index, pc, instruction, (target,)))
            energy[GROUP_NONMEM] += energy_nj
            account._time_ns += time_ns
            return target

        return f

    def _make_traced_nop(self, pc, instruction, emit):
        energy_nj, time_ns = self.compute_cost(Category.NOP)

        def f(
            energy=self.energy, account=self.account, cpu=self.cpu,
            energy_nj=energy_nj, time_ns=time_ns, nxt=pc + 1, pc=pc,
            instruction=instruction, emit=emit, Event=InstructionEvent,
        ):
            index = cpu._dynamic_index
            cpu._dynamic_index = index + 1
            emit(Event(index, pc, instruction))
            energy[GROUP_NONMEM] += energy_nj
            account._time_ns += time_ns
            return nxt

        return f

    def _make_halt(self, pc, instruction):
        def f(cpu=self.cpu, pc=pc, instruction=instruction):
            cpu.pc = pc
            cpu._emit(instruction)
            cpu.halted = True
            return -1

        return f

    def _make_thunk(self, pc, instruction):
        """Classic-handler fallback: exact semantics at dispatch-table speed.

        Covers traced runs (identical event streams by construction),
        the amnesic control opcodes, slice-region pcs, and any statically
        odd instruction whose classic handler should fault at runtime.
        """
        handler = self.cpu._dispatch.get(instruction.opcode)
        if handler is None:
            def f(cpu=self.cpu, pc=pc, instruction=instruction):
                cpu.pc = pc
                raise MachineFault(
                    f"undecodable instruction {instruction}", pc=pc
                )

            return f

        def f(cpu=self.cpu, pc=pc, handler=handler, instruction=instruction):
            cpu.pc = pc
            handler(instruction)
            return cpu.pc

        return f

    def _make_off_end(self, pc):
        def f(pc=pc):
            raise MachineFault("pc ran off the end of the program", pc=pc)

        return f


class FastExecutionMixin:
    """Swap the classic per-instruction loop for the predecoded one.

    Mix in ahead of :class:`CPU` (or a subclass).  Timeline and profiler
    runs fall back to the classic loops — see the module docstring for
    the full backend contract.
    """

    def _decoded(self):
        cached = self.__dict__.get("_fast_decode")
        if cached is None:
            cached = self.__dict__["_fast_decode"] = _ProgramDecoder(self).decode()
        return cached

    def __getstate__(self):
        # The decode cache is per-pc closures over this instance's hot
        # state — unpicklable and meaningless in another process (the
        # parallel engine ships finished CPUs back to the parent).  Drop
        # it; _decoded() rebuilds on demand.  Chained through super() so
        # cooperating bases (AmnesicCPU's slice-runner cache) get to
        # drop their own closures too.
        state = dict(super().__getstate__())
        state.pop("_fast_decode", None)
        return state

    def _run_loop(self) -> None:
        if self._timeline is not None:
            # Timelines capture mid-run state per retired instruction;
            # the classic loop keeps that observability exact.
            return super()._run_loop()
        fns, cats = self._decoded()
        counts = [0] * len(fns)
        max_instructions = self.max_instructions
        pc = self.pc
        try:
            if not self.halted:
                while True:
                    if self._dynamic_index >= max_instructions:
                        raise ExecutionLimitExceeded(
                            f"exceeded {max_instructions} dynamic instructions",
                            pc=pc,
                        )
                    counts[pc] += 1
                    pc = fns[pc]()
                    if pc < 0:
                        break
        finally:
            stats = self.stats
            by_category = stats.by_category
            flushed = 0
            for index, hits in enumerate(counts):
                if hits:
                    category = cats[index]
                    if category is not None:
                        by_category[category] += hits
                        flushed += hits
            stats.dynamic_instructions += flushed
            if pc >= 0:
                # Keep the architectural pc observable exactly as the
                # classic loop leaves it (fault pc, halt pc, budget pc).
                self.pc = pc
        self.finalize()


class FastCPU(FastExecutionMixin, CPU):
    """The fast backend for classic execution semantics."""


# ----------------------------------------------------------------------
# Region batching (the ``fast-batched`` backend).
#
# The per-pc loop above still pays one Python call per instruction.  The
# static region analyzer (``staticcheck/regions.py``) proves which runs
# of instructions have one entry, one exit, and no amnesic opcode; this
# layer fuses each such run of >= 2 instructions into ONE generated
# closure whose body is the per-pc closure bodies concatenated
# statement for statement — same evaluators, same charge order, same
# L1-hit inline path, same fault construction — so a region retires
# with a single dispatch.
#
# The hazards a fused region must keep byte-identical:
#
# * **Faults mid-region** — each element keeps its own try/fault shape;
#   on any exception the fused closure restores ``_dynamic_index`` to
#   the number of *completed* elements, counts the elements classic
#   would have counted (count-before-execute includes the faulting
#   one), records the faulting pc for the outer loop, and re-raises.
# * **Budget exhaustion mid-region** — the fused body runs only after a
#   hoisted ``index + length <= max_instructions`` check; otherwise the
#   region executes element by element through the original per-pc
#   closures with the classic per-instruction budget check (and the
#   classic "fault before counting the pending instruction" order).
# * **Traced/timeline/profiled runs** — fall back to the plain fast
#   loop (identical event streams) or the classic loops, exactly like
#   the unbatched fast backend.
# * **Mid-region entry** — a JR can land inside a region at runtime, so
#   every non-start pc keeps its per-pc closure; only the region start
#   dispatches the fused body.
#
# ``*.regions.json`` artifacts (the ``staticlint`` CI job uploads them)
# are an optional cross-check: point ``REPRO_REGION_ARTIFACTS`` at a
# directory and any artifact that disagrees with the freshly computed
# analysis aborts the decode instead of batching stale pcs.
# ----------------------------------------------------------------------

#: Directory of ``*.regions.json`` artifacts cross-checked at decode time.
ENV_REGION_ARTIFACTS = "REPRO_REGION_ARTIFACTS"


class _BatchTable:
    """One CPU's batched decode: closure table + deferred-count state.

    The count arrays live on the table (not the run loop) because the
    fused closures bind them at decode time; the flush zeroes them so a
    later ``run()`` starts clean.  ``fault_pc`` is how a fused region
    reports the faulting element's pc to the outer loop (whose local
    ``pc`` still holds the region start when the closure raises).
    """

    __slots__ = (
        "fns",
        "cats",
        "counts",
        "region_counts",
        "region_spans",
        "region_tail_cats",
        "fault_pc",
    )

    def __init__(self, fns, cats):
        self.fns = fns
        self.cats = cats
        self.counts = [0] * len(fns)
        self.region_counts = []
        self.region_spans = []
        self.region_tail_cats = []
        self.fault_pc = -1


def _run_region_guarded(cpu, body, start, counts, table, flush):
    """Element-by-element region execution near the budget ceiling.

    Mirrors the classic loop for elements 1..L-1: budget check *before*
    counting the pending instruction, count before execute (element 0
    was already counted and budget-checked by the outer loop).  Counting
    is deferred through *flush* — the same overridable partial flush the
    fused fault path uses — so a broken flush implementation diverges on
    budget faults too, not only on fused memory faults.  A budget trip
    at offset ``k`` therefore flushes offsets 1..k-1 (the pending
    element is never counted); an execution fault at offset ``k``
    flushes 1..k (count-before-execute includes the faulting element).
    """
    max_instructions = cpu.max_instructions
    pc = start
    for offset, fn in enumerate(body):
        if offset and cpu._dynamic_index >= max_instructions:
            flush(counts, start, offset - 1)
            table.fault_pc = pc
            raise ExecutionLimitExceeded(
                f"exceeded {max_instructions} dynamic instructions",
                pc=pc,
            )
        try:
            fn()
        except BaseException:
            flush(counts, start, offset)
            table.fault_pc = pc
            raise
        pc += 1
    flush(counts, start, len(body) - 1)
    return pc


def _operand_expr(src, key, params):
    """The generated-source expression reading one operand, or None.

    Register reads inline as ``_r[index]`` (evaluated at execution
    time, in element order, exactly like the per-pc closures); integer
    immediates inline as literals; any other immediate binds a default
    parameter.  SReg/HistRef operands return None — the region is not
    fused.
    """
    if isinstance(src, Reg):
        return f"_r[{src.index}]"
    if isinstance(src, Imm):
        value = src.value
        if type(value) is int:
            return repr(value)
        params[key] = value
        return key
    return None


#: Signed 64-bit bounds, inlined as literals in generated fast paths.
_I64_MAX = (1 << 63) - 1
_I64_MIN = -(1 << 63)

#: Binary int ops where ``wrap(a OP b) == wrap(wrap(a) OP wrap(b))`` for
#: *all* Python ints: ``+ - *`` distribute over mod 2**64, and the
#: bitwise ops (and ``<<``, whose result bits 0..63 depend only on the
#: operands' bits 0..63) act bitwise on two's complement.  The fast path
#: therefore only needs operands to *be* ints, plus one range check on
#: the result.
_MOD_COMPAT_INT_OPS = {
    Opcode.ADD: "{0} + {1}",
    Opcode.SUB: "{0} - {1}",
    Opcode.MUL: "{0} * {1}",
    Opcode.AND: "{0} & {1}",
    Opcode.OR: "{0} | {1}",
    Opcode.XOR: "{0} ^ {1}",
    Opcode.SHL: "{0} << ({1} & 63)",
}

#: Value-dependent int ops: exact only when both operands are already
#: in signed-64 range, so the fast path range-checks the operands and
#: never needs to wrap the result.  The min/max conditionals mirror
#: CPython's ``min``/``max`` tie-breaking (first argument wins).
_RANGED_INT_OPS = {
    Opcode.SHR: "{0} >> ({1} & 63)",
    Opcode.SLT: "1 if {0} < {1} else 0",
    Opcode.SLE: "1 if {0} <= {1} else 0",
    Opcode.MIN: "{1} if {1} < {0} else {0}",
    Opcode.MAX: "{1} if {1} > {0} else {0}",
}

#: Binary float ops, exact when both operands are already floats.
_FLOAT_BIN_OPS = {
    Opcode.FADD: "{0} + {1}",
    Opcode.FSUB: "{0} - {1}",
    Opcode.FMUL: "{0} * {1}",
}

#: Compute opcodes whose evaluator can raise a MachineFault; only these
#: need the pc-tagging try/except around the evaluator call.  (Regions
#: containing them are *faulting* and never fused, but the generator
#: stays honest about it.)
_FAULTABLE_COMPUTE = {Opcode.DIV, Opcode.REM, Opcode.FDIV, Opcode.FSQRT}


def _compute_fast_path(opcode, srcs, exprs, lines):
    """Emit the inline fast path for one compute element, if one exists.

    Returns the guard condition string (empty when the fast path is
    unconditional), or None when the opcode has no inline form and the
    element must always go through its evaluator.  The inline forms are
    bit-exact per the tables above; anything the guard cannot vouch for
    at runtime falls through to the evaluator slow path.
    """
    kinds = []
    for src in srcs:
        if isinstance(src, Reg):
            kinds.append("reg")
        elif type(src.value) is int:
            kinds.append("int")
        else:
            kinds.append(type(src.value).__name__)

    if opcode in (Opcode.MOV, Opcode.LI):
        lines.append(f"_x = {exprs[0]}")
        return ""
    if opcode is Opcode.SEQ:
        lines.append(f"_x = 1 if {exprs[0]} == {exprs[1]} else 0")
        return ""
    if opcode is Opcode.SNE:
        lines.append(f"_x = 1 if {exprs[0]} != {exprs[1]} else 0")
        return ""

    if opcode in _MOD_COMPAT_INT_OPS or opcode in _RANGED_INT_OPS:
        guards = []
        operands = []
        for n, (kind, expr, src) in enumerate(zip(kinds, exprs, srcs)):
            if kind == "reg":
                name = f"_y{n}"
                lines.append(f"{name} = {expr}")
                guards.append(f"type({name}) is int")
                operands.append(name)
            elif kind == "int":
                if opcode in _RANGED_INT_OPS and not (
                    _I64_MIN <= src.value <= _I64_MAX
                ):
                    return None
                operands.append(expr)
            else:
                return None
        if opcode in _RANGED_INT_OPS:
            guards.extend(
                f"{_I64_MIN} <= {name} <= {_I64_MAX}"
                for name, kind in zip(operands, kinds)
                if kind == "reg"
            )
            template = _RANGED_INT_OPS[opcode]
        else:
            template = _MOD_COMPAT_INT_OPS[opcode]
        condition = " and ".join(guards)
        indent = "    " if condition else ""
        if condition:
            lines.append(f"if {condition}:")
        lines.append(f"{indent}_x = {template.format(*operands)}")
        if opcode in _MOD_COMPAT_INT_OPS:
            lines.append(
                f"{indent}if _x > {_I64_MAX} or _x < {_I64_MIN}:"
            )
            lines.append(f"{indent}    _x = _wi(_x)")
        return condition

    if opcode in _FLOAT_BIN_OPS:
        guards = []
        operands = []
        for n, (kind, expr) in enumerate(zip(kinds, exprs)):
            if kind == "reg":
                name = f"_y{n}"
                lines.append(f"{name} = {expr}")
                guards.append(f"type({name}) is float")
                operands.append(name)
            elif kind == "float":
                operands.append(expr)
            else:
                return None
        condition = " and ".join(guards)
        indent = "    " if condition else ""
        if condition:
            lines.append(f"if {condition}:")
        lines.append(
            f"{indent}_x = {_FLOAT_BIN_OPS[opcode].format(*operands)}"
        )
        return condition

    return None


def _gen_compute(decoder, pc, instruction, j, params, lines, used):
    evaluator = _EVALUATORS.get(instruction.opcode)
    if evaluator is None or not isinstance(instruction.dest, Reg):
        return False
    exprs = []
    for n, src in enumerate(instruction.srcs):
        expr = _operand_expr(src, f"_k{j}_{n}", params)
        if expr is None:
            return False
        exprs.append(expr)
    energy_nj, time_ns = decoder.compute_cost(instruction.category)
    params[f"_e{j}"] = energy_nj
    params[f"_t{j}"] = time_ns
    used.add("_gn")
    opcode = instruction.opcode
    fast = _compute_fast_path(opcode, instruction.srcs, exprs, lines)
    if fast != "":
        # Guarded fast path (or none at all): the evaluator backs up
        # every case the inline form cannot vouch for.
        params[f"_ev{j}"] = evaluator
        used.add("_wi")
        call = f"_x = _ev{j}({', '.join(exprs)})"
        prefix = "else:" if fast else None
        if opcode in _FAULTABLE_COMPUTE:
            body = [
                "try:",
                f"    {call}",
                "except _MF as _f:",
                f"    raise type(_f)(str(_f), pc={pc}) from None",
            ]
        else:
            body = [call]
        if prefix:
            lines.append(prefix)
            lines.extend("    " + line for line in body)
        else:
            lines.extend(body)
    elif opcode in _MOD_COMPAT_INT_OPS:
        used.add("_wi")
    if instruction.dest.index:
        lines.append(f"_r[{instruction.dest.index}] = _x")
    lines.append(f"_gn += _e{j}")
    lines.append(f"_tt += _t{j}")
    return True


def _gen_address(pc, a0, a1, lines):
    lines.append(f"_a = {a0} + {a1}")
    lines.append("if isinstance(_a, float):")
    lines.append("    if not _a.is_integer():")
    lines.append(
        "        raise _MF(f'non-integer effective address {_a}', "
        f"pc={pc})"
    )
    lines.append("    _a = int(_a)")


def _gen_load(pc, instruction, j, params, lines, used):
    if not isinstance(instruction.dest, Reg):
        return False
    a0 = _operand_expr(instruction.srcs[0], f"_k{j}_0", params)
    a1 = _operand_expr(instruction.srcs[1], f"_k{j}_1", params)
    if a0 is None or a1 is None:
        return False
    used.update(("_gl", "_h1", "_ldn"))
    lines.append(f"_n = {j}")
    _gen_address(pc, a0, a1, lines)
    lines.append("try:")
    lines.append("    _x = _cells[_a]")
    lines.append("except KeyError:")
    lines.append(
        "    raise _MemF(f'read of unmapped address {_a:#x}') from None"
    )
    lines.append("_ln = _a >> _shift")
    lines.append("_cs = _l1sets[_ln % _nsets]")
    lines.append("if _ln in _cs:")
    lines.append("    _h1 += 1")
    lines.append("    _cs.move_to_end(_ln)")
    lines.append("    _lb1 += 1")
    lines.append("    _gl += _l1le")
    lines.append("    _tt += _l1lt")
    lines.append("else:")
    lines.append("    _m1 += 1")
    lines.append("    _lv = _smiss(_a, False)")
    lines.append("    _lbl[_lv] += 1")
    lines.append("    _e, _t = _ldc[_lv]")
    lines.append("    _gl += _e")
    lines.append("    _tt += _t")
    lines.append("_ldn += 1")
    if instruction.dest.index:
        lines.append(f"_r[{instruction.dest.index}] = _x")
    return True


def _gen_store(pc, instruction, j, params, lines, used, read_only):
    value = _operand_expr(instruction.srcs[0], f"_k{j}_v", params)
    a0 = _operand_expr(instruction.srcs[1], f"_k{j}_0", params)
    a1 = _operand_expr(instruction.srcs[2], f"_k{j}_1", params)
    if value is None or a0 is None or a1 is None:
        return False
    used.update(("_gs", "_h1", "_stn"))
    lines.append(f"_n = {j}")
    lines.append(f"_x = {value}")
    _gen_address(pc, a0, a1, lines)
    if read_only is not None:
        # Same constant-folding as the per-pc closure: with no
        # read-only ranges configured the check can never fire.
        lines.append("if _ro(_a):")
        lines.append(
            "    raise _MemF(f'write to read-only address {_a:#x}')"
        )
    lines.append("_cells[_a] = _x")
    lines.append("_ln = _a >> _shift")
    lines.append("_cs = _l1sets[_ln % _nsets]")
    lines.append("if _ln in _cs:")
    lines.append("    _h1 += 1")
    lines.append("    _cs[_ln] = True")
    lines.append("    _cs.move_to_end(_ln)")
    lines.append("    _sb1 += 1")
    lines.append("    _gs += _l1se")
    lines.append("    _tt += _l1st")
    lines.append("else:")
    lines.append("    _m1 += 1")
    lines.append("    _lv = _smiss(_a, True)")
    lines.append("    _sbl[_lv] += 1")
    lines.append("    _e, _t = _stc[_lv]")
    lines.append("    _gs += _e")
    lines.append("    _tt += _t")
    lines.append("_stn += 1")
    return True


def _gen_nop(decoder, j, params, lines, used):
    energy_nj, time_ns = decoder.compute_cost(Category.NOP)
    params[f"_e{j}"] = energy_nj
    params[f"_t{j}"] = time_ns
    used.add("_gn")
    lines.append(f"_gn += _e{j}")
    lines.append(f"_tt += _t{j}")
    return True


def _fuse_region(decoder, region, rid, body_fns, table, flush):
    """Generate the single-dispatch closure for one batchable region.

    Returns None when any element cannot be generated (odd operands,
    missing evaluator) — the region then simply stays per-pc.
    """
    cpu = decoder.cpu
    program = decoder.program
    start, end = region.start, region.end
    length = end - start
    memory = cpu.memory
    read_only = memory.is_read_only if memory._read_only else None

    params = {}
    lines = []
    used = set()
    for j, pc in enumerate(range(start, end)):
        instruction = program.instructions[pc]
        opcode = instruction.opcode
        category = _OPCODE_CATEGORY[opcode]
        if category.is_compute:
            ok = _gen_compute(decoder, pc, instruction, j, params, lines, used)
        elif opcode is Opcode.LD:
            ok = _gen_load(pc, instruction, j, params, lines, used)
        elif opcode is Opcode.ST:
            ok = _gen_store(pc, instruction, j, params, lines, used, read_only)
        elif opcode is Opcode.NOP:
            ok = _gen_nop(decoder, j, params, lines, used)
        else:
            ok = False
        if not ok:
            return None

    body = tuple(body_fns[start:end])

    def guard(cpu=cpu, body=body, start=start, counts=table.counts,
              table=table, flush=flush):
        return _run_region_guarded(cpu, body, start, counts, table, flush)

    hierarchy = cpu.hierarchy
    l1 = hierarchy.l1
    params.update(
        _cpu=cpu,
        _r=decoder.registers,
        _eg=decoder.energy,
        _ac=decoder.account,
        _st=decoder.stats,
        _cells=decoder.cells,
        _counts=table.counts,
        _rc=table.region_counts,
        _tbl=table,
        _flush=flush,
        _guard=guard,
        _MF=MachineFault,
        _MemF=MemoryFault,
        _GN=GROUP_NONMEM,
        _GL=GROUP_LOAD,
        _GS=GROUP_STORE,
        _L1=Level.L1,
        _l1sets=l1._sets,
        _shift=l1._line_shift,
        _nsets=l1.geometry.sets,
        _l1h=l1.stats,
        _smiss=hierarchy._service_miss,
        _lbl=hierarchy.stats.loads_by_level,
        _sbl=hierarchy.stats.stores_by_level,
        _ldc=decoder.load_costs,
        _stc=decoder.store_costs,
    )
    if "_wi" in used:
        params["_wi"] = wrap_int64
    if "_ldn" in used:
        params["_l1le"], params["_l1lt"] = decoder.load_costs[Level.L1]
    if "_stn" in used:
        params["_l1se"], params["_l1st"] = decoder.store_costs[Level.L1]
    if read_only is not None:
        params["_ro"] = read_only

    # Accumulators live in locals for the fused body and are written
    # back on every exit — success *and* fault.  This is bit-identical
    # to charging element by element: the float additions happen in the
    # same order on the same running values (``_service_miss`` never
    # touches the energy groups or the time account), and a faulting
    # element raises before any of its charge lines run.
    prologue = ["_tt = _ac._time_ns"]
    writeback = ["_ac._time_ns = _tt"]
    for flag, init, back in (
        ("_gn", ["_gn = _eg[_GN]"], ["_eg[_GN] = _gn"]),
        ("_gl", ["_gl = _eg[_GL]"], ["_eg[_GL] = _gl"]),
        ("_gs", ["_gs = _eg[_GS]"], ["_eg[_GS] = _gs"]),
        ("_h1", ["_h1 = 0", "_m1 = 0"],
         ["_l1h.hits += _h1", "_l1h.misses += _m1"]),
        ("_ldn", ["_lb1 = 0", "_ldn = 0"],
         ["_lbl[_L1] += _lb1", "_st.loads_performed += _ldn"]),
        ("_stn", ["_sb1 = 0", "_stn = 0"],
         ["_sbl[_L1] += _sb1", "_st.stores_performed += _stn"]),
    ):
        if flag in used:
            prologue.extend(init)
            writeback.extend(back)

    names = sorted(params)
    signature = ", ".join(f"{name}={name}" for name in names)
    indent = " " * 8
    body_src = "\n".join(indent + line for line in lines)
    prologue_src = "\n".join("    " + line for line in prologue)
    success_wb = "\n".join("    " + line for line in writeback)
    fault_wb = "\n".join(indent + line for line in writeback)
    source = (
        f"def _region({signature}):\n"
        f"    _i0 = _cpu._dynamic_index\n"
        f"    if _i0 + {length} > _cpu.max_instructions:\n"
        f"        return _guard()\n"
        f"    _n = 0\n"
        f"{prologue_src}\n"
        f"    try:\n"
        f"{body_src}\n"
        f"    except BaseException:\n"
        f"{fault_wb}\n"
        f"        _cpu._dynamic_index = _i0 + _n\n"
        f"        _tbl.fault_pc = {start} + _n\n"
        f"        _flush(_counts, {start}, _n)\n"
        f"        raise\n"
        f"{success_wb}\n"
        f"    _cpu._dynamic_index = _i0 + {length}\n"
        f"    _rc[{rid}] += 1\n"
        f"    return {end}\n"
    )
    namespace = dict(params)
    code = _compiled_region(source, f"<region {program.name}:{start}-{end}>")
    exec(code, namespace)
    return namespace["_region"]


@lru_cache(maxsize=2048)
def _compiled_region(source, filename):
    """Compile one fused-region source, cached across CPUs.

    The generated source embeds only pcs, opcodes, and operand indices;
    every run-dependent value (registers, accounts, costs, evaluators)
    binds through default parameters at ``exec`` time.  The harness
    builds a fresh CPU per policy run over the same program, so the
    ``compile`` — which dominates the batched decode — is shared.
    """
    return compile(source, filename, "exec")


def _cross_check_artifact(program, report):
    """Hold a committed region artifact against the fresh analysis."""
    directory = os.environ.get(ENV_REGION_ARTIFACTS)
    if not directory:
        return
    from ..staticcheck.regions import (
        RegionArtifactMismatch,
        load_region_artifact,
    )

    safe_name = program.name.replace("/", "_").replace("+", "_")
    path = os.path.join(directory, f"{safe_name}.regions.json")
    if not os.path.exists(path):
        return
    artifact = load_region_artifact(path)
    problems = report.mismatches(artifact)
    if problems:
        raise RegionArtifactMismatch(
            f"region artifact {path} disagrees with the fresh analysis "
            f"of {program.name!r}: " + "; ".join(problems)
        )


class BatchedExecutionMixin(FastExecutionMixin):
    """The fast loop with statically-proven regions fused per dispatch.

    Mix in ahead of :class:`CPU` (or a subclass).  Consumes
    :class:`~repro.staticcheck.regions.RegionReport` at predecode time
    (imported lazily — the staticcheck package sits above the machine
    layer); pure and memory regions fuse, faulting and in-slice regions
    stay per-pc, traced/timeline/profiled runs fall back exactly like
    the plain fast backend.
    """

    def _decoded_batched(self):
        cached = self.__dict__.get("_batch_decode")
        if cached is None:
            cached = self.__dict__["_batch_decode"] = self._decode_batched()
        return cached

    def _decode_batched(self):
        from ..staticcheck.regions import KIND_FAULTING, RegionReport

        decoder = _ProgramDecoder(self)
        fns, cats = decoder.decode()
        body_fns = list(fns)  # originals, for mid-region entry + guard
        report = RegionReport.from_program(self.program)
        _cross_check_artifact(self.program, report)
        table = _BatchTable(fns, cats)
        flush = self._region_partial_flush
        for region in report.batchable:
            if region.in_slice or region.kind == KIND_FAULTING:
                continue
            rid = len(table.region_spans)
            fused = _fuse_region(decoder, region, rid, body_fns, table, flush)
            if fused is None:
                continue
            table.region_spans.append((region.start, region.end))
            table.region_tail_cats.append(
                _tail_categories(self.program, region)
            )
            table.region_counts.append(0)
            fns[region.start] = fused
        return table

    @staticmethod
    def _region_partial_flush(counts, start, completed):
        """Count a fused region's interior elements after a fault.

        Classic counts before executing, so the faulting element (index
        ``completed``) is counted too; element 0 was already counted by
        the outer loop.
        """
        for offset in range(1, completed + 1):
            counts[start + offset] += 1

    def __getstate__(self):
        state = super().__getstate__()
        state.pop("_batch_decode", None)
        return state

    def _build_slice_runner(self, slice_id):
        """Fuse slice traversals the way main-code regions fuse.

        Only reached through :meth:`AmnesicCPU._traverse_slice` (so only
        on the amnesic variant, and never on traced runs).  Slices the
        fuser cannot express fall back to the closure interpreter.
        """
        fused = _fuse_slice(self, slice_id)
        if fused is not None:
            return fused
        return super()._build_slice_runner(slice_id)

    def _run_loop(self) -> None:
        if self._timeline is not None or self.tracer is not None:
            # Timelines sample mid-run state per instruction (classic
            # loop); tracers need per-instruction events (plain fast
            # loop with traced closures).  Both preclude fusing.
            return super()._run_loop()
        table = self._decoded_batched()
        fns = table.fns
        counts = table.counts
        max_instructions = self.max_instructions
        pc = self.pc
        try:
            if not self.halted:
                while True:
                    if self._dynamic_index >= max_instructions:
                        raise ExecutionLimitExceeded(
                            f"exceeded {max_instructions} "
                            f"dynamic instructions",
                            pc=pc,
                        )
                    counts[pc] += 1
                    pc = fns[pc]()
                    if pc < 0:
                        break
        finally:
            self._flush_batched(table, pc)
        self.finalize()

    def _flush_batched(self, table, pc) -> None:
        stats = self.stats
        by_category = stats.by_category
        counts = table.counts
        cats = table.cats
        visits = list(counts)
        flushed = 0
        for index, hits in enumerate(counts):
            if hits:
                category = cats[index]
                if category is not None:
                    by_category[category] += hits
                    flushed += hits
                counts[index] = 0
        region_counts = table.region_counts
        for rid, hits in enumerate(region_counts):
            if hits:
                start, end = table.region_spans[rid]
                for category, per_pass in table.region_tail_cats[rid]:
                    by_category[category] += per_pass * hits
                flushed += (end - start - 1) * hits
                for interior in range(start + 1, end):
                    visits[interior] += hits
                region_counts[rid] = 0
        stats.dynamic_instructions += flushed
        # Per-pc dynamic visit counts of the last run (region counts
        # expanded), for the batching property tests.
        self._batch_visit_counts = visits[: len(visits) - 1]
        if pc >= 0:
            # A fused region that faulted left the outer pc at the
            # region start; the closure recorded the faulting element.
            self.pc = table.fault_pc if table.fault_pc >= 0 else pc
        table.fault_pc = -1


def _tail_categories(program, region):
    """Aggregated categories of a region's elements 1..L-1.

    Integer count increments commute, so the deferred flush can expand
    one region hit into per-category totals without replaying order.
    """
    tally = {}
    for pc in range(region.start + 1, region.end):
        category = _OPCODE_CATEGORY[program.instructions[pc].opcode]
        tally[category] = tally.get(category, 0) + 1
    return tuple(tally.items())


#: Stand-in operand handed to :func:`_compute_fast_path` for slice
#: operands whose value only exists at traversal time (SFile, Hist,
#: architectural registers): classified like a register read, so the
#: inline form guards on the runtime type.
_RUNTIME_OPERAND = Reg(1)


def _fuse_slice(cpu, slice_id):
    """Compile one slice into a single fused traversal function.

    Slices are straight-line regions by construction (formation never
    admits control flow), so the batched backend applies its region
    fusing to recomputation as well: one generated function per slice
    replays exactly what the closure interpreter in
    :meth:`repro.core.amnesic_cpu.AmnesicCPU._build_slice_runner` does —
    the same structure calls in the same order (IBuff fetches, Renamer
    reads/writes, Hist reads with their charges), the same inline
    semantics with evaluator fallback as the fused main regions, and
    accumulator-hoisted stats/charges written back both on success and
    on a mid-slice fault (``_done`` tracks the faulting element, and
    counts follow the interpreter's count-before-execute rule).
    Returns ``None`` for slices the generator cannot express; the
    caller falls back to the closure interpreter, which faults at the
    identical element.
    """
    program = cpu.program
    region = program.slices[slice_id]
    start, end = region.start, region.end
    length = end - 1 - start
    model = cpu.model
    offload = cpu.concurrent_offload
    account = cpu.account

    params = {
        "_cpu": cpu,
        "_st": cpu.stats,
        "_bc": cpu.stats.by_category,
        "_rn": cpu.renamer,
        "_rd": cpu.renamer.read,
        "_wr": cpu.renamer.write,
        "_ib": cpu.ibuff.fetch,
        "_hr": cpu.hist.read,
        "_reg": cpu.registers,
        "_eg": account._energy_by_group,
        "_ac": account,
        "_GH": GROUP_HIST,
        "_GN": GROUP_NONMEM,
        "_GA": GROUP_AMNESIC,
        "_wi": wrap_int64,
    }
    hist_cost = model.hist_read_cost()
    params["_he"] = hist_cost.energy_nj
    params["_ht"] = hist_cost.time_ns

    lines = []
    tally = {}
    prefixes = [()]
    for j, pc in enumerate(range(start, end - 1)):
        instruction = program.instruction_at(pc)
        evaluator = _EVALUATORS.get(instruction.opcode)
        if evaluator is None or not isinstance(instruction.dest, SReg):
            return None
        lines.append(f"_done = {j}")
        lines.append(f"_ib({pc})")
        exprs = []
        proxies = []
        for n, src in enumerate(instruction.srcs):
            name = f"_a{j}_{n}"
            if isinstance(src, SReg):
                params[f"_s{j}_{n}"] = src
                lines.append(f"{name} = _rd(_s{j}_{n})")
            elif isinstance(src, HistRef):
                lines.append(
                    f"{name} = _hr({slice_id}, {src.leaf_id}, {src.slot})"
                )
                lines.append("_gh += _he")
                if not offload:
                    lines.append("_tt += _ht")
                lines.append("_hn += 1")
            elif isinstance(src, Reg):
                if src.index == 0:
                    exprs.append("0")
                    proxies.append(Imm(0))
                    continue
                lines.append(f"{name} = _reg[{src.index}]")
            elif isinstance(src, Imm):
                params[f"_c{j}_{n}"] = src.value
                exprs.append(f"_c{j}_{n}")
                proxies.append(src)
                continue
            else:
                return None
            exprs.append(name)
            proxies.append(_RUNTIME_OPERAND)
        fast = _compute_fast_path(instruction.opcode, proxies, exprs, lines)
        if fast != "":
            # Slice evaluator faults propagate untagged, exactly like
            # the interpreter's plain ``evaluate`` call.
            params[f"_ev{j}"] = evaluator
            call = f"_x = _ev{j}({', '.join(exprs)})"
            if fast:
                lines.append("else:")
                lines.append("    " + call)
            else:
                lines.append(call)
        params[f"_d{j}"] = instruction.dest
        lines.append(f"_wr(_d{j}, _x)")
        cost = model.slice_instruction_cost(instruction.category)
        params[f"_e{j}"] = cost.energy_nj
        params[f"_t{j}"] = cost.time_ns
        lines.append(f"_gn += _e{j}")
        if not offload:
            lines.append(f"_tt += _t{j}")
        category = instruction.category
        tally[category] = tally.get(category, 0) + 1
        prefixes.append(tuple(tally.items()))

    rtn = program.instruction_at(end - 1)
    if rtn.opcode is not Opcode.RTN:
        return None
    rtn_cost = model.rtn_cost()
    params["_rtn_d"] = rtn.dest
    params["_re"] = rtn_cost.energy_nj
    params["_rt"] = rtn_cost.time_ns
    params["_pref"] = tuple(prefixes)
    totals = dict(tally)
    totals[rtn.category] = totals.get(rtn.category, 0) + 1
    success_counts = []
    for i, (category, count) in enumerate(
        sorted(totals.items(), key=lambda item: item[0].name)
    ):
        params[f"_cat{i}"] = category
        success_counts.append(f"_bc[_cat{i}] += {count}")

    success = [
        f"_st.dynamic_instructions += {length + 1}",
        f"_st.slice_instructions_executed += {length}",
        "_st.hist_reads += _hn",
        *success_counts,
        "_ga += _re",
        *([] if offload else ["_tt += _rt"]),
        "_eg[_GH] = _gh",
        "_eg[_GN] = _gn",
        "_eg[_GA] = _ga",
        "_ac._time_ns = _tt",
        f"_cpu._dynamic_index += {length + 1}",
        "return _res",
    ]
    fault = [
        # Count-before-execute: the faulting element (index ``_done``)
        # was counted by the interpreter before its operands resolved,
        # so the prefix includes it — except past the last element,
        # where only the RTN's Renamer read can fault (it is counted
        # *after* the read succeeds).
        "_k = _done + 1",
        f"if _k > {length}:",
        f"    _k = {length}",
        "_st.dynamic_instructions += _k",
        "_st.slice_instructions_executed += _k",
        "_st.hist_reads += _hn",
        "for _cat, _n in _pref[_k]:",
        "    _bc[_cat] += _n",
        "_eg[_GH] = _gh",
        "_eg[_GN] = _gn",
        "_eg[_GA] = _ga",
        "_ac._time_ns = _tt",
        "_cpu._dynamic_index += _done",
        "raise",
    ]

    names = sorted(params)
    signature = ", ".join(f"{name}={name}" for name in names)
    indent = " " * 8
    body_src = "\n".join(indent + line for line in lines)
    success_src = "\n".join(indent + line for line in success)
    fault_src = "\n".join(indent + line for line in fault)
    source = (
        f"def _slice({signature}):\n"
        f"    _cpu.recompute = True\n"
        f"    _rn.begin_slice()\n"
        f"    _tt = _ac._time_ns\n"
        f"    _gh = _eg[_GH]\n"
        f"    _gn = _eg[_GN]\n"
        f"    _ga = _eg[_GA]\n"
        f"    _hn = 0\n"
        f"    _done = 0\n"
        f"    try:\n"
        f"{body_src}\n"
        f"        _done = {length}\n"
        f"        _res = _rd(_rtn_d)\n"
        f"{success_src}\n"
        f"    except BaseException:\n"
        f"{fault_src}\n"
        f"    finally:\n"
        f"        _rn.end_slice()\n"
        f"        _cpu.recompute = False\n"
    )
    namespace = dict(params)
    code = _compiled_region(source, f"<slice {program.name}:{slice_id}>")
    exec(code, namespace)
    return namespace["_slice"]


class BatchedFastCPU(BatchedExecutionMixin, CPU):
    """The region-batched fast backend for classic execution semantics."""
