"""Word-addressed functional memory with read-only protection.

The functional value store is deliberately separate from the cache
hierarchy (``repro.machine.cache``): caches track *where* data would be
serviced from (tags, LRU, dirtiness) for energy/timing purposes, while
:class:`Memory` always holds the authoritative values.  This is the
standard functional/timing split of trace-driven simulators and lets the
amnesic machine verify recomputed values against ground truth.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple, Union

from ..errors import MemoryFault
from ..isa.program import DataSegment

Number = Union[int, float]


class Memory:
    """The authoritative word-addressed value store of a machine."""

    def __init__(self, data: DataSegment | None = None):
        self._cells: Dict[int, Number] = {}
        self._read_only: Tuple[Tuple[int, int], ...] = ()
        if data is not None:
            self._cells.update(data.cells)
            self._read_only = tuple(data.read_only)

    # ------------------------------------------------------------------
    # Access.
    # ------------------------------------------------------------------
    def read(self, address: int) -> Number:
        """Read the word at *address*; unmapped addresses fault.

        Faulting (rather than returning zero) catches kernel bugs where a
        load computes a stray address — important because the amnesic
        compiler trusts the profile of every load it swaps.
        """
        try:
            return self._cells[address]
        except KeyError:
            raise MemoryFault(f"read of unmapped address {address:#x}") from None

    def write(self, address: int, value: Number) -> None:
        """Write the word at *address*; read-only ranges fault."""
        if self.is_read_only(address):
            raise MemoryFault(f"write to read-only address {address:#x}")
        self._cells[address] = value

    def is_mapped(self, address: int) -> bool:
        """True if *address* holds a value."""
        return address in self._cells

    def is_read_only(self, address: int) -> bool:
        """True if *address* lies in a read-only (program input) range."""
        return any(lo <= address < hi for lo, hi in self._read_only)

    # ------------------------------------------------------------------
    # Inspection helpers (tests, analysis).
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[int, Number]:
        """A copy of all mapped cells."""
        return dict(self._cells)

    def read_block(self, base: int, count: int) -> list:
        """Read *count* consecutive words starting at *base*."""
        return [self.read(base + i) for i in range(count)]

    def addresses(self) -> Iterable[int]:
        """All mapped addresses."""
        return self._cells.keys()

    def __len__(self) -> int:
        return len(self._cells)
