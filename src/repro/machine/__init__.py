"""Machine simulator substrate: memory, caches, hierarchy, classic CPU."""

from .cache import Cache, CacheStats, EvictedLine
from .config import (
    LEVELS,
    CacheGeometry,
    Level,
    LevelParams,
    MachineConfig,
    default_config,
    paper_geometry,
)
from .cpu import DEFAULT_MAX_INSTRUCTIONS, CPU
from .fastpath import (
    BatchedExecutionMixin,
    BatchedFastCPU,
    FastCPU,
    FastExecutionMixin,
)
from .hierarchy import Access, HierarchyStats, MemoryHierarchy
from .memory import Memory
from .stats import RunStats

__all__ = [
    "Access",
    "BatchedExecutionMixin",
    "BatchedFastCPU",
    "CPU",
    "Cache",
    "CacheGeometry",
    "CacheStats",
    "DEFAULT_MAX_INSTRUCTIONS",
    "EvictedLine",
    "FastCPU",
    "FastExecutionMixin",
    "HierarchyStats",
    "LEVELS",
    "Level",
    "LevelParams",
    "MachineConfig",
    "Memory",
    "MemoryHierarchy",
    "RunStats",
    "default_config",
    "paper_geometry",
]
