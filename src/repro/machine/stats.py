"""Dynamic execution statistics gathered by the CPU interpreters.

:class:`RunStats` counts dynamic instructions by category, tracks the
fate of every load (serviced level, or swapped for recomputation), and
feeds the paper's Table 4 (instruction mix) and Table 5 (memory access
profile of swapped loads) analyses.
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from typing import Dict

from ..isa.opcodes import Category
from .config import Level


@dataclasses.dataclass
class RunStats:
    """Counters for one program execution."""

    dynamic_instructions: int = 0
    by_category: Counter = dataclasses.field(default_factory=Counter)
    loads_performed: int = 0
    stores_performed: int = 0
    branches_taken: int = 0

    # Amnesic-only counters (stay zero under classic execution).
    rcmp_encountered: int = 0
    recomputations_fired: int = 0
    recomputations_skipped: int = 0
    recomputation_fallbacks: int = 0  # Hist overflow / missing checkpoint
    recomputation_aborts: int = 0  # faults during slice traversal (deferred)
    slice_instructions_executed: int = 0
    hist_reads: int = 0
    hist_writes: int = 0
    #: Residence level of v (under classic servicing) for every load that
    #: was actually swapped for recomputation - the paper's Table 5 rows.
    swapped_load_levels: Counter = dataclasses.field(default_factory=Counter)

    def count_instruction(self, category: Category) -> None:
        """Record one dynamic instruction of *category*."""
        self.dynamic_instructions += 1
        self.by_category[category] += 1

    def count_swapped_load(self, residence: Level) -> None:
        """Record a load swapped for recomputation and where v resided."""
        self.recomputations_fired += 1
        self.swapped_load_levels[residence] += 1

    # ------------------------------------------------------------------
    # Derived views.
    # ------------------------------------------------------------------
    @property
    def load_count(self) -> int:
        """Dynamic loads actually performed (swapped loads excluded)."""
        return self.loads_performed

    @property
    def compute_count(self) -> int:
        """Dynamic Non-mem (compute) instructions."""
        return sum(
            count for category, count in self.by_category.items() if category.is_compute
        )

    def swapped_load_profile(self) -> Dict[Level, float]:
        """Fraction of swapped loads that resided at each level (Table 5)."""
        total = sum(self.swapped_load_levels.values())
        if not total:
            return {level: 0.0 for level in Level}
        return {
            level: self.swapped_load_levels.get(level, 0) / total for level in Level
        }

    def merge(self, other: "RunStats") -> None:
        """Accumulate *other* into this stats object (multi-run sweeps).

        Driven by :func:`dataclasses.fields` so a newly added counter is
        merged automatically instead of being silently dropped; a field
        of an unmergeable type fails loudly here (and in the test suite)
        rather than corrupting sweep totals.
        """
        for field in dataclasses.fields(self):
            mine = getattr(self, field.name)
            theirs = getattr(other, field.name)
            if isinstance(mine, Counter):
                mine.update(theirs)
            elif isinstance(mine, int):
                setattr(self, field.name, mine + theirs)
            else:
                raise TypeError(
                    f"RunStats.merge does not know how to combine field "
                    f"{field.name!r} of type {type(mine).__name__}"
                )

    def publish(self, registry, **labels) -> None:
        """Register every counter with a telemetry metrics registry.

        Scalar fields become ``runstats.<field>`` counters; the
        :class:`~collections.Counter` fields fan out into one labeled
        series per key (instruction category / residence level).  The
        extra *labels* (e.g. ``run="amnesic"``) separate classic,
        profiling, and amnesic executions in the registry.
        """
        for field in dataclasses.fields(self):
            value = getattr(self, field.name)
            if isinstance(value, Counter):
                for key, count in value.items():
                    bucket = getattr(key, "value", key)
                    registry.counter(
                        f"runstats.{field.name}", bucket=str(bucket), **labels
                    ).inc(count)
            else:
                registry.counter(f"runstats.{field.name}", **labels).inc(value)
