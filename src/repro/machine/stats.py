"""Dynamic execution statistics gathered by the CPU interpreters.

:class:`RunStats` counts dynamic instructions by category, tracks the
fate of every load (serviced level, or swapped for recomputation), and
feeds the paper's Table 4 (instruction mix) and Table 5 (memory access
profile of swapped loads) analyses.
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from typing import Dict

from ..isa.opcodes import Category
from .config import Level


@dataclasses.dataclass
class RunStats:
    """Counters for one program execution."""

    dynamic_instructions: int = 0
    by_category: Counter = dataclasses.field(default_factory=Counter)
    loads_performed: int = 0
    stores_performed: int = 0
    branches_taken: int = 0

    # Amnesic-only counters (stay zero under classic execution).
    rcmp_encountered: int = 0
    recomputations_fired: int = 0
    recomputations_skipped: int = 0
    recomputation_fallbacks: int = 0  # Hist overflow / missing checkpoint
    recomputation_aborts: int = 0  # faults during slice traversal (deferred)
    slice_instructions_executed: int = 0
    hist_reads: int = 0
    hist_writes: int = 0
    #: Residence level of v (under classic servicing) for every load that
    #: was actually swapped for recomputation - the paper's Table 5 rows.
    swapped_load_levels: Counter = dataclasses.field(default_factory=Counter)

    def count_instruction(self, category: Category) -> None:
        """Record one dynamic instruction of *category*."""
        self.dynamic_instructions += 1
        self.by_category[category] += 1

    def count_swapped_load(self, residence: Level) -> None:
        """Record a load swapped for recomputation and where v resided."""
        self.recomputations_fired += 1
        self.swapped_load_levels[residence] += 1

    # ------------------------------------------------------------------
    # Derived views.
    # ------------------------------------------------------------------
    @property
    def load_count(self) -> int:
        """Dynamic loads actually performed (swapped loads excluded)."""
        return self.loads_performed

    @property
    def compute_count(self) -> int:
        """Dynamic Non-mem (compute) instructions."""
        return sum(
            count for category, count in self.by_category.items() if category.is_compute
        )

    def swapped_load_profile(self) -> Dict[Level, float]:
        """Fraction of swapped loads that resided at each level (Table 5)."""
        total = sum(self.swapped_load_levels.values())
        if not total:
            return {level: 0.0 for level in Level}
        return {
            level: self.swapped_load_levels.get(level, 0) / total for level in Level
        }

    def merge(self, other: "RunStats") -> None:
        """Accumulate *other* into this stats object (multi-run sweeps)."""
        self.dynamic_instructions += other.dynamic_instructions
        self.by_category.update(other.by_category)
        self.loads_performed += other.loads_performed
        self.stores_performed += other.stores_performed
        self.branches_taken += other.branches_taken
        self.rcmp_encountered += other.rcmp_encountered
        self.recomputations_fired += other.recomputations_fired
        self.recomputations_skipped += other.recomputations_skipped
        self.recomputation_fallbacks += other.recomputation_fallbacks
        self.recomputation_aborts += other.recomputation_aborts
        self.slice_instructions_executed += other.slice_instructions_executed
        self.hist_reads += other.hist_reads
        self.hist_writes += other.hist_writes
        self.swapped_load_levels.update(other.swapped_load_levels)
