"""Energy-per-instruction (EPI) tables by instruction category.

The paper derives recomputation cost as "[instruction count per category]
x [EPI per category]" (section 3.1.1), with EPI estimates measured on a
Xeon Phi [Shao & Brooks, ISLPED'13] and fine-tuned with McPAT.  Those raw
measurements are not redistributable, so this module ships a calibrated
table whose *mean* non-memory EPI equals the paper's published value of
0.45 nJ — the only number the paper exposes (it anchors the default
compute/communication ratio ``R_default = 0.45/52.14`` of section 5.5).
The per-category spread follows the usual ordering (div >> fma > mul >
add > move) so slice costs still differentiate by instruction mix.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, Mapping

from ..isa.opcodes import Category

#: The paper's mean energy of one non-memory instruction, in nanojoules.
MEAN_NONMEM_EPI_NJ = 0.45

#: Default per-category EPI (nJ).  The weighted spread straddles the
#: 0.45 nJ mean; ``EPITable.default()`` asserts the calibration.
_DEFAULT_EPI: Dict[Category, float] = {
    Category.INT_ALU: 0.30,
    Category.INT_MUL: 0.55,
    Category.INT_DIV: 1.60,
    Category.FP_ALU: 0.45,
    Category.FP_MUL: 0.60,
    Category.FP_DIV: 2.00,
    Category.FP_FMA: 0.75,
    Category.MOVE: 0.20,
    Category.BRANCH: 0.30,
    Category.JUMP: 0.25,
    Category.NOP: 0.10,
    Category.HALT: 0.0,
}

#: Execution latency in core cycles per category.  Simple ALU, moves and
#: control resolve in one cycle; multiplies are pipelined enough to look
#: single-cycle at this abstraction; divides and square roots are the
#: classic long-latency outliers.
LATENCY_CYCLES: Dict[Category, int] = {
    Category.INT_ALU: 1,
    Category.INT_MUL: 1,
    Category.INT_DIV: 8,
    Category.FP_ALU: 1,
    Category.FP_MUL: 1,
    Category.FP_DIV: 12,
    Category.FP_FMA: 1,
    Category.MOVE: 1,
    Category.BRANCH: 1,
    Category.JUMP: 1,
    Category.NOP: 1,
    Category.HALT: 1,
}

#: Categories included in the "Non-mem" mean (value-producing compute).
_NONMEM_CATEGORIES = tuple(c for c in Category if c.is_compute)

#: Typical dynamic instruction mix of the compute categories, used to
#: weight the mean when no workload-specific mix is supplied.  ALU and
#: data movement dominate real programs; divides are rare.  With the
#: default EPI values this mix averages to ~0.45 nJ, the paper's
#: published mean non-memory EPI.
TYPICAL_COMPUTE_MIX = {
    Category.INT_ALU: 0.38,
    Category.MOVE: 0.16,
    Category.FP_ALU: 0.14,
    Category.FP_MUL: 0.12,
    Category.INT_MUL: 0.10,
    Category.FP_FMA: 0.06,
    Category.INT_DIV: 0.02,
    Category.FP_DIV: 0.02,
}


@dataclasses.dataclass(frozen=True)
class EPITable:
    """Immutable category -> EPI(nJ) mapping with calibration helpers."""

    values: Mapping[Category, float]

    @classmethod
    def default(cls) -> "EPITable":
        """The calibrated default table (mean non-mem EPI = 0.45 nJ)."""
        return cls(dict(_DEFAULT_EPI))

    def epi(self, category: Category) -> float:
        """EPI of *category* in nanojoules."""
        try:
            return self.values[category]
        except KeyError:
            raise KeyError(
                f"category {category} has no EPI (memory instructions are "
                f"priced by the hierarchy, amnesic ones by the model)"
            ) from None

    def mean_nonmem(self, weights: Mapping[Category, float] | None = None) -> float:
        """Mix-weighted mean EPI over the compute categories.

        With *weights* (e.g. a measured dynamic instruction mix) the mean
        is weighted accordingly; the default weighting is
        :data:`TYPICAL_COMPUTE_MIX`, calibrated so the default table
        averages to the paper's 0.45 nJ.
        """
        categories: Iterable[Category] = _NONMEM_CATEGORIES
        if not weights:
            weights = TYPICAL_COMPUTE_MIX
        total = sum(weights.get(c, 0.0) for c in categories)
        if total <= 0:
            values = [self.values[c] for c in categories]
            return sum(values) / len(values)
        return (
            sum(self.values[c] * weights.get(c, 0.0) for c in categories) / total
        )

    def scaled_nonmem(self, factor: float) -> "EPITable":
        """A new table with every compute-category EPI multiplied by *factor*.

        This is the knob behind the paper's break-even analysis (Table 6):
        scaling R = EPI_nonmem / EPI_load by scaling the numerator.
        """
        if factor < 0:
            raise ValueError("EPI scale factor must be non-negative")
        scaled = {
            category: (value * factor if category.is_compute else value)
            for category, value in self.values.items()
        }
        return EPITable(scaled)

    def with_override(self, category: Category, epi_nj: float) -> "EPITable":
        """A new table with one category's EPI replaced."""
        updated = dict(self.values)
        updated[category] = epi_nj
        return EPITable(updated)
