"""Energy and timing models: EPI tables, accounting, technology data."""

from .account import (
    ALL_GROUPS,
    GROUP_AMNESIC,
    GROUP_HIST,
    GROUP_LOAD,
    GROUP_NONMEM,
    GROUP_STORE,
    GROUP_WRITEBACK,
    ZERO_COST,
    Cost,
    EnergyAccount,
)
from .epi import MEAN_NONMEM_EPI_NJ, EPITable
from .model import IBUFF_ACCESS_NJ, SFILE_ACCESS_NJ, EnergyModel
from .tech import (
    TABLE1_NODES,
    TechnologyNode,
    communication_to_computation_trend,
    paper_energy_model,
    r_default,
)

__all__ = [
    "ALL_GROUPS",
    "GROUP_AMNESIC",
    "GROUP_HIST",
    "GROUP_LOAD",
    "GROUP_NONMEM",
    "GROUP_STORE",
    "GROUP_WRITEBACK",
    "IBUFF_ACCESS_NJ",
    "MEAN_NONMEM_EPI_NJ",
    "SFILE_ACCESS_NJ",
    "TABLE1_NODES",
    "ZERO_COST",
    "Cost",
    "EPITable",
    "EnergyAccount",
    "EnergyModel",
    "TechnologyNode",
    "communication_to_computation_trend",
    "paper_energy_model",
    "r_default",
]
