"""The machine energy/timing model tying EPI tables to the hierarchy.

:class:`EnergyModel` prices every event the simulator produces:

* compute instructions — category EPI + one core cycle;
* loads/stores — the hierarchy's per-level access energy and round-trip
  latency (paper Table 3);
* the amnesic extensions, following the paper's section 4 modelling:
  "we model RCMP's overhead after a conditional branch; REC's, after a
  store to L1-D; RTN's, after a jump", Hist after L1-D, SFile after the
  physical register file, IBuff after L1-I.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json

from ..isa.opcodes import Category
from ..machine.config import Level, MachineConfig
from ..machine.hierarchy import Access
from .account import Cost
from .epi import LATENCY_CYCLES, EPITable

#: Energy of one SFile (physical-register-file-class) access in nJ.  Two
#: orders of magnitude below L1-D, consistent with register file vs SRAM
#: macro energy at 22nm; folded into slice-instruction cost.
SFILE_ACCESS_NJ = 0.01

#: Energy of one IBuff access, modelled after L1-I (paper section 4).
IBUFF_ACCESS_NJ = 0.88


@dataclasses.dataclass(frozen=True)
class EnergyModel:
    """Prices simulator events in (nJ, ns)."""

    epi: EPITable
    config: MachineConfig

    # ------------------------------------------------------------------
    # Identity.
    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """Stable content hash of everything that prices an event.

        Two models built independently from the same EPI values and
        machine configuration share a fingerprint, so result caches can
        key runs by model *value* instead of object identity — the
        property the persistent result cache and the parallel engine's
        work units rely on (workers unpickle their own model copy).
        """
        payload = {
            "epi": {
                category.name: value
                for category, value in sorted(
                    self.epi.values.items(), key=lambda item: item[0].name
                )
            },
            "l1_geometry": dataclasses.astuple(self.config.l1_geometry),
            "l2_geometry": dataclasses.astuple(self.config.l2_geometry),
            "l1_params": dataclasses.astuple(self.config.l1_params),
            "l2_params": dataclasses.astuple(self.config.l2_params),
            "mem_params": dataclasses.astuple(self.config.mem_params),
            "frequency_ghz": self.config.frequency_ghz,
            "sfile_access_nj": SFILE_ACCESS_NJ,
            "ibuff_access_nj": IBUFF_ACCESS_NJ,
        }
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    # ------------------------------------------------------------------
    # Classic events.
    # ------------------------------------------------------------------
    def _memo(self, key, build) -> Cost:
        """Per-instance memo for the fixed-price events.

        Every input is frozen, so each (category, event) prices
        identically for the model's lifetime; the hot interpreter loops
        (one ``compute_cost`` per retired instruction, one
        ``slice_instruction_cost`` per recomputed one) then skip the
        dict lookups and ``Cost`` construction.  ``Cost`` is frozen
        too, so sharing one instance across call sites is safe.
        """
        cache = self.__dict__.get("_cost_memo")
        if cache is None:
            cache = {}
            object.__setattr__(self, "_cost_memo", cache)
        cost = cache.get(key)
        if cost is None:
            cost = cache[key] = build()
        return cost

    def compute_cost(self, category: Category) -> Cost:
        """Cost of one non-memory instruction: EPI + its cycle count.

        Most categories take one core cycle; divides and square roots
        take their classic multi-cycle latencies (see
        :data:`repro.energy.epi.LATENCY_CYCLES`).
        """
        return self._memo(
            category,
            lambda: Cost(
                self.epi.epi(category),
                LATENCY_CYCLES.get(category, 1) * self.config.cycle_ns,
            ),
        )

    def access_cost(self, access: Access) -> Cost:
        """Cost of a performed load/store as priced by the hierarchy."""
        return Cost(access.energy_nj, access.latency_ns)

    def load_cost_at(self, level: Level) -> Cost:
        """Cost of a load serviced at *level* (estimation, oracles)."""
        return Cost(
            self.config.load_energy_nj(level), self.config.load_latency_ns(level)
        )

    # ------------------------------------------------------------------
    # Amnesic events (paper section 4 modelling choices).
    # ------------------------------------------------------------------
    def rcmp_cost(self) -> Cost:
        """RCMP overhead, modelled after a conditional branch."""
        return self._memo(
            "rcmp",
            lambda: Cost(self.epi.epi(Category.BRANCH), self.config.cycle_ns),
        )

    def rec_cost(self) -> Cost:
        """REC overhead, modelled after a store to L1-D."""
        return self._memo(
            "rec",
            lambda: Cost(
                self.config.l1_params.write_energy_nj,
                self.config.l1_params.latency_ns,
            ),
        )

    def rtn_cost(self) -> Cost:
        """RTN overhead, modelled after a jump."""
        return self._memo(
            "rtn",
            lambda: Cost(self.epi.epi(Category.JUMP), self.config.cycle_ns),
        )

    def hist_read_cost(self) -> Cost:
        """One Hist read, conservatively modelled after L1-D."""
        return self._memo(
            "hist_read",
            lambda: Cost(
                self.config.l1_params.read_energy_nj,
                self.config.l1_params.latency_ns,
            ),
        )

    def slice_instruction_cost(self, category: Category) -> Cost:
        """Cost of one recomputing instruction.

        Latency per recomputing instruction "remains very similar to its
        classic counterpart" (paper section 3.5): category EPI + cycle,
        plus the SFile traffic of its operands.
        """
        def build():
            base = self.compute_cost(category)
            return Cost(base.energy_nj + SFILE_ACCESS_NJ, base.time_ns)

        return self._memo(("slice", category), build)

    # ------------------------------------------------------------------
    # Estimation helpers for the compiler's probabilistic model.
    # ------------------------------------------------------------------
    def estimated_slice_cost(self, category_counts) -> Cost:
        """E_rc of a slice from its instruction mix (paper section 3.1.1)."""
        total = Cost(0.0, 0.0)
        for category, count in category_counts.items():
            total = total + self.slice_instruction_cost(category).scaled(count)
        return total

    def probabilistic_load_cost(self, level_probabilities) -> Cost:
        """E_ld as sum over levels of Pr(level) x per-level cost."""
        energy = 0.0
        time = 0.0
        for level, probability in level_probabilities.items():
            energy += probability * self.config.load_energy_nj(level)
            time += probability * self.config.load_latency_ns(level)
        return Cost(energy, time)
