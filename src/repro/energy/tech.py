"""Technology-node data and named machine setups.

Reproduces the paper's Table 1 (communication vs computation energy
across technology nodes, adapted from Keckler et al. [18]) and binds the
Table 3 simulated architecture to the default EPI table.
"""

from __future__ import annotations

import dataclasses
from typing import List

from ..machine.config import MachineConfig, default_config, paper_geometry
from .epi import EPITable
from .model import EnergyModel


@dataclasses.dataclass(frozen=True)
class TechnologyNode:
    """One row of paper Table 1.

    ``sram_load_over_fma`` is the energy of a 64-bit on-chip SRAM load
    normalised to a 64-bit double-precision FMA at this node — the
    paper's headline motivation metric.
    """

    name: str
    feature_nm: int
    variant: str  # "HP" (high performance) or "LP" (low power)
    operating_voltage_v: float
    sram_load_over_fma: float
    offchip_load_over_fma: float

    @property
    def label(self) -> str:
        return f"{self.feature_nm}nm {self.variant}"


#: Paper Table 1, plus the off-chip ratio quoted in section 1 ("off-chip
#: communication to main memory requires more than 50x computation energy
#: even at 40nm").
TABLE1_NODES: List[TechnologyNode] = [
    TechnologyNode(
        name="40nm", feature_nm=40, variant="HP", operating_voltage_v=0.90,
        sram_load_over_fma=1.55, offchip_load_over_fma=50.0,
    ),
    TechnologyNode(
        name="10nm-HP", feature_nm=10, variant="HP", operating_voltage_v=0.75,
        sram_load_over_fma=5.75, offchip_load_over_fma=180.0,
    ),
    TechnologyNode(
        name="10nm-LP", feature_nm=10, variant="LP", operating_voltage_v=0.65,
        sram_load_over_fma=5.77, offchip_load_over_fma=180.0,
    ),
]


def communication_to_computation_trend() -> List[float]:
    """The Table 1 trend: SRAM-load/FMA energy ratio per node, in order."""
    return [node.sram_load_over_fma for node in TABLE1_NODES]


def paper_energy_model(scaled: bool = True) -> EnergyModel:
    """The 22nm Table 3 machine bound to the default EPI table.

    With ``scaled=True`` (the harness default) the cache geometry is the
    16x-scaled variant documented in :mod:`repro.machine.config`; with
    ``scaled=False`` it is the literal 32KB/512KB paper geometry.
    """
    config: MachineConfig = default_config() if scaled else paper_geometry()
    return EnergyModel(epi=EPITable.default(), config=config)


def r_default(model: EnergyModel) -> float:
    """The paper's default compute/communication ratio R (section 5.5).

    ``R = EPI_nonmem / EPI_ld`` with EPI_ld the main-memory load energy:
    0.45 / 52.14 ~= 0.0086 for the default model.
    """
    return model.epi.mean_nonmem() / model.config.mem_params.read_energy_nj
