"""Energy and time accounting for one program execution.

:class:`EnergyAccount` accumulates energy by *group* — the groups are the
columns of the paper's Table 4 energy breakdown (Load / Store / Non-mem /
Hist Read) plus the amnesic control overheads — and total execution time,
from which energy-delay product (EDP) follows.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Tuple

#: Accounting groups.  ``AMNESIC`` covers RCMP/REC/RTN control overhead
#: and probe energy; ``HIST`` covers history-table reads and writes.
GROUP_LOAD = "load"
GROUP_STORE = "store"
GROUP_NONMEM = "nonmem"
GROUP_HIST = "hist"
GROUP_AMNESIC = "amnesic"
GROUP_WRITEBACK = "writeback"

ALL_GROUPS = (
    GROUP_LOAD,
    GROUP_STORE,
    GROUP_NONMEM,
    GROUP_HIST,
    GROUP_AMNESIC,
    GROUP_WRITEBACK,
)


@dataclasses.dataclass(frozen=True)
class Cost:
    """An (energy, time) pair; additive."""

    energy_nj: float
    time_ns: float

    def __add__(self, other: "Cost") -> "Cost":
        return Cost(self.energy_nj + other.energy_nj, self.time_ns + other.time_ns)

    def scaled(self, factor: float) -> "Cost":
        return Cost(self.energy_nj * factor, self.time_ns * factor)


ZERO_COST = Cost(0.0, 0.0)


class EnergyAccount:
    """Accumulates energy per group and total time for one execution."""

    def __init__(self) -> None:
        self._energy_by_group: Dict[str, float] = {group: 0.0 for group in ALL_GROUPS}
        self._time_ns: float = 0.0

    def charge(self, group: str, cost: Cost) -> None:
        """Add *cost* under *group*; time always accumulates globally."""
        if group not in self._energy_by_group:
            raise KeyError(f"unknown accounting group {group!r}")
        self._energy_by_group[group] += cost.energy_nj
        self._time_ns += cost.time_ns

    def charge_energy_only(self, group: str, energy_nj: float) -> None:
        """Add energy with no time contribution (e.g. background writebacks)."""
        if group not in self._energy_by_group:
            raise KeyError(f"unknown accounting group {group!r}")
        self._energy_by_group[group] += energy_nj

    # ------------------------------------------------------------------
    # Totals and derived metrics.
    # ------------------------------------------------------------------
    @property
    def total_energy_nj(self) -> float:
        return sum(self._energy_by_group.values())

    @property
    def total_time_ns(self) -> float:
        return self._time_ns

    @property
    def edp(self) -> float:
        """Energy-delay product in nJ*ns (Gonzalez & Horowitz metric)."""
        return self.total_energy_nj * self._time_ns

    def energy_of(self, group: str) -> float:
        """Energy accumulated under *group* in nJ."""
        return self._energy_by_group[group]

    def breakdown(self) -> Dict[str, float]:
        """Copy of the energy-by-group mapping."""
        return dict(self._energy_by_group)

    def breakdown_fractions(self) -> Dict[str, float]:
        """Per-group share of total energy (rows of paper Table 4)."""
        total = self.total_energy_nj
        if total <= 0:
            return {group: 0.0 for group in self._energy_by_group}
        return {group: e / total for group, e in self._energy_by_group.items()}

    def snapshot(self) -> Tuple[float, float]:
        """(total energy, total time) — cheap checkpoint for deltas."""
        return self.total_energy_nj, self._time_ns

    def __repr__(self) -> str:
        return (
            f"EnergyAccount(E={self.total_energy_nj:.2f}nJ, "
            f"T={self._time_ns:.2f}ns, EDP={self.edp:.2f})"
        )
