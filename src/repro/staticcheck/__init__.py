"""Static analysis over ISA programs and compiled amnesic artifacts.

Layered bottom-up:

* :mod:`~repro.staticcheck.cfg` / :mod:`~repro.staticcheck.dataflow` —
  control-flow graphs and the dataflow framework (reaching definitions,
  liveness, def-use over registers and resolvable memory);
* :mod:`~repro.staticcheck.diagnostics` — the rule catalog (stable ids,
  severities) and finding/report types;
* :mod:`~repro.staticcheck.rules` — slice-safety verification of
  compiled artifacts (the static counterpart to the fuzz oracle);
* :mod:`~repro.staticcheck.regions` — batchable straight-line region
  analysis, exported as a schema-versioned artifact for the fast
  backend;
* :mod:`~repro.staticcheck.layering` — the AST-based import-graph lint;
* :mod:`~repro.staticcheck.faults` — deliberately broken compiler
  passes the rules must catch;
* :mod:`~repro.staticcheck.lint` — the `repro lint` driver.
"""

from .cfg import ControlFlowGraph, build_cfg
from .dataflow import (
    ConstantFacts,
    DefUse,
    Liveness,
    MemoryDefUse,
    ReachingDefinitions,
    def_use_chains,
    memory_def_use,
)
from .diagnostics import RULES, Finding, LintReport, Severity, render_report
from .lint import LintRun, LintSettings, run_lint
from .regions import (
    RegionAnalysis,
    RegionArtifactMismatch,
    RegionReport,
    analyze_regions,
    load_region_artifact,
)
from .rules import check_program, verify_compilation

__all__ = [
    "RULES",
    "ConstantFacts",
    "ControlFlowGraph",
    "DefUse",
    "Finding",
    "LintReport",
    "LintRun",
    "LintSettings",
    "Liveness",
    "MemoryDefUse",
    "ReachingDefinitions",
    "RegionAnalysis",
    "RegionArtifactMismatch",
    "RegionReport",
    "Severity",
    "analyze_regions",
    "build_cfg",
    "check_program",
    "def_use_chains",
    "load_region_artifact",
    "memory_def_use",
    "render_report",
    "run_lint",
    "verify_compilation",
]
