"""Slice-safety rules: static verification of compiled amnesic binaries.

The dynamic oracle (PR 4) proves correctness by *running* artifacts;
these rules prove structural invariants by *reading* them.  Every check
re-derives its expectation independently from the compiler's inputs —
the slice IR, the profiled trace, the energy model — and diffs it
against what the artifact actually records, so a buggy pass cannot
vouch for itself.

Two entry points:

* :func:`check_program` — CFG-level rules over any program (compiled or
  not);
* :func:`verify_compilation` — the full rule set over one
  :class:`~repro.compiler.amnesic_pass.CompilationResult`.

See :mod:`repro.staticcheck.diagnostics` for the rule catalog.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Set, Tuple

from ..compiler.amnesic_pass import SELECTION_PROBABILISTIC, CompilationResult
from ..compiler.cost import CostContext
from ..compiler.deadstore import DeadStoreAnalysis, analysis_for_compilation
from ..compiler.rslice import LeafInput, LeafInputKind, RSlice, TemplateNode
from ..energy.model import EnergyModel
from ..isa.instructions import Instruction
from ..isa.opcodes import Opcode
from ..isa.operands import HistRef, Imm, Operand, Reg, SReg
from ..isa.program import Program
from . import diagnostics as D
from .cfg import ControlFlowGraph, build_cfg
from .dataflow import ReachingDefinitions
from .diagnostics import LintReport

#: Relative tolerance when re-deriving recorded costs (pure float
#: addition noise; a dropped term is orders of magnitude larger).
_COST_RTOL = 1e-9


# ----------------------------------------------------------------------
# Program-level (CFG) rules.
# ----------------------------------------------------------------------
def check_program(name: str, program: Program,
                  cfg: Optional[ControlFlowGraph] = None) -> LintReport:
    """Run the CFG rules over *program*."""
    report = LintReport(program=name)
    if cfg is None:
        cfg = build_cfg(program)
    _check_unreachable(report, cfg)
    _check_slice_entries(report, cfg)
    _check_off_end(report, cfg)
    return report


def _check_unreachable(report: LintReport, cfg: ControlFlowGraph) -> None:
    if not cfg.program.instructions:
        return
    reachable = cfg.reachable_pcs(0)
    run_start: Optional[int] = None
    for pc in list(cfg.iter_main_pcs()) + [len(cfg.program.instructions)]:
        dead = pc < len(cfg.program.instructions) and pc not in reachable
        if dead and run_start is None:
            run_start = pc
        elif not dead and run_start is not None:
            report.add(
                D.CFG001,
                f"unreachable code: pcs {run_start}..{pc - 1}",
                pc=run_start,
            )
            run_start = None


def _check_slice_entries(report: LintReport, cfg: ControlFlowGraph) -> None:
    program = cfg.program
    for edge in cfg.edges:
        region = program.slice_containing(edge.dst)
        if region is None or edge.src in region:
            continue
        if edge.kind == "rcmp" and edge.dst == region.start:
            continue
        report.add(
            D.CFG002,
            f"{edge.kind} edge from pc {edge.src} enters slice "
            f"{region.slice_id} at pc {edge.dst}",
            pc=edge.src,
            slice_id=region.slice_id,
        )


def _check_off_end(report: LintReport, cfg: ControlFlowGraph) -> None:
    reachable = cfg.reachable_pcs(0) if cfg.program.instructions else frozenset()
    for pc in sorted(cfg.off_end):
        if pc not in reachable:
            continue  # CFG001 already covers dead code
        report.add(
            D.CFG003,
            f"control can run off the end of the program from pc {pc}",
            pc=pc,
        )


# ----------------------------------------------------------------------
# Compilation-level verification.
# ----------------------------------------------------------------------
def verify_compilation(
    name: str,
    original: Program,
    compilation: CompilationResult,
    model: EnergyModel,
    deadstores: Optional[DeadStoreAnalysis] = None,
) -> LintReport:
    """Run every slice-safety rule over one compiled artifact.

    *deadstores* defaults to the real analysis; the broken-pass harness
    injects a deliberately wrong one to prove DST300 bites.
    """
    binary = compilation.binary.program
    report = LintReport(program=name)
    binary_cfg = build_cfg(binary)
    report.extend(check_program(name, binary, cfg=binary_cfg).findings)

    pc_map = _check_rewrite_shape(report, original, compilation)
    _check_slice_regions(report, compilation)
    _check_rcmp_wiring(report, original, compilation, pc_map)
    _check_rec_placement(report, compilation, pc_map)
    _check_live_leaves(report, original, compilation)
    _check_lowering(report, compilation)
    _check_checkpoint_conflicts(report, compilation)
    _check_costs(report, compilation, model)
    _check_deadstores(report, compilation, deadstores)
    return report


# ----------------------------------------------------------------------
# SLC105 — rewrite shape, and the old->new pc map everything else needs.
# ----------------------------------------------------------------------
def _main_length(binary: Program) -> int:
    if not binary.slices:
        return len(binary.instructions)
    return min(region.start for region in binary.slices.values())


def _hist_slots(node: TemplateNode) -> List[LeafInput]:
    """The node's checkpointed inputs, in REC slot (position) order."""
    return [
        li
        for li in sorted(node.leaf_inputs, key=lambda li: li.position)
        if li.reg_index is not None and li.kind is LeafInputKind.HIST
    ]


def _node_ids(root: TemplateNode) -> Dict[int, int]:
    return {id(node): index for index, node in enumerate(root.post_order())}


def _expected_recs(rslices: List[RSlice]) -> Dict[Tuple[int, int], TemplateNode]:
    """(slice_id, leaf_id) -> the node whose inputs that REC checkpoints."""
    expected: Dict[Tuple[int, int], TemplateNode] = {}
    for rslice in rslices:
        ids = _node_ids(rslice.root)
        for node in rslice.root.post_order():
            if _hist_slots(node):
                expected[(rslice.slice_id, ids[id(node)])] = node
    return expected


def _check_rewrite_shape(
    report: LintReport, original: Program, compilation: CompilationResult
) -> Optional[Dict[int, int]]:
    """SLC105: the main region is the original stream + RCMPs + RECs.

    Returns the old-pc -> new-pc map on success, ``None`` when the shape
    is too broken for position-dependent rules to run.
    """
    binary = compilation.binary.program
    swapped = {rs.load_pc: rs for rs in compilation.rslices}
    expected_recs = _expected_recs(compilation.rslices)
    seen_recs: Dict[Tuple[int, int], List[int]] = {}

    pc_map: Dict[int, int] = {}
    old_pc = 0
    originals = original.instructions
    ok = True
    for new_pc in range(_main_length(binary)):
        instruction = binary.instructions[new_pc]
        if instruction.opcode is Opcode.REC:
            key = (instruction.slice_id, instruction.leaf_id)
            seen_recs.setdefault(key, []).append(new_pc)
            continue
        if old_pc >= len(originals):
            report.add(
                D.SLC105,
                f"main region has trailing instruction(s) beyond the "
                f"original stream: {instruction}",
                pc=new_pc,
            )
            ok = False
            break
        expected = originals[old_pc]
        if old_pc in swapped:
            rslice = swapped[old_pc]
            if instruction.opcode is not Opcode.RCMP or (
                instruction.slice_id != rslice.slice_id
            ):
                report.add(
                    D.SLC105,
                    f"swapped load at original pc {old_pc} should appear "
                    f"as RCMP for slice {rslice.slice_id}, found "
                    f"{instruction}",
                    pc=new_pc,
                    slice_id=rslice.slice_id,
                )
                ok = False
                break
        elif instruction != expected:
            report.add(
                D.SLC105,
                f"main region diverges from the original stream at "
                f"original pc {old_pc}: expected {expected}, found "
                f"{instruction}",
                pc=new_pc,
            )
            ok = False
            break
        pc_map[old_pc] = new_pc
        old_pc += 1
    if ok and old_pc != len(originals):
        report.add(
            D.SLC105,
            f"main region ends after {old_pc} of {len(originals)} "
            f"original instructions",
            pc=_main_length(binary),
        )
        ok = False

    for key, pcs in seen_recs.items():
        if key not in expected_recs:
            report.add(
                D.SLC105,
                f"unexpected REC for slice {key[0]} leaf {key[1]} "
                f"(no checkpointed inputs at that leaf)",
                pc=pcs[0],
                slice_id=key[0],
            )
        elif len(pcs) > 1:
            report.add(
                D.SLC103,
                f"leaf {key[1]} is checkpointed by {len(pcs)} RECs; "
                f"exactly one expected",
                pc=pcs[1],
                slice_id=key[0],
            )
    for key in expected_recs:
        if key not in seen_recs:
            report.add(
                D.SLC103,
                f"no REC checkpoints leaf {key[1]} of slice {key[0]}",
                slice_id=key[0],
            )
    return pc_map if ok else None


# ----------------------------------------------------------------------
# SLC100/SLC101 — slice region shape and scratch-file acyclicity.
# ----------------------------------------------------------------------
def _check_slice_regions(report: LintReport, compilation: CompilationResult) -> None:
    binary = compilation.binary.program
    for sid, region in sorted(binary.slices.items()):
        body = binary.instructions[region.start:region.end]
        if not body or body[-1].opcode is not Opcode.RTN:
            report.add(
                D.SLC100,
                f"slice {sid} does not end with RTN",
                pc=region.end - 1,
                slice_id=sid,
            )
            continue
        defined: Set[int] = set()
        for offset, instruction in enumerate(body[:-1]):
            pc = region.start + offset
            if not instruction.opcode.is_compute:
                report.add(
                    D.SLC100,
                    f"non-compute opcode {instruction.opcode.value} inside "
                    f"slice {sid}",
                    pc=pc,
                    slice_id=sid,
                )
                continue
            if not isinstance(instruction.dest, SReg):
                report.add(
                    D.SLC100,
                    f"slice instruction does not write a scratch register: "
                    f"{instruction}",
                    pc=pc,
                    slice_id=sid,
                )
                continue
            for sreg in instruction.scratch_uses():
                if sreg.index not in defined:
                    report.add(
                        D.SLC101,
                        f"s{sreg.index} read before any definition inside "
                        f"slice {sid} (cyclic or uninitialized scratch "
                        f"dataflow)",
                        pc=pc,
                        slice_id=sid,
                    )
            if instruction.dest.index in defined:
                report.add(
                    D.SLC101,
                    f"s{instruction.dest.index} defined twice inside "
                    f"slice {sid}",
                    pc=pc,
                    slice_id=sid,
                )
            defined.add(instruction.dest.index)
        rtn_dest = body[-1].dest
        if not isinstance(rtn_dest, SReg) or rtn_dest.index not in defined:
            report.add(
                D.SLC101,
                f"slice {sid} RTN returns an undefined scratch register "
                f"({rtn_dest})",
                pc=region.end - 1,
                slice_id=sid,
            )


# ----------------------------------------------------------------------
# SLC102 — RCMP wiring.
# ----------------------------------------------------------------------
def _check_rcmp_wiring(
    report: LintReport,
    original: Program,
    compilation: CompilationResult,
    pc_map: Optional[Dict[int, int]],
) -> None:
    binary = compilation.binary.program
    rcmps: Dict[int, List[int]] = {}
    for pc in binary.static_rcmp():
        rcmps.setdefault(binary.instructions[pc].slice_id, []).append(pc)
    for rslice in compilation.rslices:
        sid = rslice.slice_id
        sites = rcmps.pop(sid, [])
        if len(sites) != 1:
            report.add(
                D.SLC102,
                f"slice {sid} has {len(sites)} RCMP site(s); exactly one "
                f"expected",
                slice_id=sid,
            )
            continue
        pc = sites[0]
        instruction = binary.instructions[pc]
        region = binary.slices.get(sid)
        if region is None:
            report.add(D.SLC102, f"slice {sid} has no embedded region",
                       slice_id=sid)
            continue
        if binary.pc_of(instruction.target) != region.start:
            report.add(
                D.SLC102,
                f"RCMP targets pc {binary.pc_of(instruction.target)}, "
                f"slice {sid} starts at pc {region.start}",
                pc=pc,
                slice_id=sid,
            )
        if region.load_pc != pc:
            report.add(
                D.SLC102,
                f"slice {sid} records owner pc {region.load_pc}, RCMP "
                f"sits at pc {pc}",
                pc=pc,
                slice_id=sid,
            )
        load = original.instructions[rslice.load_pc]
        if load.opcode is not Opcode.LD:
            report.add(
                D.SLC102,
                f"slice {sid} claims original pc {rslice.load_pc}, which "
                f"is {load.opcode.value}, not a load",
                pc=pc,
                slice_id=sid,
            )
        elif instruction.dest != load.dest or instruction.srcs != load.srcs:
            report.add(
                D.SLC102,
                f"RCMP does not inherit the load's operands: load "
                f"{load}, rcmp {instruction}",
                pc=pc,
                slice_id=sid,
            )
        if pc_map is not None and pc_map.get(rslice.load_pc) != pc:
            report.add(
                D.SLC102,
                f"RCMP for slice {sid} does not sit at the swapped "
                f"load's position",
                pc=pc,
                slice_id=sid,
            )
    for sid, sites in rcmps.items():
        report.add(
            D.SLC102,
            f"RCMP references slice {sid}, which no selected RSlice owns",
            pc=sites[0],
            slice_id=sid,
        )


# ----------------------------------------------------------------------
# SLC103 — REC placement and slice closure.
# ----------------------------------------------------------------------
def _check_rec_placement(
    report: LintReport,
    compilation: CompilationResult,
    pc_map: Optional[Dict[int, int]],
) -> None:
    if pc_map is None:
        return  # SLC105 already failed; positions are meaningless
    binary = compilation.binary.program
    rec_sites: Dict[Tuple[int, int], int] = {}
    for pc in range(_main_length(binary)):
        instruction = binary.instructions[pc]
        if instruction.opcode is Opcode.REC:
            rec_sites.setdefault((instruction.slice_id, instruction.leaf_id), pc)

    for rslice in compilation.rslices:
        ids = _node_ids(rslice.root)
        for node in rslice.root.post_order():
            slots = _hist_slots(node)
            if not slots:
                continue
            leaf_id = ids[id(node)]
            rec_pc = rec_sites.get((rslice.slice_id, leaf_id))
            if rec_pc is None:
                continue  # missing REC already reported by SLC103 above
            rec_instruction = binary.instructions[rec_pc]
            expected_srcs: Tuple[Operand, ...] = tuple(
                Reg(li.reg_index) for li in slots
            )
            if rec_instruction.srcs != expected_srcs:
                report.add(
                    D.SLC103,
                    f"REC for leaf {leaf_id} checkpoints "
                    f"{list(map(str, rec_instruction.srcs))}, slice IR "
                    f"needs {list(map(str, expected_srcs))}",
                    pc=rec_pc,
                    slice_id=rslice.slice_id,
                )
                continue
            producer_pc = pc_map.get(node.pc)
            if producer_pc is None:
                report.add(
                    D.SLC103,
                    f"leaf {leaf_id}'s producer (original pc {node.pc}) "
                    f"is not present in the rewritten binary",
                    pc=rec_pc,
                    slice_id=rslice.slice_id,
                )
                continue
            if node.is_checkpoint_load:
                _require_adjacent(
                    report, binary, rslice.slice_id, leaf_id,
                    first=producer_pc, second=rec_pc,
                    why="a checkpoint-load REC must capture the loaded "
                        "value: REC goes after the load",
                )
            else:
                _require_adjacent(
                    report, binary, rslice.slice_id, leaf_id,
                    first=rec_pc, second=producer_pc,
                    why="a compute-leaf REC must capture the producer's "
                        "inputs: REC goes before the producer (in-place "
                        "updates would clobber them)",
                )


def _require_adjacent(
    report: LintReport,
    binary: Program,
    slice_id: int,
    leaf_id: int,
    first: int,
    second: int,
    why: str,
) -> None:
    """The pcs must be ordered with only RECs between them (slice closure)."""
    if first >= second:
        report.add(
            D.SLC103,
            f"REC for leaf {leaf_id} is on the wrong side of its "
            f"producer: {why}",
            pc=max(first, second),
            slice_id=slice_id,
        )
        return
    for pc in range(first + 1, second):
        between = binary.instructions[pc]
        if between.opcode is not Opcode.REC:
            report.add(
                D.SLC103,
                f"{between.opcode.value} at pc {pc} executes between leaf "
                f"{leaf_id}'s REC and its producer; the checkpointed "
                f"values can diverge from the producer's operands",
                pc=pc,
                slice_id=slice_id,
            )
            return


# ----------------------------------------------------------------------
# SLC104 — LIVE_REG leaf inputs must not be clobbered on any path.
# ----------------------------------------------------------------------
def _check_live_leaves(
    report: LintReport, original: Program, compilation: CompilationResult
) -> None:
    """Reaching-definition agreement between leaf use and RCMP point.

    A leaf input classified LIVE_REG is read from the architectural
    register file at recompute (RCMP) time, not at producer time.  If
    the definitions of that register that can reach the RCMP differ
    from those that can reach the producer's read, some path rebinds
    the register in between and the classification rests purely on the
    profiled values staying equal — flag it.
    """
    if not compilation.rslices:
        return
    cfg = build_cfg(original)
    reaching = ReachingDefinitions(cfg)
    for rslice in compilation.rslices:
        ids = _node_ids(rslice.root)
        for node in rslice.root.post_order():
            if node.is_checkpoint_load:
                continue
            for leaf_input in node.leaf_inputs:
                if (
                    leaf_input.kind is not LeafInputKind.LIVE_REG
                    or leaf_input.reg_index is None
                ):
                    continue
                reg = leaf_input.reg_index
                at_use = reaching.defs_reaching(node.pc, reg)
                at_rcmp = reaching.defs_reaching(rslice.load_pc, reg)
                if at_use != at_rcmp:
                    clobbers = sorted(at_rcmp - at_use) or sorted(at_use - at_rcmp)
                    report.add(
                        D.SLC104,
                        f"leaf {ids[id(node)]} input r{reg} is classified "
                        f"live, but defs at pc(s) "
                        f"{', '.join(map(str, clobbers))} can rebind it "
                        f"between producer pc {node.pc} and the swapped "
                        f"load at pc {rslice.load_pc}",
                        pc=node.pc,
                        slice_id=rslice.slice_id,
                    )


# ----------------------------------------------------------------------
# SLC106 — lowered slice instructions must agree with the slice IR.
# ----------------------------------------------------------------------
def _expected_lowering(
    node: TemplateNode, node_id: int, ids: Dict[int, int]
) -> Optional[Tuple[Opcode, SReg, Tuple[Operand, ...], Optional[int]]]:
    """Independently re-derive the lowering of one template node.

    Mirrors the annotate-pass contract: checkpoint loads become
    ``MOV s_i, Hist[i, 0]``; other nodes re-execute their opcode with
    CONST inputs as immediates, LIVE_REG inputs as register reads, HIST
    inputs as ``HistRef(node_id, slot)``, and children as scratch reads.
    Returns ``None`` when the IR itself is malformed.
    """
    if node.is_checkpoint_load:
        return (Opcode.MOV, SReg(node_id), (HistRef(node_id, 0),), node_id)
    slots = _hist_slots(node)
    slot_of = {id(li): slot for slot, li in enumerate(slots)}
    arity = len(node.leaf_inputs) + len(node.children)
    operands: List[Optional[Operand]] = [None] * arity
    for leaf_input in node.leaf_inputs:
        if leaf_input.reg_index is None:
            operand: Operand = Imm(leaf_input.const_value)
        elif leaf_input.kind is LeafInputKind.LIVE_REG:
            operand = Reg(leaf_input.reg_index)
        else:
            slot = slot_of.get(id(leaf_input))
            if slot is None:
                return None  # register input neither live nor checkpointed
            operand = HistRef(node_id, slot)
        if not 0 <= leaf_input.position < arity:
            return None
        operands[leaf_input.position] = operand
    for child, position in zip(node.children, node.child_positions):
        if not 0 <= position < arity:
            return None
        operands[position] = SReg(ids[id(child)])
    if any(op is None for op in operands):
        return None
    return (
        node.opcode,
        SReg(node_id),
        tuple(op for op in operands if op is not None),
        node_id if slots else None,
    )


def _check_lowering(report: LintReport, compilation: CompilationResult) -> None:
    binary = compilation.binary.program
    for rslice in compilation.rslices:
        sid = rslice.slice_id
        region = binary.slices.get(sid)
        if region is None:
            continue  # SLC102 reports the missing region
        ids = _node_ids(rslice.root)
        nodes = list(rslice.root.post_order())
        body = binary.instructions[region.start:region.end]
        if len(body) != len(nodes) + 1:
            report.add(
                D.SLC106,
                f"slice {sid} region holds {len(body)} instruction(s); "
                f"the IR lowers to {len(nodes)} node(s) plus RTN",
                pc=region.start,
                slice_id=sid,
            )
            continue
        for offset, node in enumerate(nodes):
            node_id = ids[id(node)]
            pc = region.start + offset
            expected = _expected_lowering(node, node_id, ids)
            if expected is None:
                report.add(
                    D.SLC106,
                    f"slice {sid} node {node_id} (original pc {node.pc}) "
                    f"has an unlowerable input layout in the IR",
                    pc=pc,
                    slice_id=sid,
                )
                continue
            actual = body[offset]
            got = (actual.opcode, actual.dest, actual.srcs, actual.leaf_id)
            if got != expected:
                report.add(
                    D.SLC106,
                    f"slice {sid} node {node_id}: lowered instruction "
                    f"{actual} disagrees with the IR (expected "
                    f"{expected[0].value} {expected[1]}, "
                    f"{', '.join(map(str, expected[2]))}, "
                    f"leaf_id={expected[3]})",
                    pc=pc,
                    slice_id=sid,
                )
        root_id = ids[id(rslice.root)]
        rtn_instruction = body[-1]
        if (
            rtn_instruction.opcode is Opcode.RTN
            and rtn_instruction.dest != SReg(root_id)
        ):
            report.add(
                D.SLC106,
                f"slice {sid} RTN returns {rtn_instruction.dest}, the IR "
                f"root lowers to s{root_id}",
                pc=region.end - 1,
                slice_id=sid,
            )


# ----------------------------------------------------------------------
# SLC107 — checkpoint-source loads may not themselves be swapped.
# ----------------------------------------------------------------------
def _check_checkpoint_conflicts(
    report: LintReport, compilation: CompilationResult
) -> None:
    swapped = set(compilation.swapped_load_pcs)
    for rslice in compilation.rslices:
        ids = _node_ids(rslice.root)
        for node in rslice.root.post_order():
            if not node.is_checkpoint_load or node.pc not in swapped:
                continue
            other = compilation.slice_for_load(node.pc)
            other_id = other.slice_id if other is not None else "?"
            report.add(
                D.SLC107,
                f"leaf {ids[id(node)]} of slice {rslice.slice_id} "
                f"checkpoints the load at original pc {node.pc}, but that "
                f"load is swapped for slice {other_id}'s RCMP and never "
                f"executes",
                pc=node.pc,
                slice_id=rslice.slice_id,
            )


# ----------------------------------------------------------------------
# CST200/CST201 — cost re-derivation, budgets, and size bounds.
# ----------------------------------------------------------------------
def _cost_close(recorded, derived) -> bool:
    return math.isclose(
        recorded.energy_nj, derived.energy_nj, rel_tol=_COST_RTOL, abs_tol=1e-12
    ) and math.isclose(
        recorded.time_ns, derived.time_ns, rel_tol=_COST_RTOL, abs_tol=1e-12
    )


def _check_costs(
    report: LintReport, compilation: CompilationResult, model: EnergyModel
) -> None:
    if not compilation.rslices:
        return
    options = compilation.options
    context = CostContext.from_trace(
        model,
        compilation.profile.loads,
        compilation.profile.dependence,
        estimation=options.estimation,
    )
    for rslice in compilation.rslices:
        sid = rslice.slice_id
        pairs = (
            ("traversal", rslice.traversal_cost,
             context.traversal_cost(rslice.root)),
            ("selection", rslice.selection_cost,
             context.selection_cost(rslice.root, rslice.load_pc)),
            ("estimated-load", rslice.estimated_load_cost,
             context.estimated_load_cost(rslice.load_pc)),
        )
        for label, recorded, derived in pairs:
            if not _cost_close(recorded, derived):
                report.add(
                    D.CST200,
                    f"slice {sid} records a {label} cost of "
                    f"{recorded.energy_nj:.6g} nJ / {recorded.time_ns:.6g} "
                    f"ns; re-deriving from the energy model gives "
                    f"{derived.energy_nj:.6g} nJ / {derived.time_ns:.6g} ns",
                    slice_id=sid,
                )
        if options.selection == SELECTION_PROBABILISTIC and not (
            rslice.selection_cost.energy_nj
            < rslice.estimated_load_cost.energy_nj
        ):
            report.add(
                D.CST200,
                f"slice {sid} breaks its budget: E_rc "
                f"{rslice.selection_cost.energy_nj:.6g} nJ is not below "
                f"E_ld {rslice.estimated_load_cost.energy_nj:.6g} nJ",
                slice_id=sid,
            )
        _check_size_bounds(report, compilation, rslice)


def _check_size_bounds(
    report: LintReport, compilation: CompilationResult, rslice: RSlice
) -> None:
    options = compilation.options
    sid = rslice.slice_id
    size = rslice.length
    if size > options.max_nodes:
        report.add(
            D.CST201,
            f"slice {sid} holds {size} node(s); options allow "
            f"{options.max_nodes}",
            slice_id=sid,
        )
    if rslice.height > options.max_height:
        report.add(
            D.CST201,
            f"slice {sid} has height {rslice.height}; options allow "
            f"{options.max_height}",
            slice_id=sid,
        )
    region = compilation.binary.program.slices.get(sid)
    if region is not None and region.end - region.start != size + 1:
        report.add(
            D.CST201,
            f"slice {sid} region spans {region.end - region.start} "
            f"instruction(s); {size} node(s) plus RTN expected",
            pc=region.start,
            slice_id=sid,
        )
    info = compilation.binary.slices.get(sid)
    if info is None:
        return
    if info.sreg_demand != size:
        report.add(
            D.CST201,
            f"slice {sid} metadata claims a scratch demand of "
            f"{info.sreg_demand}; one post-order scratch register per "
            f"node gives {size}",
            slice_id=sid,
        )
    ids = _node_ids(rslice.root)
    expected_hist = tuple(
        ids[id(node)]
        for node in rslice.root.post_order()
        if _hist_slots(node)
    )
    if info.hist_leaf_ids != expected_hist:
        report.add(
            D.CST201,
            f"slice {sid} metadata lists Hist leaf ids "
            f"{list(info.hist_leaf_ids)}; the IR checkpoints "
            f"{list(expected_hist)}",
            slice_id=sid,
        )


# ----------------------------------------------------------------------
# DST300 — dead-store elision soundness.
# ----------------------------------------------------------------------
def _check_deadstores(
    report: LintReport,
    compilation: CompilationResult,
    deadstores: Optional[DeadStoreAnalysis],
) -> None:
    analysis = (
        deadstores
        if deadstores is not None
        else analysis_for_compilation(compilation)
    )
    swapped = set(compilation.swapped_load_pcs)
    if set(analysis.swapped_load_pcs) != swapped:
        report.add(
            D.DST300,
            f"dead-store analysis was computed against swap set "
            f"{sorted(analysis.swapped_load_pcs)}; the artifact swaps "
            f"{sorted(swapped)}",
        )
    # Independent consumer re-derivation: walk the dynamic trace's
    # load->store memory dependences rather than trusting the analysis'
    # own consumer lists.
    records = compilation.profile.dependence.records
    true_consumers: Dict[int, Set[int]] = {}
    for record in records:
        if record.is_load and record.mem_producer is not None:
            store_pc = records[record.mem_producer].pc
            true_consumers.setdefault(store_pc, set()).add(record.pc)
    for site in analysis.sites:
        if not site.is_elidable(analysis.swapped_load_pcs):
            continue
        live = sorted(true_consumers.get(site.store_pc, set()) - swapped)
        if live:
            report.add(
                D.DST300,
                f"store at pc {site.store_pc} is reported elidable, but "
                f"the profiled trace shows un-swapped load(s) at pc(s) "
                f"{', '.join(map(str, live))} consuming its values",
                pc=site.store_pc,
            )
