"""Codebase layering lint: the import-graph rules behind `repro lint --self`.

PR 6 split the machine into semantics (what executes), timing (what it
costs), and observability (who watches); keeping the split honest is a
structural property of the *import graph*, so this module checks it
statically — files are parsed with :mod:`ast`, never imported, which
keeps the lint safe to run against a broken tree.

Only module-level imports count: imports inside functions are lazy by
construction, and imports under ``if TYPE_CHECKING:`` never execute.

Rules (LAY500) are (scope prefix, forbidden prefixes) pairs; LAY501
reports strongly connected components of the module-level import graph
(cycles make initialization order a load-bearing accident).
"""

from __future__ import annotations

import ast
import dataclasses
import os
from typing import Dict, Iterable, List, Optional, Set, Tuple

from . import diagnostics as D
from .diagnostics import LintReport


@dataclasses.dataclass(frozen=True)
class LayerRule:
    """Modules under *scope* must not import under any *forbidden* prefix."""

    name: str
    scope: str
    forbidden: Tuple[str, ...]
    reason: str


def _others(*kept: str) -> Tuple[str, ...]:
    """Every first-level repro package except *kept* (and repro.errors)."""
    packages = (
        "repro.analysis", "repro.bench", "repro.cli", "repro.compiler",
        "repro.core", "repro.energy", "repro.fuzz", "repro.harness",
        "repro.isa", "repro.machine", "repro.staticcheck",
        "repro.telemetry", "repro.trace", "repro.workloads",
    )
    return tuple(p for p in packages if p not in kept)


#: The enforced layering.  Every rule is a fact about today's tree; a
#: violation means an edge was *added*, never that the lint is aspirational.
LAYERING_RULES: Tuple[LayerRule, ...] = (
    LayerRule(
        name="isa-is-the-bottom-layer",
        scope="repro.isa",
        forbidden=_others("repro.isa"),
        reason="the ISA (formats, semantics, validation) depends only on "
               "repro.errors; everything else builds on it",
    ),
    LayerRule(
        name="semantics-free-of-timing",
        scope="repro.isa.semantics",
        forbidden=_others("repro.isa"),
        reason="instruction semantics must stay pure so both backends and "
               "the static analyzer can fold through them",
    ),
    LayerRule(
        name="memory-semantics-free-of-timing",
        scope="repro.machine.memory",
        forbidden=(
            "repro.telemetry", "repro.energy", "repro.trace", "repro.core",
            "repro.harness", "repro.compiler", "repro.analysis", "repro.bench",
        ),
        reason="machine/memory.py models hierarchy *state*; costs live in "
               "repro.energy and observation in repro.telemetry/trace",
    ),
    LayerRule(
        name="telemetry-observes-only",
        scope="repro.telemetry",
        forbidden=(
            "repro.machine", "repro.core", "repro.compiler", "repro.harness",
            "repro.isa", "repro.trace", "repro.energy", "repro.workloads",
            "repro.fuzz", "repro.analysis", "repro.bench",
        ),
        reason="the observability layer must not depend on what it observes "
               "(instrumented code imports telemetry, never the reverse)",
    ),
    LayerRule(
        name="workloads-are-programs-only",
        scope="repro.workloads",
        forbidden=(
            "repro.machine", "repro.core", "repro.compiler", "repro.harness",
            "repro.telemetry", "repro.trace", "repro.energy", "repro.fuzz",
        ),
        reason="kernels are plain ISA programs; how they run or cost is "
               "another layer's business",
    ),
    LayerRule(
        name="staticcheck-analyzes-without-executing",
        scope="repro.staticcheck.cfg",
        forbidden=(
            "repro.machine", "repro.core", "repro.harness", "repro.telemetry",
            "repro.fuzz", "repro.workloads",
        ),
        reason="the analysis core reads programs; it must never need a "
               "machine to run them",
    ),
    LayerRule(
        name="staticcheck-dataflow-analyzes-without-executing",
        scope="repro.staticcheck.dataflow",
        forbidden=(
            "repro.machine", "repro.core", "repro.harness", "repro.telemetry",
            "repro.fuzz", "repro.workloads",
        ),
        reason="dataflow folds through isa.semantics only; no machine state",
    ),
    LayerRule(
        name="staticcheck-rules-analyze-without-executing",
        scope="repro.staticcheck.rules",
        forbidden=(
            "repro.machine", "repro.core", "repro.harness", "repro.telemetry",
            "repro.fuzz", "repro.workloads",
        ),
        reason="slice-safety rules re-derive compiler facts; the dynamic "
               "machinery belongs to the lint driver, not the rules",
    ),
)


@dataclasses.dataclass(frozen=True)
class ModuleImport:
    """One module-level import edge, with its source line."""

    module: str
    target: str
    line: int


def _module_name(root: str, path: str) -> str:
    rel = os.path.relpath(path, os.path.dirname(root))
    name = rel[:-3].replace(os.sep, ".")
    if name.endswith(".__init__"):
        name = name[: -len(".__init__")]
    return name


def _is_type_checking(test: ast.expr) -> bool:
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


def _collect_imports(module: str, is_package: bool, tree: ast.Module) -> List[ModuleImport]:
    imports: List[ModuleImport] = []

    def visit(statements: Iterable[ast.stmt]) -> None:
        for node in statements:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    imports.append(ModuleImport(module, alias.name, node.lineno))
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    parts = module.split(".")
                    # Relative level 1 names the containing package (the
                    # package itself for an __init__).
                    keep = len(parts) - node.level + (1 if is_package else 0)
                    if keep < 1:
                        continue
                    base = ".".join(parts[:keep])
                    target = base + ("." + node.module if node.module else "")
                else:
                    target = node.module or ""
                for alias in node.names:
                    imports.append(
                        ModuleImport(module, f"{target}.{alias.name}", node.lineno)
                    )
            elif isinstance(node, ast.If):
                if _is_type_checking(node.test):
                    visit(node.orelse)
                    continue
                visit(node.body)
                visit(node.orelse)
            elif isinstance(node, ast.Try):
                visit(node.body)
                for handler in node.handlers:
                    visit(handler.body)
                visit(node.orelse)
                visit(node.finalbody)

    visit(tree.body)
    return imports


@dataclasses.dataclass
class ImportGraph:
    """Module-level imports of every module under one package root."""

    modules: Dict[str, List[ModuleImport]]

    def resolve(self, target: str) -> Optional[str]:
        """The known module an import target lands in (longest prefix)."""
        parts = target.split(".")
        for length in range(len(parts), 0, -1):
            candidate = ".".join(parts[:length])
            if candidate in self.modules:
                return candidate
        return None

    def edges(self) -> Dict[str, Set[str]]:
        graph: Dict[str, Set[str]] = {module: set() for module in self.modules}
        for module, imports in self.modules.items():
            for imported in imports:
                resolved = self.resolve(imported.target)
                if resolved is not None and resolved != module:
                    graph[module].add(resolved)
        return graph


def build_import_graph(root: str) -> ImportGraph:
    """Parse every module under *root* (a package directory)."""
    modules: Dict[str, List[ModuleImport]] = {}
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            with open(path, "r", encoding="utf-8") as handle:
                tree = ast.parse(handle.read(), filename=path)
            module = _module_name(root, path)
            modules[module] = _collect_imports(
                module, filename == "__init__.py", tree
            )
    return ImportGraph(modules=modules)


def _matches(module: str, prefix: str) -> bool:
    return module == prefix or module.startswith(prefix + ".")


def _strongly_connected(graph: Dict[str, Set[str]]) -> List[List[str]]:
    """Tarjan's SCC, iteratively (analysis must not depend on recursion depth)."""
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    components: List[List[str]] = []
    counter = [0]

    for start in sorted(graph):
        if start in index:
            continue
        work: List[Tuple[str, Iterable[str]]] = [(start, iter(sorted(graph[start])))]
        index[start] = lowlink[start] = counter[0]
        counter[0] += 1
        stack.append(start)
        on_stack.add(start)
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in index:
                    index[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(graph[succ]))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(sorted(component))
    return components


def check_layering(
    root: str, rules: Tuple[LayerRule, ...] = LAYERING_RULES
) -> LintReport:
    """Run the layering lint over the package at *root* (``src/repro``)."""
    graph = build_import_graph(root)
    report = LintReport(program="layering")
    for rule in rules:
        for module in sorted(graph.modules):
            if not _matches(module, rule.scope):
                continue
            for imported in graph.modules[module]:
                for prefix in rule.forbidden:
                    if _matches(imported.target, prefix):
                        report.add(
                            D.LAY500,
                            f"{module}:{imported.line} imports "
                            f"{imported.target}, forbidden for "
                            f"{rule.scope} ({rule.name}: {rule.reason})",
                        )
                        break
    edges = graph.edges()
    for component in _strongly_connected(edges):
        cyclic = len(component) > 1 or (
            component and component[0] in edges[component[0]]
        )
        if cyclic:
            report.add(
                D.LAY501,
                f"module-level import cycle: {' -> '.join(component)}",
            )
    return report


def default_package_root() -> str:
    """The installed repro package directory (for `repro lint --self`)."""
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
