"""Deliberately broken compiler passes: proof the verifier catches bugs.

Mirrors PR 4's broken-CPU harness at the compiler level.  Each entry
takes a *correct* compilation and re-derives a subtly wrong artifact the
way a real compiler bug would — and, crucially, each broken pass is
**internally consistent** (it recomputes its own costs and re-lowers its
own slices), so only the rule that independently re-derives the violated
invariant can catch it.  `repro lint --prove-rules` asserts that each
pass is flagged with exactly its expected rule id, and with no other
ERROR drowning the signal out.
"""

from __future__ import annotations

import copy
import dataclasses
from typing import Callable, Dict, List, Optional, Tuple

from ..compiler.amnesic_pass import CompilationResult
from ..compiler.annotate import rewrite_binary
from ..compiler.cost import CostContext
from ..compiler.deadstore import DeadStoreAnalysis, analysis_for_compilation
from ..compiler.rslice import LeafInputKind, RSlice
from ..energy.model import EnergyModel
from ..isa.opcodes import Opcode
from ..isa.program import Program

#: A broken pass: (original, good compilation, model) -> broken artifact,
#: or None when the program cannot exhibit the bug (no trigger material).
BrokenArtifact = Tuple[CompilationResult, Optional[DeadStoreAnalysis]]
BrokenPass = Callable[
    [Program, CompilationResult, EnergyModel], Optional[BrokenArtifact]
]


def _recost_rslices(
    compilation: CompilationResult, model: EnergyModel, roots
) -> List[RSlice]:
    """Price *roots* exactly like the real pass would (self-consistency)."""
    context = CostContext.from_trace(
        model,
        compilation.profile.loads,
        compilation.profile.dependence,
        estimation=compilation.options.estimation,
    )
    rslices = []
    for rslice, root in zip(compilation.rslices, roots):
        rslices.append(
            dataclasses.replace(
                rslice,
                root=root,
                traversal_cost=context.traversal_cost(root),
                selection_cost=context.selection_cost(root, rslice.load_pc),
                estimated_load_cost=context.estimated_load_cost(rslice.load_pc),
            )
        )
    return rslices


def clobber_blind_classifier(
    original: Program, compilation: CompilationResult, model: EnergyModel
) -> Optional[BrokenArtifact]:
    """A leaf classifier that trusts every register to still be live.

    Flips every checkpointed (HIST) compute-leaf input to LIVE_REG — the
    classification a compiler gets when it forgets that a register can be
    rebound between the producer and the swapped load — then re-lowers
    and re-prices the slices so the artifact is otherwise immaculate.
    Expected: SLC104 (live-leaf-clobber).
    """
    roots = [copy.deepcopy(rslice.root) for rslice in compilation.rslices]
    flipped = 0
    for root in roots:
        for node in root.walk():
            if node.is_checkpoint_load:
                continue
            for leaf_input in node.leaf_inputs:
                if (
                    leaf_input.kind is LeafInputKind.HIST
                    and leaf_input.reg_index is not None
                ):
                    leaf_input.kind = LeafInputKind.LIVE_REG
                    flipped += 1
    if not flipped:
        return None
    rslices = _recost_rslices(compilation, model, roots)
    binary = rewrite_binary(original, rslices)
    broken = dataclasses.replace(compilation, binary=binary, rslices=rslices)
    return broken, None


def rec_misplacing_rewriter(
    original: Program, compilation: CompilationResult, model: EnergyModel
) -> Optional[BrokenArtifact]:
    """A rewriter that plants compute-leaf RECs *after* their producer.

    The paper-naive placement: checkpoint after the instruction runs.
    For in-place updates the checkpointed registers then hold the
    *result*, not the producer's inputs — the exact deviation DESIGN.md
    documents.  Expected: SLC103 (rec-placement-clobber).
    """
    binary = compilation.binary.program
    checkpoint_load_pcs = set()
    for rslice in compilation.rslices:
        for node in rslice.root.walk():
            if node.is_checkpoint_load:
                checkpoint_load_pcs.add(node.pc)

    instructions = list(binary.instructions)
    main_end = min(
        (region.start for region in binary.slices.values()),
        default=len(instructions),
    )
    swaps = []
    for pc in range(main_end - 1):
        instruction = instructions[pc]
        if instruction.opcode is not Opcode.REC:
            continue
        follower = instructions[pc + 1]
        if follower.opcode in (Opcode.REC, Opcode.RCMP):
            continue  # after-REC (checkpoint load) or stacked RECs
        swaps.append(pc)
    if not swaps:
        return None
    for pc in swaps:
        instructions[pc], instructions[pc + 1] = instructions[pc + 1], instructions[pc]

    moved = Program(binary.name)
    moved.instructions = instructions
    moved.labels = dict(binary.labels)
    moved.data = binary.data
    moved.slices = dict(binary.slices)
    broken_binary = dataclasses.replace(compilation.binary, program=moved)
    broken = dataclasses.replace(compilation, binary=broken_binary)
    return broken, None


def amortization_dropping_coster(
    original: Program, compilation: CompilationResult, model: EnergyModel
) -> Optional[BrokenArtifact]:
    """A cost model that forgets the main-path REC overhead.

    Selection cost collapses to the bare traversal cost — slices whose
    checkpoint storms should have disqualified them look profitable.
    Expected: CST200 (cost-bound).
    """
    if not any(rslice.hist_leaves() for rslice in compilation.rslices):
        return None  # no RECs, nothing to amortise, recorded == derived
    rslices = [
        dataclasses.replace(rslice, selection_cost=rslice.traversal_cost)
        for rslice in compilation.rslices
    ]
    broken = dataclasses.replace(compilation, rslices=rslices)
    return broken, None


def alias_blind_deadstores(
    original: Program, compilation: CompilationResult, model: EnergyModel
) -> Optional[BrokenArtifact]:
    """A dead-store analysis that loses consumers it cannot see.

    Drops every non-swapped load from each store site's consumer list —
    the mistake an address-insensitive analysis makes when two access
    streams alias — so stores feeding live loads claim elidability.
    Expected: DST300 (deadstore-soundness).
    """
    analysis = analysis_for_compilation(compilation)
    swapped = set(compilation.swapped_load_pcs)
    dropped = 0
    sites = []
    for site in analysis.sites:
        kept = tuple(pc for pc in site.consumer_load_pcs if pc in swapped)
        dropped += len(site.consumer_load_pcs) - len(kept)
        sites.append(dataclasses.replace(site, consumer_load_pcs=kept))
    if not dropped:
        return None
    broken_analysis = DeadStoreAnalysis(
        sites=sites,
        swapped_load_pcs=analysis.swapped_load_pcs,
        total_dynamic_stores=analysis.total_dynamic_stores,
    )
    return compilation, broken_analysis


#: Registry: pass name -> (expected rule id, the pass).  `repro lint
#: --prove-rules` iterates this; docs/static-analysis.md lists it.
BROKEN_PASSES: Dict[str, Tuple[str, BrokenPass]] = {
    "clobber-blind-classifier": ("SLC104", clobber_blind_classifier),
    "rec-misplacing-rewriter": ("SLC103", rec_misplacing_rewriter),
    "amortization-dropping-coster": ("CST200", amortization_dropping_coster),
    "alias-blind-deadstores": ("DST300", alias_blind_deadstores),
}
