"""Batchable straight-line region analysis (the fastpath precondition).

The fast backend (``machine/fastpath.py``) retires one instruction per
dispatch because every pc might branch, fault, or enter the amnesic
machinery.  The ROADMAP's next perf lever — batching straight-line
regions into single dispatch units — needs exactly the guarantee this
module derives statically: a maximal run of instructions with one entry
(no branch target lands mid-run), one exit (no control transfer inside),
and no amnesic opcode (``RCMP``/``REC``/``RTN`` touch Hist and the
scheduler).  Within a run the only per-instruction hazards left are
faults, so each region also carries its fault surface:

* ``pure`` regions contain no instruction that can fault (no memory
  access, no ``DIV``/``REM``/``FDIV``/``FSQRT``) — a backend may execute
  the whole run after a single hoisted budget/length check;
* ``memory`` regions touch memory but are otherwise branch-free — a
  backend must keep per-access fault precision but can still skip
  per-instruction control-flow dispatch;
* ``faulting`` regions contain trapping compute — batchable only with
  per-instruction fault checks.

The analysis is exported as a schema-versioned JSON artifact so the
backend work can consume it without importing the analyzer.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
from typing import Dict, List, Optional

from ..isa.opcodes import Opcode
from ..isa.program import Program
from .cfg import ControlFlowGraph, build_cfg

#: Region artifact schema.  Bump on any shape change; consumers must
#: reject versions they do not understand.
REGION_SCHEMA = "repro.staticcheck.regions"
REGION_SCHEMA_VERSION = 1

#: Opcodes that can raise at runtime (memory faults, arithmetic traps).
FAULTABLE_OPCODES = frozenset(
    {Opcode.LD, Opcode.ST, Opcode.DIV, Opcode.REM, Opcode.FDIV, Opcode.FSQRT}
)

#: Opcodes that interact with the amnesic machinery; never batchable.
AMNESIC_OPCODES = frozenset({Opcode.RCMP, Opcode.RTN, Opcode.REC})

KIND_PURE = "pure"
KIND_MEMORY = "memory"
KIND_FAULTING = "faulting"


@dataclasses.dataclass(frozen=True)
class Region:
    """One maximal batchable straight-line run ``[start, end)``."""

    start: int
    end: int  # exclusive
    kind: str  # KIND_PURE | KIND_MEMORY | KIND_FAULTING
    in_slice: bool
    slice_id: Optional[int]
    memory_ops: int
    faultable_ops: int

    @property
    def length(self) -> int:
        return self.end - self.start

    def to_json(self) -> dict:
        return {
            "start": self.start,
            "end": self.end,
            "length": self.length,
            "kind": self.kind,
            "in_slice": self.in_slice,
            "slice_id": self.slice_id,
            "memory_ops": self.memory_ops,
            "faultable_ops": self.faultable_ops,
        }


@dataclasses.dataclass
class RegionAnalysis:
    """Every batchable region of one program, plus coverage statistics."""

    program: str
    instructions: int
    regions: List[Region]

    @property
    def batchable_regions(self) -> List[Region]:
        """Regions long enough that batching saves dispatches."""
        return [region for region in self.regions if region.length >= 2]

    @property
    def batchable_instructions(self) -> int:
        return sum(region.length for region in self.batchable_regions)

    @property
    def coverage(self) -> float:
        """Fraction of instructions inside a batchable region."""
        if not self.instructions:
            return 0.0
        return self.batchable_instructions / self.instructions

    @property
    def max_region_length(self) -> int:
        return max((region.length for region in self.regions), default=0)

    def summary(self) -> dict:
        kinds: Dict[str, int] = {KIND_PURE: 0, KIND_MEMORY: 0, KIND_FAULTING: 0}
        for region in self.batchable_regions:
            kinds[region.kind] += 1
        return {
            "instructions": self.instructions,
            "regions": len(self.regions),
            "batchable_regions": len(self.batchable_regions),
            "batchable_instructions": self.batchable_instructions,
            "coverage": round(self.coverage, 4),
            "max_region_length": self.max_region_length,
            "kinds": kinds,
        }

    def to_json(self) -> dict:
        return {
            "schema": REGION_SCHEMA,
            "schema_version": REGION_SCHEMA_VERSION,
            "program": self.program,
            "regions": [region.to_json() for region in self.regions],
            "summary": self.summary(),
        }


def _classify(program: Program, start: int, end: int) -> Region:
    memory_ops = 0
    faultable_ops = 0
    for pc in range(start, end):
        opcode = program.instructions[pc].opcode
        if opcode in (Opcode.LD, Opcode.ST):
            memory_ops += 1
        if opcode in FAULTABLE_OPCODES:
            faultable_ops += 1
    if faultable_ops == 0:
        kind = KIND_PURE
    elif faultable_ops == memory_ops:
        kind = KIND_MEMORY
    else:
        kind = KIND_FAULTING
    region = program.slice_containing(start)
    return Region(
        start=start,
        end=end,
        kind=kind,
        in_slice=region is not None,
        slice_id=region.slice_id if region is not None else None,
        memory_ops=memory_ops,
        faultable_ops=faultable_ops,
    )


def analyze_regions(
    program: Program, cfg: Optional[ControlFlowGraph] = None
) -> RegionAnalysis:
    """Find every maximal batchable straight-line region of *program*.

    Basic blocks already isolate single-entry runs (any branch target
    starts a new block), so regions are blocks with control transfers
    and amnesic opcodes split out.
    """
    if cfg is None:
        cfg = build_cfg(program)
    regions: List[Region] = []
    for block in cfg.blocks:
        run_start: Optional[int] = None
        for pc in block.pcs:
            opcode = program.instructions[pc].opcode
            batchable = (
                not opcode.category.is_control and opcode not in AMNESIC_OPCODES
            )
            if batchable and run_start is None:
                run_start = pc
            elif not batchable and run_start is not None:
                regions.append(_classify(program, run_start, pc))
                run_start = None
        if run_start is not None:
            regions.append(_classify(program, run_start, block.end))
    return RegionAnalysis(
        program=program.name,
        instructions=len(program.instructions),
        regions=regions,
    )


def describe(analysis: RegionAnalysis) -> str:
    """One-line human summary (the REG400 finding message)."""
    summary = analysis.summary()
    return (
        f"{summary['batchable_regions']} batchable region(s) cover "
        f"{summary['batchable_instructions']}/{summary['instructions']} "
        f"instruction(s) ({summary['coverage']:.0%}); longest run "
        f"{summary['max_region_length']}"
    )


def write_region_artifact(directory: str, analysis: RegionAnalysis) -> str:
    """Atomically write one program's region artifact; returns the path."""
    os.makedirs(directory, exist_ok=True)
    safe_name = analysis.program.replace("/", "_").replace("+", "_")
    path = os.path.join(directory, f"{safe_name}.regions.json")
    payload = json.dumps(analysis.to_json(), indent=2, sort_keys=True)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(payload + "\n")
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise
    return path
