"""Batchable straight-line region analysis (the fastpath precondition).

The fast backend (``machine/fastpath.py``) retires one instruction per
dispatch because every pc might branch, fault, or enter the amnesic
machinery.  The ROADMAP's next perf lever — batching straight-line
regions into single dispatch units — needs exactly the guarantee this
module derives statically: a maximal run of instructions with one entry
(no branch target lands mid-run), one exit (no control transfer inside),
and no amnesic opcode (``RCMP``/``REC``/``RTN`` touch Hist and the
scheduler).  Within a run the only per-instruction hazards left are
faults, so each region also carries its fault surface:

* ``pure`` regions contain no instruction that can fault (no memory
  access, no ``DIV``/``REM``/``FDIV``/``FSQRT``) — a backend may execute
  the whole run after a single hoisted budget/length check;
* ``memory`` regions touch memory but are otherwise branch-free — a
  backend must keep per-access fault precision but can still skip
  per-instruction control-flow dispatch;
* ``faulting`` regions contain trapping compute — batchable only with
  per-instruction fault checks.

The analysis is exported as a schema-versioned JSON artifact so the
backend work can consume it without importing the analyzer.
"""

from __future__ import annotations

import dataclasses
import json
import os
import tempfile
from typing import Dict, List, Optional

from ..errors import ReproError
from ..isa.opcodes import Opcode
from ..isa.program import Program
from .cfg import ControlFlowGraph, build_cfg

#: Region artifact schema.  Bump on any shape change; consumers must
#: reject versions they do not understand.
REGION_SCHEMA = "repro.staticcheck.regions"
REGION_SCHEMA_VERSION = 1

#: Opcodes that can raise at runtime (memory faults, arithmetic traps).
FAULTABLE_OPCODES = frozenset(
    {Opcode.LD, Opcode.ST, Opcode.DIV, Opcode.REM, Opcode.FDIV, Opcode.FSQRT}
)

#: Opcodes that interact with the amnesic machinery; never batchable.
AMNESIC_OPCODES = frozenset({Opcode.RCMP, Opcode.RTN, Opcode.REC})

KIND_PURE = "pure"
KIND_MEMORY = "memory"
KIND_FAULTING = "faulting"


@dataclasses.dataclass(frozen=True)
class Region:
    """One maximal batchable straight-line run ``[start, end)``."""

    start: int
    end: int  # exclusive
    kind: str  # KIND_PURE | KIND_MEMORY | KIND_FAULTING
    in_slice: bool
    slice_id: Optional[int]
    memory_ops: int
    faultable_ops: int

    @property
    def length(self) -> int:
        return self.end - self.start

    def to_json(self) -> dict:
        return {
            "start": self.start,
            "end": self.end,
            "length": self.length,
            "kind": self.kind,
            "in_slice": self.in_slice,
            "slice_id": self.slice_id,
            "memory_ops": self.memory_ops,
            "faultable_ops": self.faultable_ops,
        }


@dataclasses.dataclass
class RegionAnalysis:
    """Every batchable region of one program, plus coverage statistics."""

    program: str
    instructions: int
    regions: List[Region]

    @property
    def batchable_regions(self) -> List[Region]:
        """Regions long enough that batching saves dispatches."""
        return [region for region in self.regions if region.length >= 2]

    @property
    def batchable_instructions(self) -> int:
        return sum(region.length for region in self.batchable_regions)

    @property
    def coverage(self) -> float:
        """Fraction of instructions inside a batchable region."""
        if not self.instructions:
            return 0.0
        return self.batchable_instructions / self.instructions

    @property
    def max_region_length(self) -> int:
        return max((region.length for region in self.regions), default=0)

    def summary(self) -> dict:
        kinds: Dict[str, int] = {KIND_PURE: 0, KIND_MEMORY: 0, KIND_FAULTING: 0}
        for region in self.batchable_regions:
            kinds[region.kind] += 1
        return {
            "instructions": self.instructions,
            "regions": len(self.regions),
            "batchable_regions": len(self.batchable_regions),
            "batchable_instructions": self.batchable_instructions,
            "coverage": round(self.coverage, 4),
            "max_region_length": self.max_region_length,
            "kinds": kinds,
        }

    def to_json(self) -> dict:
        return {
            "schema": REGION_SCHEMA,
            "schema_version": REGION_SCHEMA_VERSION,
            "program": self.program,
            "regions": [region.to_json() for region in self.regions],
            "summary": self.summary(),
        }


class RegionArtifactMismatch(ReproError):
    """A ``*.regions.json`` artifact disagrees with the fresh analysis.

    Raised by consumers (the batched fast backend) when an artifact
    passed as a cross-check describes different regions than the ones
    re-derived from the program actually being executed — a stale
    artifact must never silently steer batching decisions.
    """


@dataclasses.dataclass(frozen=True)
class RegionReport:
    """The consumer-facing lookup view over one program's regions.

    This is the API the fast backend's batching pass reads at predecode
    time: ``batchable`` enumerates every run worth fusing (length >= 2)
    and ``region_at`` answers "does a batchable region start at this
    pc?" in O(1).  The report can be built from a fresh analysis
    (:meth:`from_program`) or rebuilt from a schema-versioned artifact
    (:meth:`from_artifact`), and two reports can be held against each
    other (:meth:`mismatches`) so artifacts act as a cross-check rather
    than a second source of truth.
    """

    analysis: RegionAnalysis
    _by_start: Dict[int, Region]

    @classmethod
    def from_analysis(cls, analysis: RegionAnalysis) -> "RegionReport":
        by_start = {
            region.start: region for region in analysis.batchable_regions
        }
        return cls(analysis=analysis, _by_start=by_start)

    @classmethod
    def from_program(
        cls, program: Program, cfg: Optional[ControlFlowGraph] = None
    ) -> "RegionReport":
        return cls.from_analysis(analyze_regions(program, cfg=cfg))

    @classmethod
    def from_artifact(cls, payload: dict) -> "RegionReport":
        """Rebuild a report from a ``*.regions.json`` payload.

        Consumers must reject schema versions they do not understand —
        a silently misread artifact would batch the wrong pcs.
        """
        schema = payload.get("schema")
        version = payload.get("schema_version")
        if schema != REGION_SCHEMA or version != REGION_SCHEMA_VERSION:
            raise RegionArtifactMismatch(
                f"unsupported region artifact schema {schema!r} "
                f"v{version!r} (expected {REGION_SCHEMA} "
                f"v{REGION_SCHEMA_VERSION})"
            )
        regions = [
            Region(
                start=int(item["start"]),
                end=int(item["end"]),
                kind=str(item["kind"]),
                in_slice=bool(item["in_slice"]),
                slice_id=item.get("slice_id"),
                memory_ops=int(item["memory_ops"]),
                faultable_ops=int(item["faultable_ops"]),
            )
            for item in payload["regions"]
        ]
        analysis = RegionAnalysis(
            program=str(payload.get("program", "")),
            instructions=int(payload["summary"]["instructions"]),
            regions=regions,
        )
        return cls.from_analysis(analysis)

    @property
    def batchable(self) -> List[Region]:
        """Every fusable run, in program order."""
        return sorted(self._by_start.values(), key=lambda r: r.start)

    def region_at(self, pc: int) -> Optional[Region]:
        """The batchable region *starting* at ``pc``, if any."""
        return self._by_start.get(pc)

    def mismatches(self, other: "RegionReport") -> List[str]:
        """Human-readable differences between two reports' region lists.

        Compares the full (not just batchable) region tuples so a stale
        artifact is caught even when the drift is in a singleton run.
        """
        problems: List[str] = []
        if self.analysis.instructions != other.analysis.instructions:
            problems.append(
                f"instruction count {self.analysis.instructions} != "
                f"{other.analysis.instructions}"
            )
        mine = {(r.start, r.end): r for r in self.analysis.regions}
        theirs = {(r.start, r.end): r for r in other.analysis.regions}
        for span in sorted(set(mine) | set(theirs)):
            left, right = mine.get(span), theirs.get(span)
            if left is None or right is None:
                problems.append(
                    f"region [{span[0]}, {span[1]}) present in "
                    f"{'artifact' if left is None else 'analysis'} only"
                )
            elif left != right:
                problems.append(
                    f"region [{span[0]}, {span[1]}) differs: "
                    f"{left.to_json()} != {right.to_json()}"
                )
        return problems


def load_region_artifact(path: str) -> RegionReport:
    """Load one ``*.regions.json`` artifact into a report."""
    try:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError) as error:
        raise RegionArtifactMismatch(
            f"unreadable region artifact {path}: {error}"
        ) from None
    return RegionReport.from_artifact(payload)


def _classify(program: Program, start: int, end: int) -> Region:
    memory_ops = 0
    faultable_ops = 0
    for pc in range(start, end):
        opcode = program.instructions[pc].opcode
        if opcode in (Opcode.LD, Opcode.ST):
            memory_ops += 1
        if opcode in FAULTABLE_OPCODES:
            faultable_ops += 1
    if faultable_ops == 0:
        kind = KIND_PURE
    elif faultable_ops == memory_ops:
        kind = KIND_MEMORY
    else:
        kind = KIND_FAULTING
    region = program.slice_containing(start)
    return Region(
        start=start,
        end=end,
        kind=kind,
        in_slice=region is not None,
        slice_id=region.slice_id if region is not None else None,
        memory_ops=memory_ops,
        faultable_ops=faultable_ops,
    )


def analyze_regions(
    program: Program, cfg: Optional[ControlFlowGraph] = None
) -> RegionAnalysis:
    """Find every maximal batchable straight-line region of *program*.

    Basic blocks already isolate single-entry runs (any branch target
    starts a new block), so regions are blocks with control transfers
    and amnesic opcodes split out.
    """
    if cfg is None:
        cfg = build_cfg(program)
    regions: List[Region] = []
    for block in cfg.blocks:
        run_start: Optional[int] = None
        for pc in block.pcs:
            opcode = program.instructions[pc].opcode
            batchable = (
                not opcode.category.is_control and opcode not in AMNESIC_OPCODES
            )
            if batchable and run_start is None:
                run_start = pc
            elif not batchable and run_start is not None:
                regions.append(_classify(program, run_start, pc))
                run_start = None
        if run_start is not None:
            regions.append(_classify(program, run_start, block.end))
    return RegionAnalysis(
        program=program.name,
        instructions=len(program.instructions),
        regions=regions,
    )


def describe(analysis: RegionAnalysis) -> str:
    """One-line human summary (the REG400 finding message)."""
    summary = analysis.summary()
    return (
        f"{summary['batchable_regions']} batchable region(s) cover "
        f"{summary['batchable_instructions']}/{summary['instructions']} "
        f"instruction(s) ({summary['coverage']:.0%}); longest run "
        f"{summary['max_region_length']}"
    )


def write_region_artifact(directory: str, analysis: RegionAnalysis) -> str:
    """Atomically write one program's region artifact; returns the path."""
    os.makedirs(directory, exist_ok=True)
    safe_name = analysis.program.replace("/", "_").replace("+", "_")
    path = os.path.join(directory, f"{safe_name}.regions.json")
    payload = json.dumps(analysis.to_json(), indent=2, sort_keys=True)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(payload + "\n")
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise
    return path
