"""A small dataflow framework over :class:`ControlFlowGraph`.

Implements the three classic analyses the slice-safety rules need, as
per-instruction worklist solvers (programs here are tens to a few
hundred instructions, so block-granular bitvectors would be premature):

* **reaching definitions** — which static defs of each architectural
  register may be the last writer at a program point;
* **liveness** — which registers may still be read downstream;
* **def-use chains** — for every register use, the defs reaching it.

On top of those sits a light constant propagation used to resolve
memory addresses statically (``LI``/``MOV``/ALU over constants, ``r0``
hardwired to zero), which extends the def-use relation to loads and
stores whose effective address is a compile-time constant.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, FrozenSet, List, Optional, Set, Tuple, Union

from ..isa.instructions import Instruction
from ..isa.opcodes import Opcode
from ..isa.operands import Imm, Reg
from ..isa.semantics import evaluate
from .cfg import ControlFlowGraph

Number = Union[int, float]

#: A definition site: (pc, register index).  ENTRY_DEF marks "defined
#: before the program started" (initial register file contents).
DefSite = Tuple[int, int]
ENTRY_PC = -1


def register_def(instruction: Instruction) -> Optional[int]:
    """The architectural register index defined, if any (``r0`` never is)."""
    dest = instruction.register_def()
    if dest is None or dest.index == 0:
        return None
    return dest.index


def register_uses(instruction: Instruction) -> List[int]:
    """Architectural register indices read by *instruction*."""
    return [reg.index for reg in instruction.register_uses()]


class ReachingDefinitions:
    """Forward may-analysis: defs that can reach each program point.

    ``defs_in[pc]`` holds the definition sites live immediately *before*
    the instruction at ``pc`` executes; every register starts with the
    synthetic entry definition ``(ENTRY_PC, reg)``.
    """

    def __init__(self, cfg: ControlFlowGraph):
        self.cfg = cfg
        size = len(cfg.program.instructions)
        self.defs_in: List[Dict[int, FrozenSet[int]]] = [{} for _ in range(size)]
        self._solve()

    def _transfer(self, pc: int, state: Dict[int, FrozenSet[int]]) -> Dict[int, FrozenSet[int]]:
        defined = register_def(self.cfg.instruction_at(pc))
        if defined is None:
            return state
        out = dict(state)
        out[defined] = frozenset({pc})
        return out

    @staticmethod
    def _merge(a: Dict[int, FrozenSet[int]], b: Dict[int, FrozenSet[int]]) -> Dict[int, FrozenSet[int]]:
        merged = dict(a)
        for reg, defs in b.items():
            merged[reg] = merged.get(reg, frozenset()) | defs
        return merged

    def _solve(self) -> None:
        size = len(self.cfg.program.instructions)
        if not size:
            return
        worklist = [0]
        initialized = {0}
        while worklist:
            pc = worklist.pop()
            out = self._transfer(pc, self.defs_in[pc])
            for succ in self.cfg.successors[pc]:
                merged = self._merge(self.defs_in[succ], out)
                if merged != self.defs_in[succ] or succ not in initialized:
                    initialized.add(succ)
                    self.defs_in[succ] = merged
                    worklist.append(succ)

    def defs_reaching(self, pc: int, reg: int) -> FrozenSet[int]:
        """Static pcs whose def of *reg* may be live just before *pc*.

        An empty set means only the entry value (never written on any
        path to *pc*) can be observed.
        """
        return self.defs_in[pc].get(reg, frozenset())


class Liveness:
    """Backward may-analysis: registers that may still be read."""

    def __init__(self, cfg: ControlFlowGraph):
        self.cfg = cfg
        size = len(cfg.program.instructions)
        self.live_out: List[FrozenSet[int]] = [frozenset() for _ in range(size)]
        self.live_in: List[FrozenSet[int]] = [frozenset() for _ in range(size)]
        self._solve()

    def _solve(self) -> None:
        size = len(self.cfg.program.instructions)
        changed = True
        while changed:
            changed = False
            for pc in range(size - 1, -1, -1):
                out: Set[int] = set()
                for succ in self.cfg.successors[pc]:
                    out |= self.live_in[succ]
                instruction = self.cfg.instruction_at(pc)
                live = set(out)
                defined = register_def(instruction)
                if defined is not None:
                    live.discard(defined)
                live.update(register_uses(instruction))
                live.discard(0)
                frozen_out, frozen_in = frozenset(out), frozenset(live)
                if frozen_out != self.live_out[pc] or frozen_in != self.live_in[pc]:
                    self.live_out[pc] = frozen_out
                    self.live_in[pc] = frozen_in
                    changed = True


@dataclasses.dataclass(frozen=True)
class DefUse:
    """One register use with the definition sites that may feed it."""

    pc: int
    reg: int
    defs: FrozenSet[int]  # static pcs; empty = entry value only


def def_use_chains(cfg: ControlFlowGraph, reaching: Optional[ReachingDefinitions] = None) -> List[DefUse]:
    """Def-use chains for every architectural register use."""
    if reaching is None:
        reaching = ReachingDefinitions(cfg)
    chains = []
    for pc in range(len(cfg.program.instructions)):
        for reg in register_uses(cfg.instruction_at(pc)):
            if reg == 0:
                continue
            chains.append(DefUse(pc=pc, reg=reg, defs=reaching.defs_reaching(pc, reg)))
    return chains


class ConstantFacts:
    """Forward must-analysis tracking registers with a single known value.

    The lattice per register is {unknown} ∪ constants; the merge of two
    different constants is unknown.  ``r0`` is always zero.  Arithmetic
    over known constants is folded through the ISA's own semantics so
    the analysis can never disagree with execution.
    """

    def __init__(self, cfg: ControlFlowGraph):
        self.cfg = cfg
        size = len(cfg.program.instructions)
        #: Known-constant registers just before each pc.  ``None`` as a
        #: whole-map value marks "not yet visited".
        self.consts_in: List[Optional[Dict[int, Number]]] = [None] * size
        self._solve()

    def _transfer(self, pc: int, state: Dict[int, Number]) -> Dict[int, Number]:
        instruction = self.cfg.instruction_at(pc)
        defined = register_def(instruction)
        if defined is None:
            return state
        out = dict(state)
        value = self._evaluate(instruction, state)
        if value is None:
            out.pop(defined, None)
        else:
            out[defined] = value
        return out

    def _evaluate(self, instruction: Instruction, state: Dict[int, Number]) -> Optional[Number]:
        opcode = instruction.opcode
        if not (opcode.is_compute or opcode is Opcode.LI):
            return None
        values: List[Number] = []
        for src in instruction.srcs:
            if isinstance(src, Imm):
                values.append(src.value)
            elif isinstance(src, Reg):
                if src.index == 0:
                    values.append(0)
                elif src.index in state:
                    values.append(state[src.index])
                else:
                    return None
            else:
                return None
        try:
            return evaluate(opcode, tuple(values))
        except Exception:
            return None  # would fault at runtime; leave unknown

    def _solve(self) -> None:
        size = len(self.cfg.program.instructions)
        if not size:
            return
        self.consts_in[0] = {}
        worklist = [0]
        while worklist:
            pc = worklist.pop()
            state = self.consts_in[pc]
            assert state is not None
            out = self._transfer(pc, state)
            for succ in self.cfg.successors[pc]:
                current = self.consts_in[succ]
                if current is None:
                    merged = dict(out)
                else:
                    merged = {
                        reg: value
                        for reg, value in current.items()
                        if out.get(reg) == value
                    }
                if merged != current:
                    self.consts_in[succ] = merged
                    worklist.append(succ)

    def value_at(self, pc: int, reg: int) -> Optional[Number]:
        """The register's proven-constant value just before *pc*, if any."""
        if reg == 0:
            return 0
        state = self.consts_in[pc]
        if state is None:
            return None
        return state.get(reg)

    def resolve_address(self, pc: int) -> Optional[int]:
        """Statically resolved effective address of the LD/ST/RCMP at *pc*."""
        instruction = self.cfg.instruction_at(pc)
        if instruction.opcode in (Opcode.LD, Opcode.RCMP):
            base, offset = instruction.srcs
        elif instruction.opcode is Opcode.ST:
            _, base, offset = instruction.srcs
        else:
            return None
        parts = []
        for operand in (base, offset):
            if isinstance(operand, Imm):
                parts.append(operand.value)
            elif isinstance(operand, Reg):
                value = self.value_at(pc, operand.index)
                if value is None:
                    return None
                parts.append(value)
            else:
                return None
        address = parts[0] + parts[1]
        if isinstance(address, float):
            if not address.is_integer():
                return None
            address = int(address)
        return address


@dataclasses.dataclass(frozen=True)
class MemoryDefUse:
    """A load paired with the stores that may feed it, when resolvable."""

    load_pc: int
    address: int
    store_pcs: FrozenSet[int]


def memory_def_use(cfg: ControlFlowGraph, consts: Optional[ConstantFacts] = None) -> List[MemoryDefUse]:
    """Def-use over statically resolvable memory.

    Covers only loads whose effective address resolves to a constant;
    the matching defs are stores that (a) resolve to the same address or
    (b) do not resolve at all (a may-alias store is a possible writer).
    """
    if consts is None:
        consts = ConstantFacts(cfg)
    stores: List[Tuple[int, Optional[int]]] = []
    loads: List[Tuple[int, int]] = []
    for pc in range(len(cfg.program.instructions)):
        opcode = cfg.instruction_at(pc).opcode
        if opcode is Opcode.ST:
            stores.append((pc, consts.resolve_address(pc)))
        elif opcode in (Opcode.LD, Opcode.RCMP):
            address = consts.resolve_address(pc)
            if address is not None:
                loads.append((pc, address))
    chains = []
    for load_pc, address in loads:
        feeders = frozenset(
            store_pc
            for store_pc, store_address in stores
            if store_address is None or store_address == address
        )
        chains.append(MemoryDefUse(load_pc=load_pc, address=address, store_pcs=feeders))
    return chains
