"""Diagnostic engine for the static verifier: rules, findings, reports.

Every check the static analyzer performs is registered here as a
:class:`Rule` with a *stable* identifier (``SLC103`` never changes
meaning across releases — CI gates, docs, and suppression lists key on
it), a default :class:`Severity`, and a one-line contract.  Checks emit
:class:`Finding` records carrying the rule id, a message, and a source
location (``pc`` plus, where applicable, the owning ``slice_id``) so a
finding always points at a concrete instruction of a concrete artifact.

Severity semantics mirror ``repro runs check``'s exit-code contract:

* ``ERROR`` — the artifact violates an invariant amnesic correctness
  rests on; ``repro lint`` exits non-zero and CI fails.
* ``WARNING`` — a static over-approximation flagged something the
  dynamic oracle may still prove harmless; reported, never gating.
* ``INFO`` — observations (region statistics, unreachable code) that
  feed dashboards and future passes.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, List, Optional


class Severity(enum.Enum):
    """How strongly a finding gates."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def gates(self) -> bool:
        """True when a finding of this severity fails the lint gate."""
        return self is Severity.ERROR


@dataclasses.dataclass(frozen=True)
class Rule:
    """One registered check with a stable identity."""

    rule_id: str
    title: str
    severity: Severity
    description: str


#: The rule catalog.  Append-only: ids are stable public API (documented
#: in docs/static-analysis.md); retiring a rule leaves a tombstone.
RULES: Dict[str, Rule] = {}


def _rule(rule_id: str, title: str, severity: Severity, description: str) -> Rule:
    if rule_id in RULES:
        raise ValueError(f"duplicate rule id {rule_id}")
    rule = Rule(rule_id, title, severity, description)
    RULES[rule_id] = rule
    return rule


# ----------------------------------------------------------------------
# CFG / program-shape rules.
# ----------------------------------------------------------------------
CFG001 = _rule(
    "CFG001", "unreachable-code", Severity.INFO,
    "Main-region instructions unreachable from the program entry.",
)
CFG002 = _rule(
    "CFG002", "fallthrough-into-slice", Severity.ERROR,
    "Normal control flow can fall through into a slice region; slices "
    "must only be entered through their owning RCMP.",
)
CFG003 = _rule(
    "CFG003", "off-end-control", Severity.WARNING,
    "A branch or fallthrough can run off the end of the program, which "
    "faults at runtime if the path is ever taken.",
)

# ----------------------------------------------------------------------
# Slice-safety rules.
# ----------------------------------------------------------------------
SLC100 = _rule(
    "SLC100", "slice-region-shape", Severity.ERROR,
    "A slice region must be straight-line recomputing code: compute "
    "opcodes writing scratch registers, terminated by a single RTN.",
)
SLC101 = _rule(
    "SLC101", "slice-acyclicity", Severity.ERROR,
    "Scratch-file dataflow inside a slice must be acyclic and "
    "initialized: instruction i writes s_i and reads only s_j with "
    "j < i; the RTN returns the root's scratch register.",
)
SLC102 = _rule(
    "SLC102", "rcmp-wiring", Severity.ERROR,
    "Every RCMP must target its registered slice's entry, own that "
    "slice, and carry plain register/immediate address operands.",
)
SLC103 = _rule(
    "SLC103", "rec-placement-clobber", Severity.ERROR,
    "Every checkpointed (Hist) slice input needs exactly one matching "
    "REC planted adjacent to its producer, with no instruction between "
    "the value's definition point and the REC clobbering a checkpointed "
    "register (slice closure).",
)
SLC104 = _rule(
    "SLC104", "live-leaf-clobber", Severity.ERROR,
    "A slice input classified LIVE_REG reads an architectural register "
    "at recompute time; no path from the leaf's producer to the RCMP "
    "may redefine that register.",
)
SLC105 = _rule(
    "SLC105", "rewrite-shape", Severity.ERROR,
    "The rewritten main region must be the original instruction stream "
    "with loads swapped for their RCMPs and RECs inserted — nothing "
    "reordered, dropped, or invented.",
)
SLC106 = _rule(
    "SLC106", "leaf-lowering-consistency", Severity.ERROR,
    "Lowered slice instructions must agree with the slice IR: CONST "
    "inputs as immediates, LIVE_REG inputs as register reads, HIST "
    "inputs as HistRef(leaf_id, slot) operands matching the REC plan.",
)
SLC107 = _rule(
    "SLC107", "checkpoint-load-conflict", Severity.ERROR,
    "A load serving as another slice's checkpoint source must keep "
    "executing: it can never itself be swapped for an RCMP.",
)

# ----------------------------------------------------------------------
# Cost / budget rules.
# ----------------------------------------------------------------------
CST200 = _rule(
    "CST200", "cost-bound", Severity.ERROR,
    "Recorded slice costs must re-derive from the energy model, and "
    "under probabilistic selection every embedded slice must respect "
    "its budget: E_rc (selection) < E_ld (estimated).",
)
CST201 = _rule(
    "CST201", "slice-size-bounds", Severity.ERROR,
    "Slice size, height, scratch-register demand, and Hist leaf ids "
    "must sit within the compiler options' bounds and match the "
    "embedded region's metadata.",
)

# ----------------------------------------------------------------------
# Dead-store soundness.
# ----------------------------------------------------------------------
DST300 = _rule(
    "DST300", "deadstore-soundness", Severity.ERROR,
    "A store may only be reported elidable when every load that ever "
    "consumed one of its values is swapped for recomputation; eliding "
    "a store that feeds a live load breaks the fallback path.",
)

# ----------------------------------------------------------------------
# Region analysis (informational artifacts).
# ----------------------------------------------------------------------
REG400 = _rule(
    "REG400", "region-summary", Severity.INFO,
    "Summary of batchable straight-line regions (the fast-backend "
    "batching precondition).",
)

# ----------------------------------------------------------------------
# Codebase layering.
# ----------------------------------------------------------------------
LAY500 = _rule(
    "LAY500", "layering-violation", Severity.ERROR,
    "A module imports across a forbidden layer boundary (the "
    "semantics/timing/observability split).",
)
LAY501 = _rule(
    "LAY501", "import-cycle", Severity.ERROR,
    "Module-level imports form a cycle.",
)

# ----------------------------------------------------------------------
# Static-vs-dynamic cross check.
# ----------------------------------------------------------------------
XCK600 = _rule(
    "XCK600", "oracle-disagreement", Severity.ERROR,
    "The static verifier passed an artifact the dynamic oracle rejects "
    "— a soundness hole in the rule set; always a hard error.",
)

# ----------------------------------------------------------------------
# Harness failures.
# ----------------------------------------------------------------------
GEN000 = _rule(
    "GEN000", "analysis-error", Severity.ERROR,
    "The artifact could not be compiled or analyzed at all; nothing "
    "below this point was checked.",
)


@dataclasses.dataclass(frozen=True)
class Finding:
    """One diagnostic emitted by one rule against one artifact."""

    rule_id: str
    message: str
    program: str = ""
    pc: Optional[int] = None
    slice_id: Optional[int] = None
    severity: Optional[Severity] = None  # None = the rule's default

    @property
    def rule(self) -> Rule:
        return RULES[self.rule_id]

    @property
    def effective_severity(self) -> Severity:
        return self.severity if self.severity is not None else self.rule.severity

    @property
    def location(self) -> str:
        parts = []
        if self.pc is not None:
            parts.append(f"pc {self.pc}")
        if self.slice_id is not None:
            parts.append(f"slice {self.slice_id}")
        return ", ".join(parts)

    def __str__(self) -> str:
        where = f" [{self.location}]" if self.location else ""
        program = f"{self.program}: " if self.program else ""
        return (
            f"{self.effective_severity.value.upper()} {self.rule_id} "
            f"{program}{self.message}{where}"
        )

    def to_json(self) -> dict:
        return {
            "rule": self.rule_id,
            "severity": self.effective_severity.value,
            "program": self.program,
            "pc": self.pc,
            "slice_id": self.slice_id,
            "message": self.message,
        }


@dataclasses.dataclass
class LintReport:
    """Every finding the verifier produced for one artifact."""

    program: str
    findings: List[Finding] = dataclasses.field(default_factory=list)

    def add(
        self,
        rule: Rule,
        message: str,
        pc: Optional[int] = None,
        slice_id: Optional[int] = None,
        severity: Optional[Severity] = None,
    ) -> Finding:
        finding = Finding(
            rule_id=rule.rule_id,
            message=message,
            program=self.program,
            pc=pc,
            slice_id=slice_id,
            severity=severity,
        )
        self.findings.append(finding)
        return finding

    def extend(self, findings: List[Finding]) -> None:
        self.findings.extend(findings)

    def by_severity(self, severity: Severity) -> List[Finding]:
        return [f for f in self.findings if f.effective_severity is severity]

    @property
    def errors(self) -> List[Finding]:
        return self.by_severity(Severity.ERROR)

    @property
    def ok(self) -> bool:
        """True when nothing gate-worthy was found (static PASS)."""
        return not self.errors

    def rule_ids(self) -> List[str]:
        return sorted({f.rule_id for f in self.findings})

    def to_json(self) -> dict:
        return {
            "program": self.program,
            "ok": self.ok,
            "findings": [f.to_json() for f in self.findings],
        }


def render_report(report: LintReport, max_findings: int = 0) -> str:
    """Human-readable rendering of one report."""
    if not report.findings:
        return f"{report.program}: clean"
    lines = [
        f"{report.program}: {len(report.errors)} error(s), "
        f"{len(report.by_severity(Severity.WARNING))} warning(s), "
        f"{len(report.by_severity(Severity.INFO))} note(s)"
    ]
    shown = report.findings
    if max_findings and len(shown) > max_findings:
        shown = shown[:max_findings]
    lines.extend(f"  {finding}" for finding in shown)
    if shown is not report.findings:
        lines.append(f"  ... ({len(report.findings) - len(shown)} more)")
    return "\n".join(lines)
