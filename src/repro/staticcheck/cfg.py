"""Control-flow graphs over mini-ISA programs.

The CFG treats the *main region* (everything outside embedded slice
regions) as ordinary control flow and each slice region as a private,
straight-line subgraph only enterable through its owning ``RCMP``:

* conditional branches have two successors (fallthrough, target);
* ``JMP``/``JAL`` go to their label; ``JR`` is approximated by the
  return-site set — the pc after every ``JAL`` in the program (the ISA
  has no other way to materialize a code address);
* ``RCMP`` has its fallthrough successor *and* a slice-entry edge; the
  slice's terminating ``RTN`` returns to the RCMP's fallthrough, which
  is how the scheduler actually resumes (paper section 3.3.2);
* ``HALT`` ends execution.

A fallthrough or branch that lands at ``len(program)`` "runs off the
end"; ``validate_program`` permits such labels, so the CFG records the
possibility instead of failing (rule CFG003 reports it).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from ..isa.instructions import Instruction
from ..isa.opcodes import Category, Opcode
from ..isa.program import Program

#: Control opcodes with an unconditional transfer (no fallthrough edge).
_NO_FALLTHROUGH = frozenset({Opcode.JMP, Opcode.JAL, Opcode.JR, Opcode.HALT,
                             Opcode.RTN})


@dataclasses.dataclass(frozen=True)
class Edge:
    """One control-flow edge, tagged with how it is taken."""

    src: int
    dst: int
    kind: str  # "fall" | "branch" | "jump" | "call" | "return" | "rcmp" | "rtn"


@dataclasses.dataclass
class BasicBlock:
    """A maximal single-entry straight-line run of instructions."""

    index: int
    start: int
    end: int  # exclusive
    successors: List[int] = dataclasses.field(default_factory=list)
    predecessors: List[int] = dataclasses.field(default_factory=list)

    @property
    def pcs(self) -> range:
        return range(self.start, self.end)

    def __contains__(self, pc: int) -> bool:
        return self.start <= pc < self.end


class ControlFlowGraph:
    """Per-instruction and per-block control flow of one program."""

    def __init__(self, program: Program):
        self.program = program
        size = len(program.instructions)
        self._return_sites = tuple(
            pc + 1
            for pc, instruction in enumerate(program.instructions)
            if instruction.opcode is Opcode.JAL and pc + 1 <= size
        )
        self.edges: List[Edge] = []
        self.successors: Dict[int, List[int]] = {pc: [] for pc in range(size)}
        self.off_end: Set[int] = set()  # pcs with a possible off-end transfer
        self._build_edges()
        self.predecessors: Dict[int, List[int]] = {pc: [] for pc in range(size)}
        for edge in self.edges:
            if edge.dst < size:
                self.predecessors[edge.dst].append(edge.src)
        self.blocks: List[BasicBlock] = []
        self.block_of: Dict[int, int] = {}
        self._build_blocks()

    # ------------------------------------------------------------------
    # Edge construction.
    # ------------------------------------------------------------------
    def _add_edge(self, src: int, dst: int, kind: str) -> None:
        if dst >= len(self.program.instructions):
            self.off_end.add(src)
            return
        self.edges.append(Edge(src, dst, kind))
        self.successors[src].append(dst)

    def _build_edges(self) -> None:
        program = self.program
        for pc, instruction in enumerate(program.instructions):
            opcode = instruction.opcode
            if opcode is Opcode.HALT:
                continue
            if opcode is Opcode.RTN:
                region = program.slice_containing(pc)
                if region is not None:
                    self._add_edge(pc, region.load_pc + 1, "rtn")
                continue
            if opcode is Opcode.JR:
                for site in self._return_sites:
                    self._add_edge(pc, site, "return")
                continue
            if opcode in (Opcode.JMP, Opcode.JAL):
                kind = "call" if opcode is Opcode.JAL else "jump"
                self._add_edge(pc, program.pc_of(instruction.target), kind)
                continue
            if opcode is Opcode.RCMP:
                self._add_edge(pc, pc + 1, "fall")
                self._add_edge(pc, program.pc_of(instruction.target), "rcmp")
                continue
            if opcode.category is Category.BRANCH:
                self._add_edge(pc, pc + 1, "fall")
                self._add_edge(pc, program.pc_of(instruction.target), "branch")
                continue
            self._add_edge(pc, pc + 1, "fall")

    # ------------------------------------------------------------------
    # Block construction.
    # ------------------------------------------------------------------
    def _leaders(self) -> List[int]:
        size = len(self.program.instructions)
        leaders: Set[int] = set()
        if size:
            leaders.add(0)
        for edge in self.edges:
            if edge.kind != "fall":
                leaders.add(edge.dst)
        for pc, instruction in enumerate(self.program.instructions):
            if instruction.opcode.category.is_control and pc + 1 < size:
                leaders.add(pc + 1)
            if instruction.opcode is Opcode.RCMP and pc + 1 < size:
                leaders.add(pc + 1)
        for region in self.program.slices.values():
            leaders.add(region.start)
            if region.end < size:
                leaders.add(region.end)
        return sorted(leaders)

    def _build_blocks(self) -> None:
        size = len(self.program.instructions)
        leaders = self._leaders()
        for index, start in enumerate(leaders):
            end = leaders[index + 1] if index + 1 < len(leaders) else size
            block = BasicBlock(index=index, start=start, end=end)
            self.blocks.append(block)
            for pc in range(start, end):
                self.block_of[pc] = index
        for block in self.blocks:
            if block.start == block.end:
                continue
            last = block.end - 1
            seen: Set[int] = set()
            for dst in self.successors[last]:
                succ = self.block_of[dst]
                if succ not in seen:
                    seen.add(succ)
                    block.successors.append(succ)
                    self.blocks[succ].predecessors.append(block.index)

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------
    def instruction_at(self, pc: int) -> Instruction:
        return self.program.instructions[pc]

    def block_containing(self, pc: int) -> BasicBlock:
        return self.blocks[self.block_of[pc]]

    def reachable_pcs(self, entry: int = 0) -> FrozenSet[int]:
        """All pcs reachable from *entry* along CFG edges."""
        if not self.program.instructions:
            return frozenset()
        seen: Set[int] = set()
        stack = [entry]
        while stack:
            pc = stack.pop()
            if pc in seen:
                continue
            seen.add(pc)
            stack.extend(self.successors[pc])
        return frozenset(seen)

    def reaches(self, src: int, dst: int, avoiding: Optional[int] = None) -> bool:
        """True when a CFG path leads from *src* to *dst*.

        With *avoiding* set, only paths whose interior skips that pc
        count (the path may still start or end there).
        """
        stack = list(self.successors[src])
        seen: Set[int] = set()
        while stack:
            pc = stack.pop()
            if pc == dst:
                return True
            if pc in seen or pc == avoiding:
                continue
            seen.add(pc)
            stack.extend(self.successors[pc])
        return False

    def iter_main_pcs(self) -> Iterator[int]:
        """PCs of the main region (outside every slice region)."""
        for pc in range(len(self.program.instructions)):
            if self.program.slice_containing(pc) is None:
                yield pc

    def edge_pairs(self) -> List[Tuple[int, int]]:
        return [(edge.src, edge.dst) for edge in self.edges]


def build_cfg(program: Program) -> ControlFlowGraph:
    """Construct the CFG of *program*."""
    return ControlFlowGraph(program)
