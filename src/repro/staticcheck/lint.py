"""The `repro lint` driver: sweep artifacts, cross-check, prove rules.

Orchestrates the static analyses over the two artifact populations the
repo ships — the kernel suite (compiled under the paper's energy model)
and the fuzz corpus (compiled exactly as the dynamic oracle compiles
it) — and layers three meta-checks on top:

* **cross-check** — every corpus entry's static verdict is compared
  with the dynamic oracle's; a static PASS on an artifact the oracle
  rejects is a soundness hole and reports XCK600 (always ERROR);
* **prove-rules** — each deliberately broken pass from
  :mod:`repro.staticcheck.faults` must be flagged with its expected
  rule id on at least one corpus program, proving the rules bite;
* **self** — the codebase layering lint over the installed package.

Exit-code semantics (mirroring `repro runs check`): 0 clean, 1 findings
at gating severity, 2 usage errors.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Optional, Tuple

from ..compiler.amnesic_pass import CompilationResult, PassOptions, compile_amnesic
from ..energy.model import EnergyModel
from ..energy.tech import paper_energy_model
from ..errors import ReproError
from ..fuzz.corpus import EXPECT_CLASSIC_FAULT, load_corpus
from ..fuzz.oracle import check_spec, default_fuzz_model
from ..fuzz.runner import entry_satisfied
from ..fuzz.spec import materialize
from ..isa.program import Program
from ..telemetry.runtime import get_telemetry
from ..workloads.suite import REGISTRY
from . import diagnostics as D
from .diagnostics import LintReport, Severity
from .faults import BROKEN_PASSES
from .layering import check_layering, default_package_root
from .regions import RegionAnalysis, analyze_regions, describe, write_region_artifact
from .rules import check_program, verify_compilation

KIND_KERNEL = "kernel"
KIND_CORPUS = "corpus"

#: Cross-check outcomes recorded per corpus entry.
AGREE = "agree"
STATIC_PASS_DYNAMIC_FAIL = "static-pass-dynamic-fail"
STATIC_FAIL_DYNAMIC_PASS = "static-fail-dynamic-pass"

Progress = Optional[Callable[[str], None]]


@dataclasses.dataclass
class ProgramResult:
    """One linted artifact."""

    name: str
    kind: str  # KIND_KERNEL | KIND_CORPUS
    report: LintReport
    regions: Optional[RegionAnalysis] = None
    slice_count: int = 0
    cross_check: Optional[str] = None

    def to_json(self) -> dict:
        payload = self.report.to_json()
        payload["kind"] = self.kind
        payload["slices"] = self.slice_count
        if self.regions is not None:
            payload["regions"] = self.regions.summary()
        if self.cross_check is not None:
            payload["cross_check"] = self.cross_check
        return payload


@dataclasses.dataclass
class ProveOutcome:
    """Did one deliberately broken pass get caught?"""

    name: str
    expected_rule: str
    triggered_on: Optional[str]  # program that exposed it, None = missed
    rules_seen: List[str] = dataclasses.field(default_factory=list)
    attempted: int = 0

    @property
    def ok(self) -> bool:
        return self.triggered_on is not None

    def to_json(self) -> dict:
        return {
            "pass": self.name,
            "expected_rule": self.expected_rule,
            "ok": self.ok,
            "triggered_on": self.triggered_on,
            "rules_seen": self.rules_seen,
            "attempted": self.attempted,
        }


@dataclasses.dataclass
class LintRun:
    """Everything one `repro lint` invocation concluded."""

    results: List[ProgramResult] = dataclasses.field(default_factory=list)
    layering: Optional[LintReport] = None
    prove: List[ProveOutcome] = dataclasses.field(default_factory=list)

    @property
    def reports(self) -> List[LintReport]:
        reports = [result.report for result in self.results]
        if self.layering is not None:
            reports.append(self.layering)
        return reports

    @property
    def error_count(self) -> int:
        return sum(len(report.errors) for report in self.reports)

    @property
    def warning_count(self) -> int:
        return sum(
            len(report.by_severity(Severity.WARNING)) for report in self.reports
        )

    @property
    def ok(self) -> bool:
        return self.error_count == 0 and all(p.ok for p in self.prove)

    def to_json(self) -> dict:
        payload: dict = {
            "ok": self.ok,
            "errors": self.error_count,
            "warnings": self.warning_count,
            "programs": [result.to_json() for result in self.results],
        }
        if self.layering is not None:
            payload["layering"] = self.layering.to_json()
        if self.prove:
            payload["prove_rules"] = [outcome.to_json() for outcome in self.prove]
        return payload


@dataclasses.dataclass
class LintSettings:
    """What to sweep and how."""

    benchmarks: Optional[List[str]] = None  # None = the whole suite
    include_kernels: bool = True
    corpus_dir: Optional[str] = None  # None = skip the corpus
    scale: float = 1.0
    cross_check: bool = False
    prove_rules: bool = False
    self_check: bool = False
    regions_out: Optional[str] = None
    backend: Optional[str] = None


def _count_findings(report: LintReport) -> None:
    telemetry = get_telemetry()
    for finding in report.findings:
        telemetry.counter(
            "lint.findings",
            rule=finding.rule_id,
            severity=finding.effective_severity.value,
        ).inc()


def lint_program(
    name: str,
    program: Program,
    model: EnergyModel,
    options: PassOptions,
    backend: Optional[str] = None,
    regions_out: Optional[str] = None,
) -> Tuple[ProgramResult, Optional[CompilationResult]]:
    """Compile *program* and run the full rule set over the artifact."""
    telemetry = get_telemetry()
    with telemetry.span("lint.program", program=name):
        try:
            compilation = compile_amnesic(
                program, model, options=options, backend=backend
            )
        except ReproError as error:
            report = LintReport(program=name)
            report.add(D.GEN000, f"amnesic compilation failed: {error}")
            _count_findings(report)
            return ProgramResult(name=name, kind="", report=report), None
        report = verify_compilation(name, program, compilation, model)
        regions = analyze_regions(compilation.binary.program)
        report.add(D.REG400, describe(regions))
        if regions_out is not None:
            write_region_artifact(regions_out, regions)
        _count_findings(report)
        result = ProgramResult(
            name=name,
            kind="",
            report=report,
            regions=regions,
            slice_count=len(compilation.rslices),
        )
        return result, compilation


def _lint_kernels(run: LintRun, settings: LintSettings, progress: Progress) -> None:
    names = settings.benchmarks or list(REGISTRY.names())
    known = set(REGISTRY.names())
    unknown = [name for name in names if name not in known]
    if unknown:
        raise KeyError(", ".join(sorted(unknown)))
    model = paper_energy_model()
    for name in names:
        program = REGISTRY.get(name).instantiate(settings.scale)
        result, _ = lint_program(
            name,
            program,
            model,
            PassOptions(),
            backend=settings.backend,
            regions_out=settings.regions_out,
        )
        result.kind = KIND_KERNEL
        get_telemetry().counter("lint.programs", kind=KIND_KERNEL).inc()
        run.results.append(result)
        if progress:
            progress(f"kernel {name}: {_verdict(result.report)}")


def _lint_corpus(run: LintRun, settings: LintSettings, progress: Progress) -> None:
    assert settings.corpus_dir is not None
    entries = load_corpus(settings.corpus_dir)
    model = default_fuzz_model()
    options = PassOptions()
    for entry in entries:
        name = entry.name
        program = materialize(entry.spec)
        if entry.expect == EXPECT_CLASSIC_FAULT:
            # The entry's classic run faults by design (scheduled trap,
            # budget exhaustion), so there is no amnesic artifact to
            # verify.  The entry exists to pin batching fault parity:
            # analyze the *original* program's regions and, under
            # --cross-check, require the dynamic oracle to reproduce the
            # fault with zero equivalence failures.
            result = _lint_expected_fault(name, program, settings)
            get_telemetry().counter("lint.programs", kind=KIND_CORPUS).inc()
            if settings.cross_check:
                result.cross_check = _cross_check_expected_fault(
                    result.report, entry, options
                )
            run.results.append(result)
            if progress:
                progress(f"corpus {name}: {_verdict(result.report)}")
            continue
        result, compilation = lint_program(
            name,
            program,
            model,
            options,
            backend=settings.backend,
            regions_out=settings.regions_out,
        )
        result.kind = KIND_CORPUS
        get_telemetry().counter("lint.programs", kind=KIND_CORPUS).inc()
        if settings.cross_check and compilation is not None:
            result.cross_check = _cross_check(result.report, entry, options)
        run.results.append(result)
        if progress:
            progress(f"corpus {name}: {_verdict(result.report)}")


def _lint_expected_fault(
    name: str, program: Program, settings: LintSettings
) -> ProgramResult:
    """Region-only lint for a corpus entry whose classic run faults."""
    report = LintReport(program=name)
    regions = analyze_regions(program)
    report.add(D.REG400, describe(regions))
    if settings.regions_out is not None:
        write_region_artifact(settings.regions_out, regions)
    _count_findings(report)
    return ProgramResult(
        name=name, kind=KIND_CORPUS, report=report, regions=regions
    )


def _cross_check_expected_fault(
    report: LintReport, entry, options: PassOptions
) -> str:
    """An expected-fault entry agrees when the fault reproduces cleanly."""
    verdict = check_spec(
        entry.spec,
        model=default_fuzz_model(),
        options=options,
        **({"policies": entry.policies} if entry.policies else {}),
        **(
            {"max_instructions": entry.max_instructions}
            if entry.max_instructions
            else {}
        ),
    )
    if entry_satisfied(entry, verdict):
        return AGREE
    report.add(
        D.XCK600,
        f"expected a classic fault, dynamic oracle says: "
        f"{verdict.summary()}",
    )
    _count_findings(report)
    return STATIC_PASS_DYNAMIC_FAIL


def _cross_check(report: LintReport, entry, options: PassOptions) -> str:
    """Compare the static verdict with the dynamic oracle's."""
    policies = entry.policies or None
    verdict = check_spec(
        entry.spec,
        model=default_fuzz_model(),
        options=options,
        **({"policies": policies} if policies else {}),
    )
    static_ok = report.ok
    dynamic_ok = verdict.ok
    if static_ok and not dynamic_ok:
        report.add(
            D.XCK600,
            f"static verdict PASS, dynamic oracle rejects: "
            f"{verdict.summary()}",
        )
        _count_findings(report)
        return STATIC_PASS_DYNAMIC_FAIL
    if not static_ok and dynamic_ok:
        return STATIC_FAIL_DYNAMIC_PASS
    return AGREE


def prove_rules(
    settings: LintSettings, progress: Progress = None
) -> List[ProveOutcome]:
    """Run every broken pass until each is flagged with its expected rule."""
    if settings.corpus_dir is None:
        return []
    entries = load_corpus(settings.corpus_dir)
    model = default_fuzz_model()
    options = PassOptions()
    # Two artifacts per entry: the normal compilation, and a variant
    # with selection suppressed.  On this corpus every store-fed load
    # is profitable and gets swapped, so only the no-swap variant has
    # stores feeding live (non-swapped) loads — the material the
    # dead-store rules need.
    suppressed = PassOptions(min_instances=10**6)
    compiled: Dict[str, Tuple[Program, CompilationResult]] = {}
    for entry in entries:
        program = materialize(entry.spec)
        try:
            compilation = compile_amnesic(
                program, model, options=options, backend=settings.backend
            )
            compiled[entry.name] = (program, compilation)
            compiled[f"{entry.name}@noswap"] = (
                program,
                compile_amnesic(
                    program, model, profile=compilation.profile,
                    options=suppressed,
                ),
            )
        except ReproError:
            continue

    outcomes = []
    for pass_name, (expected_rule, broken_pass) in sorted(BROKEN_PASSES.items()):
        outcome = ProveOutcome(name=pass_name, expected_rule=expected_rule,
                               triggered_on=None)
        for name, (program, compilation) in compiled.items():
            broken = broken_pass(program, compilation, model)
            if broken is None:
                continue
            outcome.attempted += 1
            broken_compilation, broken_deadstores = broken
            report = verify_compilation(
                name, program, broken_compilation, model,
                deadstores=broken_deadstores,
            )
            if expected_rule in report.rule_ids():
                outcome.triggered_on = name
                outcome.rules_seen = report.rule_ids()
                break
        outcomes.append(outcome)
        if progress:
            verdict = (
                f"caught on {outcome.triggered_on}" if outcome.ok
                else f"MISSED ({outcome.attempted} program(s) tried)"
            )
            progress(f"broken pass {pass_name} [{expected_rule}]: {verdict}")
    return outcomes


def run_lint(settings: LintSettings, progress: Progress = None) -> LintRun:
    """Execute one full lint sweep per *settings*."""
    run = LintRun()
    telemetry = get_telemetry()
    with telemetry.span("lint.run"):
        if settings.self_check:
            run.layering = check_layering(default_package_root())
            _count_findings(run.layering)
            if progress:
                progress(f"layering: {_verdict(run.layering)}")
        if settings.include_kernels:
            _lint_kernels(run, settings, progress)
        if settings.corpus_dir is not None:
            _lint_corpus(run, settings, progress)
        if settings.prove_rules:
            run.prove = prove_rules(settings, progress)
        telemetry.gauge("lint.errors").set(run.error_count)
    return run


def _verdict(report: LintReport) -> str:
    if report.ok:
        extras = len(report.findings) - len(report.errors)
        return "ok" if not extras else f"ok ({extras} note(s))"
    return f"{len(report.errors)} error(s)"
