"""Top-level execution API: run classic, run amnesic, compare.

This is the public surface most users want::

    from repro import compare
    result = compare(program, policy="FLC")
    print(result.edp_gain_percent)

:func:`evaluate_policies` reproduces one column group of the paper's
Figures 3-5: it profiles once, builds the probabilistic binary (shared
by Compiler/FLC/LLC/C-Oracle) and the all-valid binary (Oracle), runs
the classic baseline, and measures every requested policy against it.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, Optional

from ..compiler.amnesic_pass import (
    SELECTION_ALL_VALID,
    SELECTION_PROBABILISTIC,
    CompilationResult,
    PassOptions,
    compile_amnesic,
)
from ..compiler.formation import FORMATION_OPTIMAL
from ..energy.account import EnergyAccount
from ..energy.model import EnergyModel
from ..energy.tech import paper_energy_model
from ..isa.program import Program
from ..machine.cpu import DEFAULT_MAX_INSTRUCTIONS, CPU
from ..machine.stats import RunStats
from ..telemetry.runtime import get_telemetry
from .backend import resolve_backend
from .policies import POLICY_NAMES, Policy, make_policy


@dataclasses.dataclass
class ExecutionOutcome:
    """Result of one program execution (classic or amnesic)."""

    label: str
    stats: RunStats
    account: EnergyAccount
    cpu: CPU

    @property
    def energy_nj(self) -> float:
        return self.account.total_energy_nj

    @property
    def time_ns(self) -> float:
        return self.account.total_time_ns

    @property
    def edp(self) -> float:
        return self.account.edp


def percent_gain(baseline: float, value: float) -> float:
    """Gain of *value* over *baseline* in percent (positive = improvement).

    The one formula behind every y-axis of Figures 3-5, the sweep axes,
    and the break-even bisection; a zero baseline reports zero gain.
    """
    if baseline == 0:
        return 0.0
    return 100.0 * (baseline - value) / baseline


@dataclasses.dataclass
class PolicyComparison:
    """Amnesic-vs-classic outcome for one policy."""

    policy: str
    classic: ExecutionOutcome
    amnesic: ExecutionOutcome
    compilation: CompilationResult

    _gain = staticmethod(percent_gain)

    @property
    def edp_gain_percent(self) -> float:
        """Positive = amnesic wins (the paper's Figure 3 y-axis)."""
        return self._gain(self.classic.edp, self.amnesic.edp)

    @property
    def energy_gain_percent(self) -> float:
        """Figure 4 y-axis."""
        return self._gain(self.classic.energy_nj, self.amnesic.energy_nj)

    @property
    def time_gain_percent(self) -> float:
        """Figure 5 y-axis (% reduction in execution time)."""
        return self._gain(self.classic.time_ns, self.amnesic.time_ns)


def _oracle_options(options: PassOptions) -> PassOptions:
    """The Oracle configuration's compile options.

    The paper's Oracle runs on "a different (i.e., optimal) set of
    RSlices baked in the binary" whose "decisions are based on actual
    (not probabilistic or predicted) energy costs" (section 5.1).  Our
    analog: keep every *valid* slice (no probabilistic profitability
    filter) and cut each slice at its minimum-actual-cost point instead
    of the budgeted greedy growth.  The Oracle-vs-C-Oracle gap then
    measures exactly what the paper's does — how much the probabilistic
    model's slice set leaves on the table.
    """
    return dataclasses.replace(
        options, selection=SELECTION_ALL_VALID, formation=FORMATION_OPTIMAL
    )


def run_classic(
    program: Program,
    model: Optional[EnergyModel] = None,
    max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
    tracer=None,
    backend: Optional[str] = None,
) -> ExecutionOutcome:
    """Execute *program* under classic semantics."""
    model = model or paper_energy_model()
    cpu_cls = resolve_backend(backend).cpu_cls
    cpu = cpu_cls(program, model, tracer=tracer, max_instructions=max_instructions)
    stats = cpu.run()
    return ExecutionOutcome(label="classic", stats=stats, account=cpu.account, cpu=cpu)


def run_amnesic(
    compilation: CompilationResult,
    policy: str | Policy = "FLC",
    model: Optional[EnergyModel] = None,
    max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
    verify: bool = True,
    tracer=None,
    backend: Optional[str] = None,
    **cpu_kwargs,
) -> ExecutionOutcome:
    """Execute a compiled amnesic binary under *policy*."""
    model = model or paper_energy_model()
    if isinstance(policy, str):
        policy = make_policy(policy)
    amnesic_cls = resolve_backend(backend).amnesic_cls
    cpu = amnesic_cls(
        compilation.binary,
        model,
        policy,
        tracer=tracer,
        max_instructions=max_instructions,
        verify=verify,
        **cpu_kwargs,
    )
    stats = cpu.run()
    return ExecutionOutcome(
        label=policy.name, stats=stats, account=cpu.account, cpu=cpu
    )


def compare(
    program: Program,
    policy: str = "FLC",
    model: Optional[EnergyModel] = None,
    options: PassOptions = PassOptions(),
    max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
    verify: bool = True,
    backend: Optional[str] = None,
) -> PolicyComparison:
    """Compile *program* amnesically and compare against classic execution."""
    model = model or paper_energy_model()
    if policy == "Oracle":
        options = _oracle_options(options)
    compilation = compile_amnesic(program, model, options=options, backend=backend)
    classic = run_classic(
        program, model, max_instructions=max_instructions, backend=backend
    )
    amnesic = run_amnesic(
        compilation,
        policy,
        model,
        max_instructions=max_instructions,
        verify=verify,
        backend=backend,
    )
    return PolicyComparison(
        policy=policy, classic=classic, amnesic=amnesic, compilation=compilation
    )


@dataclasses.dataclass
class EvaluationSetup:
    """The compile-once/run-many half of a policy evaluation.

    Splitting :func:`evaluate_policies` into *prepare* (classic baseline
    + compiled binaries) and *measure* (one amnesic run per policy)
    gives the parallel engine a work unit that survives pickling: every
    field is plain data, so a worker process can prepare a setup once
    and measure any number of policies against it — or the whole setup
    can cross a process boundary inside a result envelope.
    """

    program: Program
    model: EnergyModel
    options: PassOptions
    max_instructions: int
    verify: bool
    classic: ExecutionOutcome
    probabilistic: CompilationResult
    all_valid: Optional[CompilationResult] = None
    #: Backend name (plain data, so the setup still pickles); None means
    #: "resolve from the environment at measure time".
    backend: Optional[str] = None

    def compilation_for(self, policy: str) -> CompilationResult:
        """The binary a policy runs: all-valid for Oracle, else shared.

        The Oracle binary is compiled lazily (reusing the probabilistic
        run's profile) the first time an Oracle measurement asks for it.
        """
        if policy != "Oracle":
            return self.probabilistic
        if self.all_valid is None:
            self.all_valid = compile_amnesic(
                self.program,
                self.model,
                profile=self.probabilistic.profile,
                options=_oracle_options(self.options),
                backend=self.backend,
            )
        return self.all_valid

    def measure(self, policy: str) -> PolicyComparison:
        """Run one policy against the prepared classic baseline."""
        compilation = self.compilation_for(policy)
        with get_telemetry().span("evaluate.policy", policy=policy):
            amnesic = run_amnesic(
                compilation,
                policy,
                self.model,
                max_instructions=self.max_instructions,
                verify=self.verify,
                backend=self.backend,
            )
        return PolicyComparison(
            policy=policy, classic=self.classic, amnesic=amnesic,
            compilation=compilation,
        )


def prepare_evaluation(
    program: Program,
    model: Optional[EnergyModel] = None,
    options: PassOptions = PassOptions(),
    max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
    verify: bool = True,
    backend: Optional[str] = None,
) -> EvaluationSetup:
    """Profile, compile, and run the classic baseline once."""
    model = model or paper_energy_model()
    classic = run_classic(
        program, model, max_instructions=max_instructions, backend=backend
    )
    probabilistic = compile_amnesic(
        program,
        model,
        options=dataclasses.replace(options, selection=SELECTION_PROBABILISTIC),
        backend=backend,
    )
    return EvaluationSetup(
        program=program,
        model=model,
        options=options,
        max_instructions=max_instructions,
        verify=verify,
        classic=classic,
        probabilistic=probabilistic,
        backend=backend,
    )


def evaluate_policies(
    program: Program,
    policies: Iterable[str] = POLICY_NAMES,
    model: Optional[EnergyModel] = None,
    options: PassOptions = PassOptions(),
    max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
    verify: bool = True,
    backend: Optional[str] = None,
) -> Dict[str, PolicyComparison]:
    """Measure every policy against the same classic baseline.

    Profiling runs once; the probabilistic binary is shared by the
    Compiler/FLC/LLC/C-Oracle configurations and the all-valid binary
    serves Oracle — mirroring the paper's section 5.1 experimental
    setup.
    """
    telemetry = get_telemetry()
    policies = tuple(policies)
    with telemetry.span(
        "evaluate", program=program.name, policies=",".join(policies)
    ):
        setup = prepare_evaluation(
            program,
            model,
            options=options,
            max_instructions=max_instructions,
            verify=verify,
            backend=backend,
        )
        return {name: setup.measure(name) for name in policies}
