"""The history table (Hist) buffering non-recomputable leaf inputs.

Paper section 3.2: "the amnesic microarchitecture can buffer
non-recomputable input operands for each RSlice leaf in the dedicated
history table Hist.  Each entry of Hist keeps the address (leaf-address)
and non-recomputable input operands of a leaf instruction."

Entries are keyed by ``(slice_id, leaf_id)`` — the reproduction's
spelling of the paper's ``RSlice-ID`` + ``leaf-address`` pair (section
3.5).  The table is capacity-limited with LRU replacement; an evicted
entry simply disappears, and the scheduler detects the missing
checkpoint at the next RCMP and falls back to the plain load — the
paper's "failed REC instructions ... enforce the corresponding RCMP to
skip recomputation".
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from typing import Dict, Optional, Tuple, Union

from ..errors import HistOverflow

Value = Union[int, float]

#: Paper section 5.4: "a Hist design of no more than 600 entries can
#: accommodate such demand".
DEFAULT_HIST_CAPACITY = 600

Key = Tuple[int, int]  # (slice_id, leaf_id)


@dataclasses.dataclass
class HistStats:
    """Traffic and pressure counters for the history table."""

    writes: int = 0
    reads: int = 0
    evictions: int = 0
    missing_reads: int = 0
    high_water: int = 0


class HistoryTable:
    """Capacity-limited checkpoint store with LRU replacement.

    With ``strict=True`` the table raises :class:`HistOverflow` instead
    of evicting — the literal reading of the paper's "failed REC
    instructions" (section 3.5), useful for sizing studies that must
    observe the first overflow rather than degrade gracefully.
    """

    def __init__(self, capacity: int = DEFAULT_HIST_CAPACITY, strict: bool = False):
        if capacity < 1:
            raise ValueError("Hist capacity must be positive")
        self.capacity = capacity
        self.strict = strict
        self.stats = HistStats()
        self._entries: "OrderedDict[Key, Tuple[Value, ...]]" = OrderedDict()

    # ------------------------------------------------------------------
    # REC side.
    # ------------------------------------------------------------------
    def record(self, slice_id: int, leaf_id: int, values: Tuple[Value, ...]) -> Optional[Key]:
        """Checkpoint *values* for a leaf; returns the evicted key, if any.

        Re-recording an existing key updates it in place.  When the
        table is full, the least recently used entry is evicted to make
        room — its slice will fall back to the plain load until its
        leaf re-executes.
        """
        key = (slice_id, leaf_id)
        self.stats.writes += 1
        evicted: Optional[Key] = None
        if key in self._entries:
            self._entries.move_to_end(key)
        elif len(self._entries) >= self.capacity:
            if self.strict:
                raise HistOverflow(
                    f"history table full ({self.capacity} entries) while "
                    f"recording slice {slice_id} leaf {leaf_id}"
                )
            evicted, _ = self._entries.popitem(last=False)
            self.stats.evictions += 1
        self._entries[key] = tuple(values)
        self.stats.high_water = max(self.stats.high_water, len(self._entries))
        return evicted

    # ------------------------------------------------------------------
    # Recomputation side.
    # ------------------------------------------------------------------
    def has(self, slice_id: int, leaf_id: int) -> bool:
        """True when the leaf's checkpoint is present (no LRU effect)."""
        return (slice_id, leaf_id) in self._entries

    def read(self, slice_id: int, leaf_id: int, slot: int) -> Value:
        """Read one checkpointed operand (promotes the entry in LRU order)."""
        key = (slice_id, leaf_id)
        entry = self._entries.get(key)
        if entry is None:
            self.stats.missing_reads += 1
            raise KeyError(f"no Hist entry for slice {slice_id} leaf {leaf_id}")
        self.stats.reads += 1
        self._entries.move_to_end(key)
        return entry[slot]

    def invalidate_slice(self, slice_id: int) -> int:
        """Drop all entries of *slice_id*; returns how many were dropped."""
        doomed = [key for key in self._entries if key[0] == slice_id]
        for key in doomed:
            del self._entries[key]
        return len(doomed)

    @property
    def occupancy(self) -> int:
        return len(self._entries)

    def observe(self) -> Dict[str, float]:
        """Flat snapshot for the telemetry timeline sampler.

        ``occupancy``/``high_water`` are levels; the rest is cumulative
        traffic.  Polled only at window boundaries.
        """
        stats = self.stats
        return {
            "occupancy": self.occupancy,
            "high_water": stats.high_water,
            "writes": stats.writes,
            "reads": stats.reads,
            "evictions": stats.evictions,
            "missing_reads": stats.missing_reads,
        }
