"""Execution backend registry: classic reference vs fast interpreter.

A *backend* is a pair of CPU classes — one for classic semantics, one
for amnesic binaries — that agree bit-for-bit on architectural state,
RunStats, hierarchy state, and energy accounts.  ``classic`` is the
reference implementation in :mod:`repro.machine.cpu` /
:mod:`repro.core.amnesic_cpu`; ``fast`` layers the predecoded dispatch
loop of :mod:`repro.machine.fastpath` over the same handlers;
``fast-batched`` additionally fuses statically-proven straight-line
regions (:mod:`repro.staticcheck.regions`) into single dispatches.  The fuzz
oracle's backend check (:func:`repro.fuzz.oracle.check_backend_equivalence`)
holds the pair to exact equivalence, the same way the differential
oracle holds amnesic execution to the classic baseline.

Selection order: an explicit ``backend=`` argument (CLI ``--backend``)
wins, then the ``REPRO_BACKEND`` environment variable, then
``classic``.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Optional, Tuple, Type

from ..machine.cpu import CPU
from ..machine.fastpath import (
    BatchedExecutionMixin,
    BatchedFastCPU,
    FastCPU,
    FastExecutionMixin,
)
from .amnesic_cpu import AmnesicCPU

#: Environment variable consulted when no explicit backend is passed.
ENV_BACKEND = "REPRO_BACKEND"

DEFAULT_BACKEND = "classic"


class FastAmnesicCPU(FastExecutionMixin, AmnesicCPU):
    """The fast backend for amnesic binaries.

    The predecoded loop specializes REC (the hot amnesic opcode — it
    runs once per leaf-producer execution) and routes RCMP through the
    classic scheduler/traversal machinery via the handler thunk, so
    policy decisions, slice traversals, Hist/SFile/IBuff state, and
    every amnesic energy charge are byte-for-byte the classic ones.
    """


class BatchedFastAmnesicCPU(BatchedExecutionMixin, AmnesicCPU):
    """The region-batched fast backend for amnesic binaries.

    Straight-line runs between amnesic/control opcodes fuse into single
    dispatches (the region analyzer never batches across RCMP/REC/RTN),
    while the amnesic machinery itself executes through the same
    specialized/thunked closures as :class:`FastAmnesicCPU`.
    """


@dataclasses.dataclass(frozen=True)
class Backend:
    """One named execution backend."""

    name: str
    cpu_cls: Type[CPU]
    amnesic_cls: Type[AmnesicCPU]


BACKENDS = {
    "classic": Backend("classic", CPU, AmnesicCPU),
    "fast": Backend("fast", FastCPU, FastAmnesicCPU),
    "fast-batched": Backend("fast-batched", BatchedFastCPU, BatchedFastAmnesicCPU),
}

BACKEND_NAMES: Tuple[str, ...] = tuple(BACKENDS)


def resolve_backend(name: Optional[str] = None) -> Backend:
    """Resolve a backend by name, falling back to env then default."""
    if name is None:
        name = os.environ.get(ENV_BACKEND) or DEFAULT_BACKEND
    try:
        return BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown execution backend {name!r} "
            f"(expected one of {', '.join(BACKENDS)})"
        ) from None


__all__ = [
    "BACKENDS",
    "BACKEND_NAMES",
    "DEFAULT_BACKEND",
    "ENV_BACKEND",
    "Backend",
    "BatchedFastAmnesicCPU",
    "FastAmnesicCPU",
    "resolve_backend",
]
