"""The instruction buffer (IBuff) caching recomputing instructions.

Paper section 3.2: IBuff is "an optional structure to help reduce the
pressure on instruction cache under recomputation"; each entry holds one
recomputing instruction and the fetch logic fills it like an
instruction cache (modelled after L1-I, section 4).

Since the reproduction's energy model does not charge per-fetch energy
on the classic path, IBuff's role here is to quantify the *pressure*
recomputation would put on instruction supply: hit/miss statistics by
slice pc feed the storage-sizing analysis (section 5.4: "less than 50
entries for SFile or IBuff can cover most of the RSlices").
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from typing import Dict

#: Default IBuff capacity in instructions.
DEFAULT_IBUFF_CAPACITY = 64


@dataclasses.dataclass
class IBuffStats:
    """Hit/miss counters for the instruction buffer."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    high_water: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class InstructionBuffer:
    """LRU buffer over slice-instruction pcs."""

    def __init__(self, capacity: int = DEFAULT_IBUFF_CAPACITY):
        if capacity < 1:
            raise ValueError("IBuff capacity must be positive")
        self.capacity = capacity
        self.stats = IBuffStats()
        self._entries: "OrderedDict[int, None]" = OrderedDict()

    def fetch(self, pc: int) -> bool:
        """Fetch the slice instruction at *pc*; returns hit/miss."""
        if pc in self._entries:
            self.stats.hits += 1
            self._entries.move_to_end(pc)
            return True
        self.stats.misses += 1
        if len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        self._entries[pc] = None
        self.stats.high_water = max(self.stats.high_water, len(self._entries))
        return False

    @property
    def occupancy(self) -> int:
        return len(self._entries)

    def observe(self) -> Dict[str, float]:
        """Flat snapshot for the telemetry timeline sampler."""
        stats = self.stats
        return {
            "occupancy": self.occupancy,
            "high_water": stats.high_water,
            "hits": stats.hits,
            "misses": stats.misses,
            "evictions": stats.evictions,
        }
