"""Runtime policies: when does the scheduler fire recomputation?

Paper section 3.3.1 defines the design space; the evaluation (section
5.1) compares five configurations:

* **Compiler** — "always triggers recomputation, for each RCMP
  encountered"; no probing, so no probe cost, but possibly wasteful
  recomputation of L1-resident values.
* **FLC** — probe the first-level cache and fire on a miss; the probe
  costs one L1 tag lookup.
* **LLC** — probe down to the last-level cache and fire on an LLC miss;
  the much larger L2 probe overhead is "the main delimiter for LLC".
* **C-Oracle** — knows, at no cost, where the load would be serviced and
  fires iff the *actual* load energy exceeds the slice's actual
  traversal energy.  Runs on the compiler's probabilistic slice set.
* **Oracle** — the same perfect decision rule over the *all-valid* slice
  set (every validated slice is in the binary, not just the
  probabilistically profitable ones).

Policies are stateless decision functions; the amnesic CPU supplies an
:class:`RcmpContext` per RCMP and charges the returned probe cost on the
appropriate path.
"""

from __future__ import annotations

import abc
import dataclasses
from typing import Optional

from ..compiler.annotate import SliceInfo
from ..energy.account import Cost
from ..energy.model import EnergyModel
from ..machine.config import Level
from ..machine.hierarchy import MemoryHierarchy
from ..telemetry.runtime import get_telemetry


@dataclasses.dataclass
class RcmpContext:
    """Everything a policy may inspect at an RCMP."""

    address: int
    slice_info: SliceInfo
    hierarchy: MemoryHierarchy
    model: EnergyModel


@dataclasses.dataclass(frozen=True)
class Decision:
    """A policy's verdict for one RCMP instance.

    ``probe_cost`` is the tag-lookup overhead incurred to reach the
    verdict.  It is charged when recomputation fires (the paper's
    "recomputation cost includes the cost of probing the on-chip memory
    hierarchy") and when a fallback load follows a missed probe; a probe
    that *hits* folds into the ensuing load's normal access walk.
    """

    fire: bool
    probe_cost: Optional[Cost] = None
    probe_hit_level: Optional[Level] = None


#: ``{(session id, policy, series key): Counter}`` — decision metering
#: runs once per RCMP, so the registry's label normalisation is cached
#: per telemetry session.  Keyed by the session object itself (weakly,
#: via id + identity check) so a fresh session re-resolves.
_DECISION_METERS: dict = {}


def _decision_counter(telemetry, policy_name: str, key: str, labels: dict):
    cache = _DECISION_METERS
    session, counters = cache.get("entry", (None, None))
    if session is not telemetry:
        counters = {}
        cache["entry"] = (telemetry, counters)
    counter = counters.get((policy_name, key))
    if counter is None:
        counter = counters[(policy_name, key)] = telemetry.counter(
            f"policy.{key.split('/', 1)[0]}", policy=policy_name, **labels
        )
    return counter


def _count_decision(policy_name: str, decision: Decision) -> Decision:
    """Meter one scheduler verdict; free when telemetry is disabled."""
    telemetry = get_telemetry()
    if not telemetry.enabled:
        return decision
    verdict = "fire" if decision.fire else "skip"
    _decision_counter(
        telemetry, policy_name, f"decisions/{verdict}", {"verdict": verdict}
    ).inc()
    if decision.probe_hit_level is not None:
        level = decision.probe_hit_level.value
        _decision_counter(
            telemetry, policy_name, f"probe_hits/{level}", {"level": level}
        ).inc()
    elif decision.probe_cost is not None:
        _decision_counter(telemetry, policy_name, "probe_misses", {}).inc()
    return decision


class Policy(abc.ABC):
    """A runtime recomputation-firing policy."""

    name: str = "abstract"

    @abc.abstractmethod
    def decide(self, context: RcmpContext) -> Decision:
        """Decide whether recomputation along this RCMP's slice fires."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class CompilerPolicy(Policy):
    """Always fire: trust the compiler's probabilistic energy model."""

    name = "Compiler"

    def decide(self, context: RcmpContext) -> Decision:
        return _count_decision(self.name, Decision(fire=True))


class FLCPolicy(Policy):
    """Fire on a first-level cache miss (branch-on-FLC-miss)."""

    name = "FLC"

    def decide(self, context: RcmpContext) -> Decision:
        found = context.hierarchy.probe(context.address, through=Level.L1)
        cost = context.hierarchy.probe_cost(found, through=Level.L1)
        return _count_decision(self.name, Decision(
            fire=found is None,
            probe_cost=Cost(cost.energy_nj, cost.latency_ns),
            probe_hit_level=found,
        ))


class LLCPolicy(Policy):
    """Fire on a last-level cache miss (branch-on-LLC-miss)."""

    name = "LLC"

    def decide(self, context: RcmpContext) -> Decision:
        found = context.hierarchy.probe(context.address, through=Level.L2)
        cost = context.hierarchy.probe_cost(found, through=Level.L2)
        return _count_decision(self.name, Decision(
            fire=found is None,
            probe_cost=Cost(cost.energy_nj, cost.latency_ns),
            probe_hit_level=found,
        ))


class OracleDecisionPolicy(Policy):
    """Perfect residence knowledge: fire iff E_ld(actual) > E_rc(actual).

    Used for both C-Oracle (on the probabilistic binary) and Oracle (on
    the all-valid binary); the two configurations differ only in which
    slices exist, not in how the runtime decides.
    """

    name = "C-Oracle"

    def __init__(self, name: str = "C-Oracle"):
        self.name = name

    def decide(self, context: RcmpContext) -> Decision:
        level = context.hierarchy.residence(context.address)
        load_cost = context.model.load_cost_at(level)
        recompute_cost = context.slice_info.rslice.traversal_cost
        return _count_decision(
            self.name,
            Decision(fire=load_cost.energy_nj > recompute_cost.energy_nj),
        )


def make_policy(name: str) -> Policy:
    """Instantiate a policy by its evaluation name."""
    table = {
        "Compiler": CompilerPolicy,
        "FLC": FLCPolicy,
        "LLC": LLCPolicy,
    }
    if name in table:
        return table[name]()
    if name in ("C-Oracle", "Oracle"):
        return OracleDecisionPolicy(name)
    raise ValueError(f"unknown policy {name!r}")


#: The paper's Figure 3 legend order.
POLICY_NAMES = ("Oracle", "C-Oracle", "Compiler", "FLC", "LLC")
