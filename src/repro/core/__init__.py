"""Amnesic execution runtime: microarchitecture, scheduler policies, API."""

from .amnesic_cpu import AmnesicCPU
from .execution import (
    ExecutionOutcome,
    PolicyComparison,
    compare,
    evaluate_policies,
    run_amnesic,
    run_classic,
)
from .hist import DEFAULT_HIST_CAPACITY, HistoryTable, HistStats
from .ibuff import DEFAULT_IBUFF_CAPACITY, IBuffStats, InstructionBuffer
from .policies import (
    POLICY_NAMES,
    CompilerPolicy,
    Decision,
    FLCPolicy,
    LLCPolicy,
    OracleDecisionPolicy,
    Policy,
    RcmpContext,
    make_policy,
)
from .sfile import DEFAULT_SFILE_CAPACITY, Renamer, SFile, SFileStats

__all__ = [
    "AmnesicCPU",
    "CompilerPolicy",
    "DEFAULT_HIST_CAPACITY",
    "DEFAULT_IBUFF_CAPACITY",
    "DEFAULT_SFILE_CAPACITY",
    "Decision",
    "ExecutionOutcome",
    "FLCPolicy",
    "HistStats",
    "HistoryTable",
    "IBuffStats",
    "InstructionBuffer",
    "LLCPolicy",
    "OracleDecisionPolicy",
    "POLICY_NAMES",
    "Policy",
    "PolicyComparison",
    "RcmpContext",
    "Renamer",
    "SFile",
    "SFileStats",
    "compare",
    "evaluate_policies",
    "make_policy",
    "run_amnesic",
    "run_classic",
]
