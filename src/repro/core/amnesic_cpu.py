"""The amnesic CPU: classic interpreter + recomputation machinery.

:class:`AmnesicCPU` extends the classic interpreter with the paper's
Figure 2 microarchitecture and the section 3.3 scheduler:

* ``REC`` records non-recomputable leaf inputs into the history table
  (step 0 in Figure 2) whenever the leaf's producer executes;
* ``RCMP`` resolves its branching condition through the configured
  runtime policy; on *fire* the slice is traversed through the
  Renamer/SFile with Hist-supplied leaf operands and the recomputed
  value is copied into the eliminated load's destination register; on
  *skip* (or on fallback, when a required checkpoint is missing or the
  slice's scratch demand exceeds the SFile) the load is performed
  classically;
* verification mode (default on) asserts that every recomputed value
  equals the value the eliminated load would have read — amnesic
  execution must be semantically invisible.
"""

from __future__ import annotations

from typing import Optional, Union

from ..compiler.annotate import AmnesicBinary, SliceInfo
from ..energy.account import GROUP_AMNESIC, GROUP_HIST, GROUP_LOAD, GROUP_NONMEM
from ..errors import ArithmeticFault, MachineFault, RecomputationMismatch
from ..isa.instructions import Instruction
from ..isa.opcodes import Opcode
from ..isa.operands import HistRef, Imm, Reg, SReg
from ..isa.semantics import _EVALUATORS, evaluate, wrap_int64
from ..machine.cpu import DEFAULT_MAX_INSTRUCTIONS, CPU
from ..telemetry.runtime import get_telemetry
from .hist import DEFAULT_HIST_CAPACITY, HistoryTable
from .ibuff import DEFAULT_IBUFF_CAPACITY, InstructionBuffer
from .policies import Decision, Policy, RcmpContext
from .sfile import DEFAULT_SFILE_CAPACITY, Renamer, SFile

Value = Union[int, float]

_I64_MAX = (1 << 63) - 1
_I64_MIN = -(1 << 63)

#: Raw int templates for the wrap-distributive opcodes: for any ints,
#: ``wrap(a OP b) == evaluator(a, b)`` (mod-2^64 arithmetic distributes
#: over the input wraps; ``& 63`` and the bitwise ops depend only on the
#: operands' low bits) — the same proof the fast backend's codegen
#: relies on, so the slice fast path may skip the per-operand wraps and
#: only range-check the result.
_SLICE_INT_OPS = {
    Opcode.ADD: lambda a, b: a + b,
    Opcode.SUB: lambda a, b: a - b,
    Opcode.MUL: lambda a, b: a * b,
    Opcode.AND: lambda a, b: a & b,
    Opcode.OR: lambda a, b: a | b,
    Opcode.XOR: lambda a, b: a ^ b,
    Opcode.SHL: lambda a, b: a << (b & 63),
}


class AmnesicCPU(CPU):
    """Executes amnesic binaries under a runtime recomputation policy."""

    TELEMETRY_LABEL = "amnesic"

    def __init__(
        self,
        binary: AmnesicBinary,
        model,
        policy: Policy,
        tracer=None,
        max_instructions: int = DEFAULT_MAX_INSTRUCTIONS,
        hist_capacity: int = DEFAULT_HIST_CAPACITY,
        sfile_capacity: int = DEFAULT_SFILE_CAPACITY,
        ibuff_capacity: int = DEFAULT_IBUFF_CAPACITY,
        verify: bool = True,
        concurrent_offload: bool = False,
    ):
        super().__init__(
            binary.program, model, tracer=tracer, max_instructions=max_instructions
        )
        self.binary = binary
        self.policy = policy
        self.verify = verify
        #: Paper footnote 4 (future work): "offloading recomputation to
        #: spare or idle cores ... enabling concurrent recomputation".
        #: When set, slice-traversal latency is modelled as perfectly
        #: hidden by a helper core - energy is still paid - giving an
        #: upper bound on what concurrent recomputation could add.
        self.concurrent_offload = concurrent_offload
        self.hist = HistoryTable(hist_capacity)
        self.sfile = SFile(sfile_capacity)
        self.renamer = Renamer(self.sfile)
        self.ibuff = InstructionBuffer(ibuff_capacity)
        #: The paper's ``recompute`` control flag: set while an RSlice is
        #: being traversed.
        self.recompute = False
        #: Slice ids that recomputed at least once (Table 5 bookkeeping).
        self.fired_slice_ids: set = set()
        #: ``{slice_id: runner | None}`` predecoded traversal closures;
        #: ``None`` marks a slice the fast path must not handle (see
        #: :meth:`_build_slice_runner`).
        self._slice_closures: dict = {}

    def __getstate__(self):
        # Slice runners are closures over this instance's hot state —
        # unpicklable and meaningless in another process.  Drop them;
        # _traverse_slice rebuilds on demand.
        state = dict(super().__getstate__())
        state.pop("_slice_closures", None)
        state.pop("_rcmp_meters", None)
        return state

    # ------------------------------------------------------------------
    # Timeline observability.
    # ------------------------------------------------------------------
    def observe(self) -> dict:
        """Classic run counters plus the amnesic structure snapshots."""
        snapshot = super().observe()
        for prefix, structure in (
            ("sfile", self.sfile),
            ("hist", self.hist),
            ("ibuff", self.ibuff),
        ):
            for name, value in structure.observe().items():
                snapshot[f"{prefix}.{name}"] = value
        stats = self.stats
        snapshot["rcmp.encountered"] = stats.rcmp_encountered
        snapshot["rcmp.fired"] = stats.recomputations_fired
        snapshot["rcmp.skipped"] = stats.recomputations_skipped
        snapshot["rcmp.fallbacks"] = stats.recomputation_fallbacks
        snapshot["slice.instructions"] = stats.slice_instructions_executed
        return snapshot

    # ------------------------------------------------------------------
    # Amnesic opcode dispatch.
    # ------------------------------------------------------------------
    def _execute_amnesic(self, instruction: Instruction) -> None:
        if instruction.opcode is Opcode.REC:
            self._execute_rec(instruction)
        elif instruction.opcode is Opcode.RCMP:
            self._execute_rcmp(instruction)
        else:  # RTN outside a slice traversal is a control-flow bug
            raise MachineFault("RTN reached outside recomputation", pc=self.pc)

    def _execute_rec(self, instruction: Instruction) -> None:
        values = tuple(self.resolve(src) for src in instruction.srcs)
        self.hist.record(instruction.slice_id, instruction.leaf_id, values)
        self.stats.hist_writes += 1
        self.account.charge(GROUP_AMNESIC, self.model.rec_cost())
        self._emit(instruction, operand_values=values)
        self.pc += 1

    def _execute_rcmp(self, instruction: Instruction) -> None:
        self.stats.rcmp_encountered += 1
        rcmp_pc = self.pc
        info = self.binary.info_for(instruction.slice_id)
        address = self.effective_address(instruction.srcs[0], instruction.srcs[1])
        # RCMP itself is a fused conditional branch (paper section 4).
        self.account.charge(GROUP_AMNESIC, self.model.rcmp_cost())

        decision = self.policy.decide(
            RcmpContext(
                address=address,
                slice_info=info,
                hierarchy=self.hierarchy,
                model=self.model,
            )
        )
        if decision.fire and self._slice_ready(info):
            fired = self._fire_recomputation(instruction, info, address, decision)
            if fired:
                self._record_rcmp(
                    rcmp_pc, info, address, decision, "fired",
                    "policy fired; slice recomputed",
                )
                return
            # The traversal aborted (paper section 2.3: faults during
            # recomputation are recorded and deferred, never allowed to
            # corrupt architectural state); perform the load instead.
            self.stats.recomputation_fallbacks += 1
            self._record_rcmp(
                rcmp_pc, info, address, decision, "fallback",
                "slice traversal aborted on an arithmetic fault",
            )
            self._fallback_load(instruction, address, decision)
        else:
            if decision.fire:
                self.stats.recomputation_fallbacks += 1
                self._record_rcmp(
                    rcmp_pc, info, address, decision, "fallback",
                    "checkpoint missing from Hist or SFile demand exceeds capacity",
                )
            else:
                self.stats.recomputations_skipped += 1
                self._record_rcmp(
                    rcmp_pc, info, address, decision, "skipped",
                    "policy declined to fire",
                )
            self._fallback_load(instruction, address, decision)

    def _record_rcmp(
        self,
        rcmp_pc: int,
        info: SliceInfo,
        address: int,
        decision: Decision,
        outcome: str,
        reason: str,
    ) -> None:
        """Emit one per-RCMP decision record (free when telemetry is off).

        Called *before* any fallback load so the recorded residence level
        reflects the hierarchy state the scheduler actually saw, not the
        post-fill state.
        """
        telemetry = get_telemetry()
        if not telemetry.enabled:
            return
        # Instrument handles are stable per (policy, outcome) within one
        # telemetry session; resolving them through the registry's label
        # normalisation on every RCMP is pure overhead on the hot
        # scheduler path.  The cache is keyed by session identity so a
        # CPU reused under a different session re-resolves.
        meters = self.__dict__.get("_rcmp_meters")
        if meters is None or meters[0] is not telemetry:
            meters = self.__dict__["_rcmp_meters"] = (telemetry, {})
        instruments = meters[1]
        cached = instruments.get(outcome)
        if cached is None:
            cached = instruments[outcome] = (
                telemetry.counter(
                    "rcmp.outcomes", policy=self.policy.name, outcome=outcome
                ),
                telemetry.histogram(
                    "rcmp.slice_length", policy=self.policy.name, outcome=outcome
                ),
                telemetry.counter("rcmp.hist", state="hit"),
                telemetry.counter("rcmp.hist", state="miss"),
            )
        outcomes, lengths, hist_hit, hist_miss = cached
        outcomes.inc()
        lengths.observe(info.length)
        hist_ready = all(
            self.hist.has(info.slice_id, leaf_id) for leaf_id in info.hist_leaf_ids
        )
        (hist_hit if hist_ready else hist_miss).inc()
        if telemetry.sink is None:
            # No event sink: skip building the per-decision record (the
            # residence probe and field dict are only for the sink).
            return
        probe_hit = decision.probe_hit_level
        telemetry.event(
            "rcmp",
            pc=rcmp_pc,
            slice=info.slice_id,
            address=address,
            policy=self.policy.name,
            outcome=outcome,
            reason=reason,
            residence=self.hierarchy.residence(address).value,
            slice_len=info.length,
            hist_ready=hist_ready,
            sfile_ok=info.sreg_demand <= self.sfile.capacity,
            probe_hit=None if probe_hit is None else probe_hit.value,
        )

    # ------------------------------------------------------------------
    # The two RCMP outcomes.
    # ------------------------------------------------------------------
    def _slice_ready(self, info: SliceInfo) -> bool:
        """Can this slice recompute right now?"""
        if info.sreg_demand > self.sfile.capacity:
            return False
        return all(
            self.hist.has(info.slice_id, leaf_id) for leaf_id in info.hist_leaf_ids
        )

    def _fire_recomputation(
        self,
        instruction: Instruction,
        info: SliceInfo,
        address: int,
        decision: Decision,
    ) -> bool:
        """Traverse the slice; returns False if the traversal aborted.

        A recomputing instruction may fault on checkpointed operands the
        original never combined (e.g. a division whose divisor was
        re-recorded as zero).  Paper section 2.3 defers exception
        handling past recomputation; since an aborted recomputation has
        touched only the scratch file, the safe deferral is to discard
        it and perform the inherited load.
        """
        if decision.probe_cost is not None:
            self.account.charge(GROUP_AMNESIC, decision.probe_cost)
        try:
            value = self._traverse_slice(info)
        except ArithmeticFault:
            self.stats.recomputation_aborts += 1
            return False
        residence = self.hierarchy.residence(address)
        self.stats.count_swapped_load(residence)
        self.fired_slice_ids.add(info.slice_id)
        if self.verify:
            expected = self.memory.read(address)
            if value != expected:
                raise RecomputationMismatch(
                    info.slice_id, expected=expected, actual=value, pc=self.pc
                )
        self.write_register(instruction.dest, value)
        self._emit(instruction, result=value, address=address, taken=True)
        self.pc += 1
        return True

    def _fallback_load(
        self, instruction: Instruction, address: int, decision: Decision
    ) -> None:
        """Perform the classic load the RCMP inherited."""
        if decision.fire and decision.probe_cost is not None:
            # The probe missed everywhere but recomputation could not
            # proceed; the lookup energy is sunk on top of the load.
            self.account.charge(GROUP_AMNESIC, decision.probe_cost)
        value = self.memory.read(address)
        access = self.hierarchy.load(address)
        self.account.charge(GROUP_LOAD, self.model.access_cost(access))
        self.stats.loads_performed += 1
        self.write_register(instruction.dest, value)
        self._emit(
            instruction, result=value, address=address, level=access.level, taken=False
        )
        self.pc += 1

    # ------------------------------------------------------------------
    # Slice traversal (paper section 3.3.2, "amnesic activity when
    # recompute is set").
    # ------------------------------------------------------------------
    def _charge_traversal(self, group: str, cost) -> None:
        """Charge a slice-traversal cost, hiding latency when offloaded."""
        if self.concurrent_offload:
            self.account.charge_energy_only(group, cost.energy_nj)
        else:
            self.account.charge(group, cost)

    def _traverse_slice(self, info: SliceInfo) -> Value:
        if self.tracer is None and self._timeline is None:
            # Untraced runs take the predecoded fast path: nothing on
            # the interpreted path below emits an observable event when
            # no tracer/timeline is attached, so the closures can bind
            # operands, evaluators, and memoised costs once per slice.
            cache = self.__dict__.get("_slice_closures")
            if cache is None:
                cache = self.__dict__["_slice_closures"] = {}
            try:
                runner = cache[info.slice_id]
            except KeyError:
                runner = cache[info.slice_id] = self._build_slice_runner(
                    info.slice_id
                )
            if runner is not None:
                return runner()
        return self._traverse_slice_interpreted(info)

    def _build_slice_runner(self, slice_id: int):
        """Predecode one slice into a traversal closure, or ``None``.

        The closure replays exactly what :meth:`_traverse_slice_interpreted`
        does for an untraced run — same structure calls in the same
        order (ibuff fetch, stat counts, Hist reads with their charges,
        evaluation, Renamer writes, per-element charges, dynamic-index
        increments) — so state after a traversal, *including* one
        aborted mid-slice by an :class:`ArithmeticFault`, is identical.
        Slices the interpreted path would fault on structurally (a
        non-SReg destination, a missing RTN terminator, an opcode
        without value semantics) predecode to ``None`` and stay on the
        interpreted path, which raises at the exact same element.
        """
        region = self.program.slices[slice_id]
        program = self.program
        model = self.model
        stats = self.stats
        renamer = self.renamer
        registers = self.registers
        fetch = self.ibuff.fetch
        hist_read = self.hist.read
        count = stats.count_instruction
        write = renamer.write
        cpu = self
        if self.concurrent_offload:
            def charge(group, cost, _energy=self.account.charge_energy_only):
                _energy(group, cost.energy_nj)
        else:
            charge = self.account.charge
        hist_cost = model.hist_read_cost()

        def make_reader(src):
            if isinstance(src, SReg):
                return lambda: renamer.read(src)
            if isinstance(src, HistRef):
                def read_hist(_leaf=src.leaf_id, _slot=src.slot):
                    value = hist_read(slice_id, _leaf, _slot)
                    charge(GROUP_HIST, hist_cost)
                    stats.hist_reads += 1
                    return value
                return read_hist
            if isinstance(src, Reg):
                if src.index == 0:
                    return lambda: 0
                return lambda _i=src.index: registers[_i]
            if isinstance(src, Imm):
                return lambda _v=src.value: _v
            return None

        elements = []
        for slice_pc in range(region.start, region.end - 1):
            instruction = program.instruction_at(slice_pc)
            fn = _EVALUATORS.get(instruction.opcode)
            if fn is None or not isinstance(instruction.dest, SReg):
                return None
            readers = tuple(make_reader(src) for src in instruction.srcs)
            if any(reader is None for reader in readers):
                return None
            category = instruction.category
            cost = model.slice_instruction_cost(category)
            dest = instruction.dest
            opcode = instruction.opcode
            int_op = _SLICE_INT_OPS.get(opcode)
            if int_op is not None and len(readers) == 2:
                def element(_pc=slice_pc, _cat=category, _cost=cost,
                            _dest=dest, _fn=fn, _op=int_op,
                            _r0=readers[0], _r1=readers[1]):
                    fetch(_pc)
                    count(_cat)
                    stats.slice_instructions_executed += 1
                    a = _r0()
                    b = _r1()
                    if type(a) is int and type(b) is int:
                        x = _op(a, b)
                        if x > _I64_MAX or x < _I64_MIN:
                            x = wrap_int64(x)
                    else:
                        x = _fn(a, b)
                    write(_dest, x)
                    charge(GROUP_NONMEM, _cost)
                    cpu._dynamic_index += 1
            elif opcode in (Opcode.MOV, Opcode.LI) and len(readers) == 1:
                # The evaluator is the identity for both.
                def element(_pc=slice_pc, _cat=category, _cost=cost,
                            _dest=dest, _r0=readers[0]):
                    fetch(_pc)
                    count(_cat)
                    stats.slice_instructions_executed += 1
                    write(_dest, _r0())
                    charge(GROUP_NONMEM, _cost)
                    cpu._dynamic_index += 1
            elif len(readers) == 1:
                def element(_pc=slice_pc, _cat=category, _cost=cost,
                            _dest=dest, _fn=fn, _r0=readers[0]):
                    fetch(_pc)
                    count(_cat)
                    stats.slice_instructions_executed += 1
                    write(_dest, _fn(_r0()))
                    charge(GROUP_NONMEM, _cost)
                    cpu._dynamic_index += 1
            elif len(readers) == 2:
                def element(_pc=slice_pc, _cat=category, _cost=cost,
                            _dest=dest, _fn=fn, _r0=readers[0],
                            _r1=readers[1]):
                    fetch(_pc)
                    count(_cat)
                    stats.slice_instructions_executed += 1
                    write(_dest, _fn(_r0(), _r1()))
                    charge(GROUP_NONMEM, _cost)
                    cpu._dynamic_index += 1
            else:
                def element(_pc=slice_pc, _cat=category, _cost=cost,
                            _dest=dest, _fn=fn, _readers=readers):
                    fetch(_pc)
                    count(_cat)
                    stats.slice_instructions_executed += 1
                    write(_dest, _fn(*[read() for read in _readers]))
                    charge(GROUP_NONMEM, _cost)
                    cpu._dynamic_index += 1
            elements.append(element)

        rtn = program.instruction_at(region.end - 1)
        if rtn.opcode is not Opcode.RTN:
            return None
        elements = tuple(elements)
        rtn_dest = rtn.dest
        rtn_category = rtn.category
        rtn_cost = model.rtn_cost()

        def runner():
            cpu.recompute = True
            renamer.begin_slice()
            try:
                for element in elements:
                    element()
                result = renamer.read(rtn_dest)
                count(rtn_category)
                charge(GROUP_AMNESIC, rtn_cost)
                cpu._dynamic_index += 1
                return result
            finally:
                renamer.end_slice()
                cpu.recompute = False

        return runner

    def _traverse_slice_interpreted(self, info: SliceInfo) -> Value:
        region = self.program.slices[info.slice_id]
        self.recompute = True
        self.renamer.begin_slice()
        try:
            for slice_pc in range(region.start, region.end - 1):
                slice_instruction = self.program.instruction_at(slice_pc)
                self.ibuff.fetch(slice_pc)
                self._execute_slice_instruction(slice_instruction, info)
            rtn_instruction = self.program.instruction_at(region.end - 1)
            if rtn_instruction.opcode is not Opcode.RTN:
                raise MachineFault(
                    f"slice {info.slice_id} does not end in RTN", pc=region.end - 1
                )
            result = self.renamer.read(rtn_instruction.dest)
            self.stats.count_instruction(rtn_instruction.category)
            self._charge_traversal(GROUP_AMNESIC, self.model.rtn_cost())
            self._emit(rtn_instruction, result=result)
            return result
        finally:
            self.renamer.end_slice()
            self.recompute = False

    def _execute_slice_instruction(
        self, instruction: Instruction, info: SliceInfo
    ) -> None:
        self.stats.count_instruction(instruction.category)
        self.stats.slice_instructions_executed += 1
        operands = []
        for src in instruction.srcs:
            if isinstance(src, SReg):
                operands.append(self.renamer.read(src))
            elif isinstance(src, HistRef):
                value = self.hist.read(info.slice_id, src.leaf_id, src.slot)
                self._charge_traversal(GROUP_HIST, self.model.hist_read_cost())
                self.stats.hist_reads += 1
                operands.append(value)
            elif isinstance(src, Reg):
                operands.append(self.resolve(src))
            elif isinstance(src, Imm):
                operands.append(src.value)
            else:  # pragma: no cover - operand kinds are exhaustive
                raise MachineFault(f"bad slice operand {src}", pc=self.pc)
        result = evaluate(instruction.opcode, operands)
        if not isinstance(instruction.dest, SReg):
            raise MachineFault(
                f"recomputing instruction must write the scratch file: "
                f"{instruction}",
                pc=self.pc,
            )
        self.renamer.write(instruction.dest, result)
        self._charge_traversal(
            GROUP_NONMEM, self.model.slice_instruction_cost(instruction.category)
        )
        self._emit(instruction, operand_values=tuple(operands), result=result)
