"""The scratch file (SFile) and its renamer (paper section 3.2).

During recomputation "the data flows through the SFile, leaving the
(physical) registerfile intact" — this is Condition-I, no architectural
state corruption.  Slice instructions name *virtual* scratch registers
(:class:`~repro.isa.operands.SReg`); the :class:`Renamer` "maps register
references per recomputing instruction to SFile entries", mimicking the
rename logic of an out-of-order machine, and the :class:`SFile` is the
physical backing store with the usual space (de)allocation rules.

Only one RSlice is ever in flight (paper section 2.3), so the renamer's
mapping is reset wholesale at slice exit.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Union

from ..errors import SchedulerError
from ..isa.operands import SReg

Value = Union[int, float]

#: Default number of physical SFile entries.  Section 5.4 observes that
#: "less than 50 entries for SFile or IBuff can cover most of the
#: RSlices"; 64 gives headroom for the conservative worst case.
DEFAULT_SFILE_CAPACITY = 64


@dataclasses.dataclass
class SFileStats:
    """Occupancy and traffic counters for the scratch file."""

    writes: int = 0
    reads: int = 0
    high_water: int = 0
    rename_requests: int = 0


class SFile:
    """Physical scratch-register storage with an invalid bit per entry."""

    def __init__(self, capacity: int = DEFAULT_SFILE_CAPACITY):
        if capacity < 1:
            raise ValueError("SFile capacity must be positive")
        self.capacity = capacity
        self.stats = SFileStats()
        self._values: List[Optional[Value]] = [None] * capacity
        self._free: List[int] = list(range(capacity - 1, -1, -1))

    def allocate(self) -> int:
        """Claim a free physical entry; raises when the file is full."""
        if not self._free:
            raise SchedulerError("SFile exhausted during recomputation")
        entry = self._free.pop()
        self.stats.high_water = max(
            self.stats.high_water, self.capacity - len(self._free)
        )
        return entry

    def write(self, entry: int, value: Value) -> None:
        self._values[entry] = value
        self.stats.writes += 1

    def read(self, entry: int) -> Value:
        value = self._values[entry]
        if value is None:
            raise SchedulerError(f"read of invalid SFile entry {entry}")
        self.stats.reads += 1
        return value

    def release_all(self) -> None:
        """Invalidate every entry (slice exit)."""
        self._values = [None] * self.capacity
        self._free = list(range(self.capacity - 1, -1, -1))

    @property
    def occupancy(self) -> int:
        return self.capacity - len(self._free)

    def observe(self) -> Dict[str, float]:
        """Flat snapshot for the telemetry timeline sampler.

        ``occupancy``/``high_water`` are levels; reads/writes/renames are
        cumulative.  Only polled at window boundaries, so the hot path
        never pays for it.
        """
        stats = self.stats
        return {
            "occupancy": self.occupancy,
            "high_water": stats.high_water,
            "reads": stats.reads,
            "writes": stats.writes,
            "rename_requests": stats.rename_requests,
        }


class Renamer:
    """Maps virtual slice registers to physical SFile entries."""

    def __init__(self, sfile: SFile):
        self.sfile = sfile
        self._mapping: Dict[int, int] = {}

    def begin_slice(self) -> None:
        """Reset the mapping for a fresh traversal."""
        self._mapping.clear()
        self.sfile.release_all()

    def write(self, sreg: SReg, value: Value) -> None:
        """Rename *sreg*'s destination and write the result."""
        self.sfile.stats.rename_requests += 1
        entry = self._mapping.get(sreg.index)
        if entry is None:
            entry = self.sfile.allocate()
            self._mapping[sreg.index] = entry
        self.sfile.write(entry, value)

    def read(self, sreg: SReg) -> Value:
        """Resolve *sreg* through the mapping and read the SFile."""
        self.sfile.stats.rename_requests += 1
        entry = self._mapping.get(sreg.index)
        if entry is None:
            raise SchedulerError(
                f"slice read of unwritten scratch register {sreg}"
            )
        return self.sfile.read(entry)

    def end_slice(self) -> None:
        """Release the traversal's entries (paper: SFile deallocation)."""
        self._mapping.clear()
        self.sfile.release_all()

    @property
    def live_mappings(self) -> int:
        return len(self._mapping)
