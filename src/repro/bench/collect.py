"""Benchmark collection: run experiments under telemetry, assemble reports.

:class:`BenchRunner` executes a selection of registered experiments
against a :class:`~repro.harness.runner.SuiteRunner` (so ``--jobs`` and
the persistent result cache are honoured exactly as in a normal run),
wrapping each experiment in its own telemetry session.  From that
session it assembles one :class:`~repro.bench.artifact.BenchReport`:

* wall clock and per-phase span self-times
  (:func:`repro.telemetry.phase_totals`);
* throughput — dynamic instructions retired per second, summed over
  every classic/profiling/amnesic run the experiment triggered;
* RCMP outcome counts and result-cache effectiveness;
* fidelity scores against the paper
  (:func:`repro.bench.paper_reference.fidelity_metrics`).

Experiments share the runner's memoisation, so the *first* experiment
that needs the responsive suite pays for it and the rest ride the
cache — exactly like a real session.  The cache counters in each report
record who paid.

Phase timings come from the benchmarking process's own span tracer.
With ``jobs > 1`` the worker-side profile/compile/execute time rolls up
under the parent's ``suite.parallel`` span (worker span *events* cannot
be merged into one forest — span ids restart per process), while the
counter-derived metrics (instructions, RCMP outcomes, cache traffic)
merge exactly; wall clock and throughput are complete either way.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Sequence

from ..harness.experiments import EXPERIMENTS, run_experiment
from ..harness.runner import SuiteRunner
from ..telemetry.runtime import telemetry_session
from ..telemetry.summary import cache_hit_rate, cache_stats, phase_totals
from ..telemetry.ledger import RunManifest, fidelity_summary
from .artifact import (
    BENCH_SCHEMA_VERSION,
    BenchArtifact,
    BenchReport,
    artifact_provenance,
    environment_fingerprint,
    timestamp,
)
from .paper_reference import fidelity_metrics

#: The default benchmarking selection: every experiment with encoded
#: paper references (fidelity-scored) — one responsive-suite evaluation
#: serves all five.
BENCH_DEFAULT_EXPERIMENTS = ("fig3", "fig4", "fig5", "table4", "table5")


class BenchRunner:
    """Executes the experiment suite and assembles a ``BenchArtifact``."""

    def __init__(
        self,
        runner: Optional[SuiteRunner] = None,
        experiments: Optional[Sequence[str]] = None,
        clock=time.perf_counter,
    ):
        self.runner = runner if runner is not None else SuiteRunner.from_env()
        if experiments is None:
            experiments = BENCH_DEFAULT_EXPERIMENTS
        unknown = [e for e in experiments if e not in EXPERIMENTS]
        if unknown:
            raise KeyError(
                f"unknown experiments: {unknown}; known: {sorted(EXPERIMENTS)}"
            )
        self.experiments = tuple(experiments)
        self._clock = clock

    def run(self) -> BenchArtifact:
        reports: Dict[str, BenchReport] = {}
        for experiment_id in self.experiments:
            reports[experiment_id] = self.bench_one(experiment_id)
        return BenchArtifact(
            schema_version=BENCH_SCHEMA_VERSION,
            created=timestamp(),
            environment=environment_fingerprint(self.runner),
            reports=reports,
            provenance=artifact_provenance(self.runner),
        )

    def bench_one(self, experiment_id: str) -> BenchReport:
        """Run one experiment under a fresh telemetry session."""
        with telemetry_session() as telemetry:
            started = self._clock()
            report = run_experiment(experiment_id, self.runner)
            wall_s = self._clock() - started
            registry = telemetry.registry
            tree = telemetry.tracer.tree()
            phases = {
                total.name: {"self_s": total.self_time_s, "count": total.count}
                for total in phase_totals(tree)
            }
            untraced_s, untraced_instructions = _untraced_execution(tree)
            instructions = int(sum(
                series.value
                for series in registry.series("runstats.dynamic_instructions")
            ))
            rcmp: Dict[str, int] = {}
            for series in registry.series("rcmp.outcomes"):
                outcome = dict(series.labels).get("outcome", "?")
                rcmp[outcome] = rcmp.get(outcome, 0) + series.value
            caches = cache_stats(registry)
            combined: Dict[str, int] = {}
            for counts in caches.values():
                for result, count in counts.items():
                    combined[result] = combined.get(result, 0) + count
        return BenchReport(
            experiment_id=experiment_id,
            title=report.title,
            wall_s=wall_s,
            phases=phases,
            throughput_ips=instructions / wall_s if wall_s > 0 else 0.0,
            instructions=instructions,
            rcmp=rcmp,
            cache=caches,
            cache_hit_rate=cache_hit_rate(combined),
            fidelity=fidelity_metrics(report),
            untraced_s=untraced_s,
            untraced_instructions=untraced_instructions,
            untraced_ips=(
                untraced_instructions / untraced_s if untraced_s > 0 else 0.0
            ),
        )


def _untraced_execution(tree) -> tuple:
    """``(self seconds, instructions)`` over untraced ``execute.*`` spans.

    Untraced runs (no tracer, timeline, or hot-loop profiler attached)
    are where a backend's dispatch loop actually runs at full speed —
    instrumented profiling runs all fall back to per-instruction loops,
    so including them would mask run-loop differences between backends.
    With ``jobs > 1`` worker-side spans cannot be merged into the
    parent's forest (same limitation as the phase timings above), so
    the totals only cover in-process runs.
    """
    seconds = 0.0
    instructions = 0
    for root in tree:
        for node in root.walk():
            if not node.name.startswith("execute."):
                continue
            if node.span.attrs.get("mode") != "untraced":
                continue
            seconds += node.self_time_s
            instructions += int(node.span.attrs.get("instructions", 0))
    return seconds, instructions


def manifest_from_artifact(
    artifact: BenchArtifact, runner: SuiteRunner, command: str = "repro bench"
) -> RunManifest:
    """Collapse one bench artifact into a ledger :class:`RunManifest`.

    Totals are summed over the artifact's per-experiment reports; the
    fidelity summary pools every scored metric, so the drift watchdog
    tracks the same population ``--fail-on-regression`` gates on.
    """
    reports = list(artifact.reports.values())
    wall_s = sum(report.wall_s for report in reports)
    instructions = sum(report.instructions for report in reports)
    cache: Dict[str, Dict[str, int]] = {}
    for report in reports:
        for layer, counts in report.cache.items():
            merged = cache.setdefault(layer, {})
            for result, count in counts.items():
                merged[result] = merged.get(result, 0) + count
    config = runner.describe()
    return RunManifest.new(
        kind="bench",
        command=command,
        target=",".join(artifact.reports),
        scale=float(config.get("scale", 1.0)),
        backend=str(config.get("backend", "classic")),
        policies=[str(name) for name in config.get("policies", [])],
        model_fingerprint=config.get("model_fingerprint"),
        wall_s=wall_s,
        phases={
            f"{experiment_id}.wall_s": report.wall_s
            for experiment_id, report in artifact.reports.items()
        },
        instructions=instructions,
        ips=instructions / wall_s if wall_s > 0 else 0.0,
        fidelity=fidelity_summary(
            [metric for report in reports for metric in report.fidelity]
        ),
        cache=cache,
    )
