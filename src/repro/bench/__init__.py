"""Continuous benchmarking: BENCH artifacts, fidelity scoring, diffing.

The observability loop-closer over :mod:`repro.harness` and
:mod:`repro.telemetry`: ``repro bench`` runs the experiment suite under
telemetry, scores the results against the paper's reported numbers
(:mod:`repro.bench.paper_reference`), persists everything as a
schema-versioned ``BENCH_*.json`` artifact, and diffs artifacts over
time so fidelity or performance regressions fail CI instead of landing
silently.  See ``docs/observability.md`` ("Continuous benchmarking").
"""

from .artifact import (
    BENCH_SCHEMA_VERSION,
    COMPATIBLE_SCHEMA_VERSIONS,
    BenchArtifact,
    BenchReport,
    artifact_provenance,
    environment_fingerprint,
    timestamp,
)
from .collect import BENCH_DEFAULT_EXPERIMENTS, BenchRunner, manifest_from_artifact
from .compare import (
    DEFAULT_FIDELITY_NOISE_PP,
    DEFAULT_TIMING_NOISE,
    BenchDiff,
    MetricVerdict,
    compare,
)
from .paper_reference import (
    BOUNDS,
    REFERENCES,
    SCORED_EXPERIMENTS,
    FidelityMetric,
    ReferenceBound,
    ReferenceSeries,
    fidelity_metrics,
)
from .render import render_bench_diff, render_bench_report

__all__ = [
    "BENCH_DEFAULT_EXPERIMENTS",
    "BENCH_SCHEMA_VERSION",
    "BOUNDS",
    "BenchArtifact",
    "BenchDiff",
    "BenchReport",
    "BenchRunner",
    "COMPATIBLE_SCHEMA_VERSIONS",
    "DEFAULT_FIDELITY_NOISE_PP",
    "DEFAULT_TIMING_NOISE",
    "FidelityMetric",
    "MetricVerdict",
    "REFERENCES",
    "ReferenceBound",
    "ReferenceSeries",
    "SCORED_EXPERIMENTS",
    "artifact_provenance",
    "compare",
    "environment_fingerprint",
    "fidelity_metrics",
    "manifest_from_artifact",
    "render_bench_diff",
    "render_bench_report",
    "timestamp",
]
