"""Schema-versioned ``BENCH_*.json`` artifacts.

A :class:`BenchArtifact` is the machine-readable record of one
benchmarking run: per-experiment wall clock, per-phase span timings,
throughput, RCMP decision counts, result-cache effectiveness, and
fidelity scores against the paper — plus an environment fingerprint
(python, platform, cpu count, energy-model fingerprint, git sha) so two
artifacts can be diffed knowing *what* produced them.

The JSON layout is guarded by :data:`BENCH_SCHEMA_VERSION`; bump it when
a field changes meaning so stale baselines fail loudly instead of
producing nonsense verdicts.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
import platform
import time
from typing import Dict, List, Optional

from ..telemetry.ledger import git_revision, provenance
from .paper_reference import FidelityMetric

#: Bump on any change to the artifact field layout or metric semantics.
#: Version 2 added the top-level ``provenance`` block (git revision,
#: python, platform, backend); version 3 added the untraced-execution
#: throughput block (``untraced_s`` / ``untraced_instructions`` /
#: ``untraced_ips``).  Older artifacts still load — missing fields
#: default (version 3's to zero, meaning "not measured") — so committed
#: baselines keep gating new runs across the bumps.
BENCH_SCHEMA_VERSION = 3

#: Schema versions :meth:`BenchArtifact.from_json` accepts.
COMPATIBLE_SCHEMA_VERSIONS = frozenset({1, 2, BENCH_SCHEMA_VERSION})


@dataclasses.dataclass
class BenchReport:
    """Everything measured for one experiment in one benchmarking run."""

    experiment_id: str
    title: str
    wall_s: float
    #: ``{span name: {"self_s": float, "count": int}}`` from the
    #: telemetry session's :func:`repro.telemetry.phase_totals`.
    phases: Dict[str, Dict[str, float]]
    #: Dynamic instructions retired per wall-clock second (0.0 when the
    #: whole experiment was served from caches).
    throughput_ips: float
    instructions: int
    #: ``{outcome: count}`` summed over policies (fired/skipped/fallback).
    rcmp: Dict[str, int]
    #: ``{layer: {result: count}}`` — memory and disk result caches.
    cache: Dict[str, Dict[str, int]]
    #: Hit fraction over both layers' lookups, or ``None`` with none.
    cache_hit_rate: Optional[float]
    fidelity: List[FidelityMetric]
    #: Untraced-execution throughput: self time and instructions summed
    #: over ``execute.*`` spans whose runs carried no tracer, timeline,
    #: or profiler — the backend's raw interpreter speed, undiluted by
    #: instrumented profiling runs.  Zero means "not measured" (an
    #: artifact written before schema 3, or a fully cached experiment).
    untraced_s: float = 0.0
    untraced_instructions: int = 0
    untraced_ips: float = 0.0

    @property
    def fidelity_failures(self) -> List[FidelityMetric]:
        return [metric for metric in self.fidelity if not metric.within]

    def to_json(self) -> dict:
        payload = dataclasses.asdict(self)
        payload["fidelity"] = [dataclasses.asdict(m) for m in self.fidelity]
        return payload

    @classmethod
    def from_json(cls, payload: dict) -> "BenchReport":
        fields = dict(payload)
        fields["fidelity"] = [
            FidelityMetric(**metric) for metric in payload.get("fidelity", ())
        ]
        return cls(**fields)


@dataclasses.dataclass
class BenchArtifact:
    """One benchmarking run: environment fingerprint + per-experiment reports."""

    schema_version: int
    created: str
    environment: Dict[str, object]
    reports: Dict[str, BenchReport]
    #: Source/toolchain identity: git revision, python, platform,
    #: backend.  Overlaps the environment fingerprint on purpose — the
    #: block is the stable, minimal key two artifacts are matched on,
    #: while ``environment`` carries the full runner configuration.
    provenance: Dict[str, object] = dataclasses.field(default_factory=dict)

    def to_json(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "created": self.created,
            "environment": self.environment,
            "provenance": self.provenance,
            "reports": {
                experiment_id: report.to_json()
                for experiment_id, report in self.reports.items()
            },
        }

    @classmethod
    def from_json(cls, payload: dict) -> "BenchArtifact":
        version = payload.get("schema_version")
        if version not in COMPATIBLE_SCHEMA_VERSIONS:
            raise ValueError(
                f"unsupported bench artifact schema {version!r} "
                f"(this build reads versions "
                f"{sorted(COMPATIBLE_SCHEMA_VERSIONS)}); "
                f"refresh the artifact with `repro bench`"
            )
        environment = dict(payload.get("environment", {}))
        artifact_provenance = dict(payload.get("provenance", {}))
        if not artifact_provenance:
            # A version-1 artifact: lift the fields out of the
            # environment fingerprint so diffing code sees one shape.
            artifact_provenance = {
                "git_sha": environment.get("git_sha"),
                "python": environment.get("python"),
                "platform": environment.get("platform"),
                "backend": environment.get("backend", "classic"),
            }
        return cls(
            schema_version=version,
            created=payload.get("created", ""),
            environment=environment,
            reports={
                experiment_id: BenchReport.from_json(report)
                for experiment_id, report in payload.get("reports", {}).items()
            },
            provenance=artifact_provenance,
        )

    def write(self, path: os.PathLike | str) -> pathlib.Path:
        target = pathlib.Path(path)
        if target.parent != pathlib.Path(""):
            target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(self.to_json(), indent=2) + "\n")
        return target

    @classmethod
    def load(cls, path: os.PathLike | str) -> "BenchArtifact":
        return cls.from_json(json.loads(pathlib.Path(path).read_text()))


def environment_fingerprint(runner) -> Dict[str, object]:
    """What produced an artifact: interpreter, machine, runner config."""
    fingerprint: Dict[str, object] = {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "git_sha": git_revision(),
    }
    fingerprint.update(runner.describe())
    return fingerprint


def artifact_provenance(runner) -> Dict[str, object]:
    """The schema-2 provenance block for a fresh artifact."""
    block = provenance()
    block["backend"] = runner.describe().get("backend", "classic")
    return block


def timestamp() -> str:
    """UTC creation stamp, also used for default artifact filenames."""
    return time.strftime("%Y%m%dT%H%M%SZ", time.gmtime())
