"""The paper's reported numbers, encoded for fidelity scoring.

Every value here is read off the published figures and tables of
*AMNESIAC* (ASPLOS 2017) — the same per-benchmark approximations that
EXPERIMENTS.md quotes in its "paper" columns — so a benchmark run can
score itself against the paper instead of only against yesterday's run.

Two reference shapes exist:

* :class:`ReferenceSeries` — per-benchmark point values with one
  tolerance per figure (Figures 3–5, Table 5).  The tolerances are wide
  by design: this reproduction's documented deviations (workload
  substitution, strict correctness, scaled caches — see EXPERIMENTS.md)
  put some benchmarks 15–25 percentage points off the paper, and the
  tolerance encodes the *known-good* band around that.  A fidelity
  regression therefore means the reproduction moved **further from the
  paper than it has ever legitimately been**, not merely "does not match
  the paper".
* :class:`ReferenceBound` — directional claims (Table 4), where the
  paper's statement is an inequality ("dynamic instruction count
  increases", "Hist reads stay a small share") rather than a number.

Pseudo-benchmark keys ``@mean`` and ``@max`` reference the aggregate
claims the paper quotes in prose (mean 24.92% / best-case 87% EDP gain
over the 11 responsive benchmarks).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Mapping, Optional, Tuple

from ..analysis.gains import METRIC_EDP, METRIC_ENERGY, METRIC_TIME

#: Aggregate pseudo-benchmarks usable in a :class:`ReferenceSeries`.
AGGREGATE_MEAN = "@mean"
AGGREGATE_MAX = "@max"


@dataclasses.dataclass(frozen=True)
class ReferenceSeries:
    """One figure's per-benchmark paper values plus its tolerance band."""

    figure: str
    metric: str
    policy: str
    tolerance_pp: float  # max |measured - paper| in percentage points
    values: Mapping[str, float]


@dataclasses.dataclass(frozen=True)
class ReferenceBound:
    """A directional paper claim: the measured value must sit in [lo, hi]."""

    figure: str
    metric: str
    lo: Optional[float]
    hi: Optional[float]
    claim: str


@dataclasses.dataclass(frozen=True)
class FidelityMetric:
    """One scored measurement against the paper.

    For a :class:`ReferenceSeries` check, ``paper`` is the paper's value
    and ``abs_error`` the distance from it; for a :class:`ReferenceBound`
    check, ``paper`` is the violated bound (or the nearest one when
    inside) and ``abs_error`` the distance *outside* the bound (0 when
    the claim holds).
    """

    figure: str
    metric: str
    policy: str
    benchmark: str
    paper: float
    measured: float
    abs_error: float
    rel_error: float
    tolerance_pp: float
    within: bool

    @property
    def key(self) -> str:
        """Stable identity used to match metrics across artifacts."""
        return f"{self.figure}/{self.metric}/{self.policy}/{self.benchmark}"


# ----------------------------------------------------------------------
# Figures 3-5: per-benchmark gains under the Compiler policy.
# ----------------------------------------------------------------------
#: Figure 3 (EDP gain %, Compiler bars, read off the published chart).
FIG3_EDP = ReferenceSeries(
    figure="fig3",
    metric=METRIC_EDP,
    policy="Compiler",
    tolerance_pp=25.0,
    values={
        "mcf": 65.0, "sx": 20.0, "cg": 28.0, "is": 87.0, "ca": 38.0,
        "fs": 30.0, "fe": 16.0, "rt": 14.0, "bp": 30.0, "bfs": 18.5,
        "sr": -7.0,
        # Section 7 prose: 24.92% mean / up to 87% over the 11.
        AGGREGATE_MEAN: 24.92, AGGREGATE_MAX: 87.0,
    },
)

#: Figure 4 (energy gain %): the paper calls out its two leaders.
FIG4_ENERGY = ReferenceSeries(
    figure="fig4",
    metric=METRIC_ENERGY,
    policy="Compiler",
    tolerance_pp=30.0,
    values={"is": 65.0, "mcf": 55.0},
)

#: Figure 5 (execution-time reduction %).  The paper gives no standalone
#: numbers for its leaders, but EDP = energy x time pins them:
#: (1 - edp) = (1 - energy)(1 - time), so is = 1 - 0.13/0.35 = 62.9%
#: and mcf = 1 - 0.35/0.45 = 22.2%.
FIG5_TIME = ReferenceSeries(
    figure="fig5",
    metric=METRIC_TIME,
    policy="Compiler",
    tolerance_pp=25.0,
    values={"is": 62.9, "mcf": 22.2},
)

# ----------------------------------------------------------------------
# Table 5: classic service split of the Compiler policy's swapped loads.
# ----------------------------------------------------------------------
_TABLE5_PAPER: Dict[str, Tuple[float, float, float]] = {
    # bench: (L1 %, L2 %, MEM %)
    "mcf": (12.0, 11.0, 77.0),
    "sx": (85.3, 0.9, 13.8),
    "cg": (87.5, 0.2, 12.3),
    "is": (49.6, 19.3, 31.1),
    "ca": (27.9, 7.5, 64.6),
    "fs": (56.5, 1.9, 41.6),
    "fe": (63.3, 10.1, 26.7),
    "rt": (93.0, 0.8, 6.3),
    "bp": (72.5, 0.0, 27.5),
    "bfs": (98.4, 0.0, 1.6),
    "sr": (93.7, 0.0, 6.3),
}

TABLE5_LEVELS = (
    ReferenceSeries(
        "table5", "l1_percent", "Compiler", 30.0,
        {bench: row[0] for bench, row in _TABLE5_PAPER.items()},
    ),
    ReferenceSeries(
        "table5", "l2_percent", "Compiler", 30.0,
        {bench: row[1] for bench, row in _TABLE5_PAPER.items()},
    ),
    ReferenceSeries(
        "table5", "mem_percent", "Compiler", 30.0,
        {bench: row[2] for bench, row in _TABLE5_PAPER.items()},
    ),
)

# ----------------------------------------------------------------------
# Table 4: directional claims (section 5.2).
# ----------------------------------------------------------------------
TABLE4_BOUNDS = (
    ReferenceBound(
        "table4", "instruction_increase_percent", 0.0, 60.0,
        "dynamic instruction count increases under amnesic execution "
        "(paper: +1.2% ... +31.9%)",
    ),
    ReferenceBound(
        "table4", "load_decrease_percent", 0.0, 100.0,
        "performed loads decrease (paper: 2% ... 61%)",
    ),
    ReferenceBound(
        "table4", "amnesic_hist", None, 10.0,
        "Hist reads stay a small share of amnesic energy "
        "(paper: 0 ... 7.4%)",
    ),
)

#: Per-experiment point references.
REFERENCES: Dict[str, Tuple[ReferenceSeries, ...]] = {
    "fig3": (FIG3_EDP,),
    "fig4": (FIG4_ENERGY,),
    "fig5": (FIG5_TIME,),
    "table5": TABLE5_LEVELS,
}

#: Per-experiment directional bounds.
BOUNDS: Dict[str, Tuple[ReferenceBound, ...]] = {
    "table4": TABLE4_BOUNDS,
}

#: Experiments that produce fidelity metrics at all.
SCORED_EXPERIMENTS = tuple(sorted(set(REFERENCES) | set(BOUNDS)))


def _rel_error(abs_error: float, paper: float) -> float:
    return abs_error / max(abs(paper), 1e-9)


def _series_metrics(series: ReferenceSeries, matrix) -> List[FidelityMetric]:
    """Score a gain matrix against one figure's reference series."""
    metrics: List[FidelityMetric] = []
    for benchmark, paper in series.values.items():
        if benchmark == AGGREGATE_MEAN:
            measured = matrix.mean_gain(series.policy, series.metric)
        elif benchmark == AGGREGATE_MAX:
            measured = matrix.max_gain(series.policy, series.metric)
        else:
            measured = matrix.gain(benchmark, series.policy, series.metric)
        abs_error = abs(measured - paper)
        metrics.append(
            FidelityMetric(
                figure=series.figure,
                metric=series.metric,
                policy=series.policy,
                benchmark=benchmark,
                paper=paper,
                measured=measured,
                abs_error=abs_error,
                rel_error=_rel_error(abs_error, paper),
                tolerance_pp=series.tolerance_pp,
                within=abs_error <= series.tolerance_pp,
            )
        )
    return metrics


def _row_metrics(series: ReferenceSeries, rows) -> List[FidelityMetric]:
    """Score attribute-per-row experiment data (Table 5) against *series*."""
    by_benchmark = {
        row.benchmark: row for row in rows if row.policy == series.policy
    }
    metrics: List[FidelityMetric] = []
    for benchmark, paper in series.values.items():
        row = by_benchmark.get(benchmark)
        if row is None:
            continue
        measured = getattr(row, series.metric)
        abs_error = abs(measured - paper)
        metrics.append(
            FidelityMetric(
                figure=series.figure,
                metric=series.metric,
                policy=series.policy,
                benchmark=benchmark,
                paper=paper,
                measured=measured,
                abs_error=abs_error,
                rel_error=_rel_error(abs_error, paper),
                tolerance_pp=series.tolerance_pp,
                within=abs_error <= series.tolerance_pp,
            )
        )
    return metrics


def _bound_metrics(bound: ReferenceBound, rows) -> List[FidelityMetric]:
    """Score per-benchmark rows against one directional claim."""
    metrics: List[FidelityMetric] = []
    for row in rows:
        measured = getattr(row, bound.metric)
        overshoot_lo = (bound.lo - measured) if bound.lo is not None else 0.0
        overshoot_hi = (measured - bound.hi) if bound.hi is not None else 0.0
        abs_error = max(0.0, overshoot_lo, overshoot_hi)
        violated = bound.lo if overshoot_lo >= overshoot_hi else bound.hi
        nearest = violated if violated is not None else 0.0
        metrics.append(
            FidelityMetric(
                figure=bound.figure,
                metric=bound.metric,
                policy="Compiler",
                benchmark=row.benchmark,
                paper=nearest,
                measured=measured,
                abs_error=abs_error,
                rel_error=_rel_error(abs_error, nearest),
                tolerance_pp=0.0,
                within=abs_error == 0.0,
            )
        )
    return metrics


def fidelity_metrics(report) -> List[FidelityMetric]:
    """All fidelity scores for one
    :class:`~repro.harness.experiments.ExperimentReport`.

    Experiments without encoded references (table1, fig6-8, table6, ...)
    return an empty list — they are benchmarked for timing only.
    """
    experiment_id = report.experiment_id
    metrics: List[FidelityMetric] = []
    for series in REFERENCES.get(experiment_id, ()):
        if experiment_id in ("fig3", "fig4", "fig5"):
            metrics.extend(_series_metrics(series, report.data))
        else:
            metrics.extend(_row_metrics(series, report.data))
    for bound in BOUNDS.get(experiment_id, ()):
        metrics.extend(_bound_metrics(bound, report.data))
    return metrics
