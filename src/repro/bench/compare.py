"""Baseline diffing: per-metric verdicts between two ``BENCH_*`` artifacts.

:func:`compare` walks the experiments two artifacts share and classifies
every metric as *improved*, *unchanged* (within noise), or *regressed*:

* **timing metrics** (wall clock, per-phase self-times, throughput) use
  a configurable relative-noise threshold plus an absolute floor, since
  sub-millisecond phases flap with scheduler jitter and shared CI
  runners are noisy by construction;
* **fidelity metrics** use hard thresholds: the simulator is
  deterministic, so a fidelity value only moves when code changed
  behaviour.  Falling out of a paper tolerance band, drifting further
  from the paper than ``fidelity_noise_pp``, or dropping a previously
  scored metric is a regression.

The CI gate treats the two classes differently (fidelity hard, timing
warn-only): :attr:`BenchDiff.fidelity_regressions` and
:attr:`BenchDiff.timing_regressions` keep them separable.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from .artifact import BenchArtifact, BenchReport

#: Verdict values.
IMPROVED = "improved"
UNCHANGED = "unchanged"
REGRESSED = "regressed"
ADDED = "added"
REMOVED = "removed"

#: Metric kinds.
KIND_TIMING = "timing"
KIND_FIDELITY = "fidelity"
KIND_COUNTER = "counter"

#: Default noise thresholds.
DEFAULT_TIMING_NOISE = 0.25  # 25% relative
DEFAULT_TIMING_FLOOR_S = 0.005  # ignore sub-5ms timing drift
DEFAULT_FIDELITY_NOISE_PP = 0.25  # abs-error drift in percentage points


@dataclasses.dataclass(frozen=True)
class MetricVerdict:
    """One metric's fate between baseline and current."""

    metric: str  # e.g. "fig4/wall_s" or "fig4/fidelity/energy/Compiler/mcf"
    kind: str
    verdict: str
    baseline: Optional[float]
    current: Optional[float]
    note: str = ""

    @property
    def delta(self) -> Optional[float]:
        if self.baseline is None or self.current is None:
            return None
        return self.current - self.baseline


@dataclasses.dataclass
class BenchDiff:
    """Every verdict from one baseline/current comparison."""

    verdicts: List[MetricVerdict]
    experiments: List[str]
    skipped_experiments: List[str]

    def _regressions(self, kind: str) -> List[MetricVerdict]:
        return [
            verdict for verdict in self.verdicts
            if verdict.kind == kind and verdict.verdict in (REGRESSED, REMOVED)
        ]

    @property
    def fidelity_regressions(self) -> List[MetricVerdict]:
        return self._regressions(KIND_FIDELITY)

    @property
    def timing_regressions(self) -> List[MetricVerdict]:
        return self._regressions(KIND_TIMING)

    def regressed(self, include_timing: bool = False) -> List[MetricVerdict]:
        """The verdicts a regression gate should fail on (fidelity is
        always gated; timing only when *include_timing* is set)."""
        gated = list(self.fidelity_regressions)
        if include_timing:
            gated.extend(self.timing_regressions)
        return gated

    def to_json(self) -> dict:
        return {
            "experiments": self.experiments,
            "skipped_experiments": self.skipped_experiments,
            "verdicts": [
                dataclasses.asdict(verdict) for verdict in self.verdicts
            ],
        }


def _timing_verdict(
    metric: str,
    baseline: Optional[float],
    current: Optional[float],
    noise: float,
    floor: float,
    higher_is_better: bool = False,
) -> MetricVerdict:
    if baseline is None:
        return MetricVerdict(metric, KIND_TIMING, ADDED, baseline, current)
    if current is None:
        return MetricVerdict(metric, KIND_TIMING, REMOVED, baseline, current)
    delta = current - baseline
    if higher_is_better:
        delta = -delta
    worse = delta > max(noise * abs(baseline), floor)
    better = -delta > max(noise * abs(baseline), floor)
    verdict = REGRESSED if worse else (IMPROVED if better else UNCHANGED)
    return MetricVerdict(metric, KIND_TIMING, verdict, baseline, current)


def _fidelity_verdicts(
    experiment_id: str,
    baseline: BenchReport,
    current: BenchReport,
    noise_pp: float,
) -> List[MetricVerdict]:
    verdicts: List[MetricVerdict] = []
    baseline_metrics = {metric.key: metric for metric in baseline.fidelity}
    current_metrics = {metric.key: metric for metric in current.fidelity}
    for key in sorted(set(baseline_metrics) | set(current_metrics)):
        name = f"{experiment_id}/fidelity/{key.split('/', 1)[1]}"
        old = baseline_metrics.get(key)
        new = current_metrics.get(key)
        if old is None:
            verdicts.append(
                MetricVerdict(name, KIND_FIDELITY, ADDED, None, new.abs_error)
            )
            continue
        if new is None:
            # A fidelity metric that vanished can no longer be gated on:
            # treated as a regression (REMOVED counts against the gate).
            verdicts.append(
                MetricVerdict(
                    name, KIND_FIDELITY, REMOVED, old.abs_error, None,
                    note="metric no longer reported",
                )
            )
            continue
        if old.within and not new.within:
            verdict, note = REGRESSED, (
                f"left the paper tolerance band (±{new.tolerance_pp:g}pp)"
            )
        elif not old.within and new.within:
            verdict, note = IMPROVED, "re-entered the paper tolerance band"
        elif new.abs_error - old.abs_error > noise_pp:
            verdict, note = REGRESSED, "moved further from the paper"
        elif old.abs_error - new.abs_error > noise_pp:
            verdict, note = IMPROVED, "moved closer to the paper"
        else:
            verdict, note = UNCHANGED, ""
        verdicts.append(
            MetricVerdict(
                name, KIND_FIDELITY, verdict, old.abs_error, new.abs_error,
                note=note,
            )
        )
    return verdicts


def _counter_verdicts(
    experiment_id: str, baseline: BenchReport, current: BenchReport
) -> List[MetricVerdict]:
    verdicts: List[MetricVerdict] = []
    outcomes = sorted(set(baseline.rcmp) | set(current.rcmp))
    for outcome in outcomes:
        old = baseline.rcmp.get(outcome)
        new = current.rcmp.get(outcome)
        # RCMP counts are decision-behaviour, not performance: any change
        # is surfaced, but classification stays informational via kind.
        verdicts.append(
            MetricVerdict(
                f"{experiment_id}/rcmp/{outcome}", KIND_COUNTER,
                UNCHANGED if old == new else "changed",
                None if old is None else float(old),
                None if new is None else float(new),
            )
        )
    old_rate = baseline.cache_hit_rate
    new_rate = current.cache_hit_rate
    verdicts.append(
        MetricVerdict(
            f"{experiment_id}/cache_hit_rate", KIND_COUNTER,
            UNCHANGED if old_rate == new_rate else "changed",
            old_rate, new_rate,
        )
    )
    return verdicts


def compare(
    baseline: BenchArtifact,
    current: BenchArtifact,
    timing_noise: float = DEFAULT_TIMING_NOISE,
    timing_floor_s: float = DEFAULT_TIMING_FLOOR_S,
    fidelity_noise_pp: float = DEFAULT_FIDELITY_NOISE_PP,
) -> BenchDiff:
    """Diff two artifacts; experiments only one side ran are skipped.

    Skipping (rather than failing) lets a quick ``--experiments
    fig4,table4`` CI run gate against a fuller committed baseline; the
    skipped ids are reported so a silently shrinking run is visible.
    """
    shared = [
        experiment_id for experiment_id in baseline.reports
        if experiment_id in current.reports
    ]
    skipped = sorted(
        set(baseline.reports).symmetric_difference(current.reports)
    )
    verdicts: List[MetricVerdict] = []
    for experiment_id in shared:
        old, new = baseline.reports[experiment_id], current.reports[experiment_id]
        verdicts.append(
            _timing_verdict(
                f"{experiment_id}/wall_s", old.wall_s, new.wall_s,
                timing_noise, timing_floor_s,
            )
        )
        verdicts.append(
            _timing_verdict(
                f"{experiment_id}/throughput_ips",
                old.throughput_ips, new.throughput_ips,
                timing_noise, timing_floor_s, higher_is_better=True,
            )
        )
        if old.untraced_ips > 0 and new.untraced_ips > 0:
            # Pre-schema-3 artifacts carry no untraced block (zero
            # means "not measured"), so the verdict only exists when
            # both sides actually measured it.
            verdicts.append(
                _timing_verdict(
                    f"{experiment_id}/untraced_ips",
                    old.untraced_ips, new.untraced_ips,
                    timing_noise, timing_floor_s, higher_is_better=True,
                )
            )
        for phase in sorted(set(old.phases) & set(new.phases)):
            verdicts.append(
                _timing_verdict(
                    f"{experiment_id}/phase/{phase}",
                    old.phases[phase]["self_s"], new.phases[phase]["self_s"],
                    timing_noise, timing_floor_s,
                )
            )
        verdicts.extend(
            _fidelity_verdicts(experiment_id, old, new, fidelity_noise_pp)
        )
        verdicts.extend(_counter_verdicts(experiment_id, old, new))
    return BenchDiff(
        verdicts=verdicts, experiments=shared, skipped_experiments=skipped
    )
