"""Human-readable views over bench artifacts and baseline diffs."""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..analysis.tables import render_table
from .artifact import BenchArtifact
from .compare import KIND_COUNTER, UNCHANGED, BenchDiff, MetricVerdict

FORMAT_TEXT = "text"
FORMAT_MARKDOWN = "markdown"


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.4g}"


def render_bench_report(artifact: BenchArtifact) -> str:
    """One summary table over an artifact's per-experiment reports."""
    rows = []
    for experiment_id, report in artifact.reports.items():
        failures = len(report.fidelity_failures)
        rows.append(
            [
                experiment_id,
                f"{report.wall_s:.2f}",
                f"{report.throughput_ips:,.0f}",
                "-" if report.untraced_ips <= 0
                else f"{report.untraced_ips:,.0f}",
                "-" if report.cache_hit_rate is None
                else f"{100 * report.cache_hit_rate:.0f}%",
                sum(report.rcmp.values()),
                len(report.fidelity),
                failures if failures else "ok",
            ]
        )
    table = render_table(
        ["experiment", "wall s", "instr/s", "untraced instr/s",
         "cache hits", "RCMPs", "fidelity metrics", "out-of-tolerance"],
        rows, title="bench summary",
    )
    env = artifact.environment
    header = (
        f"bench artifact (schema v{artifact.schema_version}, "
        f"{artifact.created})\n"
        f"python {env.get('python')} on {env.get('platform')}, "
        f"git {str(env.get('git_sha'))[:12]}, "
        f"scale {env.get('scale')}, jobs {env.get('jobs')}"
    )
    return f"{header}\n\n{table}"


def _verdict_rows(verdicts: Sequence[MetricVerdict]) -> List[List[str]]:
    rows = []
    for verdict in verdicts:
        delta = verdict.delta
        rows.append(
            [
                verdict.metric,
                _fmt(verdict.baseline),
                _fmt(verdict.current),
                "-" if delta is None else f"{delta:+.4g}",
                verdict.verdict,
                verdict.note,
            ]
        )
    return rows


def render_bench_diff(
    diff: BenchDiff,
    fmt: str = FORMAT_TEXT,
    show_unchanged: bool = False,
) -> str:
    """The diff as a table (text or markdown) plus a verdict summary.

    By default only metrics that *moved* are listed (unchanged rows are
    counted in the summary line); ``show_unchanged=True`` lists all.
    """
    interesting = [
        verdict for verdict in diff.verdicts
        if show_unchanged or verdict.verdict != UNCHANGED
    ]
    unchanged = sum(1 for v in diff.verdicts if v.verdict == UNCHANGED)
    headers = ["metric", "baseline", "current", "delta", "verdict", "note"]
    if fmt == FORMAT_MARKDOWN:
        lines = ["| " + " | ".join(headers) + " |",
                 "|" + "---|" * len(headers)]
        for row in _verdict_rows(interesting):
            lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
        table = "\n".join(lines)
    else:
        table = render_table(headers, _verdict_rows(interesting))
    summary = (
        f"{len(diff.verdicts)} metrics over "
        f"{len(diff.experiments)} experiment(s): "
        f"{len(diff.fidelity_regressions)} fidelity regression(s), "
        f"{len(diff.timing_regressions)} timing regression(s), "
        f"{unchanged} unchanged"
    )
    if diff.skipped_experiments:
        summary += (
            "; not compared (present on one side only): "
            + ", ".join(diff.skipped_experiments)
        )
    counter_changes = [
        v for v in diff.verdicts
        if v.kind == KIND_COUNTER and v.verdict != UNCHANGED
    ]
    if counter_changes:
        summary += (
            f"; {len(counter_changes)} behavioural counter(s) changed "
            "(informational)"
        )
    if not interesting:
        return summary
    return f"{table}\n\n{summary}"
