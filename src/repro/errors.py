"""Exception hierarchy for the AMNESIAC reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch the whole family with a single ``except`` clause while
still being able to discriminate the precise failure mode.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class AssemblyError(ReproError):
    """A program could not be assembled or disassembled."""


class ValidationError(ReproError):
    """A program failed static validation (bad operands, dangling labels)."""


class MachineFault(ReproError):
    """The simulated machine hit a fault while executing a program."""

    def __init__(self, message: str, pc: int | None = None):
        if pc is not None:
            message = f"{message} (pc={pc})"
        super().__init__(message)
        self.pc = pc


class MemoryFault(MachineFault):
    """An access touched an unmapped or protected memory word."""


class ArithmeticFault(MachineFault):
    """Undefined arithmetic, e.g. integer division by zero."""


class ExecutionLimitExceeded(MachineFault):
    """The dynamic instruction budget was exhausted (likely livelock)."""


class CompilationError(ReproError):
    """The amnesic compiler pass could not transform a program."""


class SliceFormationError(CompilationError):
    """A recomputation slice could not be constructed for a load."""


class RecomputationMismatch(ReproError):
    """A recomputed value differed from the value the load would return.

    This is the safety invariant of amnesic execution: traversing
    RSlice(v) must regenerate exactly the value ``v`` that the eliminated
    load would have read.  Verification mode raises this error on any
    divergence; production mode would silently produce wrong results, so
    tests always run with verification enabled.
    """

    def __init__(self, slice_id: int, expected: object, actual: object, pc: int):
        super().__init__(
            f"RSlice {slice_id} recomputed {actual!r} but the eliminated "
            f"load at pc={pc} would have read {expected!r}"
        )
        self.slice_id = slice_id
        self.expected = expected
        self.actual = actual
        self.pc = pc


class SchedulerError(ReproError):
    """The amnesic scheduler reached an inconsistent runtime state."""


class HistOverflow(SchedulerError):
    """The history table ran out of entries while recording a checkpoint."""


class WorkloadError(ReproError):
    """A workload could not be generated with the requested parameters."""


class FuzzError(ReproError):
    """A fuzz program spec is malformed or cannot be materialised."""
