"""Mini RISC-style ISA: opcodes, operands, instructions, programs.

This package is the instruction-set substrate of the AMNESIAC
reproduction.  The public surface is:

* :class:`Opcode` / :class:`Category` — opcode vocabulary and energy
  categories;
* :class:`Reg`, :class:`Imm`, :class:`SReg`, :class:`HistRef` — operands;
* :class:`Instruction` plus the constructor helpers (``alu``, ``load``,
  ``store``, ``branch``, ``rcmp``, ``rtn``, ``rec`` ...);
* :class:`Program`, :class:`DataSegment`, :class:`SliceRegion`;
* :class:`ProgramBuilder` — the kernel-writing DSL;
* ``serialise`` / ``parse`` — the textual assembler;
* ``validate_program`` — static structural checks;
* ``evaluate`` / ``branch_taken`` — pure value semantics.
"""

from .builder import DATA_BASE, ProgramBuilder
from .encoding import parse, serialise
from .instructions import (
    Instruction,
    alu,
    branch,
    halt,
    jump,
    li,
    load,
    rcmp,
    rec,
    rtn,
    store,
)
from .opcodes import (
    ARITY,
    MAX_RENAME_REQUESTS,
    SLICEABLE_OPCODES,
    Category,
    Opcode,
)
from .operands import (
    NUM_REGISTERS,
    ZERO_REG,
    HistRef,
    Imm,
    Operand,
    Reg,
    SReg,
    is_constant,
    parse_operand,
)
from .program import DataSegment, Program, SliceRegion
from .semantics import branch_taken, evaluate, wrap_int64
from .validate import validate_program

__all__ = [
    "ARITY",
    "DATA_BASE",
    "MAX_RENAME_REQUESTS",
    "NUM_REGISTERS",
    "SLICEABLE_OPCODES",
    "ZERO_REG",
    "Category",
    "DataSegment",
    "HistRef",
    "Imm",
    "Instruction",
    "Opcode",
    "Operand",
    "Program",
    "ProgramBuilder",
    "Reg",
    "SReg",
    "SliceRegion",
    "alu",
    "branch",
    "branch_taken",
    "evaluate",
    "halt",
    "is_constant",
    "jump",
    "li",
    "load",
    "parse",
    "parse_operand",
    "rcmp",
    "rec",
    "rtn",
    "serialise",
    "store",
    "validate_program",
    "wrap_int64",
]
