"""Instruction representation for the mini RISC ISA.

A single immutable :class:`Instruction` dataclass represents ordinary
instructions, the amnesic ISA extensions (``RCMP``/``RTN``/``REC``), and
recomputing instructions embedded in slices.  The *kind* of an instruction
is determined by its opcode plus which optional fields are populated:

* ordinary instructions use ``dest``/``srcs``/``target``;
* ``RCMP`` carries the eliminated load's ``dest`` and address ``srcs``,
  the ``slice_id`` of its RSlice, and ``target`` = the slice entry label;
* ``RTN`` carries only ``slice_id``;
* ``REC`` carries ``slice_id``, the ``leaf_id`` it checkpoints, and the
  checkpointed operands in ``srcs``;
* recomputing instructions inside a slice write :class:`~repro.isa.operands.SReg`
  destinations and may read ``SReg``/``HistRef`` sources; slice leaves
  additionally carry their ``leaf_id``.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, Optional, Tuple, Union

from .opcodes import ARITY, Category, Opcode
from .operands import HistRef, Imm, Operand, Reg, SReg


@dataclasses.dataclass(frozen=True)
class Instruction:
    """One instruction of the mini ISA.  Immutable and hashable."""

    opcode: Opcode
    dest: Optional[Union[Reg, SReg]] = None
    srcs: Tuple[Operand, ...] = ()
    target: Optional[str] = None
    slice_id: Optional[int] = None
    leaf_id: Optional[int] = None
    comment: str = ""

    def __post_init__(self) -> None:
        expected = ARITY.get(self.opcode)
        if expected is not None and self.opcode is not Opcode.REC:
            if len(self.srcs) != expected:
                raise ValueError(
                    f"{self.opcode.value} expects {expected} sources, "
                    f"got {len(self.srcs)}"
                )
        if self.opcode.is_amnesic and self.slice_id is None:
            raise ValueError(f"{self.opcode.value} requires a slice_id")

    # ------------------------------------------------------------------
    # Structural queries.
    # ------------------------------------------------------------------
    @property
    def category(self) -> Category:
        """Energy category of this instruction (delegates to the opcode)."""
        return self.opcode.category

    @property
    def is_slice_instruction(self) -> bool:
        """True for recomputing instructions (they write the scratch file)."""
        return isinstance(self.dest, SReg)

    @property
    def is_leaf(self) -> bool:
        """True for slice leaves (no producers inside the slice)."""
        return self.is_slice_instruction and self.leaf_id is not None

    def register_uses(self) -> Iterator[Reg]:
        """Architectural registers read by this instruction."""
        for src in self.srcs:
            if isinstance(src, Reg):
                yield src

    def register_def(self) -> Optional[Reg]:
        """The architectural register written, if any."""
        if isinstance(self.dest, Reg):
            return self.dest
        return None

    def scratch_uses(self) -> Iterator[SReg]:
        """Scratch registers read by this (recomputing) instruction."""
        for src in self.srcs:
            if isinstance(src, SReg):
                yield src

    def hist_uses(self) -> Iterator[HistRef]:
        """History-table operands read by this (leaf) instruction."""
        for src in self.srcs:
            if isinstance(src, HistRef):
                yield src

    # ------------------------------------------------------------------
    # Rendering.
    # ------------------------------------------------------------------
    def __str__(self) -> str:
        parts = [self.opcode.value]
        operand_texts = []
        if self.dest is not None:
            operand_texts.append(str(self.dest))
        operand_texts.extend(str(src) for src in self.srcs)
        if operand_texts:
            parts.append(", ".join(operand_texts))
        if self.target is not None:
            parts.append(f"-> {self.target}")
        annotations = []
        if self.slice_id is not None:
            annotations.append(f"slice={self.slice_id}")
        if self.leaf_id is not None:
            annotations.append(f"leaf={self.leaf_id}")
        if annotations:
            parts.append("[" + ", ".join(annotations) + "]")
        text = " ".join(parts)
        if self.comment:
            text = f"{text}  ; {self.comment}"
        return text


# ----------------------------------------------------------------------
# Convenience constructors.  These keep workload kernels and compiler
# rewriting code readable; each returns a plain Instruction.
# ----------------------------------------------------------------------
def alu(opcode: Opcode, dest: Union[Reg, SReg], *srcs: Operand, leaf_id: Optional[int] = None,
        comment: str = "") -> Instruction:
    """Build a compute instruction (integer/FP ALU, move)."""
    if not opcode.is_compute:
        raise ValueError(f"{opcode.value} is not a compute opcode")
    return Instruction(opcode, dest=dest, srcs=tuple(srcs), leaf_id=leaf_id, comment=comment)


def load(dest: Reg, base: Operand, offset: Union[int, Imm] = 0, comment: str = "") -> Instruction:
    """Build ``LD dest, base, offset`` (effective address = base + offset)."""
    if isinstance(offset, int):
        offset = Imm(offset)
    return Instruction(Opcode.LD, dest=dest, srcs=(base, offset), comment=comment)


def store(value: Operand, base: Operand, offset: Union[int, Imm] = 0,
          comment: str = "") -> Instruction:
    """Build ``ST value, base, offset``."""
    if isinstance(offset, int):
        offset = Imm(offset)
    return Instruction(Opcode.ST, srcs=(value, base, offset), comment=comment)


def branch(opcode: Opcode, a: Operand, b: Operand, target: str, comment: str = "") -> Instruction:
    """Build a conditional branch to *target*."""
    if opcode.category.value != "branch":
        raise ValueError(f"{opcode.value} is not a branch opcode")
    return Instruction(opcode, srcs=(a, b), target=target, comment=comment)


def jump(target: str, comment: str = "") -> Instruction:
    """Build an unconditional jump."""
    return Instruction(Opcode.JMP, target=target, comment=comment)


def halt() -> Instruction:
    """Build the HALT instruction."""
    return Instruction(Opcode.HALT)


def li(dest: Union[Reg, SReg], value: Union[int, float], comment: str = "") -> Instruction:
    """Build ``LI dest, #value`` (load immediate)."""
    return Instruction(Opcode.LI, dest=dest, srcs=(Imm(value),), comment=comment)


def rcmp(dest: Reg, base: Operand, offset: Union[int, Imm], slice_id: int,
         target: str, comment: str = "") -> Instruction:
    """Build an ``RCMP`` — the fused branch+load replacing a swapped load.

    Paper section 3.1.2: "RCMP inherits all input operands of the
    respective load, in addition to the starting address of RSlice(v)".
    """
    if isinstance(offset, int):
        offset = Imm(offset)
    return Instruction(
        Opcode.RCMP, dest=dest, srcs=(base, offset), slice_id=slice_id,
        target=target, comment=comment,
    )


def rtn(slice_id: int, result: SReg, comment: str = "") -> Instruction:
    """Build the ``RTN`` terminating a slice.

    ``result`` names the SFile value copied into the eliminated load's
    destination register before control returns (paper section 3.3.2).
    """
    return Instruction(Opcode.RTN, srcs=(), dest=result, slice_id=slice_id, comment=comment)


def rec(slice_id: int, leaf_id: int, operands: Tuple[Operand, ...],
        comment: str = "") -> Instruction:
    """Build a ``REC`` checkpointing *operands* for slice leaf *leaf_id*."""
    return Instruction(
        Opcode.REC, srcs=tuple(operands), slice_id=slice_id, leaf_id=leaf_id,
        comment=comment,
    )
